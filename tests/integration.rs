//! End-to-end integration tests spanning the workspace: the paper's core
//! security and performance claims, exercised through the public API.

use time_protection::attacks::harness::{IntraCoreSpec, Scenario};
use time_protection::attacks::{cache, flush_latency, interrupt, kernel_image};
use time_protection::prelude::*;
use tp_sim::color_of_frame;

/// Requirement 2 + §5.3.1: a shared kernel image leaks across coloured
/// domains; cloned kernels close the channel.
#[test]
fn kernel_clone_closes_the_kernel_image_channel() {
    let mk = |prot| IntraCoreSpec {
        platform: Platform::Haswell,
        prot,
        n_symbols: 4,
        samples: 120,
        slice_us: 50.0,
        seed: 0x1111,
    };
    let shared = kernel_image::kernel_image_channel(&mk(kernel_image::coloured_userland_config()))
        .expect("simulation");
    let cloned =
        kernel_image::kernel_image_channel(&mk(ProtectionConfig::protected())).expect("simulation");
    assert!(shared.verdict.leaks, "shared kernel: {}", shared.summary());
    // A single-shot verdict can false-positive right at the M ≈ M0
    // boundary (the campaign's 3-seed majority vote exists to absorb
    // exactly that); the single-seed checks here are the robust ratio
    // plus an absolute cap on any boundary flag — a *material* cloned
    // leak (hundreds of mb) must still fail this suite, not just the
    // campaign golden gate.
    assert!(
        cloned.verdict.m.bits < shared.verdict.m.bits / 5.0,
        "cloning ineffective: shared {} vs cloned {}",
        shared.summary(),
        cloned.summary()
    );
    assert!(
        !cloned.verdict.leaks || cloned.verdict.m.millibits() < 250.0,
        "cloned kernels leak materially: {}",
        cloned.summary()
    );
}

/// Requirement 1: flushing on-core state closes the L1-D channel.
#[test]
fn on_core_flush_closes_l1d() {
    let raw = cache::try_l1d_channel(&IntraCoreSpec::new(Platform::Sabre, Scenario::Raw, 8, 100))
        .expect("sim run failed");
    let prot = cache::try_l1d_channel(&IntraCoreSpec::new(
        Platform::Sabre,
        Scenario::Protected,
        8,
        100,
    ))
    .expect("sim run failed");
    assert!(raw.verdict.leaks);
    assert!(!prot.verdict.leaks, "{}", prot.summary());
}

/// Requirement 4: the flush itself leaks through its latency unless padded.
#[test]
fn padding_closes_the_flush_latency_channel() {
    let mk = |pad| IntraCoreSpec {
        platform: Platform::Sabre,
        prot: flush_latency::flush_channel_config(pad),
        n_symbols: 8,
        samples: 100,
        slice_us: 50.0,
        seed: 0x2222,
    };
    let no_pad = flush_latency::flush_channel(&mk(None), flush_latency::Timing::Offline)
        .expect("simulation");
    let padded = flush_latency::flush_channel(
        &mk(Some(flush_latency::table4_pad_us(Platform::Sabre))),
        flush_latency::Timing::Offline,
    )
    .expect("simulation");
    assert!(no_pad.verdict.leaks, "{}", no_pad.summary());
    assert!(!padded.verdict.leaks, "{}", padded.summary());
}

/// Requirement 5: interrupt partitioning.
#[test]
fn irq_partitioning_closes_the_interrupt_channel() {
    let raw =
        interrupt::try_interrupt_channel(&interrupt::paper_spec(Platform::Haswell, false, 100))
            .expect("sim run failed");
    let part =
        interrupt::try_interrupt_channel(&interrupt::paper_spec(Platform::Haswell, true, 100))
            .expect("sim run failed");
    assert!(raw.verdict.leaks, "{}", raw.summary());
    assert!(!part.verdict.leaks, "{}", part.summary());
}

/// Colour pools are disjoint between domains and all allocations stay
/// within the owning domain's colours.
#[test]
fn colour_partitioning_is_airtight() {
    use parking_lot::Mutex;
    use std::sync::Arc;
    let n_colors = Platform::Haswell.config().partition_colors();
    type SeenLog = Arc<Mutex<Vec<(u64, Vec<u64>)>>>;
    let seen: SeenLog = Arc::new(Mutex::new(Vec::new()));
    let mut b =
        SystemBuilder::new(Platform::Haswell, ProtectionConfig::protected()).max_cycles(50_000_000);
    let d0 = b.domain(None);
    let d1 = b.domain(None);
    for d in [d0, d1] {
        let seen2 = Arc::clone(&seen);
        b.spawn(d, 0, 100, move |env: &mut UserEnv| {
            let (_, frames) = env.map_pages(64);
            seen2.lock().push((env.my_colors().0, frames));
        });
    }
    let _ = b.run();
    let seen = seen.lock();
    assert_eq!(seen.len(), 2);
    let (c0, f0) = &seen[0];
    let (c1, f1) = &seen[1];
    assert_eq!(c0 & c1, 0, "domain colour masks must be disjoint");
    for f in f0 {
        assert!(c0 & (1 << color_of_frame(*f, n_colors)) != 0);
    }
    for f in f1 {
        assert!(c1 & (1 << color_of_frame(*f, n_colors)) != 0);
    }
}

/// Cross-domain IPC works under full protection (shared user-level state
/// is allowed when the security policy permits it, §6.1).
#[test]
fn cross_domain_ipc_delivers_messages() {
    use parking_lot::Mutex;
    use std::sync::Arc;
    let got: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let got2 = Arc::clone(&got);
    let mut b =
        SystemBuilder::new(Platform::Sabre, ProtectionConfig::protected()).max_cycles(400_000_000);
    let d0 = b.domain(None);
    let d1 = b.domain(None);
    b.setup(Box::new(|k, _m, tcbs, domains| {
        let ep = k.create_endpoint(domains[0]).unwrap();
        let cap = time_protection::core::Capability {
            obj: time_protection::core::CapObject::Endpoint(ep),
            rights: time_protection::core::Rights::all(),
        };
        k.grant_cap(tcbs[0], cap);
        k.grant_cap(tcbs[1], cap);
    }));
    let mut b = b.open_scheduling();
    b.spawn(d0, 0, 100, move |env: &mut UserEnv| {
        for i in 0..5 {
            let r = env
                .syscall(Syscall::Call {
                    cap: 0,
                    msg: 10 + i,
                })
                .unwrap();
            got2.lock().push(r);
        }
    });
    b.spawn_daemon(d1, 0, 100, |env: &mut UserEnv| {
        let mut v = env.syscall(Syscall::Recv { cap: 0 }).unwrap();
        loop {
            v = env
                .syscall(Syscall::ReplyRecv { cap: 0, msg: v * 2 })
                .unwrap();
        }
    });
    let _ = b.run();
    assert_eq!(*got.lock(), vec![20, 22, 24, 26, 28]);
}

/// Determinism: identical seeds give identical simulations.
#[test]
fn simulation_is_deterministic() {
    let run = || {
        let o = cache::try_l1d_channel(
            &IntraCoreSpec::new(Platform::Haswell, Scenario::Raw, 4, 50).with_seed(77),
        )
        .expect("sim run failed");
        (o.dataset.outputs().to_vec(), o.verdict.m.bits)
    };
    let (a_out, a_mi) = run();
    let (b_out, b_mi) = run();
    assert_eq!(a_out, b_out, "outputs must be bit-identical across runs");
    assert_eq!(a_mi, b_mi);
}

/// The §4.1 audit holds: no shared kernel data is indexed by private user
/// state, and its size matches the paper.
#[test]
fn shared_kernel_data_audit() {
    use time_protection::core::layout::SharedKernelData;
    assert!(SharedKernelData::audit().is_empty());
    let sd = SharedKernelData::new(tp_sim::PAddr(0), &Platform::Haswell.config());
    let kib = sd.bytes() as f64 / 1024.0;
    assert!((9.0..10.0).contains(&kib));
}

/// Full protection on a time-shared core costs little (Table 8's claim):
/// under a typical workload, well below 15% even with padding.
#[test]
fn protection_overhead_is_modest() {
    use time_protection::workloads::{run_workload, splash2, WorkloadRun};
    let b = splash2::by_name("fft").unwrap();
    let raw = run_workload(
        &b,
        &WorkloadRun::shared(Platform::Haswell, ProtectionConfig::raw(), (1, 2)).with_ops(30_000),
    )
    .expect("simulation");
    let prot = run_workload(
        &b,
        &WorkloadRun::shared(
            Platform::Haswell,
            ProtectionConfig::protected().with_pad_us(58.8),
            (1, 2),
        )
        .with_ops(30_000),
    )
    .expect("simulation");
    let slow = prot.slowdown_vs(raw);
    assert!(
        slow < 0.15,
        "protected+padded overhead {:.1}%",
        slow * 100.0
    );
}
