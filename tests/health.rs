//! Executor health plane: differential fault classification and the
//! deterministic deadlock detector.
//!
//! Two contracts are pinned here, in their own process (fault injection
//! necessarily trips the supervisor's global counters, which
//! `tests/supervision.rs` asserts stay zero in a fault-free process):
//!
//! * **Differential regression**: every pre-existing `TP_FAULT` class
//!   yields the *same* supervisor classification whether the cell runs
//!   under the legacy thread-per-environment executor or the cooperative
//!   executor — including the `env-stall@N` ordinal, which counts
//!   `wait_preempt` interactions identically on both engines.
//! * **Deadlock bit-identity**: a `lost-wakeup` wedge is classified by
//!   the coop driver as a typed [`tp_core::SimErrorKind::Deadlock`] at
//!   one exact interaction ordinal, bit-identical across worker counts —
//!   never by the wall-clock watchdog.

use std::time::Duration;
use tp_bench::supervise::{pair_cell_report, probe_cell_with, run_cell, CellOutcome};
use tp_core::{fault, ExecMode, FaultKind, FaultPlan, SimErrorKind};

/// Supervise one probe cell under an explicit executor with `kind` armed.
fn classify(kind: FaultKind, seed: u64, mode: ExecMode) -> CellOutcome {
    let plan = FaultPlan::new(kind);
    run_cell(
        "probe",
        "haswell",
        Some(&plan),
        Duration::from_secs(2),
        move || probe_cell_with(seed, mode),
    )
    .outcome
}

/// Every pre-existing fault class classifies identically under both
/// executors. (The three new classes are exercised by the chaos binary
/// and the supervise unit tests; `lost-wakeup` legitimately differs —
/// only the coop driver has a deadlock detector.)
#[test]
fn legacy_fault_classes_classify_identically_across_executors() {
    let cases: [(FaultKind, CellOutcome); 5] = [
        (FaultKind::EnvPanic { at: 3 }, CellOutcome::Panicked),
        (FaultKind::EnvStall { at: 3 }, CellOutcome::TimedOut),
        (
            FaultKind::CommitFlip { index: 17 },
            CellOutcome::ReplayDiverged,
        ),
        (FaultKind::SnapshotCorrupt, CellOutcome::SnapshotCorrupt),
        (FaultKind::NoisePoison { after: 64 }, CellOutcome::Panicked),
    ];
    for (i, (kind, expected)) in cases.into_iter().enumerate() {
        let seed = 0x0D1F_F000 + i as u64;
        for mode in [ExecMode::Threads, ExecMode::Coop { workers: 0 }] {
            if kind == FaultKind::SnapshotCorrupt {
                // Prime the boot cache for this shape so the supervised
                // run restores a (corrupted) snapshot.
                probe_cell_with(seed, mode).expect("cache-priming run");
            }
            let got = classify(kind, seed, mode);
            assert_eq!(
                got,
                expected,
                "{kind} under {mode:?} classified {} (expected {})",
                got.name(),
                expected.name(),
            );
        }
    }
}

/// The env-stall ordinal counts interactions the same way on both
/// engines: a stall armed *beyond* the cell's interaction count never
/// fires under either executor.
#[test]
fn env_stall_ordinal_counts_interactions_identically() {
    for mode in [ExecMode::Threads, ExecMode::Coop { workers: 0 }] {
        let got = classify(FaultKind::EnvStall { at: 1_000_000 }, 0x0D1F_F100, mode);
        assert_eq!(
            got,
            CellOutcome::Ok,
            "an unreachable stall ordinal must be inert under {mode:?}"
        );
    }
}

/// The deadlock detector fires deterministically: same typed error —
/// waiting environments *and* interaction ordinal — for 1, 2 and
/// host-default coop workers, and the message names the ordinal so logs
/// are diffable across hosts.
#[test]
fn lost_wakeup_deadlock_is_bit_identical_across_worker_counts() {
    let run = |workers| {
        fault::arm(Some(FaultKind::LostWakeup { at: 2 }));
        let r = pair_cell_report(0x0D1F_F200, ExecMode::Coop { workers });
        fault::arm(None);
        r.expect_err("the wedged token must be detected, not completed")
    };
    let base = run(1);
    match &base.kind {
        SimErrorKind::Deadlock {
            waiting_envs,
            at_interaction,
        } => {
            assert!(!waiting_envs.is_empty());
            assert!(*at_interaction > 0);
            assert!(
                base.message
                    .contains(&format!("at interaction {at_interaction}")),
                "{}",
                base.message
            );
        }
        other => panic!("expected a typed deadlock, got {other:?}: {}", base.message),
    }
    for workers in [2, 0] {
        let e = run(workers);
        assert_eq!(
            e, base,
            "deadlock detection must be bit-identical across worker counts"
        );
    }
}
