//! Supervision transparency: with no fault plan armed, the campaign
//! supervisor must be a byte-level no-op. The channel results a
//! supervised cell produces — and therefore the verdict table, the
//! results JSON and the pinned goldens derived from them — are identical
//! to calling the experiment function directly on the test thread.
//!
//! This is what licenses running *every* campaign cell under the
//! supervisor: the fault-free path costs one spawned thread and changes
//! nothing observable.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Mutex, Once, OnceLock};
use std::time::Duration;
use tp_bench::campaign::{golden_json, registry, results_json, ChannelResult, ExperimentResult};
use tp_bench::supervise::{self, run_cell, CellOutcome, CellReport};
use tp_sim::Platform;

/// The cheap (cost-weight 2) registry experiments the property samples
/// from. Transparency is a property of the supervisor, not the
/// experiment, so the cheapest cells prove it just as well.
const CHEAP: &[&str] = &["tlb", "btb", "bhb"];

/// Identity must hold at any sample scale, so the property runs at the
/// cheapest one. Each file under `tests/` is its own process and its own
/// test binary, so the override cannot leak into other suites; `Once`
/// ensures the write happens before any test thread reads the variable.
fn init_scale() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| std::env::set_var("TP_SAMPLES", "0.05"));
}

/// One computed identity cell: the unsupervised (direct-call) channels
/// and the supervised report for the same (experiment, platform) pair.
struct CellPair {
    direct: Vec<ChannelResult>,
    report: CellReport,
}

type Memo = Mutex<BTreeMap<(&'static str, &'static str), &'static CellPair>>;

/// Each (experiment, platform) pair is computed once — direct run and
/// supervised run back to back — and every proptest case that draws the
/// same pair re-asserts on the cached outcome. 64 cases over a 3×4 grid
/// would otherwise repeat the same simulations dozens of times.
fn cell_pair(name: &'static str, platform: Platform) -> &'static CellPair {
    static MEMO: OnceLock<Memo> = OnceLock::new();
    let memo = MEMO.get_or_init(Memo::default);
    let mut map = memo.lock().expect("memo poisoned");
    map.entry((name, platform.key())).or_insert_with(|| {
        let def = registry()
            .into_iter()
            .find(|d| d.name == name)
            .expect("experiment in registry");
        let run = def.run;
        let direct = run(platform).expect("direct (unsupervised) run");
        let report = run_cell(
            name,
            platform.key(),
            None,
            Duration::from_secs(600),
            move || run(platform),
        );
        Box::leak(Box::new(CellPair { direct, report }))
    })
}

/// Serialise one cell's channels exactly as `campaign --json` would (wall
/// time pinned so only the measurements matter).
fn cell_json(name: &'static str, platform: Platform, channels: Vec<ChannelResult>) -> String {
    results_json(
        &[ExperimentResult {
            experiment: name,
            platform,
            seconds: 0.0,
            channels,
        }],
        0.0,
    )
}

fn assert_transparent(name: &'static str, platform: Platform) {
    let pair = cell_pair(name, platform);
    assert_eq!(
        pair.report.outcome,
        CellOutcome::Ok,
        "{name}/{}",
        platform.key()
    );
    assert_eq!(pair.report.attempts, 1, "healthy cell must not retry");
    assert_eq!(pair.report.error, None);
    let supervised = pair
        .report
        .channels
        .clone()
        .expect("Ok report carries channels");
    // Byte-identical through every serialisation the campaign emits: the
    // results JSON and the golden verdict file.
    assert_eq!(
        cell_json(name, platform, pair.direct.clone()),
        cell_json(name, platform, supervised.clone()),
        "results JSON must not change under supervision"
    );
    let golden = |channels| {
        golden_json(&[ExperimentResult {
            experiment: name,
            platform,
            seconds: 0.0,
            channels,
        }])
    };
    assert_eq!(
        golden(pair.direct.clone()),
        golden(supervised),
        "golden verdicts must not change under supervision"
    );
}

proptest! {
    /// Any cheap experiment on any platform: supervised (empty fault
    /// plan) and unsupervised runs are byte-identical.
    #[test]
    fn supervised_cell_is_byte_identical_to_unsupervised(
        platform in proptest::sample::select(Platform::ALL),
        exp in 0usize..CHEAP.len(),
    ) {
        init_scale();
        assert_transparent(CHEAP[exp], platform);
    }
}

/// The full platform axis, deterministically: the identity holds on all
/// four registered platforms (the property above covers them with
/// overwhelming probability; this pins it).
#[test]
fn transparent_on_every_platform() {
    init_scale();
    for p in Platform::ALL {
        assert_transparent("tlb", p);
    }
}

/// A fault-free suite never trips the supervisor's failure accounting:
/// nothing in this process injects faults, so the global counters that
/// feed `BENCH-campaign.json`'s `supervisor` object all stay zero.
#[test]
fn healthy_cells_leave_the_counters_untouched() {
    init_scale();
    for &name in CHEAP {
        assert_transparent(name, Platform::Haswell);
    }
    let c = supervise::counters();
    assert_eq!(
        (
            c.retries,
            c.timeouts,
            c.panics,
            c.snapshot_corrupt,
            c.replay_diverged,
            c.quarantined,
            c.env_failed,
            c.deadlocks,
            c.stack_overflows
        ),
        (0, 0, 0, 0, 0, 0, 0, 0, 0),
        "healthy campaign must report a clean supervisor line"
    );
}
