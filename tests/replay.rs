//! Replay-equivalence test suite for the commit-log kernel gateway.
//!
//! Two contracts are pinned here:
//!
//! 1. **Replay hash property** (proptest): for random interleaved syscall
//!    sequences on every registered platform, reducing `(genesis,
//!    commits)` reproduces the original kernel `state_hash()` bit for
//!    bit, and snapshot-then-resume reaches the same final hash as the
//!    straight-through run.
//! 2. **Observer effect regression**: enabling commit logging must not
//!    change a single simulated timestamp — the engine's `now()` stream
//!    is byte-identical with logging on and off.

use proptest::prelude::*;
use tp_core::replay::{self, Booted, Genesis, Snapshot};
use tp_sim::Platform;

proptest! {
    /// `state_hash(replay(log)) == state_hash(original)` for random
    /// scripted syscall interleavings. Each case exercises all four
    /// platforms, so 64 cases = 256 recorded-and-replayed sequences.
    #[test]
    fn replay_reproduces_state_hash_on_all_platforms(
        ops in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u64>()), 1..48),
    ) {
        for platform in Platform::ALL {
            let genesis = Genesis::new(platform);
            let Booted { mut machine, mut kernel, driver } = genesis.boot();
            kernel.log.enable();
            for &(x, y, z) in &ops {
                driver.step(&mut machine, &mut kernel, x, y, z);
            }
            let original = kernel.state_hash();
            let commits = kernel.log.take();
            let (rm, rk) = replay::replay(&genesis, &commits);
            prop_assert_eq!(
                rk.state_hash(), original,
                "{}: replay diverged over {} commits", platform.key(), commits.len()
            );
            prop_assert_eq!(
                rm.cycles(0), machine.cycles(0),
                "{}: machine time diverged", platform.key()
            );
        }
    }

    /// Snapshot at an arbitrary cut point, resume from the restored
    /// state, and finish the script: the final hash matches the
    /// straight-through run on every platform.
    #[test]
    fn snapshot_resume_matches_straight_through(
        ops in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u64>()), 2..40),
        cut in any::<usize>(),
    ) {
        let cut = cut % ops.len();
        for platform in Platform::ALL {
            let genesis = Genesis::new(platform);
            let Booted { mut machine, mut kernel, driver } = genesis.boot();
            kernel.log.enable();
            let mut snap: Option<Snapshot> = None;
            for (i, &(x, y, z)) in ops.iter().enumerate() {
                driver.step(&mut machine, &mut kernel, x, y, z);
                if i == cut {
                    snap = Some(Snapshot::take(&machine, &kernel, kernel.log.len()));
                }
            }
            let straight = kernel.state_hash();

            let (mut m2, mut k2) = snap.expect("cut < ops.len()").resume();
            for &(x, y, z) in &ops[cut + 1..] {
                driver.step(&mut m2, &mut k2, x, y, z);
            }
            prop_assert_eq!(
                k2.state_hash(), straight,
                "{}: resume from cut {} diverged", platform.key(), cut
            );
            prop_assert_eq!(m2.cycles(0), machine.cycles(0), "{}", platform.key());
        }
    }
}

/// Commit logging is a pure observer: running the same two-domain engine
/// scenario with `record_commits` on and off yields byte-identical
/// simulated timestamp streams and final cycle counters — while the
/// logged run does produce a non-empty audit trail.
#[test]
fn commit_logging_does_not_perturb_simulated_time() {
    use parking_lot::Mutex;
    use std::sync::Arc;
    use tp_core::{ProtectionConfig, SystemBuilder, UserEnv};

    for platform in [Platform::Haswell, Platform::Sabre] {
        let run = |record: bool| {
            let stamps: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
            let out = Arc::clone(&stamps);
            let mut b = SystemBuilder::new(platform, ProtectionConfig::protected())
                .seed(0x7E57)
                .slice_us(40.0)
                .max_cycles(30_000_000)
                .record_commits(record);
            let d0 = b.domain(None);
            let d1 = b.domain(None);
            b.spawn(d0, 0, 100, move |env: &mut UserEnv| {
                let (va, _) = env.map_pages(2);
                for i in 0..40 {
                    out.lock().push(env.now());
                    env.load(tp_sim::VAddr(va.0 + (i % 64) * 64));
                    env.compute(500);
                    if i % 8 == 0 {
                        let _ = env.wait_preempt();
                    }
                }
            });
            b.spawn_daemon(d1, 0, 100, |env: &mut UserEnv| loop {
                env.compute(1_000);
            });
            let report = b.run();
            let v = stamps.lock().clone();
            (v, report)
        };

        let (stamps_off, report_off) = run(false);
        let (stamps_on, report_on) = run(true);
        assert!(!stamps_off.is_empty(), "{}: no samples", platform.key());
        assert_eq!(
            stamps_off,
            stamps_on,
            "{}: now() stream changed under logging",
            platform.key()
        );
        assert_eq!(
            report_off.cycles,
            report_on.cycles,
            "{}: final cycles changed under logging",
            platform.key()
        );
        assert!(
            report_off.commits.is_empty(),
            "{}: unlogged run leaked commits",
            platform.key()
        );
        assert!(
            !report_on.commits.is_empty(),
            "{}: logged run recorded nothing",
            platform.key()
        );
    }
}
