//! Durability properties of the campaign store (`tp_bench::store`):
//! arbitrary journal damage never changes final campaign results, and a
//! cell replayed from the journal re-serialises byte-identically.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::OnceLock;
use tp_bench::campaign::{golden_json, results_json, ChannelResult, ExperimentResult};
use tp_bench::store::{
    completed_cells, replay_journal, CellRecord, Journal, JournalHeader, LoadReport,
};
use tp_sim::Platform;

/// Synthetic but awkward channel values: non-round floats whose printed
/// form loses precision, so only the bit-exact journal fields can
/// round-trip them.
fn channel(i: u64, mech: &'static str) -> ChannelResult {
    ChannelResult {
        channel: "L1-D",
        mechanism: mech,
        metric: "M_mb",
        value: f64::from_bits(0x4065_0000_0000_0000 + i * 0x0123_4567),
        baseline: 40.25 + i as f64 / 3.0,
        leaks: i.is_multiple_of(2),
        samples: 100 + i as usize,
    }
}

fn record(i: u64) -> CellRecord {
    let names = ["l1d", "tlb", "btb", "bhb", "bus", "l2"];
    let platforms = [Platform::Haswell, Platform::Skylake, Platform::Sabre];
    CellRecord::new(
        names[(i % 6) as usize],
        platforms[((i / 6) % 3) as usize],
        0.125 + i as f64 / 7.0,
        &[channel(i, "raw"), channel(i + 100, "protected")],
    )
}

/// The ground-truth journal: 12 distinct cells, written through the real
/// `Journal` (header + fsynced appends), read back as bytes. Built once.
fn ground_truth() -> &'static (String, Vec<CellRecord>, JournalHeader) {
    static TRUTH: OnceLock<(String, Vec<CellRecord>, JournalHeader)> = OnceLock::new();
    TRUTH.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("tp-store-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("campaign.journal");
        let header = JournalHeader::current();
        let records: Vec<CellRecord> = (0..12).map(record).collect();
        let mut j = Journal::create(&path, &header).expect("create journal");
        for r in &records {
            j.append(r).expect("append");
        }
        drop(j);
        let text = std::fs::read_to_string(&path).expect("read journal back");
        let _ = std::fs::remove_dir_all(&dir);
        (text, records, header)
    })
}

/// What a resumed campaign would end up with: journaled cells served from
/// `completed`, every other scheduled cell recomputed from ground truth.
fn final_results(report: &LoadReport, truth: &[CellRecord]) -> Vec<CellRecord> {
    let completed = completed_cells(std::slice::from_ref(report));
    truth
        .iter()
        .map(|want| completed.get(&want.key()).unwrap_or(want).clone())
        .collect()
}

proptest! {
    /// Truncating the journal at an arbitrary byte offset loses at most a
    /// suffix of cells — the replayed prefix is bit-exact, damaged records
    /// are reported (never silently accepted), and a resume that recomputes
    /// the lost cells reproduces the ground truth exactly.
    #[test]
    fn truncation_never_changes_final_results(cut in 0usize..20_000) {
        let (text, truth, header) = ground_truth();
        let cut = cut.min(text.len());
        let report = replay_journal(&text[..cut], header);
        prop_assert!(report.records.len() <= truth.len());
        for (got, want) in report.records.iter().zip(truth) {
            prop_assert_eq!(got, want, "replayed record must be bit-exact");
        }
        if report.records.len() < truth.len() && cut > 0 {
            // Anything lost is accounted for, with the damage located.
            prop_assert!(report.truncated > 0 || cut <= text.find('\n').unwrap_or(0) + 1);
        }
        prop_assert_eq!(final_results(&report, truth), truth.clone());
    }

    /// Flipping any single byte anywhere in the journal — header, checksum,
    /// record body, even a newline — never corrupts final results: the
    /// damaged record and everything after it recompute, everything before
    /// it is served bit-exact.
    #[test]
    fn byte_flip_never_changes_final_results(offset in 0usize..20_000, x in 1u8..=255) {
        let (text, truth, header) = ground_truth();
        let mut bytes = text.clone().into_bytes();
        let offset = offset % bytes.len();
        bytes[offset] ^= x;
        let damaged = String::from_utf8_lossy(&bytes).into_owned();
        let report = replay_journal(&damaged, header);
        for (got, want) in report.records.iter().zip(truth) {
            prop_assert_eq!(got, want, "replayed record must be bit-exact");
        }
        prop_assert!(
            report.records.len() >= truth.len() || report.first_damaged.is_some(),
            "a lost record must be reported with its index, never dropped silently"
        );
        prop_assert_eq!(final_results(&report, truth), truth.clone());
    }
}

/// A cell replayed from the journal serialises byte-identically to the
/// original run: the `*_bits` journal fields round-trip the exact `f64`s,
/// so `--resume` reproduces `results.json` and the golden file without a
/// byte of churn.
#[test]
fn replayed_cells_reserialize_byte_identically() {
    let names = ["l1d", "tlb", "btb", "bhb", "bus", "l2"];
    let originals: Vec<ExperimentResult> = (0..12)
        .map(|i| {
            let rec = record(i);
            ExperimentResult {
                experiment: names[(i % 6) as usize],
                platform: Platform::from_key(&rec.platform).unwrap(),
                seconds: rec.seconds,
                channels: rec.channels.clone(),
            }
        })
        .collect();
    let replayed: Vec<ExperimentResult> = originals
        .iter()
        .map(|r| {
            let rec = CellRecord::new(r.experiment, r.platform, r.seconds, &r.channels);
            let parsed = CellRecord::parse(&rec.body()).expect("journal roundtrip");
            ExperimentResult::from_record(r.experiment, r.platform, &parsed)
        })
        .collect();
    assert_eq!(
        results_json(&originals, 1.5),
        results_json(&replayed, 1.5),
        "results.json must not change across a journal roundtrip"
    );
    assert_eq!(
        golden_json(&originals),
        golden_json(&replayed),
        "the golden file must not change across a journal roundtrip"
    );
}

/// Shard journals partition the cell matrix: disjoint shards merge into
/// exactly the full set, and an overlapping cell takes the first shard's
/// record rather than duplicating.
#[test]
fn shard_journals_merge_to_full_coverage() {
    let truth: Vec<CellRecord> = (0..12).map(record).collect();
    let shard = |i: usize, n: usize| LoadReport {
        records: truth
            .iter()
            .enumerate()
            .filter(|(idx, _)| idx % n == i)
            .map(|(_, r)| r.clone())
            .collect(),
        ..Default::default()
    };
    let shards: Vec<LoadReport> = (0..3).map(|i| shard(i, 3)).collect();
    let merged = completed_cells(&shards);
    assert_eq!(merged.len(), truth.len(), "shards must cover every cell");
    let by_key: BTreeMap<_, _> = truth.iter().map(|r| (r.key(), r.clone())).collect();
    assert_eq!(merged, by_key);

    // Overlap: shard 0 re-listing a cell of shard 1 must not override it.
    let mut dup = truth[1].clone();
    dup.seconds += 100.0;
    let overlapping = vec![
        shards[1].clone(),
        LoadReport {
            records: vec![dup],
            ..Default::default()
        },
    ];
    assert_eq!(
        completed_cells(&overlapping)[&truth[1].key()],
        truth[1],
        "first shard's record wins for an overlapping cell"
    );
}
