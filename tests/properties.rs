//! Property-based tests (proptest) on the core data structures and
//! estimators.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use time_protection::analysis::{mutual_information, mutual_information_naive, Dataset, MiContext};
use time_protection::attacks::elgamal::{key_bits, modexp_with_hook, BigUint, ExpOp};
use tp_sim::cache::{phys_set, phys_tag, Cache, Replacement};
use tp_sim::{CacheGeom, ColorSet, NoiseRng};

proptest! {
    /// A cache never holds more valid lines than its capacity, never more
    /// dirty than valid, and a line just accessed is always resident.
    #[test]
    fn cache_capacity_and_residency_invariants(
        accesses in proptest::collection::vec((0u64..4096, any::<bool>()), 1..300),
        seed in any::<u64>(),
    ) {
        let geom = CacheGeom { size: 4 * 1024, ways: 4, line: 64 };
        let mut c = Cache::new("p", geom, Replacement::Lru);
        let mut rng = NoiseRng::seeded(seed);
        for (line_idx, write) in accesses {
            let pa = line_idx * 64;
            let set = phys_set(geom, pa);
            let tag = phys_tag(geom, pa);
            c.access(set, tag, line_idx, write, &mut rng);
            prop_assert!(c.peek(set, tag), "just-accessed line must be resident");
            prop_assert!(c.valid_lines() <= geom.lines());
            prop_assert!(c.dirty_lines() <= c.valid_lines());
            prop_assert!(c.valid_in_set(set) <= u64::from(geom.ways));
        }
        let (valid, dirty) = c.flush_all();
        prop_assert!(dirty <= valid);
        prop_assert_eq!(c.valid_lines(), 0);
    }

    /// Flushing is complete: after flush_all, no previously accessed line
    /// remains.
    #[test]
    fn flush_is_complete(lines in proptest::collection::vec(0u64..1024, 1..100)) {
        let geom = CacheGeom { size: 8 * 1024, ways: 8, line: 64 };
        let mut c = Cache::new("f", geom, Replacement::Lru);
        let mut rng = NoiseRng::seeded(1);
        for &l in &lines {
            c.access(phys_set(geom, l * 64), phys_tag(geom, l * 64), l, true, &mut rng);
        }
        c.flush_all();
        for &l in &lines {
            prop_assert!(!c.peek(phys_set(geom, l * 64), phys_tag(geom, l * 64)));
        }
    }

    /// ColorSet algebra: union/minus/intersects are consistent.
    #[test]
    fn colorset_algebra(a in 0u64..=u64::MAX, b in 0u64..=u64::MAX) {
        let (sa, sb) = (ColorSet(a), ColorSet(b));
        prop_assert_eq!(sa.union(sb).0, a | b);
        prop_assert_eq!(sa.minus(sb).0, a & !b);
        prop_assert_eq!(sa.intersects(sb), a & b != 0);
        prop_assert!(!sa.minus(sb).intersects(sb));
        prop_assert_eq!(sa.union(sb).count(), (a | b).count_ones());
    }

    /// MI is non-negative and bounded by the input entropy.
    #[test]
    fn mi_bounds(
        pairs in proptest::collection::vec((0usize..4, -1000.0f64..1000.0), 24..400),
    ) {
        let mut d = Dataset::new(4);
        for (s, o) in pairs {
            d.push(s, o);
        }
        let mi = mutual_information(&d);
        prop_assert!(mi.bits >= 0.0);
        prop_assert!(mi.bits <= 2.0 + 0.2, "MI {} exceeds log2(4)", mi.bits);
    }

    /// The optimised MI path (banded-convolution KDE over a shared
    /// context) agrees with the naive reference oracle to within 1e-9
    /// bits on arbitrary datasets — the correctness contract of the
    /// shuffle-test fast path.
    #[test]
    fn fast_mi_matches_naive_oracle(
        pairs in proptest::collection::vec((0usize..6, -500.0f64..500.0), 12..300),
    ) {
        let mut d = Dataset::new(6);
        for (s, o) in pairs {
            d.push(s, o);
        }
        let fast = mutual_information(&d).bits;
        let naive = mutual_information_naive(&d).bits;
        prop_assert!(
            (fast - naive).abs() < 1e-9,
            "fast {fast} vs naive {naive} (n = {})", d.len()
        );
    }

    /// The shared-context shuffled estimate agrees with re-estimating the
    /// permuted dataset from scratch with the naive oracle.
    #[test]
    fn fast_shuffled_mi_matches_naive_oracle(
        pairs in proptest::collection::vec((0usize..4, -100.0f64..100.0), 16..200),
        rot in 1usize..13,
    ) {
        let mut d = Dataset::new(4);
        for (s, o) in pairs {
            d.push(s, o);
        }
        // A rotation is always a permutation, whatever the length.
        let n = d.len();
        let perm: Vec<usize> = (0..n).map(|j| (j + rot) % n).collect();
        let ctx = MiContext::new(&d);
        let fast = ctx.mi_shuffled(&perm);
        let naive = mutual_information_naive(&d.permuted(&perm)).bits;
        prop_assert!(
            (fast - naive).abs() < 1e-9,
            "fast {fast} vs naive {naive} (n = {n}, rot = {rot})"
        );
    }

    /// MI of outputs independent of inputs stays near zero.
    #[test]
    fn mi_of_constant_outputs_is_zero(
        symbols in proptest::collection::vec(0usize..4, 40..200),
        value in -100.0f64..100.0,
    ) {
        let mut d = Dataset::new(4);
        for s in symbols {
            d.push(s, value);
        }
        let mi = mutual_information(&d);
        prop_assert!(mi.bits < 0.02, "constant outputs gave MI {}", mi.bits);
    }

    /// Multi-precision arithmetic agrees with u128 on small operands.
    #[test]
    fn bignum_matches_u128(a in 1u64.., b in 1u64.., m in 2u64..) {
        let (ba, bb, bm) = (BigUint::from_u64(a), BigUint::from_u64(b), BigUint::from_u64(m));
        let expect = (u128::from(a) * u128::from(b)) % u128::from(m);
        let got = ba.modmul(&bb, &bm);
        prop_assert!(got.limbs().len() <= 2);
        let got128 = got.limbs().iter().rev().fold(0u128, |acc, &l| (acc << 64) | u128::from(l));
        prop_assert_eq!(got128, expect);
    }

    /// The square/multiply operation sequence exactly encodes the exponent
    /// bits: squares = bits(exp)-1, multiplies = ones below the MSB.
    #[test]
    fn modexp_hook_sequence_encodes_exponent(exp in 2u64.., base in 2u64.., m in 3u64..) {
        let e = BigUint::from_u64(exp);
        let mut squares = 0u32;
        let mut muls = 0u32;
        let _ = modexp_with_hook(
            &BigUint::from_u64(base),
            &e,
            &BigUint::from_u64(m),
            |op| match op {
                ExpOp::Square => squares += 1,
                ExpOp::Multiply => muls += 1,
            },
        );
        let bits = key_bits(&e);
        prop_assert_eq!(squares as usize, bits.len());
        prop_assert_eq!(muls as usize, bits.iter().filter(|&&b| b == 1).count());
    }

    /// Frame colours partition the frame space evenly.
    #[test]
    fn colours_partition_frames(n_colors in 1u64..64, frames in 1u64..10_000) {
        let mut counts = vec![0u64; n_colors as usize];
        for f in 0..frames {
            counts[tp_sim::color_of_frame(f, n_colors) as usize] += 1;
        }
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        prop_assert!(max - min <= 1, "colour imbalance: {counts:?}");
    }
}

proptest! {
    /// The batch sweep is bit-identical to the scalar access path: same
    /// per-line cycle costs, same hit levels, same machine state — for
    /// random address mixes, read and write rounds, with the platform
    /// itself drawn as a strategy over the whole registry. This is the
    /// correctness contract that lets the probe machinery run through
    /// `Machine::access_batch`.
    #[test]
    fn batch_sweep_matches_scalar_accesses(
        p in proptest::sample::select(tp_sim::Platform::ALL),
        line_idx in proptest::collection::vec(0u64..100_000, 8..80),
        writes in proptest::collection::vec(any::<bool>(), 3),
        seed in any::<u64>(),
    ) {
        use tp_sim::{Asid, BatchOut, Machine, PAddr, SweepPlan};
        let cfg = p.config();
        let mut ms = Machine::new(cfg, seed);
        let mut mb = Machine::new(cfg, seed);
        let pas: Vec<PAddr> = line_idx.iter().map(|&i| PAddr(0x40_0000 + i * cfg.line)).collect();
        let plan: SweepPlan = mb.plan_sweep(false, &pas);
        for &write in &writes {
            let mut costs = Vec::new();
            let mut levels = Vec::new();
            let total_b = mb.access_batch(
                0,
                Asid(1),
                &plan,
                write,
                false,
                &mut BatchOut { costs: Some(&mut costs), levels: Some(&mut levels) },
            );
            let mut total_s = 0u64;
            for (i, &pa) in pas.iter().enumerate() {
                let (c, lvl) = ms.access_with_level(0, Asid(1), pa, write, false, false);
                total_s += c;
                prop_assert_eq!(c, costs[i], "{}: line {} cost", p.key(), i);
                prop_assert_eq!(lvl, levels[i], "{}: line {} level", p.key(), i);
            }
            prop_assert_eq!(total_s, total_b, "{}", p.key());
            prop_assert_eq!(ms.cycles(0), mb.cycles(0), "{}", p.key());
        }
    }

    /// The SplitMix noise stream is counter-based: the i-th value is a
    /// pure function of (seed, i), so fanning the index range out over any
    /// number of rayon workers reproduces the sequential stream exactly.
    /// This is the property that makes simulator noise independent of
    /// `TP_THREADS`.
    #[test]
    fn noise_stream_is_position_determined(seed in any::<u64>()) {
        use tp_sim::NoiseRng;
        let mut rng = NoiseRng::seeded(seed);
        let sequential: Vec<u64> = (0..256).map(|_| rng.next_u64()).collect();
        // Recompute out of order via the closed form, in parallel chunks.
        let chunks: Vec<usize> = (0..8).collect();
        let parallel: Vec<Vec<u64>> = rayon::par_map(&chunks, |&c| {
            (0..32).map(|i| tp_sim::noise::nth(seed, (c * 32 + i) as u64)).collect()
        });
        let flat: Vec<u64> = parallel.into_iter().flatten().collect();
        prop_assert_eq!(sequential, flat);
    }
}

/// End-to-end batch-vs-scalar equivalence through the engine: a probe
/// buffer swept with the batched `ProbeBuf::probe`/`probe_exec` in one
/// system produces bit-identical cycle totals to the scalar
/// line-at-a-time oracle in an identically-seeded twin system.
#[test]
fn engine_probe_batch_matches_scalar_oracle() {
    use parking_lot::Mutex;
    use std::sync::Arc;
    use time_protection::attacks::probe::l1_probe;
    use tp_core::{ProtectionConfig, SystemBuilder, UserEnv};

    for platform in tp_sim::Platform::ALL {
        let run = |batch: bool| -> Vec<u64> {
            let out: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
            let out2 = Arc::clone(&out);
            let mut b = SystemBuilder::new(platform, ProtectionConfig::raw())
                .seed(0xBA7C)
                .max_cycles(400_000_000);
            let d = b.domain(None);
            b.spawn(d, 0, 100, move |env: &mut UserEnv| {
                let dbuf = l1_probe(env, env.platform().l1d);
                let ibuf = l1_probe(env, env.platform().l1i);
                let mut totals = Vec::new();
                for round in 0..3 {
                    if batch {
                        totals.push(dbuf.probe(env));
                        totals.push(dbuf.probe_prefix(env, 100 + round));
                        totals.push(dbuf.probe_write(env));
                        totals.push(ibuf.probe_exec(env));
                    } else {
                        totals.push(dbuf.probe_scalar(env));
                        totals.push(
                            dbuf.lines[..100 + round]
                                .iter()
                                .map(|&va| env.load(va))
                                .sum(),
                        );
                        totals.push(dbuf.probe_write_scalar(env));
                        totals.push(ibuf.probe_exec_scalar(env));
                    }
                }
                *out2.lock() = totals;
            });
            let _ = b.run();
            let v = out.lock().clone();
            v
        };
        let batched = run(true);
        let scalar = run(false);
        assert_eq!(
            batched.len(),
            12,
            "{}: program did not finish",
            platform.key()
        );
        assert_eq!(batched, scalar, "{}", platform.key());
    }
}

/// The shuffle test's false-positive rate is controlled: channels built
/// from pure noise rarely report leaks.
#[test]
fn shuffle_test_controls_false_positives() {
    use rand::Rng;
    let mut leaks = 0;
    let trials = 12;
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(900 + t);
        let mut d = Dataset::new(4);
        for _ in 0..300 {
            let s = rng.gen_range(0..4);
            let o: f64 = rng.gen_range(0.0..100.0);
            d.push(s, o);
        }
        if time_protection::analysis::leakage_test(&d, 1000 + t).leaks {
            leaks += 1;
        }
    }
    // 95% bound => ~5% false positives expected; allow generous slack.
    assert!(leaks <= 3, "{leaks}/{trials} false positives");
}

proptest! {
    /// Any power-of-two cache geometry has a power-of-two set count, at
    /// least one page colour, and consistent line accounting — the same
    /// invariants `PlatformConfig::validate` enforces on the registry.
    #[test]
    fn cache_geometry_invariants(
        size_kib_log2 in 3u32..15, // 8 KiB .. 16 MiB
        ways_log2 in 0u32..5,
        line_log2 in 5u32..8,      // 32 .. 128 B
    ) {
        let geom = tp_sim::CacheGeom {
            size: (1u64 << size_kib_log2) * 1024,
            ways: 1 << ways_log2,
            line: 1 << line_log2,
        };
        if geom.size < geom.line * u64::from(geom.ways) {
            return; // degenerate: fewer than one set
        }
        prop_assert!(geom.sets().is_power_of_two());
        prop_assert!(geom.colors(4096) >= 1);
        prop_assert_eq!(geom.sets() * u64::from(geom.ways), geom.lines());
        prop_assert_eq!(geom.lines() * geom.line, geom.size);
    }
}

/// Every platform in the registry satisfies the structural invariants:
/// power-of-two cache sets, at least one colour, L1 ≤ L2 ≤ LLC ≤ DRAM
/// latency ordering, and one line size across all levels.
#[test]
fn registered_platforms_satisfy_invariants() {
    use tp_sim::Platform;
    for p in Platform::ALL {
        let cfg = p.config();
        let errs = cfg.validate();
        assert!(errs.is_empty(), "{} invalid: {errs:?}", p.key());
        // Spot-check the load-bearing invariants directly, independent of
        // validate()'s own implementation.
        for geom in [cfg.l1d, cfg.l1i, cfg.l2].into_iter().chain(cfg.llc) {
            assert!(
                geom.sets().is_power_of_two(),
                "{}: {} sets",
                p.key(),
                geom.sets()
            );
            assert!(geom.colors(cfg.page) >= 1, "{}: zero colours", p.key());
            assert_eq!(geom.line, cfg.line, "{}: mixed line sizes", p.key());
        }
        assert!(cfg.lat.l1_hit <= cfg.lat.l2_hit, "{}", p.key());
        assert!(cfg.lat.l2_hit <= cfg.lat.llc_hit, "{}", p.key());
        assert!(cfg.lat.llc_hit <= cfg.lat.dram, "{}", p.key());
        assert!(cfg.partition_colors() >= 1, "{}", p.key());
    }
}

/// validate() actually rejects broken configurations (it is the gate the
/// campaign binary runs before burning time on a platform).
#[test]
fn validate_rejects_broken_configs() {
    use tp_sim::Platform;
    let mut cfg = Platform::Haswell.config();
    cfg.lat.dram = 1; // DRAM faster than LLC: nonsense
    assert!(!cfg.validate().is_empty());

    let mut cfg = Platform::Haswell.config();
    cfg.l1d.size = 3 * 1024; // 6 sets: not a power of two
    assert!(!cfg.validate().is_empty());

    let mut cfg = Platform::Sabre.config();
    cfg.l2.line = 64; // mixed line sizes (platform line is 32)
    assert!(!cfg.validate().is_empty());
}

/// Build-and-run one fixed multi-environment workload under a chosen
/// executor; used by the M-independence property below. Three domains on
/// one core — a probing primary, a computing daemon and a paging daemon —
/// exercise preemption, batched sweeps and kernel allocation paths.
fn executor_fixture(
    platform: tp_sim::Platform,
    seed: u64,
    mode: tp_core::ExecMode,
) -> tp_core::SystemReport {
    executor_fixture_result(platform, seed, mode).expect("fixture run")
}

/// [`executor_fixture`] without the unwrap, for the fault-isolation
/// property (a fault aimed at the primary surfaces here as `Err`).
fn executor_fixture_result(
    platform: tp_sim::Platform,
    seed: u64,
    mode: tp_core::ExecMode,
) -> Result<tp_core::SystemReport, tp_core::SimError> {
    use parking_lot::Mutex;
    use std::sync::Arc;
    use time_protection::attacks::probe::l1_probe;
    use tp_core::{ProtectionConfig, SystemBuilder, UserEnv};

    let obs: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let obs2 = Arc::clone(&obs);
    let mut b = SystemBuilder::new(platform, ProtectionConfig::protected())
        .seed(seed)
        .slice_us(30.0)
        .max_cycles(600_000_000)
        .executor(mode);
    let d0 = b.domain(None);
    let d1 = b.domain(None);
    let d2 = b.domain(None);
    b.spawn(d0, 0, 100, move |env: &mut UserEnv| {
        let buf = l1_probe(env, env.platform().l1d);
        for _ in 0..6 {
            obs2.lock().push(buf.probe(env));
            let _ = env.wait_preempt();
        }
    });
    b.spawn_daemon(d1, 0, 100, move |env: &mut UserEnv| loop {
        env.compute(10_000);
        env.sleep_slice();
    });
    b.spawn_daemon(d2, 0, 100, move |env: &mut UserEnv| {
        let (va, _) = env.map_pages(4);
        loop {
            env.load(va);
            env.store(va);
            let _ = env.wait_preempt();
        }
    });
    b.try_run()
}

proptest! {
    /// The cooperative executor's host worker count is invisible: for any
    /// platform and seed, running the same multi-environment workload under
    /// the thread-per-environment executor and under cooperative executors
    /// with 1, 2 and host-default workers produces the same final kernel
    /// state hash and the same per-core cycle counts. This is the
    /// structural determinism contract of the executor redesign.
    #[test]
    fn executor_worker_count_is_invisible(
        p in proptest::sample::select(tp_sim::Platform::ALL),
        seed in any::<u64>(),
    ) {
        use tp_core::ExecMode;
        let base = executor_fixture(p, seed, ExecMode::Threads);
        for mode in [
            ExecMode::Coop { workers: 1 },
            ExecMode::Coop { workers: 2 },
            ExecMode::Coop { workers: 0 },
        ] {
            let r = executor_fixture(p, seed, mode);
            prop_assert_eq!(
                r.state_hash, base.state_hash,
                "{}: {mode:?} state hash diverged from Threads", p.key()
            );
            prop_assert_eq!(
                &r.cycles, &base.cycles,
                "{}: {mode:?} cycle counts diverged from Threads", p.key()
            );
        }
    }

    /// Per-environment failure isolation is executor- and worker-count-
    /// invariant: arm an `env-panic` at an arbitrary interaction ordinal
    /// and the outcome — whichever environment dies, the survivors' final
    /// kernel state hash, per-core cycle counts and the typed
    /// [`tp_core::EnvOutcome`] list — is bit-identical under the
    /// thread-per-environment executor and cooperative executors with 1,
    /// 2 and host-default workers. A panic that lands on a daemon must
    /// never abort the run or perturb its siblings; one that lands on the
    /// primary must produce the identical error everywhere.
    #[test]
    fn env_failure_isolation_is_executor_invariant(
        p in proptest::sample::select(tp_sim::Platform::ALL),
        seed in any::<u64>(),
        at in 2u64..18,
    ) {
        use tp_core::{fault, EnvOutcome, ExecMode, FaultKind};
        let run = |mode| {
            fault::arm(Some(FaultKind::EnvPanic { at }));
            let r = executor_fixture_result(p, seed, mode);
            fault::arm(None);
            r
        };
        let base = run(ExecMode::Threads);
        for mode in [
            ExecMode::Coop { workers: 1 },
            ExecMode::Coop { workers: 2 },
            ExecMode::Coop { workers: 0 },
        ] {
            match (&base, &run(mode)) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(
                        b.state_hash, a.state_hash,
                        "{}: {mode:?} survivor state diverged from Threads", p.key()
                    );
                    prop_assert_eq!(&b.cycles, &a.cycles);
                    prop_assert_eq!(&b.env_outcomes, &a.env_outcomes);
                }
                (Err(a), Err(b)) => {
                    prop_assert_eq!(
                        a.to_string(), b.to_string(),
                        "{}: {mode:?} primary-death error diverged", p.key()
                    );
                }
                (a, b) => {
                    panic!(
                        "{}: Threads {} but {mode:?} {}",
                        p.key(),
                        if a.is_ok() { "completed" } else { "errored" },
                        if b.is_ok() { "completed" } else { "errored" },
                    );
                }
            }
        }
        if let Ok(a) = &base {
            let failed = a
                .env_outcomes
                .iter()
                .filter(|o| matches!(o, EnvOutcome::Failed { .. }))
                .count();
            if failed == 0 {
                // The ordinal was beyond the run's interaction count: the
                // armed-but-inert fault must leave no trace at all.
                let clean = executor_fixture_result(p, seed, ExecMode::Threads)
                    .expect("clean fixture");
                prop_assert_eq!(
                    a.state_hash, clean.state_hash,
                    "{}: inert env-panic@{} perturbed the run", p.key(), at
                );
            } else {
                // Contained, not collapsed: at least one daemon survived.
                // (A death mid-critical-section can legitimately take a
                // sibling with it — the cascade is itself deterministic
                // and executor-invariant, pinned by the `env_outcomes`
                // equality above.)
                prop_assert!(
                    failed < a.env_outcomes.len(),
                    "{}: env-panic@{} took the whole fleet down", p.key(), at
                );
            }
        }
    }
}
