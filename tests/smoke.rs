//! Workspace-wiring smoke test: every `prelude` re-export resolves and is
//! usable, and the facade's module re-exports point at the right crates.
//! (The `src/lib.rs` quick-start doctest is the other half of this check
//! and runs as part of `cargo test` automatically.)

use time_protection::prelude::*;

/// Every prelude item is nameable and constructible.
#[test]
fn prelude_reexports_resolve() {
    // tp_sim re-exports.
    let _: Platform = Platform::Haswell;
    let _: Platform = Platform::Sabre;
    let colors: ColorSet = ColorSet::range(0, 4);
    assert_eq!(colors.count(), 4);
    let va: VAddr = VAddr(0x1000);
    assert_eq!(va.0, 0x1000);

    // tp_core re-exports.
    let raw: ProtectionConfig = ProtectionConfig::raw();
    let prot: ProtectionConfig = ProtectionConfig::protected();
    assert!(!raw.clone_kernel && prot.clone_kernel);
    let _: FlushMode = prot.flush;
    let _: Syscall = Syscall::Yield;
    let _: fn(Platform, ProtectionConfig) -> SystemBuilder = SystemBuilder::new;

    // tp_analysis re-exports.
    let mut d: Dataset = Dataset::new(2);
    for i in 0..60usize {
        d.push(i % 2, i as f64);
    }
    let verdict = leakage_test(&d, 42);
    assert!(verdict.m.bits >= 0.0);
}

/// The facade's module aliases point at the member crates.
#[test]
fn module_reexports_point_at_member_crates() {
    // Same types reachable through both paths.
    let a = time_protection::sim::Platform::Haswell;
    let b = tp_sim::Platform::Haswell;
    assert_eq!(a.config().cores, b.config().cores);

    assert_eq!(
        time_protection::core::ProtectionConfig::protected().clone_kernel,
        tp_core::ProtectionConfig::protected().clone_kernel
    );
    assert!(time_protection::analysis::Dataset::new(2).is_empty());
    assert!(!time_protection::workloads::all_benchmarks().is_empty());
    // tp_attacks: scenario table is wired.
    let spec = time_protection::attacks::harness::IntraCoreSpec::new(
        Platform::Haswell,
        time_protection::attacks::harness::Scenario::Raw,
        2,
        40,
    );
    assert_eq!(spec.n_symbols, 2);
}

/// A minimal two-domain protected system runs end to end through the
/// prelude API (cut-down version of the crate doctest).
#[test]
fn minimal_protected_system_runs() {
    let mut b = SystemBuilder::new(Platform::Haswell, ProtectionConfig::protected())
        .slice_us(50.0)
        .max_cycles(5_000_000);
    let d0 = b.domain(None);
    let d1 = b.domain(None);
    b.spawn(d0, 0, 100, |env: &mut UserEnv| {
        let (va, _) = env.map_pages(1);
        env.load(va);
    });
    b.spawn(d1, 0, 100, |env: &mut UserEnv| {
        env.compute(100);
    });
    let report = b.run();
    assert_eq!(report.stats.clones, 2, "one cloned kernel per domain");
}
