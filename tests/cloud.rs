//! The `cloud` consolidation scenario at scale, and its executor
//! contract:
//!
//! 1. **Worker-count stability**: the verdicts, datasets and tenant-side
//!    performance numbers of a cloud run are bit-identical whether the
//!    cooperative executor multiplexes the environments over 1 or 4 host
//!    workers (the regression gate for the executor redesign).
//! 2. **Scale**: a 1000-environment cell boots, runs and completes under
//!    the campaign supervisor on a small runner, with a verdict in the
//!    expected direction.

use std::time::Duration;
use tp_bench::cloud::{run_cloud, CloudSpec};
use tp_bench::supervise::{run_cell, CellOutcome};
use tp_core::{ExecMode, ProtectionConfig};
use tp_sim::Platform;

fn small_spec(prot: ProtectionConfig) -> CloudSpec {
    let mut spec = CloudSpec::new(Platform::Haswell, prot, 16);
    spec.samples = 40;
    spec
}

/// The executor's host worker count must be invisible in every reported
/// number: channel dataset, leak verdict, request count and latency
/// percentiles.
#[test]
fn cloud_verdicts_are_stable_across_worker_counts() {
    for prot in [ProtectionConfig::raw(), ProtectionConfig::protected()] {
        let one = run_cloud(&small_spec(prot).with_executor(ExecMode::Coop { workers: 1 }))
            .expect("1-worker run");
        let four = run_cloud(&small_spec(prot).with_executor(ExecMode::Coop { workers: 4 }))
            .expect("4-worker run");
        assert_eq!(
            one.outcome.verdict.leaks, four.outcome.verdict.leaks,
            "leak verdict changed with worker count"
        );
        assert_eq!(
            one.outcome.dataset.outputs(),
            four.outcome.dataset.outputs(),
            "observations changed with worker count"
        );
        assert_eq!(one.completed, four.completed);
        assert_eq!(one.p50_us.to_bits(), four.p50_us.to_bits());
        assert_eq!(one.p95_us.to_bits(), four.p95_us.to_bits());
        assert_eq!(one.throughput_rps.to_bits(), four.throughput_rps.to_bits());
    }
}

/// A 1000-tenant consolidation cell — 1008 simulated environments over
/// however many host cores the runner has — completes under the campaign
/// supervisor's deadline machinery with a healthy outcome. Sample count
/// is kept minimal: this pins scale, not statistics.
#[test]
fn thousand_environment_cell_completes_under_supervisor() {
    let report = run_cell(
        "cloud-scale",
        Platform::Haswell.key(),
        None,
        Duration::from_secs(570),
        || {
            let mut spec = CloudSpec::new(Platform::Haswell, ProtectionConfig::raw(), 1000);
            spec.samples = 12;
            let r = run_cloud(&spec)?;
            assert!(r.completed > 0, "no tenant requests completed at scale");
            Ok(vec![tp_bench::campaign::ChannelResult {
                channel: "cloud",
                mechanism: "raw",
                metric: "M_mb",
                value: r.outcome.verdict.m.millibits(),
                baseline: r.outcome.verdict.m0_millibits(),
                leaks: r.outcome.verdict.leaks,
                samples: r.outcome.dataset.len(),
            }])
        },
    );
    assert_eq!(report.outcome, CellOutcome::Ok, "{:?}", report.error);
    assert_eq!(report.attempts, 1, "healthy cell must not retry");
    let channels = report.channels.expect("Ok report carries channels");
    assert!(channels[0].samples > 0, "empty aggregate dataset");
}

/// The campaign registry carries the cloud experiment on every platform.
#[test]
fn cloud_is_registered_everywhere() {
    let reg = tp_bench::campaign::registry();
    let def = reg
        .iter()
        .find(|d| d.name == "cloud")
        .expect("cloud experiment registered");
    for p in Platform::ALL {
        assert!((def.supports)(p), "{} unsupported", p.key());
    }
}
