//! Tour of the platform registry: print every registered platform's
//! geometry-derived facts and run one quick covert-channel measurement
//! on each, demonstrating that experiments scale to new hardware
//! descriptions without a line of per-platform code.
//!
//! ```sh
//! cargo run --release --example platform_matrix
//! ```

use time_protection::attacks::harness::{IntraCoreSpec, Scenario};
use time_protection::attacks::{cache, tlbchan};
use time_protection::prelude::*;

fn main() {
    println!("registered platforms ({}):\n", Platform::ALL.len());
    for p in Platform::ALL {
        let cfg: PlatformConfig = p.config();
        assert!(cfg.validate().is_empty(), "registry entry must validate");
        println!(
            "{:14} key={:8} {} cores @ {:.1} GHz, {} partition colours, \
             L2 probe {} sets / {} µs slice, TLB probe {} pages",
            p.name(),
            p.key(),
            cfg.cores,
            cfg.freq_mhz as f64 / 1000.0,
            cfg.partition_colors(),
            cache::l2_probe_sets(&cfg),
            cache::l2_slice_us(&cfg),
            tlbchan::tlb_probe_pages(&cfg),
        );
    }

    println!("\nraw vs protected L1-D channel on every platform:\n");
    for p in Platform::ALL {
        let raw = cache::try_l1d_channel(&IntraCoreSpec::new(p, Scenario::Raw, 8, 60))
            .expect("sim run failed");
        let prot = cache::try_l1d_channel(&IntraCoreSpec::new(p, Scenario::Protected, 8, 60))
            .expect("sim run failed");
        println!(
            "{:14} raw: {}\n{:14} prot: {}",
            p.key(),
            raw.summary(),
            "",
            prot.summary()
        );
    }
}
