//! The §5.3.5 interrupt channel: a Trojan leaks by programming when a
//! timer interrupt lands inside the spy's time slice. `Kernel_SetInt`
//! partitioning (Requirement 5) keeps foreign interrupts masked until the
//! owning kernel is next active.
//!
//! Run with: `cargo run --release --example interrupt_partitioning`

use time_protection::attacks::interrupt::{paper_spec, try_interrupt_channel, TIMER_VALUES_MS};
use time_protection::prelude::*;
use tp_analysis::ChannelMatrix;

fn main() {
    println!(
        "Trojan arms a one-shot timer to fire {:?} ms after its slice starts",
        TIMER_VALUES_MS
    );
    println!("(10 ms tick, so 3-7 ms into the spy's slice), then sleeps.\n");

    let raw =
        try_interrupt_channel(&paper_spec(Platform::Haswell, false, 150)).expect("sim run failed");
    println!("-- interrupts unpartitioned --");
    if raw.dataset.len() >= 8 {
        let m = ChannelMatrix::from_dataset(&raw.dataset, 40);
        println!("{}", m.render(&["13ms", "14ms", "15ms", "16ms", "17ms"]));
    }
    println!("   {}\n", raw.summary());

    let part =
        try_interrupt_channel(&paper_spec(Platform::Haswell, true, 150)).expect("sim run failed");
    println!("-- interrupts partitioned per kernel image --");
    println!("   {}", part.summary());

    assert!(raw.verdict.leaks, "unpartitioned interrupts must leak");
    assert!(!part.verdict.leaks, "partitioning must close the channel");
    println!("\nIRQ partitioning closed the channel.");
}
