//! The §5.3.1 kernel-image covert channel, end to end: a Trojan encodes
//! symbols in its choice of system call; a receiver in another domain
//! prime&probes the cache sets the shared kernel serves those calls from.
//! Coloured userland alone does not help — only kernel cloning closes the
//! channel.
//!
//! Run with: `cargo run --release --example covert_channel`

use time_protection::attacks::harness::IntraCoreSpec;
use time_protection::attacks::kernel_image::{
    coloured_userland_config, kernel_image_channel, SYMBOLS,
};
use time_protection::prelude::*;
use tp_analysis::ChannelMatrix;

fn main() {
    for (what, prot) in [
        (
            "coloured userland, shared kernel",
            coloured_userland_config(),
        ),
        (
            "full time protection (cloned kernels)",
            ProtectionConfig::protected(),
        ),
    ] {
        let spec = IntraCoreSpec {
            platform: Platform::Haswell,
            prot,
            n_symbols: 4,
            samples: 200,
            slice_us: 50.0,
            seed: 0x5EED,
        };
        let outcome = kernel_image_channel(&spec).expect("simulation");
        println!("== {what} ==");
        if outcome.dataset.len() >= 8 {
            let matrix = ChannelMatrix::from_dataset(&outcome.dataset, 40);
            println!("{}", matrix.render(&SYMBOLS));
        }
        println!("   {}", outcome.summary());
        println!();
    }
    println!("The shared-kernel channel is the reason for Requirement 2:");
    println!("\"each domain must have its private copy of kernel text, stack");
    println!("and (as much as possible) global data.\"");
}
