//! Quickstart: partition a system into two coloured security domains with
//! cloned kernels — the §3.3 "initial process" workflow — and verify the
//! partition holds.
//!
//! Run with: `cargo run --release --example quickstart`

use time_protection::prelude::*;
use tp_sim::color_of_frame;

fn main() {
    // The initial user process separates free memory into coloured pools,
    // clones a kernel for each partition, and starts a child in each.
    let mut b = SystemBuilder::new(Platform::Haswell, ProtectionConfig::protected())
        .slice_us(200.0)
        .max_cycles(100_000_000);
    let alice = b.domain(None); // colours assigned automatically: 0..4
    let bob = b.domain(None); // colours 4..8

    let n_colors = Platform::Haswell.config().partition_colors();

    b.spawn(alice, 0, 100, move |env: &mut UserEnv| {
        let (va, frames) = env.map_pages(16);
        // Every frame this domain can ever get is one of its own colours.
        for f in &frames {
            assert!(env.my_colors().contains(color_of_frame(*f, n_colors)));
        }
        // Do some work: the timing of these accesses can only depend on
        // this domain's own activity.
        let mut cold = 0;
        let mut warm = 0;
        for i in 0..1024u64 {
            cold += env.load(VAddr(va.0 + (i % 1024) * 64));
        }
        for i in 0..1024u64 {
            warm += env.load(VAddr(va.0 + (i % 1024) * 64));
        }
        println!("[alice] cold pass {cold} cycles, warm pass {warm} cycles");
    });

    b.spawn(bob, 0, 100, move |env: &mut UserEnv| {
        let (_, frames) = env.map_pages(16);
        for f in &frames {
            assert!(env.my_colors().contains(color_of_frame(*f, n_colors)));
        }
        println!(
            "[bob]   my colours: {:?}",
            env.my_colors().iter().collect::<Vec<_>>()
        );
    });

    let report = b.run();
    println!(
        "system ran {} cycles; {} domain switches, {} cycles spent flushing on-core state",
        report.cycles[0], report.stats.domain_switches, report.stats.flush_cycles
    );
    println!("kernel clones performed at boot: {}", report.stats.clones);
    assert_eq!(report.stats.clones, 2, "one cloned kernel per domain");
}
