//! The §5.3.3 cloud scenario: a victim VM decrypts with ElGamal while a
//! co-resident spy on another core prime&probes the shared LLC set holding
//! the victim's square function, recovering the private exponent bit by
//! bit (Liu et al. [2015]). Cache colouring partitions the LLC and defeats
//! the attack.
//!
//! Run with: `cargo run --release --example cloud_sidechannel`

use time_protection::attacks::llc::llc_attack;
use time_protection::prelude::*;

fn main() {
    println!("victim: ElGamal decryption (square-and-multiply) on core 1");
    println!("spy:    LLC prime&probe on core 0\n");

    let raw = llc_attack(ProtectionConfig::raw(), 6_000, 42);
    println!("-- unmitigated --");
    println!("  eviction set: {} lines", raw.eviction_set_size);
    println!(
        "  victim activity observed: {}, {} key bits recovered, accuracy {:.1}%",
        raw.activity_detected,
        raw.recovered_bits.len(),
        raw.accuracy * 100.0
    );
    let lats: Vec<f64> = raw.trace.iter().map(|&(_, l)| l as f64).collect();
    if !lats.is_empty() {
        let floor = tp_analysis::stats::percentile(&lats, 20.0);
        print!("  probe trace (first 120): ");
        for &(_, l) in raw.trace.iter().take(120) {
            print!("{}", if (l as f64) > floor + 120.0 { '#' } else { '.' });
        }
        println!();
    }

    let prot = llc_attack(ProtectionConfig::protected(), 3_000, 42);
    println!("\n-- with time protection (LLC partitioned by colour) --");
    println!(
        "  eviction set: {} lines (the spy cannot reach the victim's colours)",
        prot.eviction_set_size
    );
    println!(
        "  victim activity observed: {}, accuracy {:.1}%",
        prot.activity_detected,
        prot.accuracy * 100.0
    );

    assert!(raw.accuracy > 0.9, "the unmitigated attack should succeed");
    assert!(
        !prot.activity_detected || prot.accuracy < 0.6,
        "colouring should defeat the attack"
    );
    println!("\ncolouring closed the side channel.");
}
