//! The cloud consolidation scenario end to end.
//!
//! Part 1 is the paper's headline cross-core attack (§5.3.3): a victim VM
//! decrypts with ElGamal while a co-resident spy on another core
//! prime&probes the shared LLC set holding the victim's square function,
//! recovering the private exponent bit by bit (Liu et al. [2015]). Cache
//! colouring partitions the LLC and defeats the attack.
//!
//! Part 2 scales co-residency up to the consolidated fleet the paper's
//! introduction motivates: ~100 tenant domains time-sharing one core
//! under an open-loop request load, with embedded attacker pairs probing
//! the L1-D across slice boundaries. `tp_bench::cloud` reports the
//! aggregate leak verdict *and* what the defence costs the tenants in
//! throughput and tail latency.
//!
//! Run with: `cargo run --release --example cloud_sidechannel`

use time_protection::attacks::llc::try_llc_attack;
use time_protection::prelude::*;
use tp_bench::cloud::{run_cloud, CloudSpec};
use tp_bench::util::Table;

fn main() {
    println!("== part 1: one co-resident pair, cross-core LLC attack ==\n");
    println!("victim: ElGamal decryption (square-and-multiply) on core 1");
    println!("spy:    LLC prime&probe on core 0\n");

    let raw = try_llc_attack(ProtectionConfig::raw(), 6_000, 42).expect("sim run failed");
    println!("-- unmitigated --");
    println!("  eviction set: {} lines", raw.eviction_set_size);
    println!(
        "  victim activity observed: {}, {} key bits recovered, accuracy {:.1}%",
        raw.activity_detected,
        raw.recovered_bits.len(),
        raw.accuracy * 100.0
    );
    let lats: Vec<f64> = raw.trace.iter().map(|&(_, l)| l as f64).collect();
    if !lats.is_empty() {
        let floor = tp_analysis::stats::percentile(&lats, 20.0);
        print!("  probe trace (first 120): ");
        for &(_, l) in raw.trace.iter().take(120) {
            print!("{}", if (l as f64) > floor + 120.0 { '#' } else { '.' });
        }
        println!();
    }

    let prot = try_llc_attack(ProtectionConfig::protected(), 3_000, 42).expect("sim run failed");
    println!("\n-- with time protection (LLC partitioned by colour) --");
    println!(
        "  eviction set: {} lines (the spy cannot reach the victim's colours)",
        prot.eviction_set_size
    );
    println!(
        "  victim activity observed: {}, accuracy {:.1}%",
        prot.activity_detected,
        prot.accuracy * 100.0
    );

    assert!(raw.accuracy > 0.9, "the unmitigated attack should succeed");
    assert!(
        !prot.activity_detected || prot.accuracy < 0.6,
        "colouring should defeat the attack"
    );
    println!("\ncolouring closed the side channel.");

    println!("\n== part 2: a consolidated tenant fleet on one core ==\n");
    let tenants = 96;
    println!(
        "{tenants} tenant domains + 4 embedded attacker pairs, open-loop \
         requests (exponential arrivals, Pareto service times)\n"
    );

    let mut table = Table::new(&[
        "mechanism",
        "verdict",
        "M (mb)",
        "M0 (mb)",
        "req/s",
        "p50 (us)",
        "p95 (us)",
    ]);
    let mut verdicts = Vec::new();
    for (mech, prot) in [
        ("raw", ProtectionConfig::raw()),
        ("protected", ProtectionConfig::protected()),
    ] {
        let spec = CloudSpec::new(tp_sim::Platform::Haswell, prot, tenants);
        let r = run_cloud(&spec).expect("cloud run failed");
        table.row(&[
            mech.to_string(),
            if r.outcome.verdict.leaks {
                "LEAK".into()
            } else {
                "closed".into()
            },
            format!("{:.1}", r.outcome.verdict.m.millibits()),
            format!("{:.1}", r.outcome.verdict.m0_millibits()),
            format!("{:.0}", r.throughput_rps),
            format!("{:.0}", r.p50_us),
            format!("{:.0}", r.p95_us),
        ]);
        verdicts.push((mech, r.outcome.verdict.leaks));
    }
    println!("{}", table.render());
    println!(
        "aggregate co-resident leakage across all pairs; throughput and \
         sojourn percentiles are the tenants' side of the trade-off."
    );

    assert_eq!(verdicts[0], ("raw", true), "raw fleet should leak");
    assert_eq!(
        verdicts[1],
        ("protected", false),
        "protected fleet should be closed"
    );
    println!("\ntime protection closed the consolidated fleet's channels too.");
}
