//! Offline, API-compatible subset of
//! [`proptest`](https://crates.io/crates/proptest), vendored so the
//! workspace builds without network access to a registry.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert*` macros, [`any`], range and tuple
//! strategies, and [`collection::vec`]. Each test runs
//! `PROPTEST_CASES` (default 64) deterministic random cases. Unlike
//! upstream proptest there is **no shrinking**: a failing case reports the
//! case index and seed so it can be replayed, but is not minimised.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod sample;

/// Deterministic SplitMix64 stream driving strategy sampling.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for test-case number `case` (deterministic).
    #[must_use]
    pub fn for_case(case: u64) -> Self {
        TestRng {
            state: 0x5EED_0F7E_57AB_1E00 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot sample empty index range");
        (self.next_u64() % bound as u64) as usize
    }
}

/// Number of cases each property runs (`PROPTEST_CASES`, default 64).
#[must_use]
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Drop guard used by [`proptest!`]: if the property body panics, prints
/// which case failed so the run can be replayed (cases are deterministic
/// by index — rerun the test and case `n` regenerates the same inputs).
#[derive(Debug)]
pub struct CaseReporter {
    case: u64,
}

impl CaseReporter {
    /// Guard for test-case number `case`.
    #[must_use]
    pub fn new(case: u64) -> Self {
        CaseReporter { case }
    }
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: property failed on case {} (deterministic; \
                 rerunning the test reproduces it)",
                self.case
            );
        }
    }
}

/// A source of random test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "anything" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        (rng.next_f64() - 0.5) * 2e12
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing unconstrained values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

macro_rules! impl_strategy_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = u128::from(rng.next_u64()) % span;
                (lo as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = self.start;
                let span = (<$t>::MAX as i128 - lo as i128) as u128 + 1;
                let v = u128::from(rng.next_u64()) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);

/// The usual imports for property tests.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` running [`cases`] deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases();
                for case in 0..cases {
                    let __proptest_report = $crate::CaseReporter::new(case);
                    let mut __proptest_rng = $crate::TestRng::for_case(case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)+
                    let run = || -> () { $body };
                    run();
                    drop(__proptest_report);
                }
            }
        )*
    };
}

/// Assert within a property; identical to `assert!` here (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property; identical to `assert_eq!` here.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property; identical to `assert_ne!` here.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges stay in bounds and tuples compose.
        #[test]
        fn range_and_tuple_strategies(
            (a, b) in (0u64..10, -4i64..4),
            x in 0.5f64..1.5,
            flag in any::<bool>(),
        ) {
            prop_assert!(a < 10);
            prop_assert!((-4..4).contains(&b));
            prop_assert!((0.5..1.5).contains(&x));
            prop_assert_eq!(u64::from(flag) < 2, true);
        }

        /// collection::vec respects the size range.
        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u32..100, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 100));
        }
    }

    #[test]
    fn cases_is_positive() {
        assert!(super::cases() > 0);
    }
}
