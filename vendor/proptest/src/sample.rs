//! Strategies for sampling from explicit value sets, mirroring upstream
//! `proptest::sample`.

use crate::{Strategy, TestRng};

/// Strategy that picks uniformly from a fixed list of values.
///
/// Mirrors `proptest::sample::select`: the options are cloned out on each
/// draw, so `T: Clone` is required.
#[derive(Clone, Debug)]
pub struct Select<T> {
    options: Vec<T>,
}

/// Pick uniformly from `options` (any `Vec`-convertible collection, e.g.
/// an array like `Platform::ALL`). Panics at sample time if empty.
pub fn select<T: Clone>(options: impl Into<Vec<T>>) -> Select<T> {
    Select {
        options: options.into(),
    }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.options[rng.index(self.options.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_draws_every_option() {
        let s = select([1u8, 2, 3, 4]);
        let mut rng = TestRng::for_case(7);
        let mut seen = [false; 5];
        for _ in 0..256 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true, true]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn select_empty_panics() {
        let s = select(Vec::<u8>::new());
        let mut rng = TestRng::for_case(0);
        let _ = s.sample(&mut rng);
    }
}
