//! Collection strategies: [`vec()`].

use crate::{Strategy, TestRng};

/// A range of collection sizes, convertible from `usize` ranges.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Smallest size produced (inclusive).
    pub min: usize,
    /// Largest size produced (exclusive).
    pub max: usize,
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: r.end().saturating_add(1),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

/// The strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.max - self.size.min;
        let len = self.size.min + if span == 0 { 0 } else { rng.index(span) };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A strategy producing `Vec`s of `element` with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
