//! Offline, API-compatible subset of
//! [`parking_lot`](https://crates.io/crates/parking_lot), vendored so the
//! workspace builds without network access to a registry.
//!
//! Backed by `std::sync` primitives. The two behavioural properties the
//! workspace relies on are preserved:
//!
//! * [`Mutex::lock`] returns the guard directly (no `Result`) and
//! * poisoning is ignored — a panicking holder does not poison the lock,
//!   matching `parking_lot` semantics. The simulator engine parks user
//!   threads on a [`Condvar`] and must keep running when one panics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            lock: &self.inner,
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Acquire the lock only if it is immediately available.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                lock: &self.inner,
                inner: Some(g),
            }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                lock: &self.inner,
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the `&mut` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` is a re-borrow slot for [`Condvar::wait`], which must
/// temporarily surrender the underlying std guard; it is `Some` at every
/// point user code can observe.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a std::sync::Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> MutexGuard<'_, T> {
    /// Temporarily release the lock while `f` runs, re-acquiring it before
    /// returning (mirrors `parking_lot::MutexGuard::unlocked`).
    ///
    /// The guard is unusable *inside* `f` — the borrow checker already
    /// enforces that, since `f` captures nothing from the guard — and is
    /// fully re-armed afterwards. Used by the cooperative executor to park
    /// a coroutine without holding the simulation lock across the suspend.
    pub fn unlocked<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let inner = self
            .inner
            .take()
            .expect("guard present outside Condvar::wait");
        drop(inner);
        let r = f();
        self.inner = Some(self.lock.lock().unwrap_or_else(PoisonError::into_inner));
        r
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block the current thread until notified, atomically releasing and
    /// re-acquiring the guard's lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard
            .inner
            .take()
            .expect("guard present outside Condvar::wait");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Block like [`Condvar::wait`], but give up after `dur`.
    ///
    /// Returns `true` if the thread was notified before the timeout and
    /// `false` if the wait timed out. (The real `parking_lot` returns a
    /// `WaitTimeoutResult`; a bool keeps the stub minimal while exposing the
    /// one bit callers need.) Spurious wakeups are possible either way, so
    /// callers must re-check their predicate.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, dur: std::time::Duration) -> bool {
        let inner = guard
            .inner
            .take()
            .expect("guard present outside Condvar::wait_for");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, dur)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        !result.timed_out()
    }

    /// Wake all threads blocked on this condition variable.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wake one thread blocked on this condition variable.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out_and_keeps_guard_usable() {
        let pair = (Mutex::new(0u32), Condvar::new());
        let mut g = pair.0.lock();
        let notified = pair
            .1
            .wait_for(&mut g, std::time::Duration::from_millis(10));
        assert!(!notified, "nothing notified; wait must time out");
        *g += 1; // guard must still deref after the timed-out wait
        assert_eq!(*g, 1);
    }

    #[test]
    fn wait_for_sees_notification() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                // Generous timeout: the test only needs "eventually wakes".
                cv.wait_for(&mut g, std::time::Duration::from_secs(30));
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn unlocked_releases_and_reacquires() {
        let m = Arc::new(Mutex::new(0u32));
        let mut g = m.lock();
        *g = 1;
        let m2 = Arc::clone(&m);
        g.unlocked(move || {
            // The lock must be free while the closure runs.
            let mut inner = m2.try_lock().expect("lock released inside unlocked()");
            *inner += 1;
        });
        // And re-held (and usable) afterwards.
        assert_eq!(*g, 2);
        *g += 1;
        drop(g);
        assert_eq!(*m.lock(), 3);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
