//! Offline, API-inspired subset of [`rayon`](https://crates.io/crates/rayon),
//! vendored so the workspace builds without network access to a registry.
//!
//! Instead of rayon's work-stealing pool and parallel-iterator traits, this
//! stub provides a small deterministic fan-out surface on top of
//! [`std::thread::scope`]:
//!
//! * [`par_map`] / [`par_map_indexed`] — apply a function to every element
//!   of a slice (or index range) concurrently and return the results **in
//!   input order**, regardless of how work was scheduled;
//! * [`join`] — run two closures concurrently and return both results;
//! * [`current_num_threads`] / [`set_num_threads`] — the worker count.
//!
//! The worker count resolves, in order, from the last [`set_num_threads`]
//! call, the `TP_THREADS` environment variable (this workspace's knob,
//! documented next to `TP_SAMPLES`), upstream rayon's `RAYON_NUM_THREADS`,
//! and finally [`std::thread::available_parallelism`]. A count of 1 runs
//! everything inline on the caller's thread.
//!
//! Callers are expected to make each work item independent and internally
//! seeded (the workspace derives per-item RNGs from a master seed), so
//! results are bit-identical for every thread count — the scheduling only
//! decides wall-clock time, never values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Explicit thread-count override; 0 means "not set".
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Set the worker count used by subsequent [`par_map`] calls.
///
/// `0` clears the override (fall back to the environment / detected
/// parallelism). Unlike upstream rayon's pool builder this may be called at
/// any time; it only affects scheduling, never results.
pub fn set_num_threads(n: usize) {
    NUM_THREADS.store(n, Ordering::Relaxed);
}

/// The worker count [`par_map`] would use right now.
#[must_use]
pub fn current_num_threads() -> usize {
    let explicit = NUM_THREADS.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    for var in ["TP_THREADS", "RAYON_NUM_THREADS"] {
        if let Some(n) = std::env::var(var)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Run `a` and `b` concurrently; return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon-stub: join worker panicked");
        (ra, rb)
    })
}

/// Apply `f` to every element of `items` concurrently; results come back in
/// input order.
///
/// Work items are handed out one at a time from a shared counter, so uneven
/// item costs still balance across workers. With one worker (or one item)
/// everything runs inline on the caller's thread.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

/// Apply `f` to every index in `0..n` concurrently; results come back in
/// index order. The `par_map` engine, usable without materialising inputs.
pub fn par_map_indexed<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = current_num_threads().min(n).max(1);
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let v = f(i);
                *slots[i].lock().expect("rayon-stub: slot poisoned") = Some(v);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("rayon-stub: slot poisoned")
                .expect("rayon-stub: missing result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let items: Vec<u64> = (0..100).collect();
        let golden: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(0x9E37_79B9)).collect();
        for n in [1, 2, 8] {
            set_num_threads(n);
            assert_eq!(par_map(&items, |&x| x.wrapping_mul(0x9E37_79B9)), golden);
        }
        set_num_threads(0);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map_indexed(1, |i| i + 1), vec![1]);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
