//! Offline, API-compatible subset of
//! [`criterion`](https://crates.io/crates/criterion), vendored so the
//! workspace builds without network access to a registry.
//!
//! Provides the macro/type surface the workspace's benches use
//! ([`criterion_group!`], [`criterion_main!`], [`Criterion`],
//! `benchmark_group`, `Bencher::iter`) with a simple adaptive wall-clock
//! timer instead of criterion's statistical machinery: each benchmark is
//! warmed up, then timed over enough iterations to fill a measurement
//! window, and the mean ns/iter is printed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run `f` as the benchmark `name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks (`group/name` reporting).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is adaptive.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the measurement window is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run `f` as the benchmark `group/name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Times the measured routine.
#[derive(Debug, Default)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time repeated calls of `routine`.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: also calibrates the per-iteration cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < WARMUP && warmup_iters < MAX_ITERS {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters.max(1) as f64;
        let target = ((MEASURE.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, MAX_ITERS);

        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters_done = target;
    }
}

const WARMUP: Duration = Duration::from_millis(30);
const MEASURE: Duration = Duration::from_millis(120);
const MAX_ITERS: u64 = 10_000_000;

fn run_one<F>(name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher::default();
    f(&mut b);
    let ns = if b.iters_done == 0 {
        0.0
    } else {
        b.elapsed.as_secs_f64() * 1e9 / b.iters_done as f64
    };
    println!("{name:<40} {ns:>12.1} ns/iter  ({} iters)", b.iters_done);
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial_add", |b| {
            b.iter(|| black_box(1u64) + black_box(2u64))
        });
        let mut g = c.benchmark_group("group");
        g.sample_size(10);
        g.bench_function("noop", |b| b.iter(|| ()));
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        trivial(&mut c);
    }
}
