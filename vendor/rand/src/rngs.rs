//! Concrete generators: [`StdRng`].

use crate::{RngCore, SeedableRng};

/// One SplitMix64 step, used to expand seeds.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Upstream `rand`'s `StdRng` is ChaCha-based; this stand-in produces a
/// different (but statistically strong) stream with the same API. All
/// workspace code seeds it explicitly, so runs remain bit-reproducible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // Never allow the all-zero state xoshiro cannot escape.
        if s == [0; 4] {
            return Self::seed_from_u64(0);
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}
