//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 surface), vendored so the workspace builds without network
//! access to a registry.
//!
//! Only the API actually used by the `time-protection` workspace is
//! provided: [`rngs::StdRng`], the [`Rng`], [`RngCore`] and [`SeedableRng`]
//! traits, and [`seq::SliceRandom`]. The generator is **xoshiro256++**
//! seeded via SplitMix64 — statistically strong and fully deterministic,
//! which is all the simulator needs (it never claims cryptographic
//! strength). Streams differ from upstream `rand`'s ChaCha-based `StdRng`,
//! but every consumer in this workspace treats the stream as opaque seeded
//! noise, so only statistical quality matters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// Low-level uniform random source: the only method implementors must
/// provide is [`RngCore::next_u64`].
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a deterministic generator from a seed.
pub trait SeedableRng: Sized {
    /// The per-generator seed type.
    type Seed;

    /// Build a generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build a generator from a 64-bit convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Values that can be sampled from a uniform bit stream, backing
/// [`Rng::gen`]. (Mirrors `rand`'s `Standard` distribution.)
pub trait Sample {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Convert 64 random bits into a double uniform in `[0, 1)`.
#[inline]
fn f64_from_bits(bits: u64) -> f64 {
    // 53 mantissa bits of precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Sample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64_from_bits(rng.next_u64())
    }
}

impl Sample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// Ranges a uniform value of type `T` can be drawn from, backing
/// [`Rng::gen_range`]. Generic over `T` (rather than via an associated
/// type) so inference can flow from the call site's expected value type
/// back into untyped range literals, as with upstream `rand`.
pub trait SampleRange<T> {
    /// Draw one value from `rng` uniformly within `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = u128::from(rng.next_u64()) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64_from_bits(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the full uniform distribution.
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..4.0);
            assert!((-2.0..4.0).contains(&f));
            let i = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
