//! # time-protection
//!
//! A full reproduction of *Time Protection: The Missing OS Abstraction*
//! (Ge, Yarom, Chothia, Heiser — EuroSys 2019) as a Rust workspace:
//!
//! * [`sim`] — a deterministic micro-architectural timing simulator
//!   (caches, TLBs, branch predictors, prefetchers, sliced LLC, bus) of the
//!   paper's two platforms;
//! * [`core`] — an seL4-style microkernel model with the paper's
//!   time-protection mechanisms: kernel clone, cache colouring, on-core
//!   flush, switch padding, deterministic shared-data access and interrupt
//!   partitioning;
//! * [`analysis`] — the §5.1 measurement methodology (KDE, continuous
//!   mutual information, the zero-leakage shuffle test);
//! * [`attacks`] — every timing channel of §5.3;
//! * [`workloads`] — the Splash-2-style performance study of §5.4.
//!
//! See `README.md` for a tour, `DESIGN.md` for the architecture and
//! experiment index, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Quick start
//!
//! ```
//! use time_protection::prelude::*;
//!
//! // Build a two-domain system with full time protection and run a
//! // program in each domain.
//! let mut b = SystemBuilder::new(Platform::Haswell, ProtectionConfig::protected())
//!     .slice_us(100.0)
//!     .max_cycles(20_000_000);
//! let d0 = b.domain(None);
//! let d1 = b.domain(None);
//! b.spawn(d0, 0, 100, |env: &mut UserEnv| {
//!     let (va, _) = env.map_pages(4);
//!     for i in 0..256 {
//!         env.load(tp_sim::VAddr(va.0 + i * 64));
//!     }
//!     // Sit through a couple of preemptions (the other domain runs in
//!     // between, with the full domain-switch path on each boundary).
//!     env.wait_preempt();
//!     env.wait_preempt();
//! });
//! b.spawn_daemon(d1, 0, 100, |env: &mut UserEnv| loop {
//!     env.compute(1_000);
//! });
//! let report = b.run();
//! assert_eq!(report.stats.clones, 2);
//! assert!(report.stats.domain_switches > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tp_analysis as analysis;
pub use tp_attacks as attacks;
pub use tp_core as core;
pub use tp_sim as sim;
pub use tp_workloads as workloads;

/// The most commonly used types, re-exported.
pub mod prelude {
    pub use tp_analysis::{leakage_test, Dataset};
    pub use tp_core::{FlushMode, ProtectionConfig, Syscall, SystemBuilder, UserEnv};
    pub use tp_sim::{ColorSet, Platform, PlatformConfig, VAddr};
}
