//! # tp-workloads — Splash-2-style workloads for the colouring cost study
//!
//! §5.4.4 evaluates the performance cost of cache colouring with the
//! Splash-2 suite. We reproduce the study with synthetic workload
//! generators: each benchmark is characterised by the properties that
//! govern cache-share sensitivity — working-set size, spatial locality
//! (stride pattern), temporal reuse, and compute/memory ratio — calibrated
//! to the suite's qualitative behaviour (e.g. `raytrace` has a large,
//! low-locality working set and suffers most from a halved cache; `radix`
//! streams with little reuse and barely notices).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;
pub mod splash2;

pub use perf::{run_workload, PerfResult, WorkloadRun};
pub use splash2::{all_benchmarks, Benchmark};
