//! The performance runner for the colouring studies (Figure 7, Table 8).
//!
//! A run executes one benchmark to completion in a domain with a restricted
//! colour allocation, on a standard or cloned kernel, optionally
//! time-sharing the core with an idle domain (whose idle slots exercise the
//! full domain-switch path, including flushing and padding). The result is
//! the benchmark's completion time in cycles; slowdowns are computed
//! against a 100%-colour baseline by the bench harness.

use crate::splash2::Benchmark;
use parking_lot::Mutex;
use std::sync::Arc;
use tp_core::{ProtectionConfig, SimError, SimErrorKind, SystemBuilder, UserEnv};
use tp_sim::{ColorSet, Platform};

/// Configuration of one workload run.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// Platform.
    pub platform: Platform,
    /// Protection configuration (raw = "base", protected = "clone" cases).
    pub prot: ProtectionConfig,
    /// Colour share as a fraction (numerator, denominator), e.g. (1, 2)
    /// for 50% of the colours.
    pub colors: (u64, u64),
    /// Whether to time-share the core with an idle domain.
    pub time_shared: bool,
    /// Preemption slice in microseconds.
    pub slice_us: f64,
    /// Accesses to execute.
    pub ops: usize,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadRun {
    /// A single-domain run with the given colour share.
    #[must_use]
    pub fn solo(platform: Platform, prot: ProtectionConfig, colors: (u64, u64)) -> Self {
        WorkloadRun {
            platform,
            prot,
            colors,
            time_shared: false,
            slice_us: 1_000.0,
            ops: 120_000,
            seed: 0xBE7C,
        }
    }

    /// A run time-shared with an idle domain (Table 8). Time-shared runs
    /// measure **per-slice throughput** over a fixed number of whole
    /// slices (see [`run_workload`]), so the slice is set short enough
    /// that two measured slices stay comparable in cost to a solo run.
    #[must_use]
    pub fn shared(platform: Platform, prot: ProtectionConfig, colors: (u64, u64)) -> Self {
        WorkloadRun {
            time_shared: true,
            slice_us: 600.0,
            ..WorkloadRun::solo(platform, prot, colors)
        }
    }

    /// Override the access count.
    #[must_use]
    pub fn with_ops(mut self, ops: usize) -> Self {
        self.ops = ops;
        self
    }
}

/// Result of a workload run.
#[derive(Debug, Clone, Copy)]
pub struct PerfResult {
    /// Benchmark completion time in cycles (start to finish on its core,
    /// including any time-shared slots in between).
    pub cycles: u64,
    /// Accesses executed.
    pub ops: usize,
}

impl PerfResult {
    /// Slowdown of `self` relative to a baseline run, compared on a
    /// cycles-per-access basis. For completion-time runs (equal `ops`)
    /// this is the plain completion-time ratio; for slice-throughput runs
    /// (equal `cycles` window) it is the inverse throughput ratio. Either
    /// way it is immune to the two runs spanning different numbers of
    /// time slices.
    #[must_use]
    pub fn slowdown_vs(&self, base: PerfResult) -> f64 {
        let own = self.cycles as f64 / self.ops as f64;
        let b = base.cycles as f64 / base.ops as f64;
        own / b - 1.0
    }
}

/// Execute a benchmark under the given configuration.
///
/// # Errors
/// Returns the [`SimError`] if the simulation fails or the benchmark makes
/// no measurable progress.
pub fn run_workload(bench: &Benchmark, run: &WorkloadRun) -> Result<PerfResult, SimError> {
    let cfg = run.platform.config();
    let n_colors = cfg.partition_colors();
    let share = (n_colors * run.colors.0 / run.colors.1).max(1);

    // RAM sized to the workloads (the largest working set is 600 pages
    // plus kernel objects): pool carving scans every frame per domain, so
    // an oversized pool is pure per-run setup cost.
    let mut b = SystemBuilder::new(run.platform, run.prot)
        .seed(run.seed)
        .slice_us(run.slice_us)
        .ram_frames(16_384)
        .max_cycles(40_000_000_000);
    let d_bench = b.domain_sized(Some(ColorSet::range(0, share)), 6_000);
    let d_idle = if run.time_shared {
        // The idle domain takes the complementary colours (or shares the
        // full set when uncoloured).
        let idle_colors = if run.prot.color_userland && share < n_colors {
            ColorSet::range(share, n_colors)
        } else {
            ColorSet::all(n_colors)
        };
        Some(b.domain_sized(Some(idle_colors), 256))
    } else {
        None
    };

    // Completion-time runs report (t1 - t0, ops); slice-throughput runs
    // report (measured window, ops completed).
    let outcome: Arc<Mutex<(u64, u64)>> = Arc::new(Mutex::new((0, 0)));
    let outcome2 = Arc::clone(&outcome);
    let bench2 = *bench;
    let ops = run.ops;
    let seed = run.seed;
    let time_shared = run.time_shared;
    let slice_cy = cfg.us_to_cycles(run.slice_us);
    b.spawn(d_bench, 0, 100, move |env: &mut UserEnv| {
        let (base, _) = env.map_pages(bench2.ws_pages);
        // Warm-up: touch every page once (deterministic paging-in — a
        // random warm-up could miss pages) plus a short pattern pass to
        // settle the hot set.
        let touch: Vec<(tp_sim::VAddr, bool)> = (0..bench2.ws_pages as u64)
            .map(|p| (tp_sim::VAddr(base.0 + p * tp_sim::FRAME_SIZE), false))
            .collect();
        let _ = env.access_sweep(&touch, 0);
        let _ = bench2.execute(env, base, bench2.ws_pages, seed ^ 1);
        if time_shared {
            // Slice-throughput measurement: count accesses completed in a
            // fixed number of *whole* slices. A completion-time span a few
            // slices long is quantised by whether it spills into one more
            // idle slot — an artifact that dwarfed the protection cost it
            // was meant to measure. Per-slice throughput has no such
            // cliff: the switch work, padding and post-switch cold misses
            // all shorten the usable slice, which is exactly the cost
            // time-sharing adds.
            const ROUNDS: u64 = 1;
            const CHUNK: usize = 256;
            let mut done = 0u64;
            for r in 0..ROUNDS {
                let _ = env.wait_preempt(); // align to a fresh slice
                let t0 = env.now();
                let mut chunk = 0u64;
                while env.now() - t0 < slice_cy {
                    let _ = bench2.execute(env, base, CHUNK, seed ^ (r * 1009 + chunk));
                    chunk += 1;
                    done += CHUNK as u64;
                }
            }
            *outcome2.lock() = (ROUNDS * slice_cy, done);
        } else {
            let t0 = env.now();
            let _ = bench2.execute(env, base, ops, seed);
            let t1 = env.now();
            *outcome2.lock() = (t1 - t0, ops as u64);
        }
    });
    if let Some(d) = d_idle {
        b.spawn_daemon(d, 0, 100, |env: &mut UserEnv| loop {
            let _ = env.wait_preempt();
        });
    }
    let _ = b.try_run()?;
    let (cycles, done) = *outcome.lock();
    if cycles == 0 || done == 0 {
        return Err(SimError {
            kind: SimErrorKind::ProgramPanic,
            message: format!("benchmark {} did not complete", bench.name),
        });
    }
    Ok(PerfResult {
        cycles,
        ops: done as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splash2::by_name;

    #[test]
    fn halved_cache_slows_cache_hungry_benchmark() {
        let rt = by_name("raytrace").unwrap();
        let base = run_workload(
            &rt,
            &WorkloadRun::solo(Platform::Sabre, ProtectionConfig::raw(), (1, 1)).with_ops(40_000),
        )
        .expect("simulation");
        let half = run_workload(
            &rt,
            &WorkloadRun::solo(Platform::Sabre, ProtectionConfig::raw(), (1, 2)).with_ops(40_000),
        )
        .expect("simulation");
        let slow = half.slowdown_vs(base);
        assert!(
            slow > 0.005,
            "raytrace @50% colours only {:.2}% slower",
            slow * 100.0
        );
        assert!(slow < 0.5, "implausible slowdown {:.2}%", slow * 100.0);
    }

    #[test]
    fn streaming_benchmark_barely_notices() {
        let rx = by_name("radix").unwrap();
        let base = run_workload(
            &rx,
            &WorkloadRun::solo(Platform::Sabre, ProtectionConfig::raw(), (1, 1)).with_ops(40_000),
        )
        .expect("simulation");
        let half = run_workload(
            &rx,
            &WorkloadRun::solo(Platform::Sabre, ProtectionConfig::raw(), (1, 2)).with_ops(40_000),
        )
        .expect("simulation");
        let slow = half.slowdown_vs(base);
        assert!(
            slow.abs() < 0.03,
            "radix should be colour-insensitive, got {:.2}%",
            slow * 100.0
        );
    }

    #[test]
    fn cloned_kernel_adds_little() {
        let lu = by_name("lu").unwrap();
        let base = run_workload(
            &lu,
            &WorkloadRun::solo(Platform::Haswell, ProtectionConfig::raw(), (1, 1)).with_ops(40_000),
        )
        .expect("simulation");
        let cloned = run_workload(
            &lu,
            &WorkloadRun::solo(Platform::Haswell, ProtectionConfig::protected(), (1, 1))
                .with_ops(40_000),
        )
        .expect("simulation");
        let slow = cloned.slowdown_vs(base);
        assert!(
            slow.abs() < 0.05,
            "cloned kernel should be ~free solo, got {:.2}%",
            slow * 100.0
        );
    }

    #[test]
    fn time_sharing_with_protection_costs_a_few_percent() {
        let fft = by_name("fft").unwrap();
        let raw_shared = run_workload(
            &fft,
            &WorkloadRun::shared(Platform::Haswell, ProtectionConfig::raw(), (1, 2))
                .with_ops(60_000),
        )
        .expect("simulation");
        let prot_shared = run_workload(
            &fft,
            &WorkloadRun::shared(Platform::Haswell, ProtectionConfig::protected(), (1, 2))
                .with_ops(60_000),
        )
        .expect("simulation");
        let slow = prot_shared.slowdown_vs(raw_shared);
        assert!(
            slow > -0.02,
            "protection cannot speed things up much: {slow}"
        );
        assert!(
            slow < 0.25,
            "shared protection overhead implausible: {slow}"
        );
    }
}
