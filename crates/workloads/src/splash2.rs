//! Synthetic Splash-2 benchmark descriptors and their access generators.
//!
//! Figure 7 / Table 8 measure how each benchmark responds to a reduced
//! cache share. That response is governed by the benchmark's *hot set*
//! relative to the partitioned cache, its spatial locality and its compute
//! density; the descriptors below encode those properties, qualitatively
//! calibrated to the suite (the paper's §5.4.4 setup runs 220 MiB-heap
//! configurations; working sets here are scaled to the simulated caches).
//! `volrend` is omitted, as in the paper (Linux dependencies).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tp_core::UserEnv;
use tp_sim::{VAddr, FRAME_SIZE};

/// A synthetic benchmark: a parameterised memory-access process.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// Suite name.
    pub name: &'static str,
    /// Total working set in pages.
    pub ws_pages: usize,
    /// Frequently-revisited hot region in pages (the cache-share lever).
    pub hot_pages: usize,
    /// Probability of a sequential next access.
    pub locality: f64,
    /// Probability of a jump back into the hot region.
    pub reuse: f64,
    /// Compute cycles per access.
    pub compute: u64,
    /// Fraction of accesses that are stores.
    pub write_frac: f64,
}

/// The eleven benchmarks of Figure 7.
#[must_use]
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "barnes",
            ws_pages: 200,
            hot_pages: 16,
            locality: 0.55,
            reuse: 0.42,
            compute: 14,
            write_frac: 0.25,
        },
        Benchmark {
            name: "cholesky",
            ws_pages: 240,
            hot_pages: 24,
            locality: 0.60,
            reuse: 0.37,
            compute: 11,
            write_frac: 0.30,
        },
        Benchmark {
            name: "fft",
            ws_pages: 256,
            hot_pages: 28,
            locality: 0.75,
            reuse: 0.22,
            compute: 9,
            write_frac: 0.35,
        },
        Benchmark {
            name: "fmm",
            ws_pages: 200,
            hot_pages: 18,
            locality: 0.60,
            reuse: 0.37,
            compute: 14,
            write_frac: 0.25,
        },
        Benchmark {
            name: "lu",
            ws_pages: 160,
            hot_pages: 24,
            locality: 0.70,
            reuse: 0.28,
            compute: 11,
            write_frac: 0.30,
        },
        Benchmark {
            name: "ocean",
            ws_pages: 400,
            hot_pages: 34,
            locality: 0.65,
            reuse: 0.33,
            compute: 6,
            write_frac: 0.40,
        },
        Benchmark {
            name: "radiosity",
            ws_pages: 240,
            hot_pages: 20,
            locality: 0.50,
            reuse: 0.47,
            compute: 11,
            write_frac: 0.20,
        },
        Benchmark {
            name: "radix",
            ws_pages: 512,
            hot_pages: 8,
            locality: 0.92,
            reuse: 0.05,
            compute: 6,
            write_frac: 0.45,
        },
        Benchmark {
            name: "raytrace",
            ws_pages: 600,
            hot_pages: 130,
            locality: 0.45,
            reuse: 0.50,
            compute: 8,
            write_frac: 0.10,
        },
        Benchmark {
            name: "waternsquared",
            ws_pages: 96,
            hot_pages: 14,
            locality: 0.60,
            reuse: 0.38,
            compute: 16,
            write_frac: 0.25,
        },
        Benchmark {
            name: "waterspatial",
            ws_pages: 120,
            hot_pages: 18,
            locality: 0.65,
            reuse: 0.33,
            compute: 16,
            write_frac: 0.25,
        },
    ]
}

/// Look a benchmark up by name.
#[must_use]
pub fn by_name(name: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

impl Benchmark {
    /// Execute `ops` accesses of this benchmark's pattern against the
    /// environment (the working set must already be mapped at `base`).
    /// Returns the number of accesses issued.
    ///
    /// The address process is purely RNG-driven (no access depends on a
    /// previous access's outcome), so chunks of it are pre-generated and
    /// issued through the environment's batched sweep — one lock/turn
    /// acquisition per chunk instead of two per access. Draw order from
    /// the seeded RNG is unchanged, so the access sequence is identical to
    /// the scalar loop this replaces.
    pub fn execute(&self, env: &mut UserEnv, base: VAddr, ops: usize, seed: u64) -> usize {
        /// Accesses issued per batched sweep (bounds the pre-generated
        /// buffer; a chunk spans several preemption slices at most).
        const CHUNK: usize = 1024;
        let line = env.platform().line;
        let lines_per_page = (FRAME_SIZE / line) as usize;
        let ws_lines = self.ws_pages * lines_per_page;
        let hot_lines = self.hot_pages * lines_per_page;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51A5);
        let mut pos = 0usize;
        let mut batch: Vec<(VAddr, bool)> = Vec::with_capacity(CHUNK.min(ops));
        for _ in 0..ops {
            let r: f64 = rng.gen();
            pos = if r < self.locality {
                (pos + 1) % ws_lines
            } else if r < self.locality + self.reuse {
                rng.gen_range(0..hot_lines.max(1))
            } else {
                rng.gen_range(0..ws_lines)
            };
            let va = VAddr(base.0 + (pos as u64) * line);
            let write = rng.gen::<f64>() < self.write_frac;
            batch.push((va, write));
            if batch.len() == CHUNK {
                env.access_sweep(&batch, self.compute);
                batch.clear();
            }
        }
        if !batch.is_empty() {
            env.access_sweep(&batch, self.compute);
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eleven_benchmarks() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 11);
        assert!(all.iter().all(|b| b.hot_pages <= b.ws_pages));
        assert!(all.iter().all(|b| b.locality + b.reuse < 1.0));
        assert!(by_name("raytrace").is_some());
        assert!(
            by_name("volrend").is_none(),
            "volrend is omitted per §5.4.4"
        );
    }

    #[test]
    fn raytrace_is_the_most_cache_hungry() {
        let all = all_benchmarks();
        let rt = by_name("raytrace").unwrap();
        assert!(all.iter().all(|b| b.hot_pages <= rt.hot_pages));
    }

    #[test]
    fn radix_streams() {
        let rx = by_name("radix").unwrap();
        assert!(rx.locality > 0.9, "radix is a streaming benchmark");
        assert!(rx.reuse < 0.1);
    }
}
