//! Generic set-associative, write-back cache model.
//!
//! All caches in the simulated hierarchy (L1-D, L1-I, L2, the LLC slices)
//! are instances of [`Cache`]. The model tracks per-line validity, dirtiness
//! and recency; the attacks in `tp-attacks` observe it purely through
//! latency, exactly as on real hardware.

use crate::params::CacheGeom;
use rand::rngs::StdRng;
use rand::Rng;

/// Replacement policy for victim selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// Strict least-recently-used.
    Lru,
    /// LRU with occasional random deviations, modelling undocumented
    /// pseudo-LRU hardware. `noise` is the deviation probability in 1/256
    /// units. This is what makes the paper's "manual" L1 flush brittle
    /// (footnote 6): priming a cache-sized buffer does not always evict
    /// every stale line.
    PseudoLru {
        /// Deviation probability in 1/256 units.
        noise: u8,
    },
    /// Uniformly random victim.
    Random,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Recency stamp; larger is more recent.
    stamp: u64,
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Whether a dirty victim line had to be written back.
    pub writeback: bool,
    /// The line address (`tag * sets + set`, in line units) of the evicted
    /// line, if a valid line was evicted. Used to propagate evictions to
    /// outer levels or victims to write-back paths.
    pub evicted: Option<EvictedLine>,
}

/// Description of a line evicted from a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Line address in units of lines (i.e. `paddr / line_size`) for
    /// physically-indexed caches.
    pub line_addr: u64,
    /// Whether the line was dirty.
    pub dirty: bool,
}

/// Aggregate cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Total hits.
    pub hits: u64,
    /// Total misses.
    pub misses: u64,
    /// Dirty lines written back due to eviction or flush.
    pub writebacks: u64,
    /// Lines invalidated by flush operations.
    pub flushed_lines: u64,
}

/// A set-associative cache.
///
/// Indexing is left to the caller: L1 caches are virtually indexed /
/// physically tagged (index from the virtual address), while L2/LLC are
/// physically indexed. The cache itself only sees `(set, tag)` pairs plus a
/// canonical line address used for write-back propagation.
#[derive(Debug, Clone)]
pub struct Cache {
    name: &'static str,
    geom: CacheGeom,
    sets: usize,
    ways: usize,
    lines: Vec<Line>,
    policy: Replacement,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Create an empty cache with the given geometry and policy.
    #[must_use]
    pub fn new(name: &'static str, geom: CacheGeom, policy: Replacement) -> Self {
        let sets = geom.sets() as usize;
        let ways = geom.ways as usize;
        Cache {
            name,
            geom,
            sets,
            ways,
            lines: vec![Line::default(); sets * ways],
            policy,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's name (for diagnostics).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The cache geometry.
    #[must_use]
    pub fn geom(&self) -> CacheGeom {
        self.geom
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Number of ways.
    #[must_use]
    pub fn num_ways(&self) -> usize {
        self.ways
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset statistics (state is untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Access the line `(set, tag)`; on a miss the line is filled, possibly
    /// evicting a victim. `write` marks the line dirty on hit or fill.
    ///
    /// `line_addr` is the canonical line address recorded for evictions.
    ///
    /// # Panics
    /// Panics if `set` is out of range.
    pub fn access(
        &mut self,
        set: usize,
        tag: u64,
        line_addr: u64,
        write: bool,
        rng: &mut StdRng,
    ) -> AccessOutcome {
        assert!(set < self.sets, "{}: set {set} out of range", self.name);
        self.clock += 1;
        let clock = self.clock;
        self.stats.accesses += 1;
        let ways = self.ways;
        let policy = self.policy;
        // One fused pass: probe for a hit (early-out) while tracking the
        // first invalid way and the LRU way, so a miss needs no second
        // scan of the set.
        let slice = {
            let base = set * ways;
            &mut self.lines[base..base + ways]
        };
        let mut invalid_idx = None;
        let mut lru_idx = 0usize;
        let mut lru_stamp = u64::MAX;
        for (i, line) in slice.iter_mut().enumerate() {
            if line.valid {
                if line.tag == tag {
                    line.stamp = clock;
                    line.dirty |= write;
                    self.stats.hits += 1;
                    return AccessOutcome {
                        hit: true,
                        writeback: false,
                        evicted: None,
                    };
                }
                if line.stamp < lru_stamp {
                    lru_stamp = line.stamp;
                    lru_idx = i;
                }
            } else if invalid_idx.is_none() {
                invalid_idx = Some(i);
            }
        }
        self.stats.misses += 1;
        // Miss: choose a victim. An invalid way is always preferred and
        // consumes no randomness; the policies below match the same RNG
        // stream as ever (determinism, Invariant 1).
        let victim_idx = match invalid_idx {
            Some(i) => i,
            None => match policy {
                Replacement::Lru => lru_idx,
                Replacement::PseudoLru { noise } => {
                    if rng.gen::<u8>() < noise {
                        rng.gen_range(0..ways)
                    } else {
                        lru_idx
                    }
                }
                Replacement::Random => rng.gen_range(0..ways),
            },
        };
        let victim = slice[victim_idx];
        let mut outcome = AccessOutcome {
            hit: false,
            writeback: false,
            evicted: None,
        };
        if victim.valid {
            outcome.evicted = Some(EvictedLine {
                line_addr: victim.tag * self.sets as u64 + set as u64,
                dirty: victim.dirty,
            });
            if victim.dirty {
                outcome.writeback = true;
                self.stats.writebacks += 1;
            }
        }
        slice[victim_idx] = Line {
            tag,
            valid: true,
            dirty: write,
            stamp: clock,
        };
        debug_assert_eq!(line_addr % self.sets as u64, set as u64 % self.sets as u64);
        outcome
    }

    /// Probe without filling: returns `true` on a hit (used by inclusive
    /// back-invalidation checks and tests).
    #[must_use]
    pub fn peek(&self, set: usize, tag: u64) -> bool {
        let base = set * self.ways;
        self.lines[base..base + self.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidate the line `(set, tag)` if present; returns whether it was
    /// present and whether it was dirty.
    pub fn invalidate_line(&mut self, set: usize, tag: u64) -> (bool, bool) {
        let base = set * self.ways;
        for line in &mut self.lines[base..base + self.ways] {
            if line.valid && line.tag == tag {
                let dirty = line.dirty;
                line.valid = false;
                line.dirty = false;
                self.stats.flushed_lines += 1;
                if dirty {
                    self.stats.writebacks += 1;
                }
                return (true, dirty);
            }
        }
        (false, false)
    }

    /// Clean-and-invalidate the whole cache (e.g. Arm `DCCISW` over all
    /// sets/ways, or the relevant part of x86 `wbinvd`).
    ///
    /// Returns `(valid_lines, dirty_lines)` — the dirty count drives the
    /// write-back latency that the paper's cache-flush channel (§5.3.4)
    /// modulates.
    pub fn flush_all(&mut self) -> (u64, u64) {
        let mut valid = 0;
        let mut dirty = 0;
        for line in &mut self.lines {
            if line.valid {
                valid += 1;
                if line.dirty {
                    dirty += 1;
                }
                line.valid = false;
                line.dirty = false;
            }
        }
        self.stats.flushed_lines += valid;
        self.stats.writebacks += dirty;
        (valid, dirty)
    }

    /// Invalidate without cleaning (instruction caches have no dirty data).
    ///
    /// Returns the number of valid lines invalidated.
    pub fn invalidate_all(&mut self) -> u64 {
        let (valid, _) = self.flush_all();
        valid
    }

    /// Count of currently valid lines.
    #[must_use]
    pub fn valid_lines(&self) -> u64 {
        self.lines.iter().filter(|l| l.valid).count() as u64
    }

    /// Count of currently dirty lines.
    #[must_use]
    pub fn dirty_lines(&self) -> u64 {
        self.lines.iter().filter(|l| l.valid && l.dirty).count() as u64
    }

    /// Count of valid lines in one set.
    #[must_use]
    pub fn valid_in_set(&self, set: usize) -> u64 {
        let base = set * self.ways;
        self.lines[base..base + self.ways]
            .iter()
            .filter(|l| l.valid)
            .count() as u64
    }
}

/// Compute the set index for a physically indexed cache.
#[must_use]
pub fn phys_set(geom: CacheGeom, paddr: u64) -> usize {
    ((paddr / geom.line) % geom.sets()) as usize
}

/// Compute the tag for a physically indexed cache.
#[must_use]
pub fn phys_tag(geom: CacheGeom, paddr: u64) -> u64 {
    paddr / geom.line / geom.sets()
}

/// Compute the set index for a virtually indexed cache (L1 VIPT).
#[must_use]
pub fn virt_set(geom: CacheGeom, vaddr: u64) -> usize {
    ((vaddr / geom.line) % geom.sets()) as usize
}

/// The tag of a VIPT cache comes from the physical address; we use the full
/// physical line address so aliases are impossible in the model.
#[must_use]
pub fn vipt_tag(geom: CacheGeom, paddr: u64) -> u64 {
    paddr / geom.line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CacheGeom;
    use rand::SeedableRng;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B lines.
        let geom = CacheGeom {
            size: 512,
            ways: 2,
            line: 64,
        };
        Cache::new("t", geom, Replacement::Lru)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        let mut r = rng();
        let out = c.access(0, 1, 4, false, &mut r);
        assert!(!out.hit);
        let out = c.access(0, 1, 4, false, &mut r);
        assert!(out.hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small();
        let mut r = rng();
        c.access(0, 1, 4, false, &mut r);
        c.access(0, 2, 8, false, &mut r);
        // Touch tag 1 so tag 2 is LRU.
        c.access(0, 1, 4, false, &mut r);
        let out = c.access(0, 3, 12, false, &mut r);
        assert!(!out.hit);
        assert_eq!(out.evicted.unwrap().line_addr, 2 * 4);
        assert!(c.peek(0, 1));
        assert!(!c.peek(0, 2));
        assert!(c.peek(0, 3));
    }

    #[test]
    fn dirty_line_writes_back_on_eviction() {
        let mut c = small();
        let mut r = rng();
        c.access(0, 1, 4, true, &mut r);
        c.access(0, 2, 8, false, &mut r);
        let out = c.access(0, 3, 12, false, &mut r);
        assert!(out.writeback, "dirty LRU victim must write back");
        assert!(out.evicted.unwrap().dirty);
    }

    #[test]
    fn flush_reports_dirty_counts() {
        let mut c = small();
        let mut r = rng();
        c.access(0, 1, 4, true, &mut r);
        c.access(1, 1, 5, false, &mut r);
        c.access(2, 9, 38, true, &mut r);
        let (valid, dirty) = c.flush_all();
        assert_eq!(valid, 3);
        assert_eq!(dirty, 2);
        assert_eq!(c.valid_lines(), 0);
        // Idempotent.
        assert_eq!(c.flush_all(), (0, 0));
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        let mut r = rng();
        c.access(0, 1, 4, false, &mut r);
        assert_eq!(c.dirty_lines(), 0);
        c.access(0, 1, 4, true, &mut r);
        assert_eq!(c.dirty_lines(), 1);
    }

    #[test]
    fn invalidate_line_hits_only_target() {
        let mut c = small();
        let mut r = rng();
        c.access(0, 1, 4, true, &mut r);
        c.access(0, 2, 8, false, &mut r);
        let (present, dirty) = c.invalidate_line(0, 1);
        assert!(present && dirty);
        assert!(!c.peek(0, 1));
        assert!(c.peek(0, 2));
        let (present, _) = c.invalidate_line(0, 1);
        assert!(!present);
    }

    #[test]
    fn phys_indexing_helpers() {
        let geom = CacheGeom {
            size: 256 * 1024,
            ways: 8,
            line: 64,
        };
        assert_eq!(geom.sets(), 512);
        assert_eq!(phys_set(geom, 0), 0);
        assert_eq!(phys_set(geom, 64), 1);
        assert_eq!(phys_set(geom, 64 * 512), 0);
        assert_eq!(phys_tag(geom, 64 * 512), 1);
    }

    #[test]
    fn random_policy_fills_invalid_ways_first() {
        let geom = CacheGeom {
            size: 512,
            ways: 2,
            line: 64,
        };
        let mut c = Cache::new("r", geom, Replacement::Random);
        let mut r = rng();
        c.access(0, 1, 4, false, &mut r);
        let out = c.access(0, 2, 8, false, &mut r);
        assert!(out.evicted.is_none(), "second way was free");
        assert!(c.peek(0, 1) && c.peek(0, 2));
    }
}
