//! Generic set-associative, write-back cache model.
//!
//! All caches in the simulated hierarchy (L1-D, L1-I, L2, the LLC slices)
//! are instances of [`Cache`]. The model tracks per-line validity, dirtiness
//! and recency; the attacks in `tp-attacks` observe it purely through
//! latency, exactly as on real hardware.

use crate::noise::NoiseRng;
use crate::params::CacheGeom;

/// Replacement policy for victim selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// Strict least-recently-used.
    Lru,
    /// LRU with occasional random deviations, modelling undocumented
    /// pseudo-LRU hardware. `noise` is the deviation probability in 1/256
    /// units. This is what makes the paper's "manual" L1 flush brittle
    /// (footnote 6): priming a cache-sized buffer does not always evict
    /// every stale line.
    PseudoLru {
        /// Deviation probability in 1/256 units.
        noise: u8,
    },
    /// Uniformly random victim.
    Random,
}

/// Validity-epoch width inside a packed line key: the key is
/// `tag << EPOCH_BITS | epoch`, and a line is valid iff its epoch field
/// equals the cache's current epoch. A whole-cache flush is then an epoch
/// bump plus the counters instead of touching every line (`wbinvd` on a
/// multi-megabyte LLC used to dominate the full-flush experiment cells),
/// and — because tag and validity live in one word — the hit scan is a
/// single integer compare per way over a contiguous `u64` row, the
/// simulator's innermost loop.
const EPOCH_BITS: u32 = 16;
/// Mask of the epoch field.
const EPOCH_MASK: u64 = (1 << EPOCH_BITS) - 1;
/// Largest usable epoch; reaching it triggers a physical clear.
const EPOCH_MAX: u64 = EPOCH_MASK;

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Whether a dirty victim line had to be written back.
    pub writeback: bool,
    /// The line address (`tag * sets + set`, in line units) of the evicted
    /// line, if a valid line was evicted. Used to propagate evictions to
    /// outer levels or victims to write-back paths.
    pub evicted: Option<EvictedLine>,
}

/// Description of a line evicted from a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Line address in units of lines (i.e. `paddr / line_size`) for
    /// physically-indexed caches.
    pub line_addr: u64,
    /// Whether the line was dirty.
    pub dirty: bool,
}

/// Aggregate cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Total hits.
    pub hits: u64,
    /// Total misses.
    pub misses: u64,
    /// Dirty lines written back due to eviction or flush.
    pub writebacks: u64,
    /// Lines invalidated by flush operations.
    pub flushed_lines: u64,
}

/// A set-associative cache.
///
/// Indexing is left to the caller: L1 caches are virtually indexed /
/// physically tagged (index from the virtual address), while L2/LLC are
/// physically indexed. The cache itself only sees `(set, tag)` pairs plus a
/// canonical line address used for write-back propagation.
#[derive(Debug, Clone)]
pub struct Cache {
    name: &'static str,
    geom: CacheGeom,
    sets: usize,
    ways: usize,
    /// Per-line `tag << EPOCH_BITS | epoch` keys (the scan array).
    keys: Vec<u64>,
    /// Per-line `recency << 1 | dirty` words. The recency clock is
    /// truncated to 31 bits and renormalised before it wraps, so LRU order
    /// is never ambiguous; the dirty flag rides in the LSB (clock values
    /// are unique per access, so ordering is unaffected).
    stamps: Vec<u32>,
    policy: Replacement,
    clock: u32,
    /// Current validity epoch (starts at 1; a zeroed key is invalid).
    epoch: u64,
    /// Valid lines, maintained incrementally (O(1) flush accounting).
    valid_count: u64,
    /// Valid dirty lines, maintained incrementally.
    dirty_count: u64,
    stats: CacheStats,
}

impl Cache {
    /// Create an empty cache with the given geometry and policy.
    #[must_use]
    pub fn new(name: &'static str, geom: CacheGeom, policy: Replacement) -> Self {
        let sets = geom.sets() as usize;
        let ways = geom.ways as usize;
        Cache {
            name,
            geom,
            sets,
            ways,
            keys: vec![0; sets * ways],
            stamps: vec![0; sets * ways],
            policy,
            clock: 0,
            epoch: 1,
            valid_count: 0,
            dirty_count: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's name (for diagnostics).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The cache geometry.
    #[must_use]
    pub fn geom(&self) -> CacheGeom {
        self.geom
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Number of ways.
    #[must_use]
    pub fn num_ways(&self) -> usize {
        self.ways
    }

    /// Accumulated statistics. (Hits are derived — the hit fast path
    /// maintains only the access counter.)
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.stats.accesses - self.stats.misses,
            ..self.stats
        }
    }

    /// Reset statistics (state is untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Access the line `(set, tag)`; on a miss the line is filled, possibly
    /// evicting a victim. `write` marks the line dirty on hit or fill.
    ///
    /// `line_addr` is the canonical line address recorded for evictions.
    ///
    /// # Panics
    /// Panics if `set` is out of range.
    pub fn access(
        &mut self,
        set: usize,
        tag: u64,
        line_addr: u64,
        write: bool,
        noise: &mut NoiseRng,
    ) -> AccessOutcome {
        debug_assert!(set < self.sets, "{}: set {set} out of range", self.name);
        if self.clock == u32::MAX >> 1 {
            // Renormalise recency before the 31-bit clock wraps (every ~2G
            // accesses per cache): clear the recency bits (keeping dirty
            // flags), restart the clock. Deterministic, and only the
            // relative order within a set matters for LRU.
            for s in &mut self.stamps {
                *s &= 1;
            }
            self.clock = 0;
        }
        self.clock += 1;
        let clock = self.clock;
        self.stats.accesses += 1;
        let ways = self.ways;
        let policy = self.policy;
        let epoch = self.epoch;
        let base = set * ways;
        let want = (tag << EPOCH_BITS) | epoch;
        // Hit scan: one integer compare per way over the contiguous key
        // row (stamps and dirty flags are only touched on the hit way).
        for (i, k) in self.keys[base..base + ways].iter().enumerate() {
            if *k == want {
                let old = self.stamps[base + i];
                if write && old & 1 == 0 {
                    self.dirty_count += 1;
                }
                self.stamps[base + i] = (clock << 1) | (old & 1) | u32::from(write);
                return AccessOutcome {
                    hit: true,
                    writeback: false,
                    evicted: None,
                };
            }
        }
        self.stats.misses += 1;
        // Miss: find the first invalid way, else the LRU way. An invalid
        // way consumes nothing from the noise stream; only the noisy
        // policies draw (so LRU caches never touch the stream at all).
        let mut invalid_idx = None;
        let mut lru_idx = 0usize;
        let mut lru_stamp = u32::MAX;
        for i in 0..ways {
            if self.keys[base + i] & EPOCH_MASK == epoch {
                let s = self.stamps[base + i] >> 1;
                if s < lru_stamp {
                    lru_stamp = s;
                    lru_idx = i;
                }
            } else if invalid_idx.is_none() {
                invalid_idx = Some(i);
            }
        }
        let victim_idx = match invalid_idx {
            Some(i) => i,
            None => match policy {
                Replacement::Lru => lru_idx,
                Replacement::PseudoLru { noise: p } => {
                    if noise.next_u8() < p {
                        noise.below(ways as u64) as usize
                    } else {
                        lru_idx
                    }
                }
                Replacement::Random => noise.below(ways as u64) as usize,
            },
        };
        let vkey = self.keys[base + victim_idx];
        let vdirty = self.stamps[base + victim_idx] & 1 != 0;
        let mut outcome = AccessOutcome {
            hit: false,
            writeback: false,
            evicted: None,
        };
        if vkey & EPOCH_MASK == epoch {
            outcome.evicted = Some(EvictedLine {
                line_addr: (vkey >> EPOCH_BITS) * self.sets as u64 + set as u64,
                dirty: vdirty,
            });
            if vdirty {
                outcome.writeback = true;
                self.stats.writebacks += 1;
                self.dirty_count -= 1;
            }
        } else {
            self.valid_count += 1;
        }
        if write {
            self.dirty_count += 1;
        }
        self.keys[base + victim_idx] = want;
        self.stamps[base + victim_idx] = (clock << 1) | u32::from(write);
        debug_assert_eq!(line_addr % self.sets as u64, set as u64 % self.sets as u64);
        outcome
    }

    /// Probe without filling: returns `true` on a hit (used by inclusive
    /// back-invalidation checks and tests).
    #[must_use]
    pub fn peek(&self, set: usize, tag: u64) -> bool {
        let base = set * self.ways;
        let want = (tag << EPOCH_BITS) | self.epoch;
        self.keys[base..base + self.ways].contains(&want)
    }

    /// Invalidate the line `(set, tag)` if present; returns whether it was
    /// present and whether it was dirty.
    pub fn invalidate_line(&mut self, set: usize, tag: u64) -> (bool, bool) {
        let base = set * self.ways;
        let want = (tag << EPOCH_BITS) | self.epoch;
        for i in 0..self.ways {
            if self.keys[base + i] == want {
                let dirty = self.stamps[base + i] & 1 != 0;
                self.keys[base + i] = 0;
                self.stamps[base + i] &= !1;
                self.valid_count -= 1;
                self.stats.flushed_lines += 1;
                if dirty {
                    self.dirty_count -= 1;
                    self.stats.writebacks += 1;
                }
                return (true, dirty);
            }
        }
        (false, false)
    }

    /// Clean-and-invalidate the whole cache (e.g. Arm `DCCISW` over all
    /// sets/ways, or the relevant part of x86 `wbinvd`).
    ///
    /// Returns `(valid_lines, dirty_lines)` — the dirty count drives the
    /// write-back latency that the paper's cache-flush channel (§5.3.4)
    /// modulates. O(1): validity is epoch-tagged and the counts are
    /// maintained incrementally, so no line is touched.
    pub fn flush_all(&mut self) -> (u64, u64) {
        let valid = self.valid_count;
        let dirty = self.dirty_count;
        if self.epoch == EPOCH_MAX {
            // Epoch exhaustion (every ~65k flushes): physically clear once
            // and restart. Deterministic and invisible to callers.
            for k in &mut self.keys {
                *k = 0;
            }
            self.epoch = 0;
        }
        self.epoch += 1;
        self.valid_count = 0;
        self.dirty_count = 0;
        self.stats.flushed_lines += valid;
        self.stats.writebacks += dirty;
        (valid, dirty)
    }

    /// Invalidate without cleaning (instruction caches have no dirty data).
    ///
    /// Returns the number of valid lines invalidated.
    pub fn invalidate_all(&mut self) -> u64 {
        let (valid, _) = self.flush_all();
        valid
    }

    /// Count of currently valid lines.
    #[must_use]
    pub fn valid_lines(&self) -> u64 {
        debug_assert_eq!(
            self.valid_count,
            self.keys
                .iter()
                .filter(|k| *k & EPOCH_MASK == self.epoch)
                .count() as u64
        );
        self.valid_count
    }

    /// Count of currently dirty lines.
    #[must_use]
    pub fn dirty_lines(&self) -> u64 {
        debug_assert_eq!(
            self.dirty_count,
            self.keys
                .iter()
                .zip(&self.stamps)
                .filter(|(k, s)| **k & EPOCH_MASK == self.epoch && **s & 1 != 0)
                .count() as u64
        );
        self.dirty_count
    }

    /// Count of valid lines in one set.
    #[must_use]
    pub fn valid_in_set(&self, set: usize) -> u64 {
        let base = set * self.ways;
        self.keys[base..base + self.ways]
            .iter()
            .filter(|k| *k & EPOCH_MASK == self.epoch)
            .count() as u64
    }
}

/// Compute the set index for a physically indexed cache.
#[must_use]
pub fn phys_set(geom: CacheGeom, paddr: u64) -> usize {
    ((paddr / geom.line) % geom.sets()) as usize
}

/// Compute the tag for a physically indexed cache.
#[must_use]
pub fn phys_tag(geom: CacheGeom, paddr: u64) -> u64 {
    paddr / geom.line / geom.sets()
}

/// Compute the set index for a virtually indexed cache (L1 VIPT).
#[must_use]
pub fn virt_set(geom: CacheGeom, vaddr: u64) -> usize {
    ((vaddr / geom.line) % geom.sets()) as usize
}

/// The tag of a VIPT cache comes from the physical address; we use the full
/// physical line address so aliases are impossible in the model.
#[must_use]
pub fn vipt_tag(geom: CacheGeom, paddr: u64) -> u64 {
    paddr / geom.line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CacheGeom;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B lines.
        let geom = CacheGeom {
            size: 512,
            ways: 2,
            line: 64,
        };
        Cache::new("t", geom, Replacement::Lru)
    }

    fn rng() -> NoiseRng {
        NoiseRng::seeded(7)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        let mut r = rng();
        let out = c.access(0, 1, 4, false, &mut r);
        assert!(!out.hit);
        let out = c.access(0, 1, 4, false, &mut r);
        assert!(out.hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small();
        let mut r = rng();
        c.access(0, 1, 4, false, &mut r);
        c.access(0, 2, 8, false, &mut r);
        // Touch tag 1 so tag 2 is LRU.
        c.access(0, 1, 4, false, &mut r);
        let out = c.access(0, 3, 12, false, &mut r);
        assert!(!out.hit);
        assert_eq!(out.evicted.unwrap().line_addr, 2 * 4);
        assert!(c.peek(0, 1));
        assert!(!c.peek(0, 2));
        assert!(c.peek(0, 3));
    }

    #[test]
    fn dirty_line_writes_back_on_eviction() {
        let mut c = small();
        let mut r = rng();
        c.access(0, 1, 4, true, &mut r);
        c.access(0, 2, 8, false, &mut r);
        let out = c.access(0, 3, 12, false, &mut r);
        assert!(out.writeback, "dirty LRU victim must write back");
        assert!(out.evicted.unwrap().dirty);
    }

    #[test]
    fn flush_reports_dirty_counts() {
        let mut c = small();
        let mut r = rng();
        c.access(0, 1, 4, true, &mut r);
        c.access(1, 1, 5, false, &mut r);
        c.access(2, 9, 38, true, &mut r);
        let (valid, dirty) = c.flush_all();
        assert_eq!(valid, 3);
        assert_eq!(dirty, 2);
        assert_eq!(c.valid_lines(), 0);
        // Idempotent.
        assert_eq!(c.flush_all(), (0, 0));
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        let mut r = rng();
        c.access(0, 1, 4, false, &mut r);
        assert_eq!(c.dirty_lines(), 0);
        c.access(0, 1, 4, true, &mut r);
        assert_eq!(c.dirty_lines(), 1);
    }

    #[test]
    fn invalidate_line_hits_only_target() {
        let mut c = small();
        let mut r = rng();
        c.access(0, 1, 4, true, &mut r);
        c.access(0, 2, 8, false, &mut r);
        let (present, dirty) = c.invalidate_line(0, 1);
        assert!(present && dirty);
        assert!(!c.peek(0, 1));
        assert!(c.peek(0, 2));
        let (present, _) = c.invalidate_line(0, 1);
        assert!(!present);
    }

    #[test]
    fn phys_indexing_helpers() {
        let geom = CacheGeom {
            size: 256 * 1024,
            ways: 8,
            line: 64,
        };
        assert_eq!(geom.sets(), 512);
        assert_eq!(phys_set(geom, 0), 0);
        assert_eq!(phys_set(geom, 64), 1);
        assert_eq!(phys_set(geom, 64 * 512), 0);
        assert_eq!(phys_tag(geom, 64 * 512), 1);
    }

    #[test]
    fn random_policy_fills_invalid_ways_first() {
        let geom = CacheGeom {
            size: 512,
            ways: 2,
            line: 64,
        };
        let mut c = Cache::new("r", geom, Replacement::Random);
        let mut r = rng();
        c.access(0, 1, 4, false, &mut r);
        let out = c.access(0, 2, 8, false, &mut r);
        assert!(out.evicted.is_none(), "second way was free");
        assert!(c.peek(0, 1) && c.peek(0, 2));
    }
}
