//! # tp-sim — micro-architectural timing simulator
//!
//! Hardware substrate for the reproduction of *Time Protection: The Missing
//! OS Abstraction* (Ge, Yarom, Chothia, Heiser — EuroSys 2019).
//!
//! The paper evaluates its OS mechanisms on two physical platforms (an x86
//! Haswell desktop and an Arm Cortex-A9 "Sabre" board). This crate replaces
//! the silicon with a deterministic, cycle-cost simulator of exactly the
//! micro-architectural state the paper's timing channels exploit:
//!
//! * set-associative, write-back **caches** (L1-D, L1-I, L2, sliced LLC)
//!   with dirty-line accounting ([`cache`]);
//! * **TLBs** (I-TLB, D-TLB, unified second-level TLB) with ASID tagging and
//!   global mappings ([`tlb`]);
//! * **branch predictors** — a set-associative BTB and a global-history BHB
//!   with a pattern-history table ([`branch`]);
//! * **prefetcher state machines** — a stream data prefetcher that is *not*
//!   reset by L1 flushes (the source of the paper's residual x86 L2
//!   channel) and a non-disableable instruction prefetcher ([`prefetch`]);
//! * a multi-core **machine** with a shared last-level cache and a
//!   contention-modelled memory bus ([`machine`]);
//! * the **architected flush operations** of both platforms, including the
//!   brittle "manual" L1 flushes the paper has to use on x86 ([`flush`]).
//!
//! Timing-channel attacks measure latency differences caused by competition
//! for this state; the simulator reproduces those differences with seeded
//! pseudo-random noise so every experiment in the paper can be re-run
//! deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod cache;
pub mod corestate;
pub mod flush;
pub mod machine;
pub mod mem;
pub mod noise;
pub mod params;
pub mod prefetch;
pub mod tlb;

pub use corestate::{AccessKind, CoreState};
pub use machine::{BatchOut, HitLevel, Machine, PlannedLine, SweepPlan};
pub use mem::{color_of_frame, ColorSet, PhysMap, FRAME_SIZE};
pub use noise::NoiseRng;
pub use params::{CacheGeom, Latency, Platform, PlatformConfig, TlbGeom};

/// A virtual address in a simulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VAddr(pub u64);

/// A physical address in simulated RAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PAddr(pub u64);

impl VAddr {
    /// The virtual page number of this address.
    #[must_use]
    pub fn vpn(self) -> u64 {
        self.0 / FRAME_SIZE
    }

    /// The offset within the page.
    #[must_use]
    pub fn page_offset(self) -> u64 {
        self.0 % FRAME_SIZE
    }
}

impl PAddr {
    /// The physical frame number of this address.
    #[must_use]
    pub fn pfn(self) -> u64 {
        self.0 / FRAME_SIZE
    }
}

/// An address-space identifier, tagging TLB entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Asid(pub u16);

impl Asid {
    /// The ASID used by the kernel on platforms with global mappings.
    pub const KERNEL: Asid = Asid(0);
}
