//! Physical memory, page colours and address-space mappings.
//!
//! Page colouring (§2.3) exploits the overlap of physical-page-number bits
//! and cache set-selector bits: a frame's colour decides which section of a
//! physically-indexed cache its lines can occupy. The OS partitions the
//! cache by handing out disjoint colours to security domains.

use crate::{Asid, PAddr, VAddr};

/// Page/frame size in bytes (both platforms use 4 KiB pages).
pub const FRAME_SIZE: u64 = 4096;

/// The colour of a physical frame for a cache with `n_colors` colours.
#[must_use]
pub fn color_of_frame(pfn: u64, n_colors: u64) -> u64 {
    pfn % n_colors.max(1)
}

/// A set of page colours, as a bitmask (at most 64 colours — enough for
/// both platforms: 8/32 on Haswell, 16 on Sabre).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ColorSet(pub u64);

impl ColorSet {
    /// The empty colour set.
    pub const EMPTY: ColorSet = ColorSet(0);

    /// All `n` colours.
    ///
    /// # Panics
    /// Panics if `n > 64`.
    #[must_use]
    pub fn all(n: u64) -> Self {
        assert!(n <= 64, "at most 64 colours supported");
        if n == 64 {
            ColorSet(u64::MAX)
        } else {
            ColorSet((1u64 << n) - 1)
        }
    }

    /// A contiguous range of colours `[lo, hi)`.
    #[must_use]
    pub fn range(lo: u64, hi: u64) -> Self {
        let mut s = ColorSet::EMPTY;
        for c in lo..hi {
            s = s.with(c);
        }
        s
    }

    /// This set plus colour `c`.
    #[must_use]
    pub fn with(self, c: u64) -> Self {
        ColorSet(self.0 | (1u64 << c))
    }

    /// Whether colour `c` is in the set.
    #[must_use]
    pub fn contains(self, c: u64) -> bool {
        self.0 & (1u64 << c) != 0
    }

    /// Number of colours in the set.
    #[must_use]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the two sets share any colour.
    #[must_use]
    pub fn intersects(self, other: ColorSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: ColorSet) -> Self {
        ColorSet(self.0 | other.0)
    }

    /// Set difference (`self` minus `other`).
    #[must_use]
    pub fn minus(self, other: ColorSet) -> Self {
        ColorSet(self.0 & !other.0)
    }

    /// Iterate over the colours in the set.
    pub fn iter(self) -> impl Iterator<Item = u64> {
        (0..64).filter(move |c| self.contains(*c))
    }
}

/// A mapping attribute for a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mapping {
    /// The physical frame number.
    pub pfn: u64,
    /// Whether the mapping is global (matches every ASID in the TLB).
    pub global: bool,
    /// Whether the mapping is writable.
    pub writable: bool,
}

/// A functional page table: virtual page number → mapping.
///
/// The simulator's TLBs model translation *timing*; this map models
/// translation *function*. The kernel (`tp-core`) owns one per VSpace.
///
/// Storage is a flat frame-indexed table (a `Vec` of slots offset by the
/// lowest mapped VPN) rather than a search tree: user mappings are handed
/// out as dense VPN ranges, so lookups — the innermost operation of every
/// simulated load — are a bounds check and an index. A generation counter
/// bumps whenever an existing translation changes (replace or unmap),
/// letting callers (the per-env translation cache in `tp-core`) validate
/// cached positive translations in O(1); *fresh* mappings of previously
/// unmapped pages leave the generation untouched, since no positive cache
/// entry can exist for them.
#[derive(Debug, Clone, Default)]
pub struct PhysMap {
    asid: u16,
    base_vpn: u64,
    slots: Vec<Option<Mapping>>,
    mapped: usize,
    generation: u64,
}

impl PhysMap {
    /// Create an empty address space with the given ASID.
    #[must_use]
    pub fn new(asid: Asid) -> Self {
        PhysMap {
            asid: asid.0,
            base_vpn: 0,
            slots: Vec::new(),
            mapped: 0,
            generation: 0,
        }
    }

    /// The address space's ASID.
    #[must_use]
    pub fn asid(&self) -> Asid {
        Asid(self.asid)
    }

    /// The translation generation: bumped whenever an existing mapping is
    /// replaced or removed. A cached positive translation taken at
    /// generation `g` is still valid while `generation() == g`.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Install a mapping. Replaces any existing mapping of the page.
    pub fn map(&mut self, vpn: u64, mapping: Mapping) {
        if self.slots.is_empty() {
            self.base_vpn = vpn;
        } else if vpn < self.base_vpn {
            // Rare (mappings grow upwards from a fixed user base): shift the
            // table down to the new lowest VPN.
            let shift = (self.base_vpn - vpn) as usize;
            let mut slots = vec![None; shift + self.slots.len()];
            slots[shift..].copy_from_slice(&self.slots);
            self.slots = slots;
            self.base_vpn = vpn;
        }
        let idx = (vpn - self.base_vpn) as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        if self.slots[idx].replace(mapping).is_none() {
            self.mapped += 1;
        } else {
            self.generation += 1;
        }
    }

    /// Remove a mapping; returns the old mapping if present.
    pub fn unmap(&mut self, vpn: u64) -> Option<Mapping> {
        let idx = vpn.checked_sub(self.base_vpn)? as usize;
        let old = self.slots.get_mut(idx)?.take();
        if old.is_some() {
            self.mapped -= 1;
            self.generation += 1;
        }
        old
    }

    /// Translate a virtual address; `None` on a page fault.
    #[inline]
    #[must_use]
    pub fn translate(&self, va: VAddr) -> Option<PAddr> {
        self.lookup(va.vpn())
            .map(|m| PAddr(m.pfn * FRAME_SIZE + va.page_offset()))
    }

    /// Look up the mapping of a page.
    #[inline]
    #[must_use]
    pub fn lookup(&self, vpn: u64) -> Option<Mapping> {
        let idx = vpn.checked_sub(self.base_vpn)? as usize;
        *self.slots.get(idx)?
    }

    /// Number of mapped pages.
    #[must_use]
    pub fn mapped_pages(&self) -> usize {
        self.mapped
    }

    /// Iterate over all mappings.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Mapping)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.map(|m| (self.base_vpn + i as u64, m)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colorset_basics() {
        let s = ColorSet::all(8);
        assert_eq!(s.count(), 8);
        assert!(s.contains(0) && s.contains(7) && !s.contains(8));
        let lo = ColorSet::range(0, 4);
        let hi = ColorSet::range(4, 8);
        assert!(!lo.intersects(hi));
        assert_eq!(lo.union(hi), s);
        assert_eq!(s.minus(lo), hi);
        assert_eq!(lo.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn frame_colors_cycle() {
        assert_eq!(color_of_frame(0, 8), 0);
        assert_eq!(color_of_frame(7, 8), 7);
        assert_eq!(color_of_frame(8, 8), 0);
        assert_eq!(color_of_frame(13, 1), 0);
    }

    #[test]
    fn physmap_translate() {
        let mut pm = PhysMap::new(Asid(3));
        pm.map(
            5,
            Mapping {
                pfn: 42,
                global: false,
                writable: true,
            },
        );
        let pa = pm.translate(VAddr(5 * FRAME_SIZE + 123)).unwrap();
        assert_eq!(pa, PAddr(42 * FRAME_SIZE + 123));
        assert!(pm.translate(VAddr(6 * FRAME_SIZE)).is_none());
        assert_eq!(pm.unmap(5).unwrap().pfn, 42);
        assert!(pm.translate(VAddr(5 * FRAME_SIZE)).is_none());
    }

    #[test]
    fn colorset_all_64() {
        let s = ColorSet::all(64);
        assert_eq!(s.count(), 64);
    }

    #[test]
    fn physmap_grows_downwards_and_tracks_generation() {
        let mut pm = PhysMap::new(Asid(1));
        let map = |pfn| Mapping {
            pfn,
            global: false,
            writable: true,
        };
        pm.map(100, map(1));
        pm.map(200, map(2));
        let g0 = pm.generation();
        // Fresh mappings (even below the base) leave the generation alone.
        pm.map(50, map(3));
        assert_eq!(pm.generation(), g0);
        assert_eq!(pm.lookup(50).unwrap().pfn, 3);
        assert_eq!(pm.lookup(100).unwrap().pfn, 1);
        assert_eq!(pm.lookup(200).unwrap().pfn, 2);
        assert_eq!(pm.mapped_pages(), 3);
        // Replacing and unmapping bump it.
        pm.map(100, map(9));
        assert_eq!(pm.generation(), g0 + 1);
        assert!(pm.unmap(200).is_some());
        assert_eq!(pm.generation(), g0 + 2);
        assert!(pm.unmap(200).is_none());
        assert_eq!(pm.generation(), g0 + 2);
        assert_eq!(pm.mapped_pages(), 2);
        assert_eq!(pm.iter().count(), 2);
    }
}
