//! Branch-prediction state: BTB and global-history predictor (BHB + PHT).
//!
//! Two of the paper's intra-core channels (Table 3) target this state: the
//! **BTB channel** measures evictions of branch-target entries, and the
//! **BHB channel** reproduces Evtyushkin et al.'s residual-state channel,
//! where the sender's taken/not-taken history biases the receiver's
//! conditional-branch latency. Both are reset by Arm `BPIALL` or the x86
//! IBC (indirect branch control) feature, as used in §4.3.

use crate::params::TlbGeom;

#[derive(Debug, Clone, Copy, Default)]
struct BtbEntry {
    tag: u64,
    target: u64,
    valid: bool,
    stamp: u64,
}

/// Branch-target buffer: a set-associative cache of branch targets keyed by
/// the branch instruction's virtual address.
#[derive(Debug, Clone)]
pub struct Btb {
    sets: usize,
    ways: usize,
    /// `sets - 1` for power-of-two set counts (mask instead of division).
    set_mask: Option<u64>,
    entries: Vec<BtbEntry>,
    clock: u64,
}

impl Btb {
    /// Create an empty BTB with the given geometry.
    #[must_use]
    pub fn new(geom: TlbGeom) -> Self {
        let sets = geom.sets() as usize;
        let ways = geom.ways as usize;
        Btb {
            sets,
            ways,
            set_mask: sets.is_power_of_two().then(|| sets as u64 - 1),
            entries: vec![BtbEntry::default(); sets * ways],
            clock: 0,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> (usize, u64) {
        let word = pc >> 2;
        match self.set_mask {
            Some(m) => ((word & m) as usize, word >> (64 - m.leading_zeros())),
            None => ((word % self.sets as u64) as usize, word / self.sets as u64),
        }
    }

    /// Look up a branch at `pc`; if present, returns the predicted target.
    /// On a miss the entry is installed with `target`.
    ///
    /// Returns `true` on a BTB hit.
    pub fn access(&mut self, pc: u64, target: u64) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let (set, tag) = self.index(pc);
        let base = set * self.ways;
        let slice = &mut self.entries[base..base + self.ways];
        for e in slice.iter_mut() {
            if e.valid && e.tag == tag {
                e.stamp = clock;
                e.target = target;
                return true;
            }
        }
        let idx = slice
            .iter()
            .position(|e| !e.valid)
            .or_else(|| {
                slice
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.stamp)
                    .map(|(i, _)| i)
            })
            .unwrap_or(0);
        slice[idx] = BtbEntry {
            tag,
            target,
            valid: true,
            stamp: clock,
        };
        false
    }

    /// Invalidate all entries (BPIALL / IBC).
    pub fn flush(&mut self) -> u64 {
        let mut n = 0;
        for e in &mut self.entries {
            if e.valid {
                n += 1;
                e.valid = false;
            }
        }
        n
    }

    /// Number of valid entries.
    #[must_use]
    pub fn valid_entries(&self) -> u64 {
        self.entries.iter().filter(|e| e.valid).count() as u64
    }
}

/// Global-history direction predictor: a global history register (the
/// "branch history buffer") indexing a pattern-history table of 2-bit
/// saturating counters, gshare style.
#[derive(Debug, Clone)]
pub struct HistoryPredictor {
    ghr: u64,
    ghr_mask: u64,
    pht: Vec<u8>,
    pht_mask: u64,
}

impl HistoryPredictor {
    /// Create a predictor with `ghr_bits` of global history and a PHT of
    /// `2^pht_bits` counters, initialised to weakly-not-taken.
    #[must_use]
    pub fn new(ghr_bits: u32, pht_bits: u32) -> Self {
        HistoryPredictor {
            ghr: 0,
            ghr_mask: (1u64 << ghr_bits) - 1,
            pht: vec![1u8; 1usize << pht_bits],
            pht_mask: (1u64 << pht_bits) - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.ghr) & self.pht_mask) as usize
    }

    /// Predict and update for a conditional branch at `pc` with actual
    /// outcome `taken`. Returns `true` if the prediction was correct.
    pub fn predict_update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let counter = self.pht[idx];
        let predicted_taken = counter >= 2;
        // 2-bit saturating update.
        self.pht[idx] = if taken {
            (counter + 1).min(3)
        } else {
            counter.saturating_sub(1)
        };
        self.ghr = ((self.ghr << 1) | u64::from(taken)) & self.ghr_mask;
        predicted_taken == taken
    }

    /// Reset all history (BPIALL / IBC). Counters return to weakly-not-taken
    /// and the history register clears.
    pub fn flush(&mut self) {
        self.ghr = 0;
        for c in &mut self.pht {
            *c = 1;
        }
    }

    /// The current global history register value (tests only).
    #[must_use]
    pub fn history(&self) -> u64 {
        self.ghr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btb_hit_after_install() {
        let mut b = Btb::new(TlbGeom {
            entries: 16,
            ways: 2,
        });
        assert!(!b.access(0x400, 0x500));
        assert!(b.access(0x400, 0x500));
        assert_eq!(b.valid_entries(), 1);
    }

    #[test]
    fn btb_conflict_eviction() {
        // 8 sets x 2 ways; pcs 4*(8*k) map to set 0.
        let mut b = Btb::new(TlbGeom {
            entries: 16,
            ways: 2,
        });
        for k in 0..3u64 {
            b.access(4 * 8 * k, 0);
        }
        // First entry evicted by the third.
        assert!(!b.access(0, 0));
    }

    #[test]
    fn btb_flush_clears() {
        let mut b = Btb::new(TlbGeom {
            entries: 16,
            ways: 2,
        });
        for k in 0..10u64 {
            b.access(4 * k, 0);
        }
        assert!(b.flush() > 0);
        assert_eq!(b.valid_entries(), 0);
    }

    #[test]
    fn predictor_learns_a_loop() {
        let mut p = HistoryPredictor::new(8, 10);
        let pc = 0x1234;
        // Always-taken branch: after warm-up (history register saturates
        // after `ghr_bits` iterations, then the counter trains) it should
        // predict correctly.
        for _ in 0..12 {
            p.predict_update(pc, true);
        }
        assert!(p.predict_update(pc, true));
    }

    #[test]
    fn sender_history_biases_receiver() {
        // The BHB channel: sender trains an aliasing PHT entry; receiver's
        // first prediction on the aliased slot reflects the sender's bit.
        let mut p = HistoryPredictor::new(8, 10);
        let pc = 0x4000;
        // Sender drives the counter to strongly-taken from neutral history.
        for _ in 0..4 {
            p.ghr = 0;
            p.predict_update(pc, true);
        }
        p.ghr = 0;
        // Receiver briefly probes the same slot with a not-taken branch:
        // misprediction reveals the sender's activity.
        assert!(!p.predict_update(pc, false));
        p.flush();
        p.ghr = 0;
        // After a flush the counter is weakly-not-taken: correctly predicted.
        assert!(p.predict_update(pc, false));
    }

    #[test]
    fn flush_resets_history() {
        let mut p = HistoryPredictor::new(8, 10);
        for i in 0..20 {
            p.predict_update(0x100 + i * 4, i % 3 == 0);
        }
        p.flush();
        assert_eq!(p.history(), 0);
    }
}
