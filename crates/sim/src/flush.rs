//! Architected flush operations (§4.3 and Table 2 of the paper).
//!
//! On Arm, the kernel can flush the L1 caches (`DCCISW`, `ICIALLU`), the
//! TLBs (`TLBIALL`) and the branch predictor (`BPIALL`) directly; a *full
//! flush* additionally cleans/invalidates the L2.
//!
//! On x86 there is **no architected selective L1 flush**: the kernel must
//! flush "manually" by marching a cache-sized buffer through the L1-D and
//! chasing jumps through an L1-I-sized code buffer (each jump
//! mispredicted). The manual flush is brittle — it relies on the
//! undocumented replacement policy and can leave stale lines behind (the
//! `PseudoLru` noise models this). `wbinvd` flushes the whole hierarchy at
//! enormous cost, and the IBC feature resets the branch predictor.
//!
//! All functions charge their cycle cost to the core and return it.

use crate::cache::{phys_set, phys_tag};
use crate::machine::Machine;
use crate::{Asid, PAddr};

/// Fixed pipeline/serialisation cost of issuing a flush sequence.
const FLUSH_BASE: u64 = 200;

/// Report of a flush's work, used by tests and by the padding analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushWork {
    /// Valid lines invalidated.
    pub lines: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
    /// Cycles charged.
    pub cycles: u64,
}

/// Arm `DCCISW` over all sets/ways of the L1-D: clean and invalidate.
/// The cost depends on the number of dirty lines — the root cause of the
/// paper's cache-flush channel (§5.3.4, Requirement 4).
pub fn flush_l1d_arch(m: &mut Machine, core: usize) -> FlushWork {
    let lat = m.cfg.lat;
    let (valid, dirty) = m.cores[core].l1d.flush_all();
    let total_lines = m.cfg.l1d.lines();
    let cycles = FLUSH_BASE + total_lines * lat.maint_per_line + dirty * lat.writeback;
    m.advance(core, cycles);
    FlushWork {
        lines: valid,
        writebacks: dirty,
        cycles,
    }
}

/// Arm `ICIALLU`: invalidate the whole L1-I (no dirty data).
pub fn flush_l1i_arch(m: &mut Machine, core: usize) -> FlushWork {
    let lat = m.cfg.lat;
    let valid = m.cores[core].l1i.invalidate_all();
    let cycles = FLUSH_BASE + m.cfg.l1i.lines() * lat.maint_per_line / 2;
    m.advance(core, cycles);
    FlushWork {
        lines: valid,
        writebacks: 0,
        cycles,
    }
}

/// Flush all TLB levels (`TLBIALL` / `invpcid` all-contexts).
pub fn flush_tlbs(m: &mut Machine, core: usize) -> FlushWork {
    let dropped = m.cores[core].tlb.flush_all();
    let cycles = FLUSH_BASE / 2 + dropped;
    m.advance(core, cycles);
    FlushWork {
        lines: dropped,
        writebacks: 0,
        cycles,
    }
}

/// Reset the branch predictor (`BPIALL` on Arm, IBC on x86).
pub fn flush_branch_predictor(m: &mut Machine, core: usize) -> FlushWork {
    let n = m.cores[core].btb.flush();
    m.cores[core].bhb.flush();
    let cycles = FLUSH_BASE / 2;
    m.advance(core, cycles);
    FlushWork {
        lines: n,
        writebacks: 0,
        cycles,
    }
}

/// x86 "manual" L1-D flush: load one word per line of an L1-D-sized kernel
/// buffer at physical `buf_pa`. Under a pseudo-LRU policy this can leave
/// stale lines resident (footnote 6) — the returned `lines` counts how many
/// *previous* lines actually left the cache.
pub fn manual_flush_l1d(m: &mut Machine, core: usize, buf_pa: PAddr) -> FlushWork {
    let before = m.cores[core].l1d.valid_lines();
    let geom = m.cfg.l1d;
    let start = m.cycles(core);
    // Kernel data accesses: global mapping, kernel ASID. The walk runs on
    // every domain switch over a fixed buffer — use the memoised plan.
    let idx = m.flush_plan(buf_pa, false, geom.lines());
    let plan = m.take_flush_plan(idx);
    m.access_batch(
        core,
        Asid::KERNEL,
        &plan,
        false,
        true,
        &mut crate::machine::BatchOut::default(),
    );
    m.restore_flush_plan(idx, plan);
    let cycles = m.cycles(core) - start;
    // Count how many pre-existing lines survived (non-buffer tags).
    let survivors = count_foreign_lines(m, core, buf_pa, false);
    FlushWork {
        lines: before.saturating_sub(survivors),
        writebacks: 0,
        cycles,
    }
}

/// x86 "manual" L1-I flush: follow a chain of jumps through an L1-I-sized
/// buffer; every jump is mispredicted (this is why the measured direct cost
/// in Table 2 is a surprisingly high 26 µs). Also pollutes part of the BTB,
/// "indirectly flushing" it.
pub fn manual_flush_l1i(m: &mut Machine, core: usize, buf_pa: PAddr) -> FlushWork {
    let before = m.cores[core].l1i.valid_lines();
    let geom = m.cfg.l1i;
    let line = m.cfg.line;
    let jump_cost = m.cfg.lat.manual_jump;
    let start = m.cycles(core);
    let idx = m.flush_plan(buf_pa, true, geom.lines());
    let plan = m.take_flush_plan(idx);
    for ln in plan.lines() {
        m.access_planned(core, Asid::KERNEL, ln, false, true, true);
        // The chained jump: mispredicted, BTB entry installed.
        m.branch(
            core,
            crate::VAddr(ln.pa),
            crate::VAddr(ln.pa + line),
            true,
            false,
        );
        m.advance(core, jump_cost);
    }
    m.restore_flush_plan(idx, plan);
    let cycles = m.cycles(core) - start;
    let survivors = count_foreign_lines(m, core, buf_pa, true);
    FlushWork {
        lines: before.saturating_sub(survivors),
        writebacks: 0,
        cycles,
    }
}

fn count_foreign_lines(m: &Machine, core: usize, buf_pa: PAddr, insn: bool) -> u64 {
    let c = &m.cores[core];
    let cache = if insn { &c.l1i } else { &c.l1d };
    let geom = cache.geom();
    let line = geom.line;
    // Foreign lines = valid lines that are not buffer lines. The buffer is
    // cache-sized and line-aligned, so its line addresses are distinct.
    let mut buffer_resident = 0;
    for i in 0..geom.lines() {
        let pa = buf_pa.0 + i * line;
        if cache.peek(phys_set(geom, pa), phys_tag(geom, pa)) {
            buffer_resident += 1;
        }
    }
    cache.valid_lines() - buffer_resident
}

/// x86 `wbinvd`: write back and invalidate the entire hierarchy, including
/// every LLC slice (a global operation). Extremely expensive (Table 2).
pub fn wbinvd(m: &mut Machine, core: usize) -> FlushWork {
    let lat = m.cfg.lat;
    let mut lines = 0;
    let mut dirty = 0;
    let (v, d) = m.cores[core].l1d.flush_all();
    lines += v;
    dirty += d;
    lines += m.cores[core].l1i.invalidate_all();
    if let Some(l2) = &mut m.cores[core].l2 {
        let (v, d) = l2.flush_all();
        lines += v;
        dirty += d;
    }
    let slices = if m.cfg.llc.is_some() {
        m.cfg.llc_slices as usize
    } else {
        1
    };
    for s in 0..slices {
        let (v, d) = shared_flush(m, s);
        lines += v;
        dirty += d;
    }
    m.cores[core].dpf.reset();
    m.cores[core].ipf.reset();
    // Cost scales with the full hierarchy capacity plus write-back traffic.
    let capacity_lines = m.cfg.l1d.lines()
        + m.cfg.l1i.lines()
        + m.cfg.l2.lines()
        + m.cfg.llc.map_or(0, |l| l.lines());
    let cycles = FLUSH_BASE + capacity_lines * lat.maint_per_line + dirty * lat.writeback;
    m.advance(core, cycles);
    FlushWork {
        lines,
        writebacks: dirty,
        cycles,
    }
}

/// Arm full flush: L1 flushes plus clean/invalidate of the (shared) L2,
/// plus BP and prefetcher disable — the paper's *full flush* scenario.
pub fn arm_full_flush(m: &mut Machine, core: usize) -> FlushWork {
    let lat = m.cfg.lat;
    let l1 = flush_l1d_arch(m, core);
    let l1i = flush_l1i_arch(m, core);
    let (v, d) = shared_flush(m, 0);
    let l2_cycles = m.cfg.l2.lines() * lat.maint_per_line + d * lat.writeback;
    m.advance(core, l2_cycles);
    let bp = flush_branch_predictor(m, core);
    let tlb = flush_tlbs(m, core);
    FlushWork {
        lines: l1.lines + l1i.lines + v + bp.lines + tlb.lines,
        writebacks: l1.writebacks + d,
        cycles: l1.cycles + l1i.cycles + l2_cycles + bp.cycles + tlb.cycles,
    }
}

fn shared_flush(m: &mut Machine, slice: usize) -> (u64, u64) {
    m.flush_shared_slice(slice)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Platform;
    use crate::VAddr;

    fn dirty_l1(m: &mut Machine, core: usize, lines: u64) {
        let sz = m.cfg.line;
        for i in 0..lines {
            let a = 0x50_0000 + i * sz;
            m.data_access(core, Asid(1), VAddr(a), PAddr(a), true, false);
        }
    }

    #[test]
    fn arch_flush_cost_scales_with_dirtiness() {
        let cfg = Platform::Sabre.config();
        let mut m = Machine::new(cfg, 1);
        dirty_l1(&mut m, 0, 16);
        let low = flush_l1d_arch(&mut m, 0);
        dirty_l1(&mut m, 0, 512);
        let high = flush_l1d_arch(&mut m, 0);
        assert!(
            high.cycles > low.cycles,
            "{} vs {}",
            high.cycles,
            low.cycles
        );
        assert_eq!(m.cores[0].l1d.valid_lines(), 0);
    }

    #[test]
    fn manual_l1d_flush_mostly_empties() {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        dirty_l1(&mut m, 0, 400);
        let w = manual_flush_l1d(&mut m, 0, PAddr(0x10_0000));
        // Pseudo-LRU noise may leave a few stale lines, but the bulk must go.
        assert!(w.lines > 350, "flushed only {} lines", w.lines);
    }

    #[test]
    fn manual_l1i_flush_cost_matches_table2_scale() {
        let cfg = Platform::Haswell.config();
        let mut m = Machine::new(cfg, 1);
        let w = manual_flush_l1i(&mut m, 0, PAddr(0x20_0000));
        let us = cfg.cycles_to_us(w.cycles);
        // Paper Table 2: ~26 µs dominated by mispredicted jumps.
        assert!((15.0..45.0).contains(&us), "manual L1-I flush {us} µs");
    }

    #[test]
    fn wbinvd_empties_hierarchy_and_is_expensive() {
        let cfg = Platform::Haswell.config();
        let mut m = Machine::new(cfg, 1);
        for i in 0..4096u64 {
            let a = 0x100_0000 + i * 64;
            m.data_access(0, Asid(1), VAddr(a), PAddr(a), true, false);
        }
        let w = wbinvd(&mut m, 0);
        assert_eq!(m.cores[0].l1d.valid_lines(), 0);
        assert_eq!(m.shared_slice(0).valid_lines(), 0);
        let us = cfg.cycles_to_us(w.cycles);
        // Table 2: full flush direct cost in the hundreds of µs.
        assert!(us > 100.0, "wbinvd too cheap: {us} µs");
    }

    #[test]
    fn bp_flush_clears_predictors() {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        for i in 0..32u64 {
            m.branch(0, VAddr(0x400 + i * 4), VAddr(0x800), true, true);
        }
        assert!(m.cores[0].btb.valid_entries() > 0);
        flush_branch_predictor(&mut m, 0);
        assert_eq!(m.cores[0].btb.valid_entries(), 0);
        assert_eq!(m.cores[0].bhb.history(), 0);
    }

    #[test]
    fn arm_full_flush_much_more_expensive_than_l1() {
        let cfg = Platform::Sabre.config();
        let mut m = Machine::new(cfg, 1);
        dirty_l1(&mut m, 0, 512);
        let l1 = flush_l1d_arch(&mut m, 0);
        dirty_l1(&mut m, 0, 512);
        let full = arm_full_flush(&mut m, 0);
        assert!(full.cycles > 5 * l1.cycles);
    }
}
