//! The platform registry — geometry and latency tables.
//!
//! Platforms are *data*: a [`PlatformConfig`] fully describes a simulated
//! machine, and everything downstream (kernel, attacks, benches) sizes
//! itself off that geometry. The [`Platform`] enum survives only as the
//! registry key; [`Platform::ALL`] enumerates every registered platform so
//! new entries automatically appear in every table and experiment.
//!
//! The first two entries mirror Table 1 of the paper: a Haswell Core
//! i7-4770 ("x86") and an i.MX6 Sabre board with a Cortex-A9 ("Arm"). The
//! other two extend the matrix: a Skylake-class server part (larger
//! non-inclusive LLC, twice the partition colours) and a HiKey LeMaker
//! board (Cortex-A53, the Armv8 platform of the authors' follow-up work).
//! Latencies are representative documented/measured values for these
//! parts; the paper's results depend on their *relative* magnitudes
//! (L1 ≪ L2 ≪ LLC ≪ DRAM, mispredict ≫ predicted branch), which these
//! tables preserve.

/// Registry key for an evaluation platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Intel Core i7-4770 (Haswell), 4 cores, 3.4 GHz.
    Haswell,
    /// NXP i.MX6Q Sabre (Cortex-A9), 4 cores, 0.8 GHz.
    Sabre,
    /// Skylake-class Xeon: private 1 MiB L2, non-inclusive sliced LLC.
    Skylake,
    /// HiKey LeMaker (Cortex-A53, Armv8), 8 cores, 1.2 GHz.
    HiKey,
}

impl Platform {
    /// Every registered platform, in table order. Iterate this — never a
    /// hand-written platform list — so new registry entries appear in
    /// every experiment automatically.
    pub const ALL: [Platform; 4] = [
        Platform::Haswell,
        Platform::Sabre,
        Platform::Skylake,
        Platform::HiKey,
    ];

    /// The two platforms evaluated in the paper itself (golden results are
    /// pinned against these).
    pub const PAPER: [Platform; 2] = [Platform::Haswell, Platform::Sabre];

    /// Human-readable platform name as used in the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Platform::Haswell => "x86 (Haswell)",
            Platform::Sabre => "Arm (Sabre)",
            Platform::Skylake => "x86 (Skylake)",
            Platform::HiKey => "Armv8 (HiKey)",
        }
    }

    /// Short column label for tables.
    #[must_use]
    pub fn short_name(self) -> &'static str {
        match self {
            Platform::Haswell => "x86",
            Platform::Sabre => "Arm",
            Platform::Skylake => "Sky",
            Platform::HiKey => "A53",
        }
    }

    /// Stable machine-readable key (CLI `--platform` values, JSON output).
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            Platform::Haswell => "haswell",
            Platform::Sabre => "sabre",
            Platform::Skylake => "skylake",
            Platform::HiKey => "hikey",
        }
    }

    /// Look a platform up by its [`Platform::key`].
    #[must_use]
    pub fn from_key(key: &str) -> Option<Platform> {
        Platform::ALL.into_iter().find(|p| p.key() == key)
    }

    /// Build the full configuration for this platform (the registry
    /// lookup).
    #[must_use]
    pub fn config(self) -> PlatformConfig {
        match self {
            Platform::Haswell => PlatformConfig::haswell(),
            Platform::Sabre => PlatformConfig::sabre(),
            Platform::Skylake => PlatformConfig::skylake(),
            Platform::HiKey => PlatformConfig::hikey(),
        }
    }
}

impl From<Platform> for PlatformConfig {
    fn from(p: Platform) -> PlatformConfig {
        p.config()
    }
}

/// Geometry of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeom {
    /// Total capacity in bytes.
    pub size: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes.
    pub line: u64,
}

impl CacheGeom {
    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.size / (self.line * u64::from(self.ways))
    }

    /// Total number of lines.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.size / self.line
    }

    /// Number of page colours this cache supports: `S / (w * P)`.
    ///
    /// This is the formula from §2.3 of the paper; a page can only ever
    /// reside in the cache section selected by the overlap of set-selector
    /// and page-number bits.
    #[must_use]
    pub fn colors(&self, page: u64) -> u64 {
        (self.size / (u64::from(self.ways) * page)).max(1)
    }
}

/// Geometry of a TLB level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbGeom {
    /// Total number of entries.
    pub entries: u32,
    /// Associativity.
    pub ways: u32,
}

impl TlbGeom {
    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u32 {
        (self.entries / self.ways).max(1)
    }
}

/// Cycle-latency table for a platform.
#[derive(Debug, Clone, Copy)]
pub struct Latency {
    /// L1 hit latency.
    pub l1_hit: u64,
    /// L2 hit latency (miss in L1).
    pub l2_hit: u64,
    /// LLC hit latency (x86 only; `l2_hit` doubles as LLC on Arm).
    pub llc_hit: u64,
    /// DRAM access latency.
    pub dram: u64,
    /// Cost of writing back one dirty line.
    pub writeback: u64,
    /// Added latency when the second-level TLB hits (first level missed).
    pub tlb_l2: u64,
    /// Added latency of a full page-table walk.
    pub tlb_walk: u64,
    /// Branch direction misprediction penalty.
    pub mispredict: u64,
    /// Penalty for a taken branch missing the BTB.
    pub btb_miss: u64,
    /// Per-competing-access bus contention penalty on a DRAM access.
    pub bus_contend: u64,
    /// Cost of a user->kernel->user mode crossing (syscall entry + exit).
    pub mode_switch: u64,
    /// Per-jump cost of the "manual" chained-jump L1-I flush (x86 only):
    /// every jump in the chain is mispredicted and misses the L1-I.
    pub manual_jump: u64,
    /// Fixed cost of an architected per-line cache maintenance operation
    /// (e.g. Arm `DCCISW`), excluding the write-back of dirty data.
    pub maint_per_line: u64,
}

/// Full description of a simulated platform.
///
/// Configurations are plain `Copy` data and travel by value: the kernel,
/// the attacks and the bench harness all size themselves off this geometry
/// rather than matching on [`Platform`].
#[derive(Debug, Clone, Copy)]
pub struct PlatformConfig {
    /// Which platform this is.
    pub platform: Platform,
    /// Number of cores.
    pub cores: usize,
    /// Clock frequency in MHz, i.e. cycles per microsecond.
    pub freq_mhz: u64,
    /// Cache line size in bytes.
    pub line: u64,
    /// L1 data cache.
    pub l1d: CacheGeom,
    /// L1 instruction cache.
    pub l1i: CacheGeom,
    /// Unified L2 cache (per-core on x86; shared LLC on Arm).
    pub l2: CacheGeom,
    /// Shared L3/LLC (x86 only).
    pub llc: Option<CacheGeom>,
    /// Number of LLC slices (hash-distributed) on x86.
    pub llc_slices: u32,
    /// Instruction TLB.
    pub itlb: TlbGeom,
    /// Data TLB.
    pub dtlb: TlbGeom,
    /// Unified second-level TLB.
    pub stlb: TlbGeom,
    /// BTB geometry (entries, ways).
    pub btb: TlbGeom,
    /// log2 of the pattern-history-table size.
    pub pht_bits: u32,
    /// Branch global-history length in bits.
    pub ghr_bits: u32,
    /// Number of stream-prefetcher entries.
    pub dpf_entries: usize,
    /// Latency table.
    pub lat: Latency,
    /// Probability (in 1/256 units) that an L1 victim choice deviates from
    /// strict LRU — models the undocumented pseudo-LRU policies that make
    /// the paper's "manual" flush brittle (footnote 6).
    pub l1_plru_noise: u8,
    /// Page size in bytes.
    pub page: u64,
    /// The Requirement-4 switch padding (µs) that provably exceeds the
    /// worst-case domain-switch latency on this platform (Table 4's pad
    /// values for the paper platforms; measured analogues for the rest).
    pub switch_pad_us: f64,
}

impl PlatformConfig {
    /// The Haswell configuration (paper Table 1).
    #[must_use]
    pub fn haswell() -> Self {
        PlatformConfig {
            platform: Platform::Haswell,
            cores: 4,
            freq_mhz: 3400,
            line: 64,
            l1d: CacheGeom {
                size: 32 * 1024,
                ways: 8,
                line: 64,
            },
            l1i: CacheGeom {
                size: 32 * 1024,
                ways: 8,
                line: 64,
            },
            l2: CacheGeom {
                size: 256 * 1024,
                ways: 8,
                line: 64,
            },
            llc: Some(CacheGeom {
                size: 8 * 1024 * 1024,
                ways: 16,
                line: 64,
            }),
            llc_slices: 4,
            itlb: TlbGeom {
                entries: 64,
                ways: 8,
            },
            dtlb: TlbGeom {
                entries: 64,
                ways: 4,
            },
            stlb: TlbGeom {
                entries: 1024,
                ways: 8,
            },
            btb: TlbGeom {
                entries: 4096,
                ways: 4,
            },
            pht_bits: 14,
            ghr_bits: 16,
            dpf_entries: 32,
            lat: Latency {
                l1_hit: 4,
                l2_hit: 12,
                llc_hit: 42,
                dram: 200,
                writeback: 6,
                tlb_l2: 8,
                tlb_walk: 36,
                mispredict: 16,
                btb_miss: 9,
                bus_contend: 24,
                mode_switch: 150,
                manual_jump: 170,
                maint_per_line: 4,
            },
            l1_plru_noise: 18,
            page: 4096,
            switch_pad_us: 58.8,
        }
    }

    /// The Sabre (Cortex-A9) configuration (paper Table 1).
    #[must_use]
    pub fn sabre() -> Self {
        PlatformConfig {
            platform: Platform::Sabre,
            cores: 4,
            freq_mhz: 800,
            line: 32,
            l1d: CacheGeom {
                size: 32 * 1024,
                ways: 4,
                line: 32,
            },
            l1i: CacheGeom {
                size: 32 * 1024,
                ways: 4,
                line: 32,
            },
            l2: CacheGeom {
                size: 1024 * 1024,
                ways: 16,
                line: 32,
            },
            llc: None,
            llc_slices: 1,
            itlb: TlbGeom {
                entries: 32,
                ways: 1,
            },
            dtlb: TlbGeom {
                entries: 32,
                ways: 1,
            },
            stlb: TlbGeom {
                entries: 128,
                ways: 2,
            },
            btb: TlbGeom {
                entries: 512,
                ways: 2,
            },
            pht_bits: 12,
            ghr_bits: 8,
            dpf_entries: 0,
            lat: Latency {
                l1_hit: 3,
                l2_hit: 26,
                llc_hit: 26,
                dram: 110,
                writeback: 10,
                tlb_l2: 10,
                tlb_walk: 40,
                mispredict: 12,
                btb_miss: 6,
                bus_contend: 16,
                mode_switch: 180,
                manual_jump: 0,
                maint_per_line: 5,
            },
            l1_plru_noise: 0,
            page: 4096,
            switch_pad_us: 62.5,
        }
    }

    /// A Skylake-class Xeon: private 1 MiB L2 (16 partition colours, twice
    /// Haswell's 8) in front of a larger *non-inclusive* sliced LLC. The
    /// non-inclusive LLC changes nothing for the simulator's dirty-line
    /// accounting but is why the part leans even harder on L2 colouring;
    /// like every x86, it has no architected L1 flush (manual flush +
    /// pseudo-LRU noise).
    #[must_use]
    pub fn skylake() -> Self {
        PlatformConfig {
            platform: Platform::Skylake,
            cores: 4,
            freq_mhz: 3600,
            line: 64,
            l1d: CacheGeom {
                size: 32 * 1024,
                ways: 8,
                line: 64,
            },
            l1i: CacheGeom {
                size: 32 * 1024,
                ways: 8,
                line: 64,
            },
            l2: CacheGeom {
                size: 1024 * 1024,
                ways: 16,
                line: 64,
            },
            llc: Some(CacheGeom {
                size: 11 * 1024 * 1024,
                ways: 11,
                line: 64,
            }),
            llc_slices: 8,
            itlb: TlbGeom {
                entries: 128,
                ways: 8,
            },
            dtlb: TlbGeom {
                entries: 64,
                ways: 4,
            },
            stlb: TlbGeom {
                entries: 1536,
                ways: 12,
            },
            btb: TlbGeom {
                entries: 4096,
                ways: 4,
            },
            pht_bits: 15,
            ghr_bits: 18,
            dpf_entries: 32,
            lat: Latency {
                l1_hit: 4,
                l2_hit: 14,
                llc_hit: 50,
                dram: 190,
                writeback: 6,
                tlb_l2: 9,
                tlb_walk: 40,
                mispredict: 17,
                btb_miss: 9,
                bus_contend: 22,
                mode_switch: 140,
                manual_jump: 160,
                maint_per_line: 4,
            },
            l1_plru_noise: 18,
            page: 4096,
            switch_pad_us: 58.8,
        }
    }

    /// The HiKey LeMaker board (8× Cortex-A53, Armv8): the platform of the
    /// authors' follow-up work. Shared 512 KiB L2 as the LLC, tiny
    /// first-level micro-TLBs backed by a 512-entry main TLB, and
    /// architected set/way cache maintenance (no manual-flush
    /// brittleness).
    #[must_use]
    pub fn hikey() -> Self {
        PlatformConfig {
            platform: Platform::HiKey,
            cores: 8,
            freq_mhz: 1200,
            line: 64,
            l1d: CacheGeom {
                size: 32 * 1024,
                ways: 4,
                line: 64,
            },
            l1i: CacheGeom {
                size: 32 * 1024,
                ways: 2,
                line: 64,
            },
            l2: CacheGeom {
                size: 512 * 1024,
                ways: 16,
                line: 64,
            },
            llc: None,
            llc_slices: 1,
            itlb: TlbGeom {
                entries: 10,
                ways: 10,
            },
            dtlb: TlbGeom {
                entries: 10,
                ways: 10,
            },
            stlb: TlbGeom {
                entries: 512,
                ways: 4,
            },
            btb: TlbGeom {
                entries: 256,
                ways: 2,
            },
            pht_bits: 12,
            ghr_bits: 8,
            dpf_entries: 0,
            lat: Latency {
                l1_hit: 3,
                l2_hit: 16,
                llc_hit: 16,
                dram: 140,
                writeback: 9,
                tlb_l2: 8,
                tlb_walk: 34,
                mispredict: 8,
                btb_miss: 5,
                bus_contend: 14,
                mode_switch: 170,
                manual_jump: 0,
                maint_per_line: 4,
            },
            l1_plru_noise: 0,
            page: 4096,
            switch_pad_us: 70.0,
        }
    }

    /// Number of page colours of the cache used for partitioning.
    ///
    /// On x86 the paper colours by the (smaller) per-core L2, which
    /// implicitly colours the LLC (§5.4.4); on Arm the L2 *is* the LLC.
    #[must_use]
    pub fn partition_colors(&self) -> u64 {
        self.l2.colors(self.page)
    }

    /// Number of colours of the last-level cache (per slice on x86).
    #[must_use]
    pub fn llc_colors(&self) -> u64 {
        match self.llc {
            Some(llc) => {
                let per_slice = CacheGeom {
                    size: llc.size / u64::from(self.llc_slices),
                    ..llc
                };
                per_slice.colors(self.page)
            }
            None => self.l2.colors(self.page),
        }
    }

    /// Convert microseconds to cycles on this platform.
    #[must_use]
    pub fn us_to_cycles(&self, us: f64) -> u64 {
        (us * self.freq_mhz as f64) as u64
    }

    /// Convert cycles to microseconds on this platform.
    #[must_use]
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_mhz as f64
    }

    /// Check the structural invariants every registered platform must
    /// satisfy. Returns every violation (empty = valid).
    ///
    /// * every cache level has a power-of-two set count, at least one
    ///   page colour, and the platform-wide line size;
    /// * TLB/BTB set counts are powers of two;
    /// * latencies are ordered `L1 ≤ L2 ≤ LLC ≤ DRAM`;
    /// * clock, core count, page size and switch padding are sane.
    #[must_use]
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        let mut err = |cond: bool, msg: String| {
            if !cond {
                errs.push(msg);
            }
        };
        let caches: Vec<(&str, CacheGeom)> = [
            Some(("L1-D", self.l1d)),
            Some(("L1-I", self.l1i)),
            Some(("L2", self.l2)),
            self.llc.map(|g| ("LLC", g)),
        ]
        .into_iter()
        .flatten()
        .collect();
        for (name, g) in &caches {
            err(
                g.sets().is_power_of_two(),
                format!("{name}: {} sets not a power of two", g.sets()),
            );
            err(
                g.colors(self.page) >= 1,
                format!("{name}: zero page colours"),
            );
            err(
                g.line == self.line,
                format!("{name}: line {} != platform line {}", g.line, self.line),
            );
            err(
                g.size % (g.line * u64::from(g.ways)) == 0,
                format!("{name}: size not set-aligned"),
            );
        }
        for (name, t) in [
            ("I-TLB", self.itlb),
            ("D-TLB", self.dtlb),
            ("L2-TLB", self.stlb),
            ("BTB", self.btb),
        ] {
            err(
                t.sets().is_power_of_two(),
                format!("{name}: {} sets not a power of two", t.sets()),
            );
        }
        if let Some(llc) = self.llc {
            err(self.llc_slices >= 1, "LLC present but zero slices".into());
            err(
                llc.size % u64::from(self.llc_slices.max(1)) == 0,
                "LLC size not divisible by slice count".into(),
            );
        }
        let l = &self.lat;
        err(
            l.l1_hit <= l.l2_hit,
            format!("L1 hit {} > L2 hit {}", l.l1_hit, l.l2_hit),
        );
        err(
            l.l2_hit <= l.llc_hit,
            format!("L2 hit {} > LLC hit {}", l.l2_hit, l.llc_hit),
        );
        err(
            l.llc_hit <= l.dram,
            format!("LLC hit {} > DRAM {}", l.llc_hit, l.dram),
        );
        err(self.freq_mhz > 0, "zero clock frequency".into());
        err(self.cores >= 1, "no cores".into());
        err(
            self.page.is_power_of_two(),
            format!("page size {} not a power of two", self.page),
        );
        err(
            self.switch_pad_us > 0.0,
            "non-positive switch padding".into(),
        );
        err(self.partition_colors() >= 1, "no partition colours".into());
        errs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haswell_geometry_matches_table1() {
        let c = PlatformConfig::haswell();
        assert_eq!(c.l1d.sets(), 64);
        assert_eq!(c.l2.sets(), 512);
        assert_eq!(c.llc.unwrap().sets(), 8192);
        // §2.3: colours = S / (w P). Haswell L2: 256K/(8*4K) = 8.
        assert_eq!(c.partition_colors(), 8);
        // §6.1: "32 vs 8 colours on our Haswell" — LLC per-slice colours.
        assert_eq!(c.llc_colors(), 32);
    }

    #[test]
    fn sabre_geometry_matches_table1() {
        let c = PlatformConfig::sabre();
        assert_eq!(c.l1d.sets(), 256);
        assert_eq!(c.l2.sets(), 2048);
        assert!(c.llc.is_none());
        // Sabre L2: 1M/(16*4K) = 16 colours.
        assert_eq!(c.partition_colors(), 16);
        assert_eq!(c.llc_colors(), 16);
    }

    #[test]
    fn unit_conversions_roundtrip() {
        let c = PlatformConfig::haswell();
        assert_eq!(c.us_to_cycles(1.0), 3400);
        assert!((c.cycles_to_us(3400) - 1.0).abs() < 1e-9);
        let a = PlatformConfig::sabre();
        assert_eq!(a.us_to_cycles(10.0), 8000);
    }

    #[test]
    fn colors_never_zero() {
        // Even a single-colour cache reports one colour.
        let g = CacheGeom {
            size: 32 * 1024,
            ways: 8,
            line: 64,
        };
        assert_eq!(g.colors(4096), 1);
    }

    #[test]
    fn skylake_doubles_haswell_partition_colors() {
        let c = PlatformConfig::skylake();
        assert_eq!(c.l2.sets(), 1024);
        assert_eq!(c.partition_colors(), 16);
        assert_eq!(c.llc.unwrap().sets(), 16384);
        // Non-inclusive 11 MiB LLC across 8 slices: 32 colours per slice.
        assert_eq!(c.llc_colors(), 32);
    }

    #[test]
    fn hikey_geometry() {
        let c = PlatformConfig::hikey();
        assert!(c.llc.is_none(), "the A53 L2 is the LLC");
        assert_eq!(c.l2.sets(), 512);
        assert_eq!(c.partition_colors(), 8);
        assert_eq!(c.dtlb.sets(), 1, "micro-TLB is fully associative");
    }

    #[test]
    fn registry_covers_all_and_keys_roundtrip() {
        assert_eq!(Platform::ALL.len(), 4);
        assert_eq!(Platform::PAPER, [Platform::Haswell, Platform::Sabre]);
        for p in Platform::ALL {
            assert_eq!(Platform::from_key(p.key()), Some(p));
            assert_eq!(p.config().platform, p);
        }
        assert_eq!(Platform::from_key("epyc"), None);
    }

    #[test]
    fn every_registered_platform_validates() {
        for p in Platform::ALL {
            let errs = p.config().validate();
            assert!(errs.is_empty(), "{}: {errs:?}", p.key());
        }
    }
}
