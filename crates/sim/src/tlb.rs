//! TLB model: first-level I/D TLBs backed by a unified second-level TLB.
//!
//! Entries are tagged with an ASID unless they are *global* mappings. The
//! distinction matters for the paper's Table 5: the baseline seL4 kernel
//! maps its own text globally, while a clone-capable ("colour-ready")
//! kernel must use per-ASID kernel mappings, which on the Sabre's 2-way
//! second-level TLB causes measurable extra conflict misses on IPC.

use crate::params::TlbGeom;
use crate::Asid;
use rand::rngs::StdRng;

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    vpn: u64,
    asid: u16,
    global: bool,
    valid: bool,
    stamp: u64,
}

/// Where a translation was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbLevel {
    /// Hit in the first-level TLB: no extra latency.
    L1,
    /// Hit in the second-level TLB.
    L2,
    /// Full miss: page-table walk required.
    Walk,
}

/// A single TLB array (used for I-TLB, D-TLB and the second level).
#[derive(Debug, Clone)]
pub struct TlbArray {
    name: &'static str,
    sets: usize,
    ways: usize,
    entries: Vec<Entry>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl TlbArray {
    /// Create an empty TLB with the given geometry.
    #[must_use]
    pub fn new(name: &'static str, geom: TlbGeom) -> Self {
        let sets = geom.sets() as usize;
        let ways = geom.ways as usize;
        TlbArray {
            name,
            sets,
            ways,
            entries: vec![Entry::default(); sets * ways],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The TLB name (for diagnostics).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn set_of(&self, vpn: u64) -> usize {
        (vpn % self.sets as u64) as usize
    }

    /// Look up `vpn` for `asid`; global entries match any ASID.
    pub fn lookup(&mut self, asid: Asid, vpn: u64) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(vpn);
        let base = set * self.ways;
        for e in &mut self.entries[base..base + self.ways] {
            if e.valid && e.vpn == vpn && (e.global || e.asid == asid.0) {
                e.stamp = clock;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Insert a translation, evicting the LRU way of the set.
    pub fn fill(&mut self, asid: Asid, vpn: u64, global: bool, _rng: &mut StdRng) {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(vpn);
        let base = set * self.ways;
        let slice = &mut self.entries[base..base + self.ways];
        let idx = slice
            .iter()
            .position(|e| !e.valid)
            .or_else(|| {
                slice
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.stamp)
                    .map(|(i, _)| i)
            })
            .unwrap_or(0);
        slice[idx] = Entry {
            vpn,
            asid: asid.0,
            global,
            valid: true,
            stamp: clock,
        };
    }

    /// Invalidate everything; returns the number of valid entries dropped.
    pub fn flush_all(&mut self) -> u64 {
        let mut n = 0;
        for e in &mut self.entries {
            if e.valid {
                n += 1;
                e.valid = false;
            }
        }
        n
    }

    /// Invalidate all non-global entries of one ASID.
    pub fn flush_asid(&mut self, asid: Asid) -> u64 {
        let mut n = 0;
        for e in &mut self.entries {
            if e.valid && !e.global && e.asid == asid.0 {
                n += 1;
                e.valid = false;
            }
        }
        n
    }

    /// Number of valid entries.
    #[must_use]
    pub fn valid_entries(&self) -> u64 {
        self.entries.iter().filter(|e| e.valid).count() as u64
    }

    /// Hit/miss counters `(hits, misses)`.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// The full per-core TLB hierarchy.
#[derive(Debug, Clone)]
pub struct TlbHierarchy {
    /// First-level instruction TLB.
    pub itlb: TlbArray,
    /// First-level data TLB.
    pub dtlb: TlbArray,
    /// Unified second-level TLB.
    pub stlb: TlbArray,
}

impl TlbHierarchy {
    /// Build the hierarchy from platform geometry.
    #[must_use]
    pub fn new(itlb: TlbGeom, dtlb: TlbGeom, stlb: TlbGeom) -> Self {
        TlbHierarchy {
            itlb: TlbArray::new("itlb", itlb),
            dtlb: TlbArray::new("dtlb", dtlb),
            stlb: TlbArray::new("stlb", stlb),
        }
    }

    /// Translate `vpn` for an instruction (`insn = true`) or data access,
    /// filling the missed levels. Returns where the translation was found.
    pub fn translate(
        &mut self,
        asid: Asid,
        vpn: u64,
        insn: bool,
        global: bool,
        rng: &mut StdRng,
    ) -> TlbLevel {
        let l1 = if insn { &mut self.itlb } else { &mut self.dtlb };
        if l1.lookup(asid, vpn) {
            return TlbLevel::L1;
        }
        if self.stlb.lookup(asid, vpn) {
            let l1 = if insn { &mut self.itlb } else { &mut self.dtlb };
            l1.fill(asid, vpn, global, rng);
            return TlbLevel::L2;
        }
        // Walk: fill both levels.
        self.stlb.fill(asid, vpn, global, rng);
        let l1 = if insn { &mut self.itlb } else { &mut self.dtlb };
        l1.fill(asid, vpn, global, rng);
        TlbLevel::Walk
    }

    /// Flush the complete hierarchy (Arm `TLBIALL`, x86 `invpcid` all).
    /// Returns entries dropped.
    pub fn flush_all(&mut self) -> u64 {
        self.itlb.flush_all() + self.dtlb.flush_all() + self.stlb.flush_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn hier() -> TlbHierarchy {
        TlbHierarchy::new(
            TlbGeom {
                entries: 4,
                ways: 2,
            },
            TlbGeom {
                entries: 4,
                ways: 2,
            },
            TlbGeom {
                entries: 8,
                ways: 2,
            },
        )
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn walk_then_l1_hit() {
        let mut t = hier();
        let mut r = rng();
        assert_eq!(
            t.translate(Asid(1), 100, false, false, &mut r),
            TlbLevel::Walk
        );
        assert_eq!(
            t.translate(Asid(1), 100, false, false, &mut r),
            TlbLevel::L1
        );
    }

    #[test]
    fn asid_isolation() {
        let mut t = hier();
        let mut r = rng();
        t.translate(Asid(1), 100, false, false, &mut r);
        // A different ASID must not hit a non-global entry.
        assert_eq!(
            t.translate(Asid(2), 100, false, false, &mut r),
            TlbLevel::Walk
        );
    }

    #[test]
    fn global_entries_match_all_asids() {
        let mut t = hier();
        let mut r = rng();
        t.translate(Asid(1), 100, false, true, &mut r);
        assert_eq!(
            t.translate(Asid(2), 100, false, false, &mut r),
            TlbLevel::L1
        );
    }

    #[test]
    fn l2_backs_l1_evictions() {
        let mut t = hier();
        let mut r = rng();
        // D-TLB has 2 sets x 2 ways; vpns 0,2,4 collide in set 0.
        for vpn in [0u64, 2, 4] {
            t.translate(Asid(1), vpn, false, false, &mut r);
        }
        // vpn 0 was evicted from the D-TLB but still lives in the L2 TLB.
        assert_eq!(t.translate(Asid(1), 0, false, false, &mut r), TlbLevel::L2);
    }

    #[test]
    fn flush_asid_spares_globals_and_others() {
        let mut t = hier();
        let mut r = rng();
        t.translate(Asid(1), 1, false, false, &mut r);
        t.translate(Asid(2), 2, false, false, &mut r);
        t.translate(Asid(1), 3, false, true, &mut r);
        t.dtlb.flush_asid(Asid(1));
        t.stlb.flush_asid(Asid(1));
        assert_eq!(
            t.translate(Asid(1), 1, false, false, &mut r),
            TlbLevel::Walk
        );
        assert_ne!(
            t.translate(Asid(2), 2, false, false, &mut r),
            TlbLevel::Walk
        );
        assert_ne!(
            t.translate(Asid(1), 3, false, false, &mut r),
            TlbLevel::Walk
        );
    }

    #[test]
    fn flush_all_empties() {
        let mut t = hier();
        let mut r = rng();
        for vpn in 0..4 {
            t.translate(Asid(1), vpn, vpn % 2 == 0, false, &mut r);
        }
        assert!(t.flush_all() > 0);
        assert_eq!(t.itlb.valid_entries(), 0);
        assert_eq!(t.dtlb.valid_entries(), 0);
        assert_eq!(t.stlb.valid_entries(), 0);
    }
}
