//! TLB model: first-level I/D TLBs backed by a unified second-level TLB.
//!
//! Entries are tagged with an ASID unless they are *global* mappings. The
//! distinction matters for the paper's Table 5: the baseline seL4 kernel
//! maps its own text globally, while a clone-capable ("colour-ready")
//! kernel must use per-ASID kernel mappings, which on the Sabre's 2-way
//! second-level TLB causes measurable extra conflict misses on IPC.

use crate::params::TlbGeom;
use crate::Asid;

/// One TLB entry, packed to 16 bytes (the lookup scan is on the simulator's
/// per-access hot path). `meta` packs the ASID (bits 0..16), the global
/// flag (bit 16) and the valid flag (bit 17); `stamp` is the recency clock
/// truncated to 32 bits, renormalised before it can wrap.
#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    vpn: u64,
    stamp: u32,
    meta: u32,
}

const META_GLOBAL: u32 = 1 << 16;
const META_VALID: u32 = 1 << 17;

impl Entry {
    #[inline]
    fn valid(self) -> bool {
        self.meta & META_VALID != 0
    }

    #[inline]
    fn global(self) -> bool {
        self.meta & META_GLOBAL != 0
    }

    #[inline]
    fn asid(self) -> u16 {
        self.meta as u16
    }
}

/// Where a translation was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbLevel {
    /// Hit in the first-level TLB: no extra latency.
    L1,
    /// Hit in the second-level TLB.
    L2,
    /// Full miss: page-table walk required.
    Walk,
}

/// A single TLB array (used for I-TLB, D-TLB and the second level).
#[derive(Debug, Clone)]
pub struct TlbArray {
    name: &'static str,
    sets: usize,
    ways: usize,
    /// `sets - 1` when the set count is a power of two: the per-access
    /// set-index computation is then a mask instead of a division.
    set_mask: Option<u64>,
    entries: Vec<Entry>,
    clock: u32,
    hits: u64,
    misses: u64,
}

impl TlbArray {
    /// Create an empty TLB with the given geometry.
    #[must_use]
    pub fn new(name: &'static str, geom: TlbGeom) -> Self {
        let sets = geom.sets() as usize;
        let ways = geom.ways as usize;
        TlbArray {
            name,
            sets,
            ways,
            set_mask: sets.is_power_of_two().then(|| sets as u64 - 1),
            entries: vec![Entry::default(); sets * ways],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The TLB name (for diagnostics).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    #[inline]
    fn set_of(&self, vpn: u64) -> usize {
        match self.set_mask {
            Some(m) => (vpn & m) as usize,
            None => (vpn % self.sets as u64) as usize,
        }
    }

    /// Renormalise recency stamps before the 32-bit clock wraps (every
    /// ~4G lookups); deterministic, and only relative order matters.
    fn tick(&mut self) -> u32 {
        if self.clock == u32::MAX {
            for e in &mut self.entries {
                e.stamp = 0;
            }
            self.clock = 0;
        }
        self.clock += 1;
        self.clock
    }

    /// Look up `vpn` for `asid`; global entries match any ASID.
    pub fn lookup(&mut self, asid: Asid, vpn: u64) -> bool {
        let clock = self.tick();
        let set = self.set_of(vpn);
        let base = set * self.ways;
        for e in &mut self.entries[base..base + self.ways] {
            if e.valid() && e.vpn == vpn && (e.global() || e.asid() == asid.0) {
                e.stamp = clock;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Fused lookup-or-fill: one pass that returns `true` on a hit and
    /// otherwise installs the translation into the first invalid (else
    /// LRU) way. The hierarchy walk fills every level it misses, so the
    /// separate lookup + fill pair would scan each set twice.
    pub fn access(&mut self, asid: Asid, vpn: u64, global: bool) -> bool {
        let clock = self.tick();
        let set = self.set_of(vpn);
        let base = set * self.ways;
        let slice = &mut self.entries[base..base + self.ways];
        let mut victim = 0usize;
        let mut best = u32::MAX;
        let mut found_invalid = false;
        for (i, e) in slice.iter_mut().enumerate() {
            if e.valid() {
                if e.vpn == vpn && (e.global() || e.asid() == asid.0) {
                    e.stamp = clock;
                    self.hits += 1;
                    return true;
                }
                if !found_invalid && e.stamp < best {
                    best = e.stamp;
                    victim = i;
                }
            } else if !found_invalid {
                found_invalid = true;
                victim = i;
            }
        }
        self.misses += 1;
        slice[victim] = Entry {
            vpn,
            stamp: clock,
            meta: u32::from(asid.0) | if global { META_GLOBAL } else { 0 } | META_VALID,
        };
        false
    }

    /// Insert a translation, evicting the LRU way of the set.
    pub fn fill(&mut self, asid: Asid, vpn: u64, global: bool) {
        let clock = self.tick();
        let set = self.set_of(vpn);
        let base = set * self.ways;
        let slice = &mut self.entries[base..base + self.ways];
        // One fused pass: first invalid way, else LRU (first minimum).
        let mut idx = 0usize;
        let mut best = u32::MAX;
        for (i, e) in slice.iter().enumerate() {
            if !e.valid() {
                idx = i;
                break;
            }
            if e.stamp < best {
                best = e.stamp;
                idx = i;
            }
        }
        slice[idx] = Entry {
            vpn,
            stamp: clock,
            meta: u32::from(asid.0) | if global { META_GLOBAL } else { 0 } | META_VALID,
        };
    }

    /// Invalidate everything; returns the number of valid entries dropped.
    pub fn flush_all(&mut self) -> u64 {
        let mut n = 0;
        for e in &mut self.entries {
            if e.valid() {
                n += 1;
                e.meta &= !META_VALID;
            }
        }
        n
    }

    /// Invalidate all non-global entries of one ASID.
    pub fn flush_asid(&mut self, asid: Asid) -> u64 {
        let mut n = 0;
        for e in &mut self.entries {
            if e.valid() && !e.global() && e.asid() == asid.0 {
                n += 1;
                e.meta &= !META_VALID;
            }
        }
        n
    }

    /// Number of valid entries.
    #[must_use]
    pub fn valid_entries(&self) -> u64 {
        self.entries.iter().filter(|e| e.valid()).count() as u64
    }

    /// Hit/miss counters `(hits, misses)`.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// The full per-core TLB hierarchy.
#[derive(Debug, Clone)]
pub struct TlbHierarchy {
    /// First-level instruction TLB.
    pub itlb: TlbArray,
    /// First-level data TLB.
    pub dtlb: TlbArray,
    /// Unified second-level TLB.
    pub stlb: TlbArray,
}

impl TlbHierarchy {
    /// Build the hierarchy from platform geometry.
    #[must_use]
    pub fn new(itlb: TlbGeom, dtlb: TlbGeom, stlb: TlbGeom) -> Self {
        TlbHierarchy {
            itlb: TlbArray::new("itlb", itlb),
            dtlb: TlbArray::new("dtlb", dtlb),
            stlb: TlbArray::new("stlb", stlb),
        }
    }

    /// Translate `vpn` for an instruction (`insn = true`) or data access,
    /// filling the missed levels. Returns where the translation was found.
    pub fn translate(&mut self, asid: Asid, vpn: u64, insn: bool, global: bool) -> TlbLevel {
        // Every missed level is filled, so each array uses the fused
        // single-pass lookup-or-fill.
        let l1 = if insn { &mut self.itlb } else { &mut self.dtlb };
        if l1.access(asid, vpn, global) {
            return TlbLevel::L1;
        }
        if self.stlb.access(asid, vpn, global) {
            TlbLevel::L2
        } else {
            TlbLevel::Walk
        }
    }

    /// Flush the complete hierarchy (Arm `TLBIALL`, x86 `invpcid` all).
    /// Returns entries dropped.
    pub fn flush_all(&mut self) -> u64 {
        self.itlb.flush_all() + self.dtlb.flush_all() + self.stlb.flush_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> TlbHierarchy {
        TlbHierarchy::new(
            TlbGeom {
                entries: 4,
                ways: 2,
            },
            TlbGeom {
                entries: 4,
                ways: 2,
            },
            TlbGeom {
                entries: 8,
                ways: 2,
            },
        )
    }

    #[test]
    fn walk_then_l1_hit() {
        let mut t = hier();
        assert_eq!(t.translate(Asid(1), 100, false, false), TlbLevel::Walk);
        assert_eq!(t.translate(Asid(1), 100, false, false), TlbLevel::L1);
    }

    #[test]
    fn asid_isolation() {
        let mut t = hier();
        t.translate(Asid(1), 100, false, false);
        // A different ASID must not hit a non-global entry.
        assert_eq!(t.translate(Asid(2), 100, false, false), TlbLevel::Walk);
    }

    #[test]
    fn global_entries_match_all_asids() {
        let mut t = hier();
        t.translate(Asid(1), 100, false, true);
        assert_eq!(t.translate(Asid(2), 100, false, false), TlbLevel::L1);
    }

    #[test]
    fn l2_backs_l1_evictions() {
        let mut t = hier();
        // D-TLB has 2 sets x 2 ways; vpns 0,2,4 collide in set 0.
        for vpn in [0u64, 2, 4] {
            t.translate(Asid(1), vpn, false, false);
        }
        // vpn 0 was evicted from the D-TLB but still lives in the L2 TLB.
        assert_eq!(t.translate(Asid(1), 0, false, false), TlbLevel::L2);
    }

    #[test]
    fn flush_asid_spares_globals_and_others() {
        let mut t = hier();
        t.translate(Asid(1), 1, false, false);
        t.translate(Asid(2), 2, false, false);
        t.translate(Asid(1), 3, false, true);
        t.dtlb.flush_asid(Asid(1));
        t.stlb.flush_asid(Asid(1));
        assert_eq!(t.translate(Asid(1), 1, false, false), TlbLevel::Walk);
        assert_ne!(t.translate(Asid(2), 2, false, false), TlbLevel::Walk);
        assert_ne!(t.translate(Asid(1), 3, false, false), TlbLevel::Walk);
    }

    #[test]
    fn flush_all_empties() {
        let mut t = hier();
        for vpn in 0..4 {
            t.translate(Asid(1), vpn, vpn % 2 == 0, false);
        }
        assert!(t.flush_all() > 0);
        assert_eq!(t.itlb.valid_entries(), 0);
        assert_eq!(t.dtlb.valid_entries(), 0);
        assert_eq!(t.stlb.valid_entries(), 0);
    }
}
