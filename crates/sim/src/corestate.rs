//! Per-core micro-architectural state.
//!
//! Everything in this struct is the "on-core state" of the paper's
//! Requirement 1: it is time-multiplexed between domains sharing the core
//! and must be flushed (or padded over) on a domain switch.
//!
//! Caches are modelled as physically indexed throughout. For the 32 KiB L1s
//! of both platforms the virtual and physical set index coincide for all
//! practical purposes (set bits fall inside or at most one bit above the
//! page offset), so the timing behaviour the attacks observe is unchanged;
//! the *consequence* of virtual indexing that matters to the paper — the OS
//! cannot colour L1s — is preserved because L1 set bits are (almost)
//! disjoint from frame-number bits.

use crate::branch::{Btb, HistoryPredictor};
use crate::cache::{Cache, Replacement};
use crate::params::PlatformConfig;
use crate::prefetch::{InsnPrefetcher, StreamPrefetcher};
use crate::tlb::TlbHierarchy;

/// The kind of memory access, for statistics and latency selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Data load.
    Load,
    /// Data store.
    Store,
    /// Instruction fetch.
    Fetch,
}

/// All time-multiplexed on-core state plus the core's cycle counter.
/// `Clone` is part of the snapshot/restore contract: a cloned core resumes
/// bit-identically (see [`crate::machine::Machine`]).
#[derive(Debug, Clone)]
pub struct CoreState {
    /// Core index.
    pub id: usize,
    /// The core-local cycle counter (the attacker's clock).
    pub cycles: u64,
    /// L1 data cache.
    pub l1d: Cache,
    /// L1 instruction cache.
    pub l1i: Cache,
    /// Private unified L2 (x86 only; on Arm the L2 is the shared LLC).
    pub l2: Option<Cache>,
    /// TLB hierarchy.
    pub tlb: TlbHierarchy,
    /// Branch target buffer.
    pub btb: Btb,
    /// Global-history direction predictor (BHB + PHT).
    pub bhb: HistoryPredictor,
    /// Stream data prefetcher.
    pub dpf: StreamPrefetcher,
    /// Instruction prefetcher.
    pub ipf: InsnPrefetcher,
}

impl CoreState {
    /// Create pristine on-core state for `id` on the given platform.
    #[must_use]
    pub fn new(id: usize, cfg: &PlatformConfig) -> Self {
        let l1_policy = if cfg.l1_plru_noise > 0 {
            Replacement::PseudoLru {
                noise: cfg.l1_plru_noise,
            }
        } else {
            Replacement::Lru
        };
        CoreState {
            id,
            cycles: 0,
            l1d: Cache::new("l1d", cfg.l1d, l1_policy),
            l1i: Cache::new("l1i", cfg.l1i, l1_policy),
            l2: cfg.llc.map(|_| Cache::new("l2", cfg.l2, Replacement::Lru)),
            tlb: TlbHierarchy::new(cfg.itlb, cfg.dtlb, cfg.stlb),
            btb: Btb::new(cfg.btb),
            bhb: HistoryPredictor::new(cfg.ghr_bits, cfg.pht_bits),
            dpf: StreamPrefetcher::new(cfg.dpf_entries),
            ipf: InsnPrefetcher::new(),
        }
    }

    /// Advance the cycle counter.
    pub fn advance(&mut self, cycles: u64) {
        self.cycles += cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Platform;

    #[test]
    fn haswell_core_has_private_l2() {
        let cfg = Platform::Haswell.config();
        let core = CoreState::new(0, &cfg);
        assert!(core.l2.is_some());
        assert_eq!(core.l1d.num_sets(), 64);
    }

    #[test]
    fn sabre_core_has_no_private_l2() {
        let cfg = Platform::Sabre.config();
        let core = CoreState::new(0, &cfg);
        assert!(core.l2.is_none());
        assert_eq!(core.l1d.num_sets(), 256);
    }
}
