//! The simulator's noise stream: a counter-based SplitMix64 generator.
//!
//! Every probed cache line used to pay for a ChaCha-based `StdRng`
//! draws even when the replacement policy was plain LRU. The hot path now
//! draws from this stream instead: SplitMix64 is a handful of integer
//! operations per value, and — crucially — it is *counter-based*: the `i`-th
//! value of a stream is a pure function of `(seed, i)` (see [`nth`]), so the
//! sequence a simulation consumes depends only on how many draws happened
//! before, never on host threading or wall-clock. That is what makes results
//! bit-identical for every `TP_THREADS` value: each [`crate::Machine`] owns
//! one stream seeded from the experiment seed, and the sequence of draws is
//! fixed by the sequence of simulated events.
//!
//! Policies that need no randomness (strict LRU, invalid-way fills) consume
//! nothing from the stream.

/// The SplitMix64 increment (the 64-bit golden ratio).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Finalising mixer of SplitMix64 (Stafford variant 13).
#[inline]
#[must_use]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `i`-th value (0-based) of the stream seeded with `seed` — the
/// closed form of [`NoiseRng::next_u64`]. Exists so tests (and any future
/// parallel consumer) can compute stream values out of order and prove the
/// stream is position-determined.
#[inline]
#[must_use]
pub fn nth(seed: u64, i: u64) -> u64 {
    mix(seed.wrapping_add(GOLDEN.wrapping_mul(i.wrapping_add(1))))
}

/// A deterministic, seedable, counter-based noise stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoiseRng {
    state: u64,
    /// Fault-injection countdown: when `Some(n)`, the stream panics on the
    /// `n`-th draw from now. `None` (the default, and the only state any
    /// non-chaos run ever sees) is free: one branch on the hot path.
    poison_in: Option<u64>,
}

impl NoiseRng {
    /// A stream seeded with `seed`.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        NoiseRng {
            state: seed,
            poison_in: None,
        }
    }

    /// Arm the poison fault: the stream panics after `draws` further draws.
    /// Deterministic by construction — the countdown is in stream positions,
    /// which depend only on the simulated event sequence.
    pub fn poison_after(&mut self, draws: u64) {
        self.poison_in = Some(draws);
    }

    /// The next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        if let Some(left) = self.poison_in {
            assert!(
                left > 0,
                "injected fault: noise-poison (stream exhausted its armed budget)"
            );
            self.poison_in = Some(left - 1);
        }
        self.state = self.state.wrapping_add(GOLDEN);
        mix(self.state)
    }

    /// The next value as a byte (top bits — best-mixed).
    #[inline]
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// A value uniform in `[0, n)`. The tiny modulo bias (`n` is at most a
    /// few hundred everywhere in the simulator) is far below the modelled
    /// jitter amplitudes.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_matches_closed_form() {
        let mut r = NoiseRng::seeded(0xDEAD_BEEF);
        for i in 0..100 {
            assert_eq!(r.next_u64(), nth(0xDEAD_BEEF, i));
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = NoiseRng::seeded(1);
        let mut b = NoiseRng::seeded(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = NoiseRng::seeded(7);
        let mut seen = [false; 6];
        for _ in 0..256 {
            let v = r.below(6);
            assert!(v < 6);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn poison_fires_after_exactly_n_draws() {
        let mut r = NoiseRng::seeded(0xDEAD_BEEF);
        r.poison_after(5);
        for i in 0..5 {
            // The armed stream yields the same values as the clean stream
            // right up to the fault point.
            assert_eq!(r.next_u64(), nth(0xDEAD_BEEF, i));
        }
        let err = std::panic::catch_unwind(move || r.next_u64()).expect_err("draw 6 must panic");
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("noise-poison"), "unexpected payload: {msg}");
    }

    #[test]
    fn bytes_are_not_degenerate() {
        let mut r = NoiseRng::seeded(3);
        let mut counts = [0usize; 2];
        for _ in 0..1024 {
            counts[(r.next_u8() & 1) as usize] += 1;
        }
        assert!(counts[0] > 300 && counts[1] > 300, "{counts:?}");
    }
}
