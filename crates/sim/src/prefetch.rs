//! Prefetcher state machines.
//!
//! These are the villains of the paper's §5.3.2: on Haswell, the *data
//! prefetcher* retains stride-stream state across a domain switch because no
//! architected mechanism resets it short of `wbinvd` or disabling it via MSR
//! 0x1A4. The result is the residual ~50 mb protected-mode L2 channel in
//! Table 3, which shrinks (to ~6 mb) when the data prefetcher is disabled —
//! the remainder being attributed to the *instruction prefetcher*, which
//! cannot be disabled at all.
//!
//! The model: a table of stride streams trained by demand misses. Prefetches
//! fill the next lines of a stream into the L2 (helping sequential
//! workloads). After a domain switch the stale streams of the previous
//! domain *resume* on the first demand misses of the new domain, consuming
//! fill bandwidth proportional to the number of live trained streams — a
//! timing signature of the previous domain's working set.

use crate::FRAME_SIZE;

/// Number of lines a confident stream prefetches ahead.
pub const PREFETCH_DEGREE: u64 = 2;

/// Up to [`PREFETCH_DEGREE`] prefetch target lines, stored inline.
///
/// Returned by [`StreamPrefetcher::on_demand_miss`], which sits on the
/// simulator's per-access hot path — an inline buffer keeps the miss path
/// free of heap allocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchLines {
    buf: [u64; PREFETCH_DEGREE as usize],
    len: usize,
}

impl PrefetchLines {
    /// Append a line address.
    ///
    /// # Panics
    /// Panics if already full ([`PREFETCH_DEGREE`] entries).
    pub fn push(&mut self, line_addr: u64) {
        self.buf[self.len] = line_addr;
        self.len += 1;
    }

    /// Number of prefetch targets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no prefetch targets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The prefetch target lines.
    #[must_use]
    pub fn as_slice(&self) -> &[u64] {
        &self.buf[..self.len]
    }
}

impl<'a> IntoIterator for &'a PrefetchLines {
    type Item = &'a u64;
    type IntoIter = std::slice::Iter<'a, u64>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Confidence threshold before a stream issues prefetches.
const CONFIDENCE_THRESHOLD: u8 = 2;

/// How many resumed prefetches each stale stream issues after a domain
/// switch before the table is retrained.
const RESUME_PER_STREAM: u64 = 2;

#[derive(Debug, Clone, Copy)]
struct Stream {
    page: u64,
    last_line: i64,
    stride: i64,
    confidence: u8,
    stamp: u64,
    /// Furthest line (in stride direction) already prefetched, so a
    /// confident stream does not re-issue fills for targets it covered on
    /// the previous miss — real prefetchers track outstanding requests the
    /// same way, and on a monotone sweep this halves the fill traffic.
    last_pf: i64,
}

/// A stride-detecting stream data prefetcher.
///
/// The stream table is direct-mapped by page number (as hardware stream
/// tables are hash-indexed): lookup and allocation are O(1) on the miss
/// path, and a page whose slot is taken simply retrains the slot.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    entries: Vec<Option<Stream>>,
    capacity: usize,
    enabled: bool,
    clock: u64,
    /// Budget of stale-stream resumptions outstanding since the last
    /// domain switch (see [`StreamPrefetcher::note_domain_switch`]).
    resume_budget: u64,
    issued: u64,
}

impl StreamPrefetcher {
    /// Create a prefetcher with `capacity` stream entries. A capacity of 0
    /// disables prefetching entirely (the Sabre model).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        StreamPrefetcher {
            entries: vec![None; capacity],
            capacity,
            enabled: capacity > 0,
            clock: 0,
            resume_budget: 0,
            issued: 0,
        }
    }

    /// Enable or disable the prefetcher (MSR 0x1A4 on Intel; §5.2's full
    /// flush scenario disables it). Disabling clears all stream state.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled && self.capacity > 0;
        if !self.enabled {
            self.entries.fill(None);
            self.resume_budget = 0;
        }
    }

    /// Whether prefetching is currently active.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Reset all stream state (part of a full hierarchy flush).
    pub fn reset(&mut self) {
        self.entries.fill(None);
        self.resume_budget = 0;
    }

    /// Number of streams trained to confidence.
    #[must_use]
    pub fn trained_streams(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .filter(|s| s.confidence >= CONFIDENCE_THRESHOLD)
            .count()
    }

    /// Total prefetch lines issued (for statistics).
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Inform the prefetcher that the OS switched security domains.
    ///
    /// The hardware has no such notion — this models the *consequence*: the
    /// stale streams trained by the previous domain will fire their
    /// resumption prefetches against the new domain's first demand misses.
    pub fn note_domain_switch(&mut self) {
        self.resume_budget = self.trained_streams() as u64 * RESUME_PER_STREAM;
    }

    /// Record a demand miss for `paddr`. Returns
    /// `(prefetch_lines, resumed)`: line addresses to fill into the L2, and
    /// the number of stale-stream resumption prefetches that fired (each of
    /// which costs the demand miss fill bandwidth).
    pub fn on_demand_miss(&mut self, paddr: u64, line_size: u64) -> (PrefetchLines, u64) {
        if !self.enabled {
            return (PrefetchLines::default(), 0);
        }
        self.clock += 1;
        let clock = self.clock;
        let page = paddr / FRAME_SIZE;
        let line = ((paddr % FRAME_SIZE) / line_size) as i64;
        let lines_per_page = (FRAME_SIZE / line_size) as i64;

        // Stale-stream resumption: consume budget on this miss.
        let resumed = self.resume_budget.min(RESUME_PER_STREAM);
        self.resume_budget -= resumed;

        let mut prefetches = PrefetchLines::default();
        let slot = (page % self.capacity as u64) as usize;
        match &mut self.entries[slot] {
            Some(s) if s.page == page => {
                let stride = line - s.last_line;
                if stride != 0 && stride == s.stride {
                    s.confidence = (s.confidence + 1).min(4);
                } else if stride != 0 {
                    // Direction/stride change: restart the covered-target
                    // watermark from the current position.
                    s.stride = stride;
                    s.confidence = 1;
                    s.last_pf = line;
                }
                s.last_line = line;
                s.stamp = clock;
                if s.confidence >= CONFIDENCE_THRESHOLD {
                    for k in 1..=PREFETCH_DEGREE as i64 {
                        let next = line + s.stride * k;
                        let fresh = if s.stride > 0 {
                            next > s.last_pf
                        } else {
                            next < s.last_pf
                        };
                        if fresh && (0..lines_per_page).contains(&next) {
                            prefetches.push(page * (FRAME_SIZE / line_size) + next as u64);
                            s.last_pf = next;
                            self.issued += 1;
                        }
                    }
                }
            }
            e => {
                // Allocate (or retrain a colliding slot).
                *e = Some(Stream {
                    page,
                    last_line: line,
                    stride: 0,
                    confidence: 0,
                    stamp: clock,
                    last_pf: line,
                });
            }
        }
        (prefetches, resumed)
    }
}

/// Next-line instruction prefetcher.
///
/// Unlike the data prefetcher it cannot be disabled — the paper attributes
/// the final, unclosable few-millibit residue of the x86 L2 channel to it.
#[derive(Debug, Clone)]
pub struct InsnPrefetcher {
    last_line: Option<u64>,
    /// Stale fetch-region state pending after a domain switch.
    resume_budget: u64,
}

impl InsnPrefetcher {
    /// Create an instruction prefetcher with no history.
    #[must_use]
    pub fn new() -> Self {
        InsnPrefetcher {
            last_line: None,
            resume_budget: 0,
        }
    }

    /// Note a domain switch: a small amount of stale fetch-region state
    /// remains live.
    pub fn note_domain_switch(&mut self) {
        self.resume_budget = if self.last_line.is_some() { 2 } else { 0 };
    }

    /// Record an instruction-fetch miss of line `line_addr`.
    /// Returns `(next_line_prefetch, resumed)`.
    pub fn on_fetch_miss(&mut self, line_addr: u64) -> (Option<u64>, u64) {
        let sequential = self.last_line == Some(line_addr.wrapping_sub(1));
        self.last_line = Some(line_addr);
        let resumed = self.resume_budget.min(1);
        self.resume_budget -= resumed;
        let pf = if sequential {
            Some(line_addr + 1)
        } else {
            None
        };
        (pf, resumed)
    }

    /// Reset state (full flush only).
    pub fn reset(&mut self) {
        self.last_line = None;
        self.resume_budget = 0;
    }
}

impl Default for InsnPrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_stream_trains_and_prefetches() {
        let mut p = StreamPrefetcher::new(16);
        let line = 64;
        // Sequential misses within one page.
        let (pf, _) = p.on_demand_miss(0x1000, line);
        assert!(pf.is_empty(), "untrained stream must not prefetch");
        let (pf, _) = p.on_demand_miss(0x1000 + 64, line);
        assert!(pf.is_empty(), "confidence 1 is below threshold");
        let (pf, _) = p.on_demand_miss(0x1000 + 128, line);
        assert_eq!(pf.len() as u64, PREFETCH_DEGREE);
        assert_eq!(p.trained_streams(), 1);
    }

    #[test]
    fn prefetch_stays_within_page() {
        let mut p = StreamPrefetcher::new(16);
        let line = 64;
        let last = 0x1000 + 4096 - 64;
        p.on_demand_miss(last - 128, line);
        p.on_demand_miss(last - 64, line);
        let (pf, _) = p.on_demand_miss(last, line);
        assert!(pf.is_empty(), "no prefetch beyond the page boundary");
    }

    #[test]
    fn table_capacity_is_bounded() {
        let mut p = StreamPrefetcher::new(4);
        for page in 0..32u64 {
            // Two misses per page to create entries.
            p.on_demand_miss(page * 4096, 64);
            p.on_demand_miss(page * 4096 + 64, 64);
        }
        assert!(p.trained_streams() <= 4);
    }

    #[test]
    fn stale_streams_resume_after_domain_switch() {
        let mut p = StreamPrefetcher::new(16);
        // Train 3 streams.
        for page in 0..3u64 {
            for l in 0..3u64 {
                p.on_demand_miss(page * 4096 + l * 64, 64);
            }
        }
        assert_eq!(p.trained_streams(), 3);
        p.note_domain_switch();
        // The receiver's first misses pay for the stale streams.
        let mut resumed_total = 0;
        for l in 0..8u64 {
            let (_, r) = p.on_demand_miss(0x100_0000 + l * 4096, 64);
            resumed_total += r;
        }
        assert_eq!(resumed_total, 6, "2 resumptions per trained stream");
    }

    #[test]
    fn disabled_prefetcher_is_inert() {
        let mut p = StreamPrefetcher::new(16);
        for l in 0..4u64 {
            p.on_demand_miss(l * 64, 64);
        }
        p.set_enabled(false);
        p.note_domain_switch();
        let (pf, resumed) = p.on_demand_miss(0x9000, 64);
        assert!(pf.is_empty());
        assert_eq!(resumed, 0);
        assert_eq!(p.trained_streams(), 0);
    }

    #[test]
    fn insn_prefetcher_next_line() {
        let mut p = InsnPrefetcher::new();
        assert_eq!(p.on_fetch_miss(100).0, None);
        assert_eq!(p.on_fetch_miss(101).0, Some(102));
        assert_eq!(p.on_fetch_miss(200).0, None);
    }

    #[test]
    fn insn_prefetcher_resumes_once() {
        let mut p = InsnPrefetcher::new();
        p.on_fetch_miss(100);
        p.note_domain_switch();
        let (_, r1) = p.on_fetch_miss(500);
        let (_, r2) = p.on_fetch_miss(600);
        let (_, r3) = p.on_fetch_miss(700);
        assert_eq!(r1 + r2 + r3, 2);
    }
}
