//! The multi-core machine: cores, shared last-level cache, memory bus.
//!
//! All timed operations go through [`Machine`]: data accesses, instruction
//! fetches and branches. Each returns (and internally accounts) the cycle
//! cost on the issuing core, walking TLB → L1 → L2 → LLC → DRAM with the
//! platform's latency table, dirty write-backs, prefetcher interaction and
//! cross-core bus contention.

use crate::cache::{phys_set, phys_tag, Cache, Replacement};
use crate::corestate::{AccessKind, CoreState};
use crate::params::PlatformConfig;
use crate::tlb::TlbLevel;
use crate::{Asid, PAddr, VAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Extra latency charged to a demand miss per resumed stale prefetch
/// stream (the §5.3.2 residual-channel mechanism).
const PREFETCH_RESUME_COST: u64 = 12;

/// Window (in cycles) within which another core's DRAM access contends.
const BUS_WINDOW: u64 = 400;

/// Maximum number of contending accesses counted per DRAM access.
const BUS_MAX_CONTENDERS: u64 = 6;

/// Where in the hierarchy an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// L1 hit.
    L1,
    /// Private L2 hit (x86).
    L2,
    /// Shared LLC hit.
    Llc,
    /// DRAM access.
    Dram,
}

/// The slice-selection hash: XOR-fold of the line address (a simplified
/// Intel LLC slice hash). Public so attackers can reconstruct slice
/// placement during their (untimed) eviction-set profiling phase, as the
/// reverse-engineered hash of Yarom et al. (2015) allows on real hardware.
#[must_use]
pub fn slice_index(line_addr: u64, slices: u64) -> usize {
    if slices <= 1 {
        return 0;
    }
    let h = line_addr ^ (line_addr >> 7) ^ (line_addr >> 13) ^ (line_addr >> 19);
    (h % slices) as usize
}

/// The simulated machine.
#[derive(Debug)]
pub struct Machine {
    /// Platform configuration.
    pub cfg: PlatformConfig,
    /// Per-core state.
    pub cores: Vec<CoreState>,
    /// Shared last-level cache slices (the LLC on x86, the L2 on Arm).
    shared: Vec<Cache>,
    rng: StdRng,
    /// Recent DRAM accesses: (issuing core's cycle stamp, core id).
    bus: VecDeque<(u64, usize)>,
    dram_accesses: u64,
}

impl Machine {
    /// Build a machine with pristine state and a deterministic RNG seed.
    #[must_use]
    pub fn new(cfg: PlatformConfig, seed: u64) -> Self {
        let slices = if cfg.llc.is_some() { cfg.llc_slices } else { 1 };
        let slice_geom = match cfg.llc {
            Some(llc) => crate::params::CacheGeom {
                size: llc.size / u64::from(slices),
                ways: llc.ways,
                line: llc.line,
            },
            None => cfg.l2,
        };
        let shared = (0..slices)
            .map(|_| Cache::new("llc", slice_geom, Replacement::Lru))
            .collect();
        let cores = (0..cfg.cores).map(|i| CoreState::new(i, &cfg)).collect();
        Machine {
            cfg,
            cores,
            shared,
            rng: StdRng::seed_from_u64(seed),
            bus: VecDeque::new(),
            dram_accesses: 0,
        }
    }

    /// The per-slice geometry of the shared cache.
    #[must_use]
    pub fn shared_geom(&self) -> crate::params::CacheGeom {
        self.shared[0].geom()
    }

    /// Which LLC slice a physical address maps to (hash-distributed on
    /// x86, single slice on Arm).
    #[must_use]
    pub fn slice_of(&self, pa: PAddr) -> usize {
        slice_index(pa.0 / self.cfg.line, self.shared.len() as u64)
    }

    /// The set index within its slice that `pa` maps to in the shared cache.
    #[must_use]
    pub fn shared_set_of(&self, pa: PAddr) -> usize {
        phys_set(self.shared_geom(), pa.0)
    }

    /// Immutable view of a shared-cache slice (tests and diagnostics).
    #[must_use]
    pub fn shared_slice(&self, idx: usize) -> &Cache {
        &self.shared[idx]
    }

    /// Number of shared-cache slices.
    #[must_use]
    pub fn num_slices(&self) -> usize {
        self.shared.len()
    }

    pub(crate) fn shared_mut(&mut self) -> &mut Vec<Cache> {
        &mut self.shared
    }

    /// Current cycle counter of `core`.
    #[must_use]
    pub fn cycles(&self, core: usize) -> u64 {
        self.cores[core].cycles
    }

    /// Advance `core`'s cycle counter by `n` (pure compute).
    pub fn advance(&mut self, core: usize, n: u64) {
        self.cores[core].advance(n);
    }

    /// Total DRAM accesses (diagnostics).
    #[must_use]
    pub fn dram_accesses(&self) -> u64 {
        self.dram_accesses
    }

    /// Deterministic RNG for components that need randomness outside the
    /// machine (e.g. attack input generation should *not* use this — it
    /// draws from the machine's noise stream).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn bus_contention(&mut self, core: usize) -> u64 {
        let now = self.cores[core].cycles;
        while let Some(&(t, _)) = self.bus.front() {
            if t + 4 * BUS_WINDOW < now {
                self.bus.pop_front();
            } else {
                break;
            }
        }
        let contenders = self
            .bus
            .iter()
            .filter(|&&(t, c)| c != core && t + BUS_WINDOW >= now)
            .count() as u64;
        self.bus.push_back((now, core));
        if self.bus.len() > 512 {
            self.bus.pop_front();
        }
        contenders.min(BUS_MAX_CONTENDERS) * self.cfg.lat.bus_contend
    }

    /// Back-invalidate a line evicted from the inclusive shared cache from
    /// every core's private caches.
    fn back_invalidate(&mut self, line_addr: u64) {
        let line = self.cfg.line;
        let pa = line_addr * line;
        for core in &mut self.cores {
            let set = phys_set(core.l1d.geom(), pa);
            let tag = phys_tag(core.l1d.geom(), pa);
            core.l1d.invalidate_line(set, tag);
            let set = phys_set(core.l1i.geom(), pa);
            let tag = phys_tag(core.l1i.geom(), pa);
            core.l1i.invalidate_line(set, tag);
            if let Some(l2) = &mut core.l2 {
                let set = phys_set(l2.geom(), pa);
                let tag = phys_tag(l2.geom(), pa);
                l2.invalidate_line(set, tag);
            }
        }
    }

    /// Fill `pa` into the shared cache without charging latency (prefetch
    /// path). Evictions still back-invalidate.
    fn shared_fill(&mut self, pa: PAddr, write: bool) {
        let slice = self.slice_of(pa);
        let geom = self.shared[slice].geom();
        let set = phys_set(geom, pa.0);
        let tag = phys_tag(geom, pa.0);
        let line_addr = pa.0 / geom.line;
        let out = self.shared[slice].access(set, tag, line_addr, write, &mut self.rng);
        if let Some(ev) = out.evicted {
            // The evicted line address is within-slice; reconstruct only for
            // back-invalidation, where the (set, tag) pair per private cache
            // is derived from a canonical address. Slice-local reconstruction
            // is exact because set+tag encode the full line address.
            self.back_invalidate(ev.line_addr);
        }
    }

    /// A data access: walk the hierarchy, account all costs, return the
    /// cycles consumed. `global` marks a global (kernel) mapping in the TLB.
    pub fn data_access(
        &mut self,
        core: usize,
        asid: Asid,
        va: VAddr,
        pa: PAddr,
        write: bool,
        global: bool,
    ) -> u64 {
        let _ = va; // Physically-indexed model; see corestate docs.
        self.timed_access(core, asid, pa, write, global, AccessKind::if_write(write))
    }

    /// An instruction fetch at `pa`.
    pub fn insn_fetch(
        &mut self,
        core: usize,
        asid: Asid,
        va: VAddr,
        pa: PAddr,
        global: bool,
    ) -> u64 {
        let _ = va;
        self.timed_access(core, asid, pa, false, global, AccessKind::Fetch)
    }

    fn timed_access(
        &mut self,
        core: usize,
        asid: Asid,
        pa: PAddr,
        write: bool,
        global: bool,
        kind: AccessKind,
    ) -> u64 {
        let lat = self.cfg.lat;
        let line = self.cfg.line;
        let mut cost = 0u64;

        // 1. Translation timing.
        let insn = kind == AccessKind::Fetch;
        let level = {
            let c = &mut self.cores[core];
            c.tlb
                .translate(asid, pa.0 / crate::FRAME_SIZE, insn, global, &mut self.rng)
        };
        cost += match level {
            TlbLevel::L1 => 0,
            TlbLevel::L2 => lat.tlb_l2,
            TlbLevel::Walk => lat.tlb_walk,
        };

        // 2. L1.
        let l1_geom = if insn {
            self.cores[core].l1i.geom()
        } else {
            self.cores[core].l1d.geom()
        };
        let set = phys_set(l1_geom, pa.0);
        let tag = phys_tag(l1_geom, pa.0);
        let line_addr = pa.0 / line;
        let l1_out = {
            let c = &mut self.cores[core];
            let l1 = if insn { &mut c.l1i } else { &mut c.l1d };
            l1.access(set, tag, line_addr, write, &mut self.rng)
        };
        cost += lat.l1_hit;
        if l1_out.hit {
            self.cores[core].advance(cost);
            return cost;
        }
        if l1_out.writeback {
            cost += lat.writeback;
        }

        // Prefetcher hooks fire on L1 misses. The targets live in a small
        // inline buffer — this path runs on every miss and must not
        // allocate.
        let mut prefetch_fills = crate::prefetch::PrefetchLines::default();
        if insn {
            let (pf, resumed) = self.cores[core].ipf.on_fetch_miss(line_addr);
            cost += resumed * PREFETCH_RESUME_COST;
            if let Some(l) = pf {
                prefetch_fills.push(l);
            }
        } else {
            let (pf, resumed) = self.cores[core].dpf.on_demand_miss(pa.0, line);
            cost += resumed * PREFETCH_RESUME_COST;
            prefetch_fills = pf;
        }

        // 3. Private L2 (x86).
        let mut l2_hit = false;
        if self.cores[core].l2.is_some() {
            let geom = self.cores[core].l2.as_ref().unwrap().geom();
            let set = phys_set(geom, pa.0);
            let tag = phys_tag(geom, pa.0);
            let out = {
                let c = &mut self.cores[core];
                c.l2.as_mut()
                    .unwrap()
                    .access(set, tag, line_addr, write, &mut self.rng)
            };
            cost += lat.l2_hit;
            if out.writeback {
                cost += lat.writeback;
            }
            l2_hit = out.hit;
        }

        // 4. Shared cache.
        let mut dram = false;
        if !l2_hit {
            let slice = self.slice_of(pa);
            let geom = self.shared[slice].geom();
            let set = phys_set(geom, pa.0);
            let tag = phys_tag(geom, pa.0);
            let out = self.shared[slice].access(set, tag, line_addr, write, &mut self.rng);
            cost += if self.cores[core].l2.is_some() {
                lat.llc_hit
            } else {
                lat.l2_hit
            };
            if out.writeback {
                cost += lat.writeback;
            }
            if let Some(ev) = out.evicted {
                self.back_invalidate(ev.line_addr);
            }
            if !out.hit {
                dram = true;
            }
        }

        // 5. DRAM with bus contention and a little jitter.
        if dram {
            self.dram_accesses += 1;
            cost += lat.dram;
            cost += self.bus_contention(core);
            cost += self.rng.gen_range(0..6u64);
        }

        // Prefetch fills go into L2 + shared, free of charge to this access.
        for &la in &prefetch_fills {
            let fpa = PAddr(la * line);
            if let Some(l2) = &mut self.cores[core].l2 {
                let geom = l2.geom();
                let s = phys_set(geom, fpa.0);
                let t = phys_tag(geom, fpa.0);
                l2.access(s, t, la, false, &mut self.rng);
            }
            self.shared_fill(fpa, false);
        }

        self.cores[core].advance(cost);
        cost
    }

    /// Execute a branch instruction at `pc`; returns the cycle cost.
    pub fn branch(
        &mut self,
        core: usize,
        pc: VAddr,
        target: VAddr,
        taken: bool,
        conditional: bool,
    ) -> u64 {
        let lat = self.cfg.lat;
        let mut cost = 1;
        let c = &mut self.cores[core];
        let btb_hit = c.btb.access(pc.0, target.0, &mut self.rng);
        if taken && !btb_hit {
            cost += lat.btb_miss;
        }
        if conditional {
            let correct = c.bhb.predict_update(pc.0, taken);
            if !correct {
                cost += lat.mispredict;
            }
        }
        c.advance(cost);
        cost
    }

    /// Tell prefetchers a security-domain switch happened on `core` (stale
    /// stream state remains live; see [`crate::prefetch`]).
    pub fn note_domain_switch(&mut self, core: usize) {
        let c = &mut self.cores[core];
        c.dpf.note_domain_switch();
        c.ipf.note_domain_switch();
    }
}

impl AccessKind {
    fn if_write(write: bool) -> AccessKind {
        if write {
            AccessKind::Store
        } else {
            AccessKind::Load
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Platform;

    fn pa(x: u64) -> PAddr {
        PAddr(x)
    }
    fn va(x: u64) -> VAddr {
        VAddr(x)
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        let c1 = m.data_access(0, Asid(1), va(0x1000), pa(0x1000), false, false);
        let c2 = m.data_access(0, Asid(1), va(0x1000), pa(0x1000), false, false);
        assert!(
            c1 > c2,
            "cold miss ({c1}) must cost more than L1 hit ({c2})"
        );
        assert_eq!(c2, m.cfg.lat.l1_hit);
    }

    #[test]
    fn cycle_counter_advances() {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        let c = m.data_access(0, Asid(1), va(0x1000), pa(0x1000), false, false);
        assert_eq!(m.cycles(0), c);
        m.advance(0, 10);
        assert_eq!(m.cycles(0), c + 10);
    }

    #[test]
    fn llc_visible_across_cores() {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        // Core 0 pulls a line into the (shared, inclusive) LLC.
        m.data_access(0, Asid(1), va(0x2000), pa(0x2000), false, false);
        // Core 1 misses its private caches but hits the LLC: cheaper than
        // core 1 pulling an uncached line from DRAM.
        let llc_hit = m.data_access(1, Asid(1), va(0x2000), pa(0x2000), false, false);
        let dram = m.data_access(1, Asid(1), va(0x8000_0000), pa(0x8000_0000), false, false);
        assert!(llc_hit < dram, "LLC hit {llc_hit} vs DRAM {dram}");
    }

    #[test]
    fn arm_l2_is_shared() {
        let mut m = Machine::new(Platform::Sabre.config(), 1);
        m.data_access(0, Asid(1), va(0x3000), pa(0x3000), false, false);
        let shared_hit = m.data_access(1, Asid(1), va(0x3000), pa(0x3000), false, false);
        let dram = m.data_access(1, Asid(1), va(0x9000_0000), pa(0x9000_0000), false, false);
        assert!(shared_hit < dram);
    }

    #[test]
    fn back_invalidation_enforces_inclusion() {
        let cfg = Platform::Sabre.config(); // single slice, no private L2
        let sets = cfg.l2.sets();
        let ways = cfg.l2.ways as u64;
        let mut m = Machine::new(cfg, 1);
        // Fill one shared set with ways+1 conflicting lines; the first must
        // be evicted and back-invalidated from core 0's L1.
        let stride = sets * cfg.line;
        for k in 0..=ways {
            let a = 0x10_0000 + k * stride;
            m.data_access(0, Asid(1), va(a), pa(a), false, false);
        }
        // Re-access of the first line must miss L1 (it was back-invalidated)
        // and go to DRAM.
        let c = m.data_access(0, Asid(1), va(0x10_0000), pa(0x10_0000), false, false);
        assert!(c >= m.cfg.lat.dram, "expected DRAM-level cost, got {c}");
    }

    #[test]
    fn slice_hash_distributes() {
        let m = Machine::new(Platform::Haswell.config(), 1);
        let mut counts = [0usize; 4];
        for i in 0..4096u64 {
            counts[m.slice_of(pa(i * 64))] += 1;
        }
        for &c in &counts {
            assert!(c > 512, "slice distribution too skewed: {counts:?}");
        }
    }

    #[test]
    fn bus_contention_charges_cross_core_dram() {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        // Uncontended DRAM access.
        let base = m.data_access(0, Asid(1), va(0x100_0000), pa(0x100_0000), false, false);
        // Storm of DRAM accesses from core 1 at similar cycle stamps.
        for k in 0..8u64 {
            let a = 0x200_0000 + k * 4096 * 64;
            m.data_access(1, Asid(1), va(a), pa(a), false, false);
        }
        // Align core 0's clock with core 1's so the window overlaps.
        let lag = m.cycles(1).saturating_sub(m.cycles(0));
        m.advance(0, lag);
        let contended = m.data_access(0, Asid(1), va(0x300_0000), pa(0x300_0000), false, false);
        assert!(
            contended > base + m.cfg.lat.bus_contend / 2,
            "contended {contended} vs base {base}"
        );
    }

    #[test]
    fn branch_costs() {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        // Unconditional taken branch, cold BTB: pays the BTB miss.
        let cold = m.branch(0, va(0x400), va(0x800), true, false);
        let warm = m.branch(0, va(0x400), va(0x800), true, false);
        assert!(cold > warm);
        assert_eq!(warm, 1);
    }

    #[test]
    fn conditional_branch_learns() {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        let mut last = 0;
        // Warm-up must exceed the 16-bit global history length plus counter
        // training.
        for _ in 0..24 {
            last = m.branch(0, va(0x400), va(0x800), true, true);
        }
        assert_eq!(last, 1, "trained branch must be predicted");
    }

    #[test]
    fn sequential_reads_train_prefetcher() {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        // March through a page sequentially twice; second pass of the next
        // lines should hit prefetched data rather than DRAM.
        for l in 0..16u64 {
            let a = 0x40_0000 + l * 64;
            m.data_access(0, Asid(1), va(a), pa(a), false, false);
        }
        assert!(m.cores[0].dpf.issued() > 0, "prefetcher should have fired");
    }
}
