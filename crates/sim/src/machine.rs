//! The multi-core machine: cores, shared last-level cache, memory bus.
//!
//! All timed operations go through [`Machine`]: data accesses, instruction
//! fetches and branches. Each returns (and internally accounts) the cycle
//! cost on the issuing core, walking TLB → L1 → L2 → LLC → DRAM with the
//! platform's latency table, dirty write-backs, prefetcher interaction and
//! cross-core bus contention.
//!
//! # The sweep fast path
//!
//! Mastik-style prime&probe walks thousands of fixed addresses per sample.
//! Re-deriving every cache set index, tag and slice from the physical
//! address on each of those accesses is pure waste: the addresses never
//! change. A [`SweepPlan`] precomputes the per-line geometry once
//! ([`Machine::plan_sweep`]) and [`Machine::access_batch`] walks the
//! hierarchy over the plan in one tight loop. The scalar path
//! ([`Machine::data_access`] / [`Machine::insn_fetch`]) builds a one-line
//! plan on the fly and funnels into the *same* per-access function
//! ([`Machine::access_planned`]), so batch and scalar are bit-identical by
//! construction — a contract the workspace property tests pin down.

use crate::cache::{phys_set, Cache, Replacement};
use crate::corestate::CoreState;
use crate::noise::NoiseRng;
use crate::params::{CacheGeom, PlatformConfig};
use crate::tlb::TlbLevel;
use crate::{Asid, PAddr, VAddr};

/// Extra latency charged to a demand miss per resumed stale prefetch
/// stream (the §5.3.2 residual-channel mechanism).
const PREFETCH_RESUME_COST: u64 = 12;

/// Window (in cycles) within which another core's DRAM access contends.
const BUS_WINDOW: u64 = 400;

/// Maximum number of contending accesses counted per DRAM access.
const BUS_MAX_CONTENDERS: u64 = 6;

/// Per-core ring depth of recent DRAM-access stamps. A core advances by at
/// least the DRAM latency (≫ `BUS_WINDOW` / `BUS_RING` cycles) per DRAM
/// access, so at most a handful of its stamps can ever fall inside one
/// contention window; 8 is comfortably above that bound for every
/// registered platform (checked by `PlatformConfig::validate`-adjacent
/// latency invariants: `lat.dram ≥ 60` everywhere).
const BUS_RING: usize = 8;

/// Sentinel for an empty bus-ring slot.
const BUS_EMPTY: u64 = u64::MAX;

/// Where in the hierarchy an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// L1 hit.
    L1,
    /// Private L2 hit (x86).
    L2,
    /// Shared LLC hit.
    Llc,
    /// DRAM access.
    Dram,
}

/// The slice-selection hash: XOR-fold of the line address (a simplified
/// Intel LLC slice hash). Public so attackers can reconstruct slice
/// placement during their (untimed) eviction-set profiling phase, as the
/// reverse-engineered hash of Yarom et al. (2015) allows on real hardware.
#[must_use]
pub fn slice_index(line_addr: u64, slices: u64) -> usize {
    if slices <= 1 {
        return 0;
    }
    let h = line_addr ^ (line_addr >> 7) ^ (line_addr >> 13) ^ (line_addr >> 19);
    (h % slices) as usize
}

/// Shift/mask indexing for one power-of-two cache geometry, precomputed so
/// the hot paths (prefetch fills, back-invalidation, scalar planning) never
/// divide. `PlatformConfig::validate` pins the power-of-two invariants this
/// relies on.
#[derive(Debug, Clone, Copy)]
struct GeomIdx {
    line_shift: u32,
    set_mask: u64,
    tag_shift: u32,
}

impl GeomIdx {
    fn new(g: CacheGeom) -> Self {
        let sets = g.sets();
        debug_assert!(g.line.is_power_of_two() && sets.is_power_of_two());
        let line_shift = g.line.trailing_zeros();
        GeomIdx {
            line_shift,
            set_mask: sets - 1,
            tag_shift: line_shift + sets.trailing_zeros(),
        }
    }

    #[inline]
    fn set(&self, pa: u64) -> usize {
        ((pa >> self.line_shift) & self.set_mask) as usize
    }

    #[inline]
    fn tag(&self, pa: u64) -> u64 {
        pa >> self.tag_shift
    }
}

/// Precomputed geometry of one access: everything a hierarchy walk derives
/// from the physical address, computed once per probe line instead of once
/// per access.
#[derive(Debug, Clone, Copy)]
pub struct PlannedLine {
    /// The physical address (the frame number and canonical line address
    /// are single shifts away and derived at access time, keeping the
    /// plan row compact — the plan itself is streamed on every sweep).
    pub pa: u64,
    /// L1 tag.
    l1_tag: u64,
    /// Private-L2 tag.
    l2_tag: u64,
    /// Shared-slice tag.
    sh_tag: u64,
    /// L1 set index (for the I- or D-side geometry the plan was built for).
    l1_set: u32,
    /// Private-L2 set index (unused on platforms without a private L2).
    l2_set: u32,
    /// Shared-cache slice.
    slice: u16,
    /// Set index within the shared slice.
    sh_set: u32,
}

/// A precomputed probe sweep: per-line geometry tuples for a fixed list of
/// physical addresses, valid for one machine configuration and one access
/// side (instruction vs data — their L1 geometries may differ).
#[derive(Debug, Clone)]
pub struct SweepPlan {
    insn: bool,
    lines: Vec<PlannedLine>,
}

impl SweepPlan {
    /// Whether the plan was built for instruction fetches.
    #[must_use]
    pub fn is_insn(&self) -> bool {
        self.insn
    }

    /// The planned lines.
    #[must_use]
    pub fn lines(&self) -> &[PlannedLine] {
        &self.lines
    }

    /// Number of planned lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the plan is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

/// Scratch outputs of a batch sweep; both fields optional so callers pay
/// only for what they read.
#[derive(Debug, Default)]
pub struct BatchOut<'a> {
    /// Per-line cycle costs, appended in plan order.
    pub costs: Option<&'a mut Vec<u64>>,
    /// Per-line hit levels, appended in plan order.
    pub levels: Option<&'a mut Vec<HitLevel>>,
}

/// The simulated machine.
///
/// `Clone` snapshots the entire micro-architectural state (caches, TLBs,
/// predictors, noise-stream position, bus rings); a clone resumed from the
/// same point produces a bit-identical future, which is what makes
/// `tp-core`'s boot-prefix warm-start and replay snapshots sound.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Platform configuration.
    pub cfg: PlatformConfig,
    /// Per-core state.
    pub cores: Vec<CoreState>,
    /// Shared last-level cache slices (the LLC on x86, the L2 on Arm).
    shared: Vec<Cache>,
    rng: NoiseRng,
    /// Shift/mask indexers for the fixed geometries (no divisions on the
    /// fill/invalidate hot paths).
    idx_l1d: GeomIdx,
    idx_l1i: GeomIdx,
    idx_l2: GeomIdx,
    idx_sh: GeomIdx,
    /// `slices - 1` when the slice count is a power of two (mask dispatch,
    /// matching [`slice_index`] bit-for-bit); `None` falls back to it.
    slice_mask: Option<u64>,
    /// Memoised sweep plans for the kernel's fixed flush buffers, keyed by
    /// `(buffer base, insn side)` (a handful per machine: one or two per
    /// kernel image). The manual x86 L1 flushes walk these buffers on
    /// every domain switch.
    flush_plans: Vec<(u64, bool, SweepPlan)>,
    /// Per-core rings of recent DRAM-access cycle stamps (bus contention).
    bus: Vec<[u64; BUS_RING]>,
    /// Next write position per bus ring.
    bus_pos: Vec<u8>,
    dram_accesses: u64,
}

impl Machine {
    /// Build a machine with pristine state and a deterministic noise-stream
    /// seed.
    #[must_use]
    pub fn new(cfg: PlatformConfig, seed: u64) -> Self {
        let slices = if cfg.llc.is_some() { cfg.llc_slices } else { 1 };
        let slice_geom = match cfg.llc {
            Some(llc) => crate::params::CacheGeom {
                size: llc.size / u64::from(slices),
                ways: llc.ways,
                line: llc.line,
            },
            None => cfg.l2,
        };
        let shared: Vec<Cache> = (0..slices)
            .map(|_| Cache::new("llc", slice_geom, Replacement::Lru))
            .collect();
        let cores: Vec<CoreState> = (0..cfg.cores).map(|i| CoreState::new(i, &cfg)).collect();
        let n = cores.len();
        let n_slices = shared.len() as u64;
        Machine {
            cfg,
            cores,
            rng: NoiseRng::seeded(seed),
            idx_l1d: GeomIdx::new(cfg.l1d),
            idx_l1i: GeomIdx::new(cfg.l1i),
            idx_l2: GeomIdx::new(cfg.l2),
            idx_sh: GeomIdx::new(slice_geom),
            slice_mask: n_slices.is_power_of_two().then(|| n_slices - 1),
            flush_plans: Vec::new(),
            shared,
            bus: vec![[BUS_EMPTY; BUS_RING]; n],
            bus_pos: vec![0; n],
            dram_accesses: 0,
        }
    }

    /// The per-slice geometry of the shared cache.
    #[must_use]
    pub fn shared_geom(&self) -> crate::params::CacheGeom {
        self.shared[0].geom()
    }

    /// Which LLC slice a physical address maps to (hash-distributed on
    /// x86, single slice on Arm).
    #[must_use]
    pub fn slice_of(&self, pa: PAddr) -> usize {
        let la = pa.0 >> self.idx_l1d.line_shift;
        match self.slice_mask {
            Some(0) => 0,
            Some(m) => {
                // Bit-identical to `slice_index` for power-of-two counts.
                let h = la ^ (la >> 7) ^ (la >> 13) ^ (la >> 19);
                (h & m) as usize
            }
            None => slice_index(la, self.shared.len() as u64),
        }
    }

    /// The set index within its slice that `pa` maps to in the shared cache.
    #[must_use]
    pub fn shared_set_of(&self, pa: PAddr) -> usize {
        phys_set(self.shared_geom(), pa.0)
    }

    /// Immutable view of a shared-cache slice (tests and diagnostics).
    #[must_use]
    pub fn shared_slice(&self, idx: usize) -> &Cache {
        &self.shared[idx]
    }

    /// Number of shared-cache slices.
    #[must_use]
    pub fn num_slices(&self) -> usize {
        self.shared.len()
    }

    /// Clean and invalidate one shared-cache slice; returns
    /// `(valid, dirty)` counts. Used by the architected flush operations.
    pub fn flush_shared_slice(&mut self, slice: usize) -> (u64, u64) {
        self.shared[slice].flush_all()
    }

    /// Current cycle counter of `core`.
    #[must_use]
    pub fn cycles(&self, core: usize) -> u64 {
        self.cores[core].cycles
    }

    /// Advance `core`'s cycle counter by `n` (pure compute).
    pub fn advance(&mut self, core: usize, n: u64) {
        self.cores[core].advance(n);
    }

    /// Total DRAM accesses (diagnostics).
    #[must_use]
    pub fn dram_accesses(&self) -> u64 {
        self.dram_accesses
    }

    /// The machine's deterministic noise stream, for timing jitter that is
    /// conceptually part of the hardware (e.g. cycle-counter read jitter).
    /// Attack input generation must *not* draw from this — it would couple
    /// the inputs to the simulated noise.
    pub fn rng(&mut self) -> &mut NoiseRng {
        &mut self.rng
    }

    /// Count other-core DRAM accesses inside the contention window and
    /// record this one. O(cores × ring) — constant — instead of the old
    /// linear scan over a shared `VecDeque` of every recent access.
    fn bus_contention(&mut self, core: usize) -> u64 {
        let now = self.cores[core].cycles;
        let floor = now.saturating_sub(BUS_WINDOW);
        let mut contenders = 0u64;
        for (c, ring) in self.bus.iter().enumerate() {
            if c == core {
                continue;
            }
            for &t in ring {
                if t != BUS_EMPTY && t >= floor {
                    contenders += 1;
                }
            }
        }
        let pos = usize::from(self.bus_pos[core]);
        self.bus[core][pos] = now;
        self.bus_pos[core] = ((pos + 1) % BUS_RING) as u8;
        contenders.min(BUS_MAX_CONTENDERS) * self.cfg.lat.bus_contend
    }

    /// Back-invalidate a line evicted from the inclusive shared cache from
    /// every core's private caches.
    fn back_invalidate(&mut self, line_addr: u64) {
        let pa = line_addr << self.idx_l1d.line_shift;
        let (d, i, l2i) = (self.idx_l1d, self.idx_l1i, self.idx_l2);
        for core in &mut self.cores {
            core.l1d.invalidate_line(d.set(pa), d.tag(pa));
            core.l1i.invalidate_line(i.set(pa), i.tag(pa));
            if let Some(l2) = &mut core.l2 {
                l2.invalidate_line(l2i.set(pa), l2i.tag(pa));
            }
        }
    }

    /// Fill `pa` into the shared cache without charging latency (prefetch
    /// path). Evictions still back-invalidate.
    fn shared_fill(&mut self, pa: PAddr, write: bool) {
        let slice = self.slice_of(pa);
        let set = self.idx_sh.set(pa.0);
        let tag = self.idx_sh.tag(pa.0);
        let line_addr = pa.0 >> self.idx_sh.line_shift;
        let out = self.shared[slice].access(set, tag, line_addr, write, &mut self.rng);
        if let Some(ev) = out.evicted {
            // The evicted line address is within-slice; reconstruct only for
            // back-invalidation, where the (set, tag) pair per private cache
            // is derived from a canonical address. Slice-local reconstruction
            // is exact because set+tag encode the full line address.
            self.back_invalidate(ev.line_addr);
        }
    }

    /// Precompute the hierarchy geometry of one access.
    #[inline]
    #[must_use]
    pub fn plan_line(&self, insn: bool, pa: PAddr) -> PlannedLine {
        let l1 = if insn { self.idx_l1i } else { self.idx_l1d };
        PlannedLine {
            pa: pa.0,
            l1_tag: l1.tag(pa.0),
            l2_tag: self.idx_l2.tag(pa.0),
            sh_tag: self.idx_sh.tag(pa.0),
            l1_set: l1.set(pa.0) as u32,
            l2_set: self.idx_l2.set(pa.0) as u32,
            slice: self.slice_of(pa) as u16,
            sh_set: self.idx_sh.set(pa.0) as u32,
        }
    }

    /// Precompute a sweep plan for a fixed probe-address list. `insn`
    /// selects the instruction-side L1 geometry.
    #[must_use]
    pub fn plan_sweep(&self, insn: bool, pas: &[PAddr]) -> SweepPlan {
        SweepPlan {
            insn,
            lines: pas.iter().map(|&pa| self.plan_line(insn, pa)).collect(),
        }
    }

    /// A data access: walk the hierarchy, account all costs, return the
    /// cycles consumed. `global` marks a global (kernel) mapping in the TLB.
    pub fn data_access(
        &mut self,
        core: usize,
        asid: Asid,
        va: VAddr,
        pa: PAddr,
        write: bool,
        global: bool,
    ) -> u64 {
        let _ = va; // Physically-indexed model; see corestate docs.
        let ln = self.plan_line(false, pa);
        self.access_planned(core, asid, &ln, write, global, false).0
    }

    /// An instruction fetch at `pa`.
    pub fn insn_fetch(
        &mut self,
        core: usize,
        asid: Asid,
        va: VAddr,
        pa: PAddr,
        global: bool,
    ) -> u64 {
        let _ = va;
        let ln = self.plan_line(true, pa);
        self.access_planned(core, asid, &ln, false, global, true).0
    }

    /// A scalar access that also reports where it was satisfied — the
    /// reference oracle the batch-equivalence property tests compare
    /// against.
    pub fn access_with_level(
        &mut self,
        core: usize,
        asid: Asid,
        pa: PAddr,
        write: bool,
        global: bool,
        insn: bool,
    ) -> (u64, HitLevel) {
        let ln = self.plan_line(insn, pa);
        self.access_planned(core, asid, &ln, write, global, insn)
    }

    /// Run a whole sweep plan as one tight loop; returns the total cycle
    /// cost and optionally records per-line costs/levels into `out`.
    ///
    /// Bit-identical to issuing the same accesses through the scalar path:
    /// both funnel into [`Machine::access_planned`] and consume the noise
    /// stream in the same order.
    pub fn access_batch(
        &mut self,
        core: usize,
        asid: Asid,
        plan: &SweepPlan,
        write: bool,
        global: bool,
        out: &mut BatchOut<'_>,
    ) -> u64 {
        let mut total = 0u64;
        for ln in &plan.lines {
            let (c, lvl) = self.access_planned(core, asid, ln, write, global, plan.insn);
            total += c;
            if let Some(costs) = out.costs.as_deref_mut() {
                costs.push(c);
            }
            if let Some(levels) = out.levels.as_deref_mut() {
                levels.push(lvl);
            }
        }
        total
    }

    /// The hierarchy walk for one planned access: translation timing, L1,
    /// prefetcher hooks, private L2, shared cache, DRAM + bus. Scalar and
    /// batch paths both land here.
    pub fn access_planned(
        &mut self,
        core: usize,
        asid: Asid,
        ln: &PlannedLine,
        write: bool,
        global: bool,
        insn: bool,
    ) -> (u64, HitLevel) {
        let lat = self.cfg.lat;
        let line = self.cfg.line;
        let mut cost = 0u64;

        // 1. Translation timing.
        let vpn = ln.pa / crate::FRAME_SIZE;
        let level = self.cores[core].tlb.translate(asid, vpn, insn, global);
        cost += match level {
            TlbLevel::L1 => 0,
            TlbLevel::L2 => lat.tlb_l2,
            TlbLevel::Walk => lat.tlb_walk,
        };

        // 2. L1.
        let set = ln.l1_set as usize;
        let tag = ln.l1_tag;
        let line_addr = ln.pa >> self.idx_l1d.line_shift;
        let l1_out = {
            let c = &mut self.cores[core];
            let l1 = if insn { &mut c.l1i } else { &mut c.l1d };
            l1.access(set, tag, line_addr, write, &mut self.rng)
        };
        cost += lat.l1_hit;
        if l1_out.hit {
            self.cores[core].advance(cost);
            return (cost, HitLevel::L1);
        }
        if l1_out.writeback {
            cost += lat.writeback;
        }

        // The instruction prefetcher sits at the L1-I (next-line fetch).
        // The targets live in a small inline buffer — this path runs on
        // every miss and must not allocate.
        let mut prefetch_fills = crate::prefetch::PrefetchLines::default();
        if insn {
            let (pf, resumed) = self.cores[core].ipf.on_fetch_miss(line_addr);
            cost += resumed * PREFETCH_RESUME_COST;
            if let Some(l) = pf {
                prefetch_fills.push(l);
            }
        }

        // 3. Private L2 (x86).
        let mut l2_hit = false;
        if self.cores[core].l2.is_some() {
            let out = {
                let c = &mut self.cores[core];
                c.l2.as_mut().unwrap().access(
                    ln.l2_set as usize,
                    ln.l2_tag,
                    line_addr,
                    write,
                    &mut self.rng,
                )
            };
            cost += lat.l2_hit;
            if out.writeback {
                cost += lat.writeback;
            }
            l2_hit = out.hit;
        }

        // The stream data prefetcher sits at the L2, like Intel's
        // streamer: it observes (and resumes stale streams against) demand
        // misses that leave the private L2, not every L1 miss — an
        // L2-resident sweep neither trains nor re-fills.
        if !insn && !l2_hit {
            let (pf, resumed) = self.cores[core].dpf.on_demand_miss(ln.pa, line);
            cost += resumed * PREFETCH_RESUME_COST;
            prefetch_fills = pf;
        }

        // 4. Shared cache.
        let mut hit_level = HitLevel::L2;
        if !l2_hit {
            let out = self.shared[ln.slice as usize].access(
                ln.sh_set as usize,
                ln.sh_tag,
                line_addr,
                write,
                &mut self.rng,
            );
            cost += if self.cores[core].l2.is_some() {
                lat.llc_hit
            } else {
                lat.l2_hit
            };
            if out.writeback {
                cost += lat.writeback;
            }
            if let Some(ev) = out.evicted {
                self.back_invalidate(ev.line_addr);
            }
            hit_level = if out.hit {
                HitLevel::Llc
            } else {
                HitLevel::Dram
            };
        }

        // 5. DRAM with bus contention and a little jitter.
        if hit_level == HitLevel::Dram {
            self.dram_accesses += 1;
            cost += lat.dram;
            cost += self.bus_contention(core);
            cost += self.rng.below(6);
        }

        // Prefetch fills go into L2 + shared, free of charge to this access.
        for &la in &prefetch_fills {
            let fpa = PAddr(la * line);
            if let Some(l2) = &mut self.cores[core].l2 {
                let s = self.idx_l2.set(fpa.0);
                let t = self.idx_l2.tag(fpa.0);
                l2.access(s, t, la, false, &mut self.rng);
            }
            self.shared_fill(fpa, false);
        }

        self.cores[core].advance(cost);
        (cost, hit_level)
    }

    /// The memoised sweep plan covering the `lines`-line buffer at
    /// `buf_pa` (built on first use). Flush buffers are fixed per kernel
    /// image, so the cache stays tiny.
    pub(crate) fn flush_plan(&mut self, buf_pa: PAddr, insn: bool, lines: u64) -> usize {
        if let Some(i) = self
            .flush_plans
            .iter()
            .position(|(b, ins, _)| *b == buf_pa.0 && *ins == insn)
        {
            return i;
        }
        let line = self.cfg.line;
        let pas: Vec<PAddr> = (0..lines).map(|i| PAddr(buf_pa.0 + i * line)).collect();
        let plan = self.plan_sweep(insn, &pas);
        self.flush_plans.push((buf_pa.0, insn, plan));
        self.flush_plans.len() - 1
    }

    /// Temporarily take a memoised flush plan out of the machine (so the
    /// caller can run it against `&mut self`); restore with
    /// [`Machine::restore_flush_plan`].
    pub(crate) fn take_flush_plan(&mut self, idx: usize) -> SweepPlan {
        std::mem::replace(
            &mut self.flush_plans[idx].2,
            SweepPlan {
                insn: false,
                lines: Vec::new(),
            },
        )
    }

    /// Put a plan taken with [`Machine::take_flush_plan`] back.
    pub(crate) fn restore_flush_plan(&mut self, idx: usize, plan: SweepPlan) {
        self.flush_plans[idx].2 = plan;
    }

    /// Execute a branch instruction at `pc`; returns the cycle cost.
    pub fn branch(
        &mut self,
        core: usize,
        pc: VAddr,
        target: VAddr,
        taken: bool,
        conditional: bool,
    ) -> u64 {
        let lat = self.cfg.lat;
        let mut cost = 1;
        let c = &mut self.cores[core];
        let btb_hit = c.btb.access(pc.0, target.0);
        if taken && !btb_hit {
            cost += lat.btb_miss;
        }
        if conditional {
            let correct = c.bhb.predict_update(pc.0, taken);
            if !correct {
                cost += lat.mispredict;
            }
        }
        c.advance(cost);
        cost
    }

    /// Tell prefetchers a security-domain switch happened on `core` (stale
    /// stream state remains live; see [`crate::prefetch`]).
    pub fn note_domain_switch(&mut self, core: usize) {
        let c = &mut self.cores[core];
        c.dpf.note_domain_switch();
        c.ipf.note_domain_switch();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Platform;

    fn pa(x: u64) -> PAddr {
        PAddr(x)
    }
    fn va(x: u64) -> VAddr {
        VAddr(x)
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        let c1 = m.data_access(0, Asid(1), va(0x1000), pa(0x1000), false, false);
        let c2 = m.data_access(0, Asid(1), va(0x1000), pa(0x1000), false, false);
        assert!(
            c1 > c2,
            "cold miss ({c1}) must cost more than L1 hit ({c2})"
        );
        assert_eq!(c2, m.cfg.lat.l1_hit);
    }

    #[test]
    fn cycle_counter_advances() {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        let c = m.data_access(0, Asid(1), va(0x1000), pa(0x1000), false, false);
        assert_eq!(m.cycles(0), c);
        m.advance(0, 10);
        assert_eq!(m.cycles(0), c + 10);
    }

    #[test]
    fn llc_visible_across_cores() {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        // Core 0 pulls a line into the (shared, inclusive) LLC.
        m.data_access(0, Asid(1), va(0x2000), pa(0x2000), false, false);
        // Core 1 misses its private caches but hits the LLC: cheaper than
        // core 1 pulling an uncached line from DRAM.
        let llc_hit = m.data_access(1, Asid(1), va(0x2000), pa(0x2000), false, false);
        let dram = m.data_access(1, Asid(1), va(0x8000_0000), pa(0x8000_0000), false, false);
        assert!(llc_hit < dram, "LLC hit {llc_hit} vs DRAM {dram}");
    }

    #[test]
    fn arm_l2_is_shared() {
        let mut m = Machine::new(Platform::Sabre.config(), 1);
        m.data_access(0, Asid(1), va(0x3000), pa(0x3000), false, false);
        let shared_hit = m.data_access(1, Asid(1), va(0x3000), pa(0x3000), false, false);
        let dram = m.data_access(1, Asid(1), va(0x9000_0000), pa(0x9000_0000), false, false);
        assert!(shared_hit < dram);
    }

    #[test]
    fn back_invalidation_enforces_inclusion() {
        let cfg = Platform::Sabre.config(); // single slice, no private L2
        let sets = cfg.l2.sets();
        let ways = cfg.l2.ways as u64;
        let mut m = Machine::new(cfg, 1);
        // Fill one shared set with ways+1 conflicting lines; the first must
        // be evicted and back-invalidated from core 0's L1.
        let stride = sets * cfg.line;
        for k in 0..=ways {
            let a = 0x10_0000 + k * stride;
            m.data_access(0, Asid(1), va(a), pa(a), false, false);
        }
        // Re-access of the first line must miss L1 (it was back-invalidated)
        // and go to DRAM.
        let c = m.data_access(0, Asid(1), va(0x10_0000), pa(0x10_0000), false, false);
        assert!(c >= m.cfg.lat.dram, "expected DRAM-level cost, got {c}");
    }

    #[test]
    fn slice_hash_distributes() {
        let m = Machine::new(Platform::Haswell.config(), 1);
        let mut counts = [0usize; 4];
        for i in 0..4096u64 {
            counts[m.slice_of(pa(i * 64))] += 1;
        }
        for &c in &counts {
            assert!(c > 512, "slice distribution too skewed: {counts:?}");
        }
    }

    #[test]
    fn bus_contention_charges_cross_core_dram() {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        // Uncontended DRAM access.
        let base = m.data_access(0, Asid(1), va(0x100_0000), pa(0x100_0000), false, false);
        // Storm of DRAM accesses from core 1 at similar cycle stamps.
        for k in 0..8u64 {
            let a = 0x200_0000 + k * 4096 * 64;
            m.data_access(1, Asid(1), va(a), pa(a), false, false);
        }
        // Align core 0's clock with core 1's so the window overlaps.
        let lag = m.cycles(1).saturating_sub(m.cycles(0));
        m.advance(0, lag);
        let contended = m.data_access(0, Asid(1), va(0x300_0000), pa(0x300_0000), false, false);
        assert!(
            contended > base + m.cfg.lat.bus_contend / 2,
            "contended {contended} vs base {base}"
        );
    }

    #[test]
    fn bus_contention_window_expires() {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        for k in 0..4u64 {
            let a = 0x200_0000 + k * 4096 * 64;
            m.data_access(1, Asid(1), va(a), pa(a), false, false);
        }
        // Far beyond the window: the stale stamps must not contend.
        m.advance(0, m.cycles(1) + 100 * BUS_WINDOW);
        let quiet = m.data_access(0, Asid(1), va(0x300_0000), pa(0x300_0000), false, false);
        assert!(
            quiet < m.cfg.lat.dram + m.cfg.lat.tlb_walk + m.cfg.lat.l1_hit + 200,
            "stale bus stamps still charged: {quiet}"
        );
    }

    #[test]
    fn branch_costs() {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        // Unconditional taken branch, cold BTB: pays the BTB miss.
        let cold = m.branch(0, va(0x400), va(0x800), true, false);
        let warm = m.branch(0, va(0x400), va(0x800), true, false);
        assert!(cold > warm);
        assert_eq!(warm, 1);
    }

    #[test]
    fn conditional_branch_learns() {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        let mut last = 0;
        // Warm-up must exceed the 16-bit global history length plus counter
        // training.
        for _ in 0..24 {
            last = m.branch(0, va(0x400), va(0x800), true, true);
        }
        assert_eq!(last, 1, "trained branch must be predicted");
    }

    #[test]
    fn sequential_reads_train_prefetcher() {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        // March through a page sequentially twice; second pass of the next
        // lines should hit prefetched data rather than DRAM.
        for l in 0..16u64 {
            let a = 0x40_0000 + l * 64;
            m.data_access(0, Asid(1), va(a), pa(a), false, false);
        }
        assert!(m.cores[0].dpf.issued() > 0, "prefetcher should have fired");
    }

    #[test]
    fn batch_equals_scalar_on_a_probe_sweep() {
        // Two identical machines, one swept scalar, one batched: totals,
        // per-line costs and hit levels must agree bit-for-bit.
        for p in Platform::ALL {
            let cfg = p.config();
            let mut ms = Machine::new(cfg, 99);
            let mut mb = Machine::new(cfg, 99);
            let pas: Vec<PAddr> = (0..64).map(|i| PAddr(0x40_0000 + i * cfg.line)).collect();
            let plan = mb.plan_sweep(false, &pas);
            for round in 0..3 {
                let write = round == 1;
                let mut costs = Vec::new();
                let mut levels = Vec::new();
                let total_b = mb.access_batch(
                    0,
                    Asid(1),
                    &plan,
                    write,
                    false,
                    &mut BatchOut {
                        costs: Some(&mut costs),
                        levels: Some(&mut levels),
                    },
                );
                let mut total_s = 0;
                for (i, &pa) in pas.iter().enumerate() {
                    let (c, lvl) = ms.access_with_level(0, Asid(1), pa, write, false, false);
                    total_s += c;
                    assert_eq!(c, costs[i], "{}: line {i} cost", p.key());
                    assert_eq!(lvl, levels[i], "{}: line {i} level", p.key());
                }
                assert_eq!(total_s, total_b, "{}: round {round}", p.key());
                assert_eq!(ms.cycles(0), mb.cycles(0), "{}", p.key());
            }
        }
    }
}
