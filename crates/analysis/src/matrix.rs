//! Channel matrices: conditional probability of outputs given inputs,
//! rendered as a text heat map (the format of Figures 3, 5 and 6).

use crate::dataset::Dataset;

/// A discretised channel matrix `P(output_bin | input)`.
#[derive(Debug, Clone)]
pub struct ChannelMatrix {
    /// Rows: one per input symbol; columns: output bins.
    pub rows: Vec<Vec<f64>>,
    /// The output value at the lower edge of each bin.
    pub bin_edges: Vec<f64>,
}

impl ChannelMatrix {
    /// Build the matrix with `bins` output bins.
    ///
    /// # Panics
    /// Panics if the dataset is empty or `bins == 0`.
    #[must_use]
    pub fn from_dataset(data: &Dataset, bins: usize) -> Self {
        assert!(bins > 0 && !data.is_empty());
        let (lo, hi) = crate::stats::min_max(data.outputs());
        let span = (hi - lo).max(1e-9);
        let width = span / bins as f64;
        let mut rows = vec![vec![0.0f64; bins]; data.n_symbols()];
        for (&i, &o) in data.inputs().iter().zip(data.outputs()) {
            let b = (((o - lo) / width) as usize).min(bins - 1);
            rows[i][b] += 1.0;
        }
        for row in &mut rows {
            let total: f64 = row.iter().sum();
            if total > 0.0 {
                for v in row.iter_mut() {
                    *v /= total;
                }
            }
        }
        let bin_edges = (0..=bins).map(|b| lo + b as f64 * width).collect();
        ChannelMatrix { rows, bin_edges }
    }

    /// Probability mass at `(input, bin)`.
    #[must_use]
    pub fn p(&self, input: usize, bin: usize) -> f64 {
        self.rows[input][bin]
    }

    /// Render as a text heat map: one row per input symbol, darkness scaled
    /// by conditional probability (log-scaled like the paper's colour bar).
    #[must_use]
    pub fn render(&self, labels: &[&str]) -> String {
        const SHADES: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '@'];
        let mut out = String::new();
        for (i, row) in self.rows.iter().enumerate() {
            let label = labels.get(i).copied().unwrap_or("?");
            out.push_str(&format!("{label:>16} |"));
            for &p in row {
                let idx = if p <= 0.0 {
                    0
                } else {
                    // Map 1e-4..1 log-scale onto the shade ramp.
                    let l = (p.log10() + 4.0).clamp(0.0, 4.0) / 4.0;
                    1 + (l * (SHADES.len() - 2) as f64).round() as usize
                };
                out.push(SHADES[idx.min(SHADES.len() - 1)]);
            }
            out.push('\n');
        }
        let lo = self.bin_edges.first().copied().unwrap_or(0.0);
        let hi = self.bin_edges.last().copied().unwrap_or(0.0);
        out.push_str(&format!(
            "{:>16} +{}\n{:>16}  {:<10.0}{:>width$.0}\n",
            "",
            "-".repeat(self.rows[0].len()),
            "",
            lo,
            hi,
            width = self.rows[0].len().saturating_sub(10)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_conditional_distributions() {
        let mut d = Dataset::new(2);
        for i in 0..50 {
            d.push(0, (i % 5) as f64);
            d.push(1, 100.0 + (i % 3) as f64);
        }
        let m = ChannelMatrix::from_dataset(&d, 16);
        for row in &m.rows {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        // Symbol 0 mass is in low bins, symbol 1 in high bins.
        assert!(m.p(0, 0) > 0.0);
        assert!(m.p(1, 15) > 0.0);
        assert_eq!(m.p(0, 15), 0.0);
    }

    #[test]
    fn render_produces_one_line_per_symbol() {
        let mut d = Dataset::new(3);
        for i in 0..30 {
            d.push(i % 3, i as f64);
        }
        let m = ChannelMatrix::from_dataset(&d, 8);
        let s = m.render(&["a", "b", "c"]);
        assert_eq!(s.lines().count(), 5); // 3 rows + axis + scale
        assert!(s.contains('a') && s.contains('c'));
    }
}
