//! Gaussian kernel density estimation with Silverman's bandwidth rule.
//!
//! §5.1: "we use kernel density estimation [Silverman 1986] to estimate the
//! probability density function of outputs for each input." The samples are
//! first binned onto a fine uniform grid; density evaluation then has two
//! implementations:
//!
//! * [`Kde::density`] / [`Kde::density_grid`] — the naive `O(bins × grid)`
//!   double loop with one `exp` per (bin, point) pair. Kept as the
//!   **reference oracle**: the fast path is property-tested against it.
//! * [`Kde::density_grid_aligned`] — a banded convolution for uniform
//!   evaluation grids commensurate with the bins. Because bin centres and
//!   grid points are both uniformly spaced over the same support, the
//!   kernel weight depends only on the *index offset* between them, so the
//!   Gaussian is evaluated once per distinct offset (a precomputed kernel
//!   profile) and the per-point work is a multiply-add over the non-zero
//!   bins within the ±8σ band. This is what makes the shuffle test's 100
//!   re-estimates cheap; see DESIGN.md § Performance.

use crate::stats;

/// Number of histogram bins used to compress samples before evaluation.
///
/// Sized at twice the integration grid: the channel datasets are a few
/// dozen to a few hundred samples, so finer binning adds no estimator
/// resolution — only per-shuffle work (the bin scan, the kernel profile
/// and the scatter band all scale with it).
pub const BINS: usize = 256;

/// Kernel support cutoff in units of the bandwidth: contributions with
/// `|x - c| >= CUTOFF * h` are treated as zero (identically in the naive
/// and banded paths).
const CUTOFF: f64 = 8.0;

/// The bin width used by [`Kde::fit`] over the support `[lo, hi]`.
#[inline]
#[must_use]
pub(crate) fn bin_width(lo: f64, hi: f64) -> f64 {
    (hi - lo).max(1e-12) / BINS as f64
}

/// The bin a sample falls into, for the binning of [`Kde::fit`].
#[inline]
#[must_use]
pub(crate) fn bin_index(lo: f64, width: f64, sample: f64) -> usize {
    (((sample - lo) / width) as usize).min(BINS - 1)
}

/// Silverman's rule-of-thumb bandwidth,
/// `h = 0.9 min(σ, IQR/1.34) n^{-1/5}`, floored to `min_bandwidth` and to
/// a small fraction of `range` so degenerate classes stay well-defined.
///
/// Shared by [`Kde::fit`] and the shuffle-test fast path so both compute
/// bit-identical bandwidths from the same samples.
///
/// # Panics
/// Panics on an empty slice.
#[must_use]
pub(crate) fn silverman_bandwidth(samples: &[f64], range: f64, min_bandwidth: f64) -> f64 {
    assert!(!samples.is_empty(), "bandwidth of an empty class");
    let n = samples.len();
    let sigma = stats::stddev(samples);
    let mut sorted = samples.to_vec();
    stats::sort_unstable_finite(&mut sorted);
    let iqr = stats::percentile_sorted(&sorted, 75.0) - stats::percentile_sorted(&sorted, 25.0);
    let spread = if iqr > 0.0 {
        sigma.min(iqr / 1.34)
    } else {
        sigma
    };
    let mut h = 0.9 * spread * (n as f64).powf(-0.2);
    if h.is_nan() || h <= 0.0 {
        // Degenerate class: a narrow kernel around the point mass.
        h = range * 1e-3;
    }
    h.max(range * 1e-4).max(min_bandwidth)
}

/// Exact-`exp` anchor spacing of [`gaussian_profile`]: between anchors the
/// profile advances by the two-multiply constant-ratio recurrence, whose
/// relative drift over 64 steps stays around 1e-14 — far inside the 1e-12
/// agreement the property tests demand against the naive oracle.
const PROFILE_ANCHOR: usize = 64;

/// Evaluate `exp(-0.5 * (s * (k + shift))^2)` for every `k` in
/// `[k_lo, k_hi]` with O(len / PROFILE_ANCHOR) calls to `exp`.
///
/// A Gaussian sampled at uniformly spaced points satisfies
/// `f(k+1) = f(k) · r(k)` with `r(k+1) = r(k) · q²` for the constant
/// `q = exp(-0.5 s²)` — two multiplies per point. The shuffle test
/// evaluates hundreds of these profiles (one per class per re-pairing,
/// each up to ~2·BINS entries), so the transcendental count is what
/// bounds the whole leakage pipeline at small sample sizes.
/// Independent recurrence chains per anchor block. A single chain is a
/// serial multiply dependency (two 4-cycle multiplies per point); four
/// interleaved stride-4 chains expose enough ILP to keep the FP units
/// busy.
const PROFILE_LANES: usize = 4;

fn gaussian_profile(k_lo: i64, k_hi: i64, shift: f64, s: f64) -> Vec<f64> {
    let len = (k_hi - k_lo + 1) as usize;
    let mut out = vec![0.0f64; len];
    let a = 0.5 * s * s;
    let gauss = |x: f64| (-a * x * x).exp();
    // Stride-4 recurrence: f(k+4) = f(k) · r4(k), r4(k+4) = r4(k) · q32,
    // with q32 = exp(-32a) constant.
    let q32 = (-32.0 * a).exp();
    let mut i = 0usize;
    while i < len {
        let stop = (i + PROFILE_ANCHOR).min(len);
        let mut f = [0.0f64; PROFILE_LANES];
        let mut r = [0.0f64; PROFILE_LANES];
        for (lane, (fl, rl)) in f.iter_mut().zip(&mut r).enumerate() {
            let x = (k_lo + (i + lane) as i64) as f64 + shift;
            *fl = gauss(x);
            // r4(k) = exp(-a(8(k+shift) + 16)).
            *rl = (-a * (8.0 * x + 16.0)).exp();
        }
        while i + PROFILE_LANES <= stop {
            #[allow(clippy::manual_memcpy)] // fused copy + recurrence step
            for lane in 0..PROFILE_LANES {
                out[i + lane] = f[lane];
                f[lane] *= r[lane];
                r[lane] *= q32;
            }
            i += PROFILE_LANES;
        }
        // Tail of the final block (len not a multiple of the lane count):
        // blocks and quads are 4-aligned, so lane `i % 4` holds position
        // `i`'s value.
        debug_assert!(i.is_multiple_of(PROFILE_LANES) || i >= stop);
        while i < stop {
            out[i] = f[i % PROFILE_LANES];
            i += 1;
        }
    }
    out
}

/// Dot product with four independent accumulators: the compiler cannot
/// reassociate a sequential f64 sum on its own, and the gather path runs
/// one of these per grid point.
#[inline]
fn dot4(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let (a4, a_rest) = a.split_at(a.len() & !3);
    let (b4, b_rest) = b.split_at(a4.len());
    for (ca, cb) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        for lane in 0..4 {
            acc[lane] += ca[lane] * cb[lane];
        }
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in a_rest.iter().zip(b_rest) {
        total += x * y;
    }
    total
}

/// A binned Gaussian KDE over one sample class.
#[derive(Debug, Clone)]
pub struct Kde {
    lo: f64,
    bin_width: f64,
    bin_weights: Vec<f64>,
    bandwidth: f64,
    n: usize,
}

impl Kde {
    /// Fit a KDE to `samples`, binning over `[lo, hi]`.
    ///
    /// The bandwidth follows Silverman's rule of thumb,
    /// `h = 0.9 min(σ, IQR/1.34) n^{-1/5}`, floored to `min_bandwidth` —
    /// callers that integrate the density numerically must floor it to
    /// their grid resolution, or point-mass classes vanish between grid
    /// points.
    ///
    /// # Panics
    /// Panics if `samples` is empty or `hi < lo`.
    #[must_use]
    pub fn fit(samples: &[f64], lo: f64, hi: f64, min_bandwidth: f64) -> Self {
        assert!(!samples.is_empty(), "KDE over empty class");
        assert!(hi >= lo);
        let range = (hi - lo).max(1e-12);
        let h = silverman_bandwidth(samples, range, min_bandwidth);
        // Shared with `MiContext`'s precomputed bin indices, which must be
        // bit-identical to this binning.
        let width = bin_width(lo, hi);
        let mut weights = vec![0.0f64; BINS];
        for &s in samples {
            weights[bin_index(lo, width, s)] += 1.0;
        }
        Kde {
            lo,
            bin_width: width,
            bin_weights: weights,
            bandwidth: h,
            n: samples.len(),
        }
    }

    /// Assemble a KDE from already-binned weights and a precomputed
    /// bandwidth (the shuffle-test fast path, which re-accumulates bin
    /// weights in O(n) per re-pairing instead of re-fitting).
    #[must_use]
    pub(crate) fn from_parts(
        lo: f64,
        bin_width: f64,
        bin_weights: Vec<f64>,
        bandwidth: f64,
        n: usize,
    ) -> Self {
        debug_assert_eq!(bin_weights.len(), BINS);
        Kde {
            lo,
            bin_width,
            bin_weights,
            bandwidth,
            n,
        }
    }

    /// The fitted bandwidth.
    #[must_use]
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Evaluate the density at `x` — the naive reference implementation
    /// (one `exp` per non-empty bin).
    #[must_use]
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / ((self.n as f64) * h * (2.0 * std::f64::consts::PI).sqrt());
        let mut acc = 0.0;
        for (i, w) in self.bin_weights.iter().enumerate() {
            if *w == 0.0 {
                continue;
            }
            let c = self.lo + (i as f64 + 0.5) * self.bin_width;
            let z = (x - c) / h;
            if z.abs() < CUTOFF {
                acc += w * (-0.5 * z * z).exp();
            }
        }
        acc * norm
    }

    /// Evaluate the density over an arbitrary grid — the naive reference
    /// oracle (`O(bins × grid)` with one `exp` per pair). Prefer
    /// [`Kde::density_grid_aligned`] for uniform grids over the fit
    /// support.
    #[must_use]
    pub fn density_grid(&self, grid: &[f64]) -> Vec<f64> {
        grid.iter().map(|&x| self.density(x)).collect()
    }

    /// Evaluate the density over the canonical `n_grid`-point uniform grid
    /// spanning the fit support (points `lo + (i + 0.5) * (hi - lo) /
    /// n_grid`) with a banded convolution.
    ///
    /// `n_grid` must divide [`BINS`]. Bin centres and grid points then
    /// share a uniform spacing, so the kernel weight between bin `b` and
    /// grid point `g` depends only on `r·g - b` (where `r = BINS /
    /// n_grid`): the Gaussian is evaluated once per distinct offset within
    /// the ±8σ cutoff band, and each non-empty bin scatters one
    /// multiply-add per in-band grid point. Agrees with
    /// [`Kde::density_grid`] on that grid to ~1 ulp per kernel term.
    ///
    /// # Panics
    /// Panics if `n_grid` is zero or does not divide [`BINS`].
    #[must_use]
    pub fn density_grid_aligned(&self, n_grid: usize) -> Vec<f64> {
        assert!(
            n_grid > 0 && BINS.is_multiple_of(n_grid),
            "grid must evenly divide {BINS} bins"
        );
        let r = (BINS / n_grid) as i64;
        let h = self.bandwidth;
        let bw = self.bin_width;
        let norm = 1.0 / ((self.n as f64) * h * (2.0 * std::f64::consts::PI).sqrt());
        // Grid point g sits at lo + (g + 0.5) * r * bw; bin b's centre at
        // lo + (b + 0.5) * bw. Their distance is bw * (k + shift) with
        // k = r*g - b and a constant half-offset shift.
        let shift = (r - 1) as f64 / 2.0;
        // |z| < CUTOFF  ⇔  k ∈ (-shift - half, -shift + half), exclusive.
        let half = CUTOFF * h / bw;
        let k_lo = ((-shift - half).floor() as i64 + 1).max(-(BINS as i64 - 1));
        let k_hi = ((-shift + half).ceil() as i64 - 1).min(r * (n_grid as i64 - 1));
        let mut out = vec![0.0f64; n_grid];
        if k_hi < k_lo {
            return out;
        }
        let profile = gaussian_profile(k_lo, k_hi, shift, bw / h);
        // Two evaluation orders with identical index sets:
        //
        // * **scatter** — per non-empty bin, one strided pass over the
        //   grid. O(non-empty bins × band); wins for sparse histograms
        //   (small classes).
        // * **gather** — per grid point, a contiguous dot product of the
        //   bin row with the reversed profile. O(BINS × grid) regardless of
        //   occupancy, but branch-free and vectorisable; wins once a
        //   sizeable fraction of bins is populated.
        //
        // Both orders sum the same terms (to ~1 ulp reassociation), far
        // inside the 1e-12 agreement pinned against the naive oracle.
        let nonzero = self.bin_weights.iter().filter(|w| **w != 0.0).count();
        if nonzero * 8 > BINS {
            let prof_rev: Vec<f64> = profile.iter().rev().copied().collect();
            for (g, o) in out.iter_mut().enumerate() {
                let rg = r * g as i64;
                let b_lo = (rg - k_hi).max(0);
                let b_hi = (rg - k_lo).min(BINS as i64 - 1);
                if b_hi < b_lo {
                    continue;
                }
                let len = (b_hi - b_lo + 1) as usize;
                let j0 = (b_lo - (rg - k_hi)) as usize;
                *o = dot4(
                    &self.bin_weights[b_lo as usize..][..len],
                    &prof_rev[j0..j0 + len],
                );
            }
        } else {
            // De-stride the profile once into `r` interleaved streams so
            // each bin's pass is a contiguous (vectorisable) zip instead of
            // a `step_by(r)` gather.
            let ru = r as usize;
            let streams: Vec<Vec<f64>> = (0..ru)
                .map(|m| profile[m..].iter().step_by(ru).copied().collect())
                .collect();
            for (b, &w) in self.bin_weights.iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                let b = b as i64;
                // Grid points with r*g - b inside [k_lo, k_hi].
                let g_lo = (k_lo + b).div_euclid(r) + i64::from((k_lo + b).rem_euclid(r) != 0);
                let g_lo = g_lo.max(0);
                let g_hi = ((k_hi + b).div_euclid(r)).min(n_grid as i64 - 1);
                if g_hi < g_lo {
                    continue;
                }
                let p0 = (r * g_lo - b - k_lo) as usize;
                let dst = &mut out[g_lo as usize..=g_hi as usize];
                let stream = &streams[p0 % ru][p0 / ru..];
                for (o, p) in dst.iter_mut().zip(stream) {
                    *o += w * p;
                }
            }
        }
        for v in &mut out {
            *v *= norm;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simpson_mass(kde: &Kde, lo: f64, hi: f64, n: usize) -> f64 {
        let w = (hi - lo) / n as f64;
        (0..n)
            .map(|i| kde.density(lo + (i as f64 + 0.5) * w) * w)
            .sum()
    }

    #[test]
    fn density_integrates_to_one() {
        let samples: Vec<f64> = (0..500)
            .map(|i| (i as f64 * 0.013).sin() * 3.0 + 10.0)
            .collect();
        let kde = Kde::fit(&samples, 0.0, 20.0, 0.0);
        let mass = simpson_mass(&kde, -10.0, 30.0, 4000);
        assert!((mass - 1.0).abs() < 0.02, "mass {mass}");
    }

    #[test]
    fn density_peaks_at_the_mode() {
        let samples = vec![5.0; 100];
        let kde = Kde::fit(&samples, 0.0, 10.0, 0.0);
        assert!(kde.density(5.0) > kde.density(7.0) * 100.0);
    }

    #[test]
    fn degenerate_class_has_positive_bandwidth() {
        let kde = Kde::fit(&[3.0, 3.0, 3.0], 0.0, 10.0, 0.0);
        assert!(kde.bandwidth() > 0.0);
        assert!(kde.density(3.0).is_finite());
    }

    #[test]
    fn bimodal_distribution_resolved() {
        let mut samples = vec![2.0; 200];
        samples.extend(vec![8.0; 200]);
        let kde = Kde::fit(&samples, 0.0, 10.0, 0.0);
        let at_mode = kde.density(2.0);
        let at_valley = kde.density(5.0);
        assert!(
            at_mode > 3.0 * at_valley,
            "modes {at_mode} valley {at_valley}"
        );
    }

    /// The banded convolution agrees with the naive oracle on its grid.
    #[test]
    fn aligned_grid_matches_naive_oracle() {
        let mut samples: Vec<f64> = (0..400).map(|i| ((i * 37) % 101) as f64 * 0.13).collect();
        samples.extend((0..50).map(|i| 11.0 + i as f64 * 0.01));
        let (lo, hi) = (-1.0, 14.0);
        for n_grid in [128usize, 64, 256] {
            let width = (hi - lo) / n_grid as f64;
            let kde = Kde::fit(&samples, lo, hi, width);
            let grid: Vec<f64> = (0..n_grid).map(|i| lo + (i as f64 + 0.5) * width).collect();
            let naive = kde.density_grid(&grid);
            let fast = kde.density_grid_aligned(n_grid);
            for (g, (a, b)) in naive.iter().zip(&fast).enumerate() {
                let scale = a.abs().max(1e-12);
                assert!(
                    (a - b).abs() / scale < 1e-12,
                    "grid {n_grid} point {g}: naive {a} vs fast {b}"
                );
            }
        }
    }

    /// A narrow bandwidth (floored at the grid resolution) keeps the band
    /// small without losing mass.
    #[test]
    fn narrow_band_conserves_mass() {
        let samples = vec![5.0; 64];
        let width = 10.0 / 256.0;
        let kde = Kde::fit(&samples, 0.0, 10.0, width);
        let fast = kde.density_grid_aligned(256);
        let mass: f64 = fast.iter().map(|d| d * width).sum();
        assert!((mass - 1.0).abs() < 0.01, "mass {mass}");
    }
}
