//! Gaussian kernel density estimation with Silverman's bandwidth rule.
//!
//! §5.1: "we use kernel density estimation [Silverman 1986] to estimate the
//! probability density function of outputs for each input." For efficiency
//! the samples are first binned onto a fine grid, so density evaluation is
//! `O(bins × grid)` rather than `O(samples × grid)` — important because the
//! shuffle test re-estimates densities 100 times.

use crate::stats;

/// Number of histogram bins used to compress samples before evaluation.
const BINS: usize = 1024;

/// A binned Gaussian KDE over one sample class.
#[derive(Debug, Clone)]
pub struct Kde {
    bin_centers: Vec<f64>,
    bin_weights: Vec<f64>,
    bandwidth: f64,
    n: usize,
}

impl Kde {
    /// Fit a KDE to `samples`, binning over `[lo, hi]`.
    ///
    /// The bandwidth follows Silverman's rule of thumb,
    /// `h = 0.9 min(σ, IQR/1.34) n^{-1/5}`, floored to `min_bandwidth` —
    /// callers that integrate the density numerically must floor it to
    /// their grid resolution, or point-mass classes vanish between grid
    /// points.
    ///
    /// # Panics
    /// Panics if `samples` is empty or `hi < lo`.
    #[must_use]
    pub fn fit(samples: &[f64], lo: f64, hi: f64, min_bandwidth: f64) -> Self {
        assert!(!samples.is_empty(), "KDE over empty class");
        assert!(hi >= lo);
        let n = samples.len();
        let sigma = stats::stddev(samples);
        let iqr = stats::percentile(samples, 75.0) - stats::percentile(samples, 25.0);
        let spread = if iqr > 0.0 { sigma.min(iqr / 1.34) } else { sigma };
        let range = (hi - lo).max(1e-12);
        let mut h = 0.9 * spread * (n as f64).powf(-0.2);
        if h.is_nan() || h <= 0.0 {
            // Degenerate class: a narrow kernel around the point mass.
            h = range * 1e-3;
        }
        h = h.max(range * 1e-4).max(min_bandwidth);

        let width = range / BINS as f64;
        let mut weights = vec![0.0f64; BINS];
        for &s in samples {
            let idx = (((s - lo) / width) as usize).min(BINS - 1);
            weights[idx] += 1.0;
        }
        let centers = (0..BINS).map(|i| lo + (i as f64 + 0.5) * width).collect();
        Kde { bin_centers: centers, bin_weights: weights, bandwidth: h, n }
    }

    /// The fitted bandwidth.
    #[must_use]
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Evaluate the density at `x`.
    #[must_use]
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / ((self.n as f64) * h * (2.0 * std::f64::consts::PI).sqrt());
        let mut acc = 0.0;
        for (c, w) in self.bin_centers.iter().zip(&self.bin_weights) {
            if *w == 0.0 {
                continue;
            }
            let z = (x - c) / h;
            if z.abs() < 8.0 {
                acc += w * (-0.5 * z * z).exp();
            }
        }
        acc * norm
    }

    /// Evaluate the density over a whole grid (amortises the setup).
    #[must_use]
    pub fn density_grid(&self, grid: &[f64]) -> Vec<f64> {
        grid.iter().map(|&x| self.density(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simpson_mass(kde: &Kde, lo: f64, hi: f64, n: usize) -> f64 {
        let w = (hi - lo) / n as f64;
        (0..n)
            .map(|i| kde.density(lo + (i as f64 + 0.5) * w) * w)
            .sum()
    }

    #[test]
    fn density_integrates_to_one() {
        let samples: Vec<f64> = (0..500).map(|i| (i as f64 * 0.013).sin() * 3.0 + 10.0).collect();
        let kde = Kde::fit(&samples, 0.0, 20.0, 0.0);
        let mass = simpson_mass(&kde, -10.0, 30.0, 4000);
        assert!((mass - 1.0).abs() < 0.02, "mass {mass}");
    }

    #[test]
    fn density_peaks_at_the_mode() {
        let samples = vec![5.0; 100];
        let kde = Kde::fit(&samples, 0.0, 10.0, 0.0);
        assert!(kde.density(5.0) > kde.density(7.0) * 100.0);
    }

    #[test]
    fn degenerate_class_has_positive_bandwidth() {
        let kde = Kde::fit(&[3.0, 3.0, 3.0], 0.0, 10.0, 0.0);
        assert!(kde.bandwidth() > 0.0);
        assert!(kde.density(3.0).is_finite());
    }

    #[test]
    fn bimodal_distribution_resolved() {
        let mut samples = vec![2.0; 200];
        samples.extend(vec![8.0; 200]);
        let kde = Kde::fit(&samples, 0.0, 10.0, 0.0);
        let at_mode = kde.density(2.0);
        let at_valley = kde.density(5.0);
        assert!(at_mode > 3.0 * at_valley, "modes {at_mode} valley {at_valley}");
    }
}
