//! Small statistics helpers.

/// Arithmetic mean.
///
/// # Panics
/// Panics on an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator; 0 for singletons).
#[must_use]
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Percentile by linear interpolation (`p` in 0..=100).
///
/// Clones and sorts the slice on every call; when several percentiles of
/// the same data are needed (e.g. the IQR inside a KDE fit), sort once with
/// [`sort_unstable_finite`] and use [`percentile_sorted`] instead.
///
/// # Panics
/// Panics on an empty slice.
#[must_use]
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut v: Vec<f64> = xs.to_vec();
    sort_unstable_finite(&mut v);
    percentile_sorted(&v, p)
}

/// Sort a slice of finite floats in place (ascending).
///
/// # Panics
/// Panics if any element is NaN.
pub fn sort_unstable_finite(xs: &mut [f64]) {
    xs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
}

/// Percentile by linear interpolation over an **already sorted** slice
/// (`p` in 0..=100). The sort-free half of [`percentile`].
///
/// # Panics
/// Panics on an empty slice.
#[must_use]
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (sorted[hi] - sorted[lo]) * (rank - lo as f64)
    }
}

/// Median.
#[must_use]
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Geometric mean (Figure 7 / Table 8 report geometric means of
/// slowdowns). Inputs must be positive.
///
/// # Panics
/// Panics on an empty slice or non-positive values.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    assert!(xs.iter().all(|&x| x > 0.0), "geomean needs positive values");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Min and max of a slice.
///
/// # Panics
/// Panics on an empty slice.
#[must_use]
pub fn min_max(xs: &[f64]) -> (f64, f64) {
    assert!(!xs.is_empty());
    xs.iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
            (lo.min(x), hi.max(x))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.138089935).abs() < 1e-6);
        assert_eq!(stddev(&[3.0]), 0.0);
    }

    #[test]
    fn percentiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 25.0), 2.0);
        assert_eq!(median(&xs), 3.0);
    }

    #[test]
    fn percentile_sorted_matches_percentile() {
        let xs = [9.5, -3.0, 4.0, 4.0, 0.25, 17.0, 2.0];
        let mut sorted = xs;
        sort_unstable_finite(&mut sorted);
        for p in [0.0, 12.5, 25.0, 50.0, 75.0, 95.0, 100.0] {
            assert_eq!(percentile_sorted(&sorted, p), percentile(&xs, p));
        }
    }

    #[test]
    fn geometric_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_works() {
        assert_eq!(min_max(&[3.0, -1.0, 2.0]), (-1.0, 3.0));
    }
}
