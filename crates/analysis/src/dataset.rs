//! The (input, output) sample container shared by all estimators.

/// A channel dataset: discrete input symbols paired with continuous output
/// observations.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    inputs: Vec<usize>,
    outputs: Vec<f64>,
    n_symbols: usize,
}

impl Dataset {
    /// Create an empty dataset over `n_symbols` input symbols
    /// (`0..n_symbols`).
    #[must_use]
    pub fn new(n_symbols: usize) -> Self {
        Dataset {
            inputs: Vec::new(),
            outputs: Vec::new(),
            n_symbols,
        }
    }

    /// Record one observation.
    ///
    /// # Panics
    /// Panics if `input >= n_symbols` or `output` is not finite.
    pub fn push(&mut self, input: usize, output: f64) {
        assert!(input < self.n_symbols, "symbol {input} out of range");
        assert!(output.is_finite(), "non-finite output");
        self.inputs.push(input);
        self.outputs.push(output);
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the dataset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Number of input symbols.
    #[must_use]
    pub fn n_symbols(&self) -> usize {
        self.n_symbols
    }

    /// The input symbols.
    #[must_use]
    pub fn inputs(&self) -> &[usize] {
        &self.inputs
    }

    /// The output observations.
    #[must_use]
    pub fn outputs(&self) -> &[f64] {
        &self.outputs
    }

    /// Outputs belonging to one input symbol.
    #[must_use]
    pub fn class(&self, symbol: usize) -> Vec<f64> {
        self.inputs
            .iter()
            .zip(&self.outputs)
            .filter(|(i, _)| **i == symbol)
            .map(|(_, o)| *o)
            .collect()
    }

    /// Per-symbol sample counts.
    #[must_use]
    pub fn class_counts(&self) -> Vec<usize> {
        let mut c = vec![0usize; self.n_symbols];
        for &i in &self.inputs {
            c[i] += 1;
        }
        c
    }

    /// Build directly from parallel vectors.
    ///
    /// # Panics
    /// Panics on length mismatch or out-of-range symbols.
    #[must_use]
    pub fn from_parts(n_symbols: usize, inputs: Vec<usize>, outputs: Vec<f64>) -> Self {
        assert_eq!(inputs.len(), outputs.len());
        assert!(inputs.iter().all(|&i| i < n_symbols));
        Dataset {
            inputs,
            outputs,
            n_symbols,
        }
    }

    /// A copy with the outputs permuted by `perm` (the shuffle test).
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..len`.
    #[must_use]
    pub fn permuted(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.len());
        let outputs = perm.iter().map(|&j| self.outputs[j]).collect();
        Dataset {
            inputs: self.inputs.clone(),
            outputs,
            n_symbols: self.n_symbols,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_partition_the_data() {
        let mut d = Dataset::new(3);
        d.push(0, 1.0);
        d.push(1, 2.0);
        d.push(0, 3.0);
        d.push(2, 4.0);
        assert_eq!(d.class(0), vec![1.0, 3.0]);
        assert_eq!(d.class(1), vec![2.0]);
        assert_eq!(d.class_counts(), vec![2, 1, 1]);
        assert_eq!(d.len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_symbol() {
        let mut d = Dataset::new(2);
        d.push(2, 1.0);
    }

    #[test]
    fn permutation_moves_outputs_not_inputs() {
        let d = Dataset::from_parts(2, vec![0, 1, 0], vec![10.0, 20.0, 30.0]);
        let p = d.permuted(&[2, 0, 1]);
        assert_eq!(p.inputs(), d.inputs());
        assert_eq!(p.outputs(), &[30.0, 10.0, 20.0]);
    }
}
