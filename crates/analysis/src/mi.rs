//! Continuous mutual information between discrete inputs and continuous
//! outputs, integrated with the rectangle method (§5.1).
//!
//! `M = Σ_i p(i) ∫ f(o|i) log2( f(o|i) / f(o) ) do`
//!
//! with a uniform input distribution `p(i) = 1/|I|` and
//! `f(o) = Σ_i p(i) f(o|i)`. The paper writes the estimate as `M`, in bits
//! per input symbol; `1 mb = 10⁻³ bits`.
//!
//! [`MiContext`] is the workhorse: it precomputes everything that is
//! invariant under input/output re-pairing (the support, the integration
//! grid, and each output sample's KDE bin index), so the shuffle test's 100
//! re-paired estimates only re-accumulate per-class bin weights in `O(n)`
//! before the banded-convolution density evaluation. [`mutual_information`]
//! is a thin wrapper over a one-shot context;
//! [`mutual_information_naive`] keeps the original unoptimised evaluation
//! as a reference oracle for property tests.

use crate::dataset::Dataset;
use crate::kde::{self, Kde, BINS};

/// Number of rectangle-method integration points. 128 points resolve the
/// (at most few-hundred-sample, Silverman-smoothed) class densities to far
/// below the shuffle test's own sampling noise — the bandwidth floor at
/// the grid width keeps every kernel wider than a cell — and the cost of
/// all 101 shuffle estimates scales linearly with it.
const GRID: usize = 128;

/// A mutual-information estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiEstimate {
    /// Mutual information in bits per input symbol.
    pub bits: f64,
    /// Number of samples used.
    pub n: usize,
}

impl MiEstimate {
    /// The estimate in millibits (the paper's unit for small channels).
    #[must_use]
    pub fn millibits(&self) -> f64 {
        self.bits * 1000.0
    }
}

/// Estimate the continuous MI of a dataset.
///
/// Symbols with no samples are skipped (treated as never sent). Returns 0
/// for datasets with fewer than two populated symbols.
#[must_use]
pub fn mutual_information(data: &Dataset) -> MiEstimate {
    MiContext::new(data).mi()
}

/// The original, unoptimised MI estimate: per-class [`Kde::fit`] plus the
/// naive `O(bins × grid)` density evaluation of [`Kde::density_grid`].
///
/// Kept as the **reference oracle**: `tests/properties.rs` checks that the
/// fast path of [`mutual_information`] agrees with this to within `1e-9`
/// bits on random datasets. Do not use it in hot paths.
#[must_use]
pub fn mutual_information_naive(data: &Dataset) -> MiEstimate {
    let n = data.len();
    let counts = data.class_counts();
    let populated: Vec<usize> = (0..data.n_symbols()).filter(|&s| counts[s] > 0).collect();
    if populated.len() < 2 || n == 0 {
        return MiEstimate { bits: 0.0, n };
    }

    let (lo, hi) = support(data.outputs());
    let width = (hi - lo) / GRID as f64;
    let grid: Vec<f64> = (0..GRID).map(|i| lo + (i as f64 + 0.5) * width).collect();

    // Conditional densities per populated symbol.
    let class_density: Vec<Vec<f64>> = populated
        .iter()
        .map(|&s| {
            let class = data.class(s);
            // Floor the bandwidth at the integration resolution so narrow
            // classes cannot fall between grid points.
            Kde::fit(&class, lo, hi, width).density_grid(&grid)
        })
        .collect();

    // Uniform prior over populated symbols; mixture density.
    let p = 1.0 / populated.len() as f64;
    let mut mix = vec![0.0f64; GRID];
    for cd in &class_density {
        for (m, d) in mix.iter_mut().zip(cd) {
            *m += p * d;
        }
    }
    let bits = integrate_mi(&class_density, &mix, p, width);
    MiEstimate { bits, n }
}

/// The integration support: the data's min/max extended by 5% of the span
/// so kernels integrate fully.
fn support(outputs: &[f64]) -> (f64, f64) {
    let (lo, hi) = crate::stats::min_max(outputs);
    let span = (hi - lo).max(1e-9);
    (lo - 0.05 * span, hi + 0.05 * span)
}

/// Rectangle-method integral of `Σ_i p ∫ f(o|i) log2(f(o|i)/f(o)) do`,
/// clamped to be non-negative.
fn integrate_mi(class_density: &[Vec<f64>], mix: &[f64], p: f64, width: f64) -> f64 {
    let mut bits = 0.0;
    for cd in class_density {
        let mut integral = 0.0;
        for (d, m) in cd.iter().zip(mix) {
            if *d > 0.0 && *m > 0.0 {
                integral += d * (d / m).log2() * width;
            }
        }
        bits += p * integral;
    }
    bits.max(0.0)
}

/// Precomputed state for estimating the MI of one dataset under many
/// input/output re-pairings (the §5.1 shuffle test).
///
/// Everything that does not depend on the pairing is computed once:
///
/// * the set of populated symbols (re-pairing permutes *outputs*, so class
///   sample counts never change);
/// * the integration support and grid over the pooled outputs;
/// * each output sample's KDE bin index (binning is pairing-invariant).
///
/// Each estimate then costs one `O(n)` pass to split values and bin
/// weights by class, a Silverman bandwidth per class, and a banded
/// convolution per class ([`Kde::density_grid_aligned`]).
#[derive(Debug)]
pub struct MiContext<'a> {
    data: &'a Dataset,
    /// Symbols with at least one sample, in ascending order.
    populated: Vec<usize>,
    /// Dense slot of each populated symbol (`usize::MAX` for symbols that
    /// never occur — never indexed, because they never appear in inputs).
    slot_of: Vec<usize>,
    /// Per-symbol sample counts (pairing-invariant).
    counts: Vec<usize>,
    /// Integration support.
    lo: f64,
    /// KDE bin width over the support.
    bin_width: f64,
    /// Grid cell width (`= 2 × bin_width`).
    grid_width: f64,
    /// Bandwidth floor range, as [`Kde::fit`] derives it from the support.
    range: f64,
    /// KDE bin index of each output sample.
    bin_of: Vec<u32>,
    /// Fewer than two populated symbols: MI is 0 under every pairing.
    degenerate: bool,
}

impl<'a> MiContext<'a> {
    /// Build the pairing-invariant state for `data`.
    #[must_use]
    pub fn new(data: &'a Dataset) -> Self {
        let n = data.len();
        let counts = data.class_counts();
        let populated: Vec<usize> = (0..data.n_symbols()).filter(|&s| counts[s] > 0).collect();
        let degenerate = populated.len() < 2 || n == 0;
        let mut slot_of = vec![usize::MAX; data.n_symbols()];
        for (slot, &s) in populated.iter().enumerate() {
            slot_of[s] = slot;
        }
        if degenerate {
            return MiContext {
                data,
                populated,
                slot_of,
                counts,
                lo: 0.0,
                bin_width: 1.0,
                grid_width: 1.0,
                range: 1.0,
                bin_of: Vec::new(),
                degenerate,
            };
        }
        let (lo, hi) = support(data.outputs());
        let range = (hi - lo).max(1e-12);
        let bw = kde::bin_width(lo, hi);
        let bin_of = data
            .outputs()
            .iter()
            .map(|&o| kde::bin_index(lo, bw, o) as u32)
            .collect();
        MiContext {
            data,
            populated,
            slot_of,
            counts,
            lo,
            bin_width: bw,
            grid_width: (hi - lo) / GRID as f64,
            range,
            bin_of,
            degenerate,
        }
    }

    /// The MI estimate of the dataset's own (identity) pairing —
    /// numerically within `1e-9` bits of [`mutual_information_naive`].
    #[must_use]
    pub fn mi(&self) -> MiEstimate {
        MiEstimate {
            bits: self.mi_of_pairing(None),
            n: self.data.len(),
        }
    }

    /// The MI (in bits) of the dataset with its outputs re-paired by
    /// `perm`: input `j` is paired with output `perm[j]`, exactly as
    /// [`Dataset::permuted`] would build it.
    ///
    /// # Panics
    /// Panics if `perm` is not `len()` long.
    #[must_use]
    pub fn mi_shuffled(&self, perm: &[usize]) -> f64 {
        assert_eq!(perm.len(), self.data.len());
        self.mi_of_pairing(Some(perm))
    }

    fn mi_of_pairing(&self, perm: Option<&[usize]>) -> f64 {
        if self.degenerate {
            return 0.0;
        }
        let n_pop = self.populated.len();
        // O(n): split output values and bin weights by class. Values are
        // collected in sample order, matching what `Dataset::permuted` +
        // `Dataset::class` would produce, so bandwidths are bit-identical
        // to the naive path's.
        let mut class_vals: Vec<Vec<f64>> = self
            .populated
            .iter()
            .map(|&s| Vec::with_capacity(self.counts[s]))
            .collect();
        let mut class_wts = vec![vec![0.0f64; BINS]; n_pop];
        let inputs = self.data.inputs();
        let outputs = self.data.outputs();
        for (j, &sym) in inputs.iter().enumerate() {
            let slot = self.slot_of[sym];
            let src = perm.map_or(j, |p| p[j]);
            class_vals[slot].push(outputs[src]);
            class_wts[slot][self.bin_of[src] as usize] += 1.0;
        }

        let p = 1.0 / n_pop as f64;
        let mut mix = vec![0.0f64; GRID];
        let mut class_density = Vec::with_capacity(n_pop);
        for (vals, wts) in class_vals.iter().zip(class_wts) {
            let h = kde::silverman_bandwidth(vals, self.range, self.grid_width);
            let kde = Kde::from_parts(self.lo, self.bin_width, wts, h, vals.len());
            let cd = kde.density_grid_aligned(GRID);
            for (m, d) in mix.iter_mut().zip(&cd) {
                *m += p * d;
            }
            class_density.push(cd);
        }
        integrate_mi(&class_density, &mix, p, self.grid_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gaussian(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
        // Box-Muller.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen();
        mu + sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    #[test]
    fn perfectly_separated_symbols_give_log2_of_count() {
        let mut d = Dataset::new(4);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let s = rng.gen_range(0..4usize);
            d.push(s, gaussian(&mut rng, 100.0 * s as f64, 1.0));
        }
        let mi = mutual_information(&d);
        // 4 perfectly distinguishable symbols: 2 bits.
        assert!((mi.bits - 2.0).abs() < 0.1, "MI {}", mi.bits);
    }

    #[test]
    fn independent_outputs_give_near_zero() {
        let mut d = Dataset::new(4);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..4000 {
            let s = rng.gen_range(0..4usize);
            d.push(s, gaussian(&mut rng, 50.0, 5.0));
        }
        let mi = mutual_information(&d);
        assert!(mi.bits < 0.02, "MI {} should be ~0", mi.bits);
    }

    #[test]
    fn partial_overlap_is_between_extremes() {
        let mut d = Dataset::new(2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..4000 {
            let s = rng.gen_range(0..2usize);
            // One sigma apart: substantially overlapping.
            d.push(s, gaussian(&mut rng, s as f64, 1.0));
        }
        let mi = mutual_information(&d);
        assert!(mi.bits > 0.05 && mi.bits < 0.5, "MI {}", mi.bits);
    }

    #[test]
    fn single_symbol_is_zero() {
        let mut d = Dataset::new(3);
        for i in 0..100 {
            d.push(1, i as f64);
        }
        assert_eq!(mutual_information(&d).bits, 0.0);
        assert_eq!(mutual_information_naive(&d).bits, 0.0);
    }

    #[test]
    fn mi_bounded_by_symbol_entropy() {
        let mut d = Dataset::new(2);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..3000 {
            let s = rng.gen_range(0..2usize);
            d.push(s, gaussian(&mut rng, 1000.0 * s as f64, 0.5));
        }
        let mi = mutual_information(&d);
        assert!(mi.bits <= 1.0 + 0.05, "MI {} exceeds 1 bit", mi.bits);
    }

    #[test]
    fn millibits_conversion() {
        let e = MiEstimate { bits: 0.05, n: 10 };
        assert!((e.millibits() - 50.0).abs() < 1e-9);
    }

    /// The fast path agrees with the naive oracle on a mixed dataset
    /// (the exhaustive random check lives in `tests/properties.rs`).
    #[test]
    fn fast_path_matches_naive_oracle() {
        let mut d = Dataset::new(4);
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..700 {
            let s = rng.gen_range(0..4usize);
            d.push(s, gaussian(&mut rng, 10.0 * s as f64, 4.0));
        }
        let fast = mutual_information(&d).bits;
        let naive = mutual_information_naive(&d).bits;
        assert!((fast - naive).abs() < 1e-9, "fast {fast} vs naive {naive}");
    }

    /// `mi_shuffled` agrees with re-pairing the dataset and re-estimating
    /// from scratch.
    #[test]
    fn shuffled_context_matches_permuted_dataset() {
        let mut d = Dataset::new(3);
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..300 {
            let s = rng.gen_range(0..3usize);
            d.push(s, gaussian(&mut rng, 5.0 * s as f64, 2.0));
        }
        // A fixed, non-trivial permutation.
        let n = d.len();
        let perm: Vec<usize> = (0..n).map(|j| (j * 7 + 3) % n).collect();
        let ctx = MiContext::new(&d);
        let fast = ctx.mi_shuffled(&perm);
        let naive = mutual_information_naive(&d.permuted(&perm)).bits;
        assert!((fast - naive).abs() < 1e-9, "fast {fast} vs naive {naive}");
    }
}
