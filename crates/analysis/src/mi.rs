//! Continuous mutual information between discrete inputs and continuous
//! outputs, integrated with the rectangle method (§5.1).
//!
//! `M = Σ_i p(i) ∫ f(o|i) log2( f(o|i) / f(o) ) do`
//!
//! with a uniform input distribution `p(i) = 1/|I|` and
//! `f(o) = Σ_i p(i) f(o|i)`. The paper writes the estimate as `M`, in bits
//! per input symbol; `1 mb = 10⁻³ bits`.

use crate::dataset::Dataset;
use crate::kde::Kde;

/// Number of rectangle-method integration points.
const GRID: usize = 512;

/// A mutual-information estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiEstimate {
    /// Mutual information in bits per input symbol.
    pub bits: f64,
    /// Number of samples used.
    pub n: usize,
}

impl MiEstimate {
    /// The estimate in millibits (the paper's unit for small channels).
    #[must_use]
    pub fn millibits(&self) -> f64 {
        self.bits * 1000.0
    }
}

/// Estimate the continuous MI of a dataset.
///
/// Symbols with no samples are skipped (treated as never sent). Returns 0
/// for datasets with fewer than two populated symbols.
#[must_use]
pub fn mutual_information(data: &Dataset) -> MiEstimate {
    let n = data.len();
    let counts = data.class_counts();
    let populated: Vec<usize> = (0..data.n_symbols()).filter(|&s| counts[s] > 0).collect();
    if populated.len() < 2 || n == 0 {
        return MiEstimate { bits: 0.0, n };
    }

    let (lo, hi) = crate::stats::min_max(data.outputs());
    // Extend the support a little beyond the data so kernels integrate
    // fully.
    let span = (hi - lo).max(1e-9);
    let lo = lo - 0.05 * span;
    let hi = hi + 0.05 * span;
    let width = (hi - lo) / GRID as f64;
    let grid: Vec<f64> = (0..GRID).map(|i| lo + (i as f64 + 0.5) * width).collect();

    // Conditional densities per populated symbol.
    let class_density: Vec<Vec<f64>> = populated
        .iter()
        .map(|&s| {
            let class = data.class(s);
            // Floor the bandwidth at the integration resolution so narrow
            // classes cannot fall between grid points.
            Kde::fit(&class, lo, hi, width).density_grid(&grid)
        })
        .collect();

    // Uniform prior over populated symbols; mixture density.
    let p = 1.0 / populated.len() as f64;
    let mut mix = vec![0.0f64; GRID];
    for cd in &class_density {
        for (m, d) in mix.iter_mut().zip(cd) {
            *m += p * d;
        }
    }

    // Rectangle-method integral.
    let mut bits = 0.0;
    for cd in &class_density {
        let mut integral = 0.0;
        for (d, m) in cd.iter().zip(&mix) {
            if *d > 0.0 && *m > 0.0 {
                integral += d * (d / m).log2() * width;
            }
        }
        bits += p * integral;
    }
    MiEstimate { bits: bits.max(0.0), n }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gaussian(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
        // Box-Muller.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen();
        mu + sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    #[test]
    fn perfectly_separated_symbols_give_log2_of_count() {
        let mut d = Dataset::new(4);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let s = rng.gen_range(0..4usize);
            d.push(s, gaussian(&mut rng, 100.0 * s as f64, 1.0));
        }
        let mi = mutual_information(&d);
        // 4 perfectly distinguishable symbols: 2 bits.
        assert!((mi.bits - 2.0).abs() < 0.1, "MI {}", mi.bits);
    }

    #[test]
    fn independent_outputs_give_near_zero() {
        let mut d = Dataset::new(4);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..4000 {
            let s = rng.gen_range(0..4usize);
            d.push(s, gaussian(&mut rng, 50.0, 5.0));
        }
        let mi = mutual_information(&d);
        assert!(mi.bits < 0.02, "MI {} should be ~0", mi.bits);
    }

    #[test]
    fn partial_overlap_is_between_extremes() {
        let mut d = Dataset::new(2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..4000 {
            let s = rng.gen_range(0..2usize);
            // One sigma apart: substantially overlapping.
            d.push(s, gaussian(&mut rng, s as f64, 1.0));
        }
        let mi = mutual_information(&d);
        assert!(mi.bits > 0.05 && mi.bits < 0.5, "MI {}", mi.bits);
    }

    #[test]
    fn single_symbol_is_zero() {
        let mut d = Dataset::new(3);
        for i in 0..100 {
            d.push(1, i as f64);
        }
        assert_eq!(mutual_information(&d).bits, 0.0);
    }

    #[test]
    fn mi_bounded_by_symbol_entropy() {
        let mut d = Dataset::new(2);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..3000 {
            let s = rng.gen_range(0..2usize);
            d.push(s, gaussian(&mut rng, 1000.0 * s as f64, 0.5));
        }
        let mi = mutual_information(&d);
        assert!(mi.bits <= 1.0 + 0.05, "MI {} exceeds 1 bit", mi.bits);
    }

    #[test]
    fn millibits_conversion() {
        let e = MiEstimate { bits: 0.05, n: 10 };
        assert!((e.millibits() - 50.0).abs() < 1e-9);
    }
}
