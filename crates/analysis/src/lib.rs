//! # tp-analysis — timing-channel quantification
//!
//! The measurement methodology of §5.1 of *Time Protection: The Missing OS
//! Abstraction*:
//!
//! * model a channel as discrete **inputs** (the sender's secret symbols)
//!   and continuous **outputs** (the receiver's time measurements);
//! * estimate the conditional output densities with **kernel density
//!   estimation** ([`kde`], Silverman's rule);
//! * integrate **continuous mutual information** with the rectangle method
//!   ([`mi`]), written `M`;
//! * distinguish sampling noise from a real leak with the **shuffle test**
//!   ([`shuffle`]): 100 random input/output re-pairings give an empirical
//!   distribution of apparent MI for a channel that is guaranteed
//!   zero-leakage; its 95% bound is `M0`, and the data shows a leak iff
//!   `M > M0` (strict);
//! * visualise channel matrices (conditional probability heat maps, Figures
//!   3, 5 and 6) as text ([`matrix`]).
//!
//! The statistical machinery is the evaluation harness's hot path (101 MI
//! estimates per verdict), so it is built around a reusable
//! [`mi::MiContext`] plus a banded-convolution KDE evaluation, with the
//! shuffles fanned out over threads; the naive implementations survive as
//! reference oracles ([`mi::mutual_information_naive`],
//! [`kde::Kde::density_grid`]). See DESIGN.md § Performance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod kde;
pub mod matrix;
pub mod mi;
pub mod shuffle;
pub mod stats;

pub use dataset::Dataset;
pub use matrix::ChannelMatrix;
pub use mi::{mutual_information, mutual_information_naive, MiContext, MiEstimate};
pub use shuffle::{leakage_test, LeakageVerdict};
