//! The zero-leakage shuffle test (§5.1, after Chothia & Guha (2011)).
//!
//! Sampling noise makes the MI estimate non-zero even for a channel with no
//! leakage, so the raw estimate `M` cannot be read directly. The test
//! simulates the noise of a guaranteed-zero channel by randomly re-pairing
//! outputs with inputs: the re-pairing preserves the marginal output
//! distribution but destroys any input/output relation. Repeating 100 times
//! yields an empirical null distribution whose 95% bound is `M0`; the
//! observations are inconsistent with zero leakage — i.e. there *is* a leak
//! — iff `M > M0` (the strict inequality matters: for very uniform data
//! with no leakage `M` may equal `M0`).
//!
//! The 101 MI estimates share one [`MiContext`] (support, grid and bin
//! indices are pairing-invariant), and the 100 shuffles run concurrently:
//! each shuffle's permutation RNG is derived from the master seed with a
//! SplitMix64 step over the shuffle index, so the null distribution is
//! bit-identical for every thread count (Invariant 1). `TP_THREADS=1`
//! forces a sequential run; see `tp-bench`'s docs.

use crate::dataset::Dataset;
use crate::mi::{MiContext, MiEstimate};
use crate::stats;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Number of shuffles forming the null distribution.
pub const SHUFFLES: usize = 100;

/// Derive the seed of shuffle `i` from the master seed: one SplitMix64
/// step over a golden-ratio stride. Each shuffle owns an independent RNG,
/// so the work can be scheduled across any number of threads without
/// changing a single bit of the result.
#[must_use]
pub fn shuffle_seed(master: u64, i: u64) -> u64 {
    let mut z = master.wrapping_add((i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Verdict of the leakage test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakageVerdict {
    /// The MI estimate `M` of the original dataset.
    pub m: MiEstimate,
    /// The 95% zero-leakage bound `M0`.
    pub m0_bits: f64,
    /// Mean of the null distribution.
    pub null_mean_bits: f64,
    /// Standard deviation of the null distribution.
    pub null_sd_bits: f64,
    /// `true` iff the data contains evidence of a leak (`M > M0`).
    pub leaks: bool,
}

impl LeakageVerdict {
    /// `M0` in millibits.
    #[must_use]
    pub fn m0_millibits(&self) -> f64 {
        self.m0_bits * 1000.0
    }
}

/// Run the full §5.1 test: estimate `M`, build the shuffled null
/// distribution, compute `M0` as its 95th percentile, and compare.
///
/// Deterministic for a given `seed`, independent of the thread count.
#[must_use]
pub fn leakage_test(data: &Dataset, seed: u64) -> LeakageVerdict {
    let ctx = MiContext::new(data);
    let m = ctx.mi();
    let n = data.len();
    let null: Vec<f64> = rayon::par_map_indexed(SHUFFLES, |i| {
        let mut rng = StdRng::seed_from_u64(shuffle_seed(seed, i as u64));
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rng);
        ctx.mi_shuffled(&perm)
    });
    let m0 = stats::percentile(&null, 95.0);
    LeakageVerdict {
        m,
        m0_bits: m0,
        null_mean_bits: stats::mean(&null),
        null_sd_bits: stats::stddev(&null),
        leaks: m.bits > m0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn gaussian(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen();
        mu + sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    #[test]
    fn detects_a_real_channel() {
        let mut d = Dataset::new(2);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..800 {
            let s = rng.gen_range(0..2usize);
            d.push(s, gaussian(&mut rng, 10.0 * s as f64, 1.0));
        }
        let v = leakage_test(&d, 99);
        assert!(v.leaks, "M={} M0={}", v.m.bits, v.m0_bits);
        assert!(v.m.bits > 0.9);
    }

    #[test]
    fn accepts_a_null_channel() {
        let mut d = Dataset::new(4);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..800 {
            let s = rng.gen_range(0..4usize);
            d.push(s, gaussian(&mut rng, 42.0, 3.0));
        }
        let v = leakage_test(&d, 100);
        assert!(!v.leaks, "false positive: M={} M0={}", v.m.bits, v.m0_bits);
    }

    #[test]
    fn shuffled_channel_mi_is_small() {
        // The null distribution itself should sit well below a real
        // channel's MI.
        let mut d = Dataset::new(2);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..600 {
            let s = rng.gen_range(0..2usize);
            d.push(s, gaussian(&mut rng, 100.0 * s as f64, 1.0));
        }
        let v = leakage_test(&d, 101);
        assert!(v.null_mean_bits < 0.1 * v.m.bits);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut d = Dataset::new(2);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..300 {
            let s = rng.gen_range(0..2usize);
            d.push(s, gaussian(&mut rng, s as f64, 2.0));
        }
        let a = leakage_test(&d, 7);
        let b = leakage_test(&d, 7);
        assert_eq!(a.m0_bits, b.m0_bits);
        assert_eq!(a.m.bits, b.m.bits);
    }

    /// The verdict (and every statistic in it) is bit-identical whether
    /// the shuffles run sequentially or on 8 workers — the guarantee the
    /// derived per-shuffle seeds exist to provide.
    #[test]
    fn verdict_identical_across_thread_counts() {
        let mut d = Dataset::new(4);
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..400 {
            let s = rng.gen_range(0..4usize);
            d.push(s, gaussian(&mut rng, 3.0 * s as f64, 2.5));
        }
        rayon::set_num_threads(1);
        let seq = leakage_test(&d, 77);
        rayon::set_num_threads(8);
        let par = leakage_test(&d, 77);
        rayon::set_num_threads(0);
        assert_eq!(seq.m.bits, par.m.bits);
        assert_eq!(seq.m0_bits, par.m0_bits);
        assert_eq!(seq.null_mean_bits, par.null_mean_bits);
        assert_eq!(seq.null_sd_bits, par.null_sd_bits);
        assert_eq!(seq.leaks, par.leaks);
    }

    /// Derived shuffle seeds are distinct (no two shuffles share an RNG
    /// stream).
    #[test]
    fn shuffle_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..SHUFFLES as u64 {
            assert!(seen.insert(shuffle_seed(0x5EED, i)));
        }
    }
}
