//! # tp-attacks — the paper's timing-channel attacks
//!
//! Implementations of every covert/side channel evaluated in §5.3 of *Time
//! Protection: The Missing OS Abstraction*, run against the `tp-sim`
//! machine under a `tp-core` kernel:
//!
//! | paper | module | mechanism |
//! |---|---|---|
//! | §5.3.1 / Fig 3 | [`kernel_image`] | covert channel through a shared kernel image's cache footprint |
//! | §5.3.2 / Table 3 | [`cache`], [`tlbchan`], [`branchchan`] | intra-core prime&probe on L1-D, L1-I, L2, TLB, BTB, BHB |
//! | §5.3.3 / Fig 4 | [`llc`], [`elgamal`] | cross-core LLC side channel against square-and-multiply ElGamal |
//! | §5.3.4 / Fig 5, Table 4 | [`flush_latency`] | covert channel through L1 flush write-back latency |
//! | §5.3.5 / Fig 6 | [`interrupt`] | covert channel through timer-interrupt placement |
//! | §2.3/§6.1 (limitation) | [`bus`] | cross-core interconnect covert channel that time protection *cannot* close |
//!
//! All experiments share the [`harness`]: a sender and a receiver time-share
//! a core under strict domain slots, the sender encoding a seeded random
//! symbol sequence, the receiver recording timing observations; the
//! harness pairs them by slice timestamps and returns a
//! [`tp_analysis::Dataset`] for MI estimation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branchchan;
pub mod bus;
pub mod cache;
pub mod elgamal;
pub mod flush_latency;
pub mod harness;
pub mod interrupt;
pub mod kernel_image;
pub mod llc;
pub mod probe;
pub mod tlbchan;

pub use harness::{ChannelOutcome, IntraCoreSpec, Scenario};
