//! The ElGamal decryption victim (§5.3.3).
//!
//! The paper attacks GnuPG 1.4.13's square-and-multiply modular
//! exponentiation. We implement the same algorithm over our own
//! multi-precision integers: decryption is functionally real, and the
//! *sequence of square/multiply operations* — the side channel — is
//! surfaced through a hook so the simulated victim can execute the
//! corresponding instruction fetches against the machine.

/// A little-endian multi-precision unsigned integer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// From a u64.
    #[must_use]
    pub fn from_u64(x: u64) -> Self {
        BigUint { limbs: vec![x] }.normalised()
    }

    /// From little-endian limbs.
    #[must_use]
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        BigUint { limbs }.normalised()
    }

    fn normalised(mut self) -> Self {
        while self.limbs.len() > 1 && *self.limbs.last().unwrap() == 0 {
            self.limbs.pop();
        }
        if self.limbs.is_empty() {
            self.limbs.push(0);
        }
        self
    }

    /// The limbs (little-endian).
    #[must_use]
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Zero test.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Bit length.
    #[must_use]
    pub fn bits(&self) -> u32 {
        let top = *self.limbs.last().unwrap();
        if top == 0 && self.limbs.len() == 1 {
            return 0;
        }
        (self.limbs.len() as u32 - 1) * 64 + (64 - top.leading_zeros())
    }

    /// Test bit `i` (0 = LSB).
    #[must_use]
    pub fn bit(&self, i: u32) -> bool {
        let limb = (i / 64) as usize;
        limb < self.limbs.len() && (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    fn cmp_mag(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// Subtraction (`self - other`), assuming `self >= other`.
    ///
    /// # Panics
    /// Panics on underflow.
    #[must_use]
    pub fn sub(&self, other: &Self) -> Self {
        assert!(self.cmp_mag(other) != std::cmp::Ordering::Less, "underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let o = *other.limbs.get(i).unwrap_or(&0);
            let (d1, b1) = self.limbs[i].overflowing_sub(o);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        BigUint { limbs: out }.normalised()
    }

    /// Shift left by `n` bits.
    #[must_use]
    pub fn shl(&self, n: u32) -> Self {
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let mut out = vec![0u64; limb_shift];
        let mut carry = 0u64;
        for &l in &self.limbs {
            out.push((l << bit_shift) | carry);
            carry = if bit_shift == 0 {
                0
            } else {
                l >> (64 - bit_shift)
            };
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint { limbs: out }.normalised()
    }

    /// Schoolbook multiplication.
    #[must_use]
    pub fn mul(&self, other: &Self) -> Self {
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = u128::from(out[i + j]) + u128::from(a) * u128::from(b) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = u128::from(out[k]) + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        BigUint { limbs: out }.normalised()
    }

    /// Remainder `self mod m` by binary long division.
    ///
    /// # Panics
    /// Panics if `m` is zero.
    #[must_use]
    pub fn rem(&self, m: &Self) -> Self {
        assert!(!m.is_zero(), "mod zero");
        if self.cmp_mag(m) == std::cmp::Ordering::Less {
            return self.clone();
        }
        let mut r = self.clone();
        let shift = self.bits() - m.bits();
        for s in (0..=shift).rev() {
            let shifted = m.shl(s);
            if r.cmp_mag(&shifted) != std::cmp::Ordering::Less {
                r = r.sub(&shifted);
            }
        }
        r
    }

    /// Modular multiplication.
    #[must_use]
    pub fn modmul(&self, other: &Self, m: &Self) -> Self {
        self.mul(other).rem(m)
    }
}

/// One step of square-and-multiply, reported to the side-channel hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpOp {
    /// A squaring (every exponent bit).
    Square,
    /// A multiplication (bits that are 1).
    Multiply,
}

/// Left-to-right square-and-multiply modular exponentiation, invoking
/// `hook` for every operation — the exact structure the LLC attack
/// observes: the interval between squarings reveals whether a multiply
/// happened, i.e. the exponent bit.
///
/// # Panics
/// Panics if the exponent is zero.
#[must_use]
pub fn modexp_with_hook(
    base: &BigUint,
    exp: &BigUint,
    m: &BigUint,
    mut hook: impl FnMut(ExpOp),
) -> BigUint {
    assert!(!exp.is_zero(), "zero exponent");
    let nbits = exp.bits();
    let mut acc = base.rem(m);
    for i in (0..nbits - 1).rev() {
        hook(ExpOp::Square);
        acc = acc.modmul(&acc, m);
        if exp.bit(i) {
            hook(ExpOp::Multiply);
            acc = acc.modmul(base, m);
        }
    }
    acc
}

/// The sequence of exponent bits below the leading one, MSB-first — the
/// ground truth the attack tries to recover.
#[must_use]
pub fn key_bits(exp: &BigUint) -> Vec<u8> {
    let nbits = exp.bits();
    (0..nbits - 1).rev().map(|i| u8::from(exp.bit(i))).collect()
}

/// An ElGamal private key and public parameters (toy sizes: the attack
/// structure is independent of the key length).
#[derive(Debug, Clone)]
pub struct ElGamalKey {
    /// The prime modulus.
    pub p: BigUint,
    /// The secret exponent.
    pub x: BigUint,
}

impl ElGamalKey {
    /// A fixed demonstration key with a 48-bit secret exponent.
    #[must_use]
    pub fn demo() -> Self {
        ElGamalKey {
            // A 127-bit prime.
            p: BigUint::from_limbs(vec![0xffff_ffff_ffff_ff13, 0x7fff_ffff_ffff_ffff]),
            x: BigUint::from_u64(0xB5D3_9A1E_C2F7),
        }
    }

    /// ElGamal decryption step: `c1^x mod p` (the shared-secret recovery,
    /// where the side channel lives), with the side-channel hook.
    #[must_use]
    pub fn decrypt_shared(&self, c1: &BigUint, hook: impl FnMut(ExpOp)) -> BigUint {
        modexp_with_hook(c1, &self.x, &self.p, hook)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x: u64) -> BigUint {
        BigUint::from_u64(x)
    }

    #[test]
    fn arithmetic_matches_u128() {
        let a = b(0xdead_beef_1234);
        let c = b(0xfeed_f00d);
        let m = b(1_000_000_007);
        let prod = a.mul(&c);
        let expect = 0xdead_beef_1234u128 * 0xfeed_f00du128;
        assert_eq!(
            prod.limbs(),
            &[
                (expect & u128::from(u64::MAX)) as u64,
                (expect >> 64) as u64
            ]
        );
        let r = a.rem(&m);
        assert_eq!(r.limbs()[0], 0xdead_beef_1234u64 % 1_000_000_007);
        assert_eq!(a.modmul(&c, &m).limbs()[0] as u128, expect % 1_000_000_007);
    }

    #[test]
    fn modexp_matches_reference() {
        fn pow_mod(mut b: u64, mut e: u64, m: u64) -> u64 {
            let mut r = 1u128;
            let mut bb = u128::from(b % m);
            while e > 0 {
                if e & 1 == 1 {
                    r = r * bb % u128::from(m);
                }
                bb = bb * bb % u128::from(m);
                e >>= 1;
            }
            b = r as u64;
            b
        }
        let base = b(7);
        let exp = b(0b1011_0110_1101);
        let m = b(1_000_000_007);
        let got = modexp_with_hook(&base, &exp, &m, |_| {});
        assert_eq!(got.limbs()[0], pow_mod(7, 0b1011_0110_1101, 1_000_000_007));
    }

    #[test]
    fn hook_sequence_encodes_the_exponent() {
        let exp = b(0b1101); // bits after MSB: 1, 0, 1
        let mut ops = Vec::new();
        let _ = modexp_with_hook(&b(3), &exp, &b(97), |op| ops.push(op));
        assert_eq!(
            ops,
            vec![
                ExpOp::Square,
                ExpOp::Multiply, // bit 1
                ExpOp::Square,   // bit 0
                ExpOp::Square,
                ExpOp::Multiply, // bit 1
            ]
        );
        assert_eq!(key_bits(&exp), vec![1, 0, 1]);
    }

    #[test]
    fn big_operands_roundtrip() {
        let key = ElGamalKey::demo();
        let c1 = BigUint::from_limbs(vec![0x1234_5678_9abc_def0, 0x0fed_cba9]);
        let mut squares = 0;
        let s = key.decrypt_shared(&c1, |op| {
            if op == ExpOp::Square {
                squares += 1;
            }
        });
        assert!(!s.is_zero());
        assert_eq!(squares, key.x.bits() - 1);
        // Determinism.
        let s2 = key.decrypt_shared(&c1, |_| {});
        assert_eq!(s, s2);
    }

    #[test]
    fn shl_and_sub_edge_cases() {
        let a = b(u64::MAX);
        let s = a.shl(1);
        assert_eq!(s.limbs(), &[u64::MAX - 1, 1]);
        assert_eq!(s.sub(&a).limbs(), &[u64::MAX]);
        assert_eq!(a.sub(&a).limbs(), &[0]);
        assert!(a.sub(&a).is_zero());
    }
}
