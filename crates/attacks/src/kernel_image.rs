//! The kernel-image covert channel (§5.3.1, Figure 3).
//!
//! Colouring userland partitions all *dynamic* kernel data (it lives in
//! user-supplied memory), but kernel text, stack and global data remain
//! shared. The sender encodes symbols by invoking different system calls —
//! `Signal` (0), `TCB_SetPriority` (1), `Poll` (2) or idling (3) — whose
//! handlers occupy distinct kernel text lines.
//!
//! The receiver measures *through the kernel itself*, as the paper's
//! receiver does: it times a fixed sequence of the same three system
//! calls, then evicts the handlers' lines from its core's L1-I (an
//! instruction-sized probe) and from the unified L2 (a data probe over the
//! handler sets). A handler the sender invoked during its slice was
//! re-fetched into the L2; one the sender left alone answers from the LLC.
//! The timed sequence therefore speeds up by (LLC − L2) per line of
//! whichever handler the sender used — a pure capacity/inclusion effect of
//! the shared kernel image. Cloned kernels place each domain's kernel in
//! its own colours (and the receiver only ever times its own clone), so
//! the channel disappears.

use crate::harness::{pair_logs, ChannelOutcome, IntraCoreSpec};
use crate::probe::{phys_probe, ProbeBuf};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tp_analysis::leakage_test;
use tp_core::{
    CapObject, Capability, ProtectionConfig, Rights, SimError, Syscall, SystemBuilder, UserEnv,
};

/// Symbol names for the channel matrix (Figure 3's x-axis).
pub const SYMBOLS: [&str; 4] = ["Signal", "SetPriority", "Poll", "idle"];

/// Syscall repetitions per sender slice.
const REPS: usize = 24;

/// Figure 3 (top): the *coloured userland only* configuration — user
/// memory is coloured but the kernel is shared and nothing is flushed.
#[must_use]
pub fn coloured_userland_config() -> ProtectionConfig {
    ProtectionConfig {
        color_userland: true,
        ..ProtectionConfig::raw()
    }
}

/// The L2/LLC sets the boot (shared) kernel serves the four symbol
/// syscalls — plus the tick path — from: the receiver's "attack sets".
#[must_use]
pub fn kernel_attack_sets(cfg: &tp_sim::PlatformConfig) -> Vec<usize> {
    use tp_core::kernel::{foot, FootKind, BOOT_IMAGE_PFN};
    let sets = cfg.l2.sets();
    let text_line0 = BOOT_IMAGE_PFN * (tp_sim::FRAME_SIZE / cfg.line);
    let mut targets = std::collections::BTreeSet::new();
    for kind in [
        FootKind::Signal,
        FootKind::SetPriority,
        FootKind::Poll,
        FootKind::Tick,
        FootKind::Nop,
    ] {
        let f = foot(kind);
        for i in 0..f.text {
            targets.insert(((text_line0 + f.off + i) % sets) as usize);
        }
    }
    targets.into_iter().collect()
}

/// Run the kernel-image channel; returns the outcome (use
/// [`tp_analysis::ChannelMatrix`] on the dataset for the Figure 3 heat
/// map).
///
/// # Errors
/// Returns the [`SimError`] if the simulation fails.
///
/// # Panics
/// Panics if `n_symbols` does not match [`SYMBOLS`] — a misuse of the
/// API, not a simulation outcome.
pub fn kernel_image_channel(spec: &IntraCoreSpec) -> Result<ChannelOutcome, SimError> {
    assert_eq!(spec.n_symbols, SYMBOLS.len(), "the channel has 4 symbols");
    let sender_log: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    let receiver_log: Arc<Mutex<Vec<(u64, f64)>>> = Arc::new(Mutex::new(Vec::new()));

    let mut b = SystemBuilder::new(spec.platform, spec.prot)
        .seed(spec.seed)
        .slice_us(spec.slice_us)
        .max_cycles(spec.cycle_budget());
    let d_recv = b.domain(None);
    let d_send = b.domain(None);

    // Grant both sides a notification and a TCB capability for their
    // syscalls (the receiver times the same handlers the sender exercises).
    // TCBs are ordered [sender, receiver].
    b.setup(Box::new(|k, _m, tcbs, domains| {
        for (i, &tcb) in tcbs.iter().enumerate().take(2) {
            let ntfn = k.create_notification(domains[1 - i]).expect("ntfn");
            let c0 = k.grant_cap(
                tcb,
                Capability {
                    obj: CapObject::Notification(ntfn),
                    rights: Rights::all(),
                },
            );
            let c1 = k.grant_cap(
                tcb,
                Capability {
                    obj: CapObject::Tcb(tcb),
                    rights: Rights::all(),
                },
            );
            assert_eq!((c0, c1), (0, 1));
        }
    }));

    let n_symbols = spec.n_symbols;
    let samples = spec.samples;
    let seed = spec.seed;
    let slog = Arc::clone(&sender_log);
    b.spawn_daemon(d_send, 0, 100, move |env: &mut UserEnv| {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD_EF01);
        loop {
            let symbol = rng.gen_range(0..n_symbols);
            let t0 = env.now();
            slog.lock().push((t0, symbol));
            for _ in 0..REPS {
                match symbol {
                    0 => {
                        let _ = env.syscall(Syscall::Signal { cap: 0 });
                    }
                    1 => {
                        let _ = env.syscall(Syscall::TcbSetPriority { cap: 1, prio: 100 });
                    }
                    2 => {
                        let _ = env.syscall(Syscall::Poll { cap: 0 });
                    }
                    _ => env.compute(400),
                }
            }
            let _ = env.wait_preempt();
        }
    });

    let rlog = Arc::clone(&receiver_log);
    b.spawn(d_recv, 0, 100, move |env: &mut UserEnv| {
        let cfg = *env.platform();
        // The eviction machinery: a data probe over exactly the unified-L2
        // sets the candidate handlers are served from (the real attack
        // finds these with the §5.3.1 profiling phase), and an
        // instruction-sized exec probe that clears the L1-I. Running both
        // after each timed measurement leaves every handler line cold in
        // the receiver's private hierarchy, so the next measurement reads
        // purely what the *sender* re-fetched.
        let targets = kernel_attack_sets(&cfg);
        let dbuf: ProbeBuf = phys_probe(
            env,
            cfg.l2,
            &targets,
            cfg.l2.ways as usize,
            6 * targets.len(),
        );
        let ibuf: ProbeBuf = crate::probe::l1_probe(env, cfg.l1i);
        let _ = dbuf.probe(env);
        let _ = ibuf.probe_exec(env);
        let _ = env.wait_preempt();
        for _ in 0..samples + 1 {
            // Time the three handler syscalls back to back; the sum drops
            // by (LLC − L2 latency) × footprint for the handler the sender
            // kept warm.
            let t0 = env.now();
            let _ = env.syscall(Syscall::Signal { cap: 0 });
            let _ = env.syscall(Syscall::TcbSetPriority { cap: 1, prio: 100 });
            let _ = env.syscall(Syscall::Poll { cap: 0 });
            let t1 = env.now();
            rlog.lock().push((t0, (t1 - t0) as f64));
            // Evict the handlers from the L2 (data probe over their sets)
            // and from the L1-I, re-arming the measurement.
            let _ = dbuf.probe(env);
            let _ = ibuf.probe_exec(env);
            let _ = env.wait_preempt();
        }
    });

    let _ = b.try_run()?;
    let dataset = pair_logs(n_symbols, &sender_log.lock(), &receiver_log.lock());
    let verdict = leakage_test(&dataset, spec.seed ^ 0x0F0F_F0F0);
    Ok(ChannelOutcome { dataset, verdict })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_sim::Platform;

    fn spec(prot: ProtectionConfig, samples: usize) -> IntraCoreSpec {
        IntraCoreSpec {
            platform: Platform::Haswell,
            prot,
            n_symbols: 4,
            samples,
            slice_us: 50.0,
            seed: 0x5EED,
        }
    }

    #[test]
    fn shared_kernel_leaks_cloned_kernel_does_not() {
        let raw = kernel_image_channel(&spec(coloured_userland_config(), 150)).expect("simulation");
        assert!(raw.verdict.leaks, "shared kernel: {}", raw.summary());
        assert!(raw.verdict.m.bits > 0.3, "weak channel: {}", raw.summary());

        let prot =
            kernel_image_channel(&spec(ProtectionConfig::protected(), 150)).expect("simulation");
        assert!(
            prot.verdict.m.bits < raw.verdict.m.bits / 5.0,
            "cloning ineffective: {} vs {}",
            raw.summary(),
            prot.summary()
        );
    }
}
