//! The kernel-image covert channel (§5.3.1, Figure 3).
//!
//! Colouring userland partitions all *dynamic* kernel data (it lives in
//! user-supplied memory), but kernel text, stack and global data remain
//! shared. The sender encodes symbols by invoking different system calls —
//! `Signal` (0), `TCB_SetPriority` (1), `Poll` (2) or idling (3) — whose
//! handlers occupy distinct kernel text lines; the receiver prime&probes
//! the physically-indexed cache sets the kernel serves those calls from and
//! counts misses. Cloned kernels place each domain's kernel text in the
//! domain's own colours and the channel disappears.

use crate::harness::{pair_logs, ChannelOutcome, IntraCoreSpec};
use crate::probe::{miss_threshold, phys_probe, ProbeBuf};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tp_analysis::leakage_test;
use tp_core::{CapObject, Capability, ProtectionConfig, Rights, Syscall, SystemBuilder, UserEnv};

/// Symbol names for the channel matrix (Figure 3's x-axis).
pub const SYMBOLS: [&str; 4] = ["Signal", "SetPriority", "Poll", "idle"];

/// Syscall repetitions per sender slice.
const REPS: usize = 24;

/// Figure 3 (top): the *coloured userland only* configuration — user
/// memory is coloured but the kernel is shared and nothing is flushed.
#[must_use]
pub fn coloured_userland_config() -> ProtectionConfig {
    ProtectionConfig {
        color_userland: true,
        ..ProtectionConfig::raw()
    }
}

/// The L2/LLC sets the boot (shared) kernel serves the four symbol
/// syscalls — plus the tick path — from: the receiver's "attack sets".
#[must_use]
pub fn kernel_attack_sets(cfg: &tp_sim::PlatformConfig) -> Vec<usize> {
    use tp_core::kernel::{foot, FootKind, BOOT_IMAGE_PFN};
    let sets = cfg.l2.sets();
    let text_line0 = BOOT_IMAGE_PFN * (tp_sim::FRAME_SIZE / cfg.line);
    let mut targets = std::collections::BTreeSet::new();
    for kind in [
        FootKind::Signal,
        FootKind::SetPriority,
        FootKind::Poll,
        FootKind::Tick,
        FootKind::Nop,
    ] {
        let f = foot(kind);
        for i in 0..f.text {
            targets.insert(((text_line0 + f.off + i) % sets) as usize);
        }
    }
    targets.into_iter().collect()
}

/// Run the kernel-image channel; returns the outcome (use
/// [`tp_analysis::ChannelMatrix`] on the dataset for the Figure 3 heat
/// map).
///
/// # Panics
/// Panics if the simulation fails.
#[must_use]
pub fn kernel_image_channel(spec: &IntraCoreSpec) -> ChannelOutcome {
    assert_eq!(spec.n_symbols, SYMBOLS.len(), "the channel has 4 symbols");
    let sender_log: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    let receiver_log: Arc<Mutex<Vec<(u64, f64)>>> = Arc::new(Mutex::new(Vec::new()));

    let mut b = SystemBuilder::new(spec.platform, spec.prot.clone())
        .seed(spec.seed)
        .slice_us(spec.slice_us)
        .max_cycles(spec.cycle_budget());
    let d_recv = b.domain(None);
    let d_send = b.domain(None);

    // Grant the sender a notification and a TCB capability for its
    // syscalls. TCBs are ordered [sender, receiver].
    b.setup(Box::new(|k, _m, tcbs, domains| {
        let sender = tcbs[0];
        let ntfn = k.create_notification(domains[1]).expect("ntfn");
        let c0 = k.grant_cap(
            sender,
            Capability {
                obj: CapObject::Notification(ntfn),
                rights: Rights::all(),
            },
        );
        let c1 = k.grant_cap(
            sender,
            Capability {
                obj: CapObject::Tcb(sender),
                rights: Rights::all(),
            },
        );
        assert_eq!((c0, c1), (0, 1));
    }));

    let n_symbols = spec.n_symbols;
    let samples = spec.samples;
    let seed = spec.seed;
    let slog = Arc::clone(&sender_log);
    b.spawn_daemon(d_send, 0, 100, move |env: &mut UserEnv| {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD_EF01);
        loop {
            let symbol = rng.gen_range(0..n_symbols);
            let t0 = env.now();
            slog.lock().push((t0, symbol));
            for _ in 0..REPS {
                match symbol {
                    0 => {
                        let _ = env.syscall(Syscall::Signal { cap: 0 });
                    }
                    1 => {
                        let _ = env.syscall(Syscall::TcbSetPriority { cap: 1, prio: 100 });
                    }
                    2 => {
                        let _ = env.syscall(Syscall::Poll { cap: 0 });
                    }
                    _ => env.compute(400),
                }
            }
            let _ = env.wait_preempt();
        }
    });

    let rlog = Arc::clone(&receiver_log);
    b.spawn(d_recv, 0, 100, move |env: &mut UserEnv| {
        let cfg = *env.platform();
        // Probe the cache level the kernel's text footprint lands in: the
        // unified L2 (the LLC on Arm).
        let geom = cfg.l2;
        let threshold = if cfg.llc.is_some() {
            miss_threshold(cfg.lat.l2_hit, cfg.lat.llc_hit)
        } else {
            miss_threshold(cfg.lat.l2_hit, cfg.lat.dram)
        };
        // Probe exactly the sets the candidate syscall handlers are served
        // from (the real attack finds these with a profiling phase that
        // marks "attack sets" whose miss count reacts to the syscall,
        // §5.3.1). Keeping the probe footprint small also keeps it inside
        // the L2, avoiding self-eviction noise.
        let targets = kernel_attack_sets(&cfg);
        // Probe ways-1 lines per set: the kernel's steady-state line per
        // set coexists with the probe, and only *additional* kernel lines
        // (the syscall-specific footprint) cause evictions. Probing all
        // ways would keep every set over-subscribed and saturate the miss
        // count.
        let ways = (geom.ways as usize).saturating_sub(1).max(1);
        let buf: ProbeBuf = phys_probe(env, geom, &targets, ways, 6 * targets.len());
        let _ = buf.probe(env);
        let _ = env.wait_preempt();
        for _ in 0..samples + 1 {
            let t0 = env.now();
            let misses = buf.probe_misses(env, threshold);
            rlog.lock().push((t0, misses as f64));
            let _ = env.wait_preempt();
        }
    });

    let _ = b.run();
    let dataset = pair_logs(n_symbols, &sender_log.lock(), &receiver_log.lock());
    let verdict = leakage_test(&dataset, spec.seed ^ 0x0F0F_F0F0);
    ChannelOutcome { dataset, verdict }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_sim::Platform;

    fn spec(prot: ProtectionConfig, samples: usize) -> IntraCoreSpec {
        IntraCoreSpec {
            platform: Platform::Haswell,
            prot,
            n_symbols: 4,
            samples,
            slice_us: 50.0,
            seed: 0x5EED,
        }
    }

    #[test]
    fn shared_kernel_leaks_cloned_kernel_does_not() {
        let raw = kernel_image_channel(&spec(coloured_userland_config(), 150));
        assert!(raw.verdict.leaks, "shared kernel: {}", raw.summary());
        assert!(raw.verdict.m.bits > 0.3, "weak channel: {}", raw.summary());

        let prot = kernel_image_channel(&spec(ProtectionConfig::protected(), 150));
        assert!(
            prot.verdict.m.bits < raw.verdict.m.bits / 5.0,
            "cloning ineffective: {} vs {}",
            raw.summary(),
            prot.summary()
        );
    }
}
