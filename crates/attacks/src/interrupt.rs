//! The interrupt channel (§5.3.5, Figure 6).
//!
//! The Trojan programs a one-shot timer to fire 13–17 ms after the start of
//! its slice (with a 10 ms tick, i.e. 3–7 ms into the spy's slice) and
//! sleeps. Without interrupt partitioning the kernel handles the interrupt
//! during the *spy's* slice; the spy, watching its cycle counter, sees its
//! online period cut at a symbol-dependent point — a ~0.9 bit per slice
//! channel. With `Kernel_SetInt` partitioning (Requirement 5) the interrupt
//! stays masked until the Trojan's kernel is next active, and the spy's
//! slice is uninterrupted.

use crate::harness::{pair_logs, ChannelOutcome, IntraCoreSpec};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tp_analysis::leakage_test;
use tp_core::{CapObject, Capability, ProtectionConfig, Rights, SimError, SystemBuilder, UserEnv};

/// The IRQ line the Trojan's timer uses.
pub const TROJAN_IRQ: u32 = 3;

/// Timer values the Trojan encodes (ms), Figure 6's x-axis.
pub const TIMER_VALUES_MS: [f64; 5] = [13.0, 14.0, 15.0, 16.0, 17.0];

/// Interrupt-channel configurations: `partitioned = false` reproduces the
/// raw channel, `true` the defence.
#[must_use]
pub fn interrupt_config(partitioned: bool) -> ProtectionConfig {
    let mut p = ProtectionConfig::protected();
    p.irq_partition = partitioned;
    // The channel is orthogonal to flushing; keep switches cheap so the
    // online time is dominated by the interrupt placement.
    p.flush = tp_core::FlushMode::None;
    p.pad_us = None;
    p
}

/// Run the interrupt channel. Outputs are the spy's online-period lengths
/// (cycles); inputs index [`TIMER_VALUES_MS`].
///
/// # Errors
/// Returns the [`SimError`] of the first simulated program that fails.
///
/// # Panics
/// Panics if `spec.n_symbols` does not match [`TIMER_VALUES_MS`].
pub fn try_interrupt_channel(spec: &IntraCoreSpec) -> Result<ChannelOutcome, SimError> {
    assert_eq!(spec.n_symbols, TIMER_VALUES_MS.len());
    let sender_log: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    let receiver_log: Arc<Mutex<Vec<(u64, f64)>>> = Arc::new(Mutex::new(Vec::new()));

    let mut b = SystemBuilder::new(spec.platform, spec.prot)
        .seed(spec.seed)
        .slice_us(spec.slice_us)
        .max_cycles(spec.cycle_budget());
    let d_spy = b.domain(None);
    let d_trojan = b.domain(None);

    // Bind the Trojan's timer IRQ to its kernel image and hand it the IRQ
    // handler capability. TCBs are [trojan, spy].
    b.setup(Box::new(|k, _m, tcbs, domains| {
        let trojan = tcbs[0];
        let image = k.domains.get(domains[1].0).expect("trojan domain").image;
        let ntfn = k.create_notification(domains[1]).expect("ntfn");
        k.kernel_set_int(image, TROJAN_IRQ, Some(ntfn))
            .expect("set_int");
        let cap = k.grant_cap(
            trojan,
            Capability {
                obj: CapObject::IrqHandler(TROJAN_IRQ),
                rights: Rights::rw(),
            },
        );
        assert_eq!(cap, 0);
    }));

    let n_symbols = spec.n_symbols;
    let samples = spec.samples;
    let seed = spec.seed;

    let slog = Arc::clone(&sender_log);
    b.spawn_daemon(d_trojan, 0, 100, move |env: &mut UserEnv| {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD_EF01);
        loop {
            let symbol = rng.gen_range(0..n_symbols);
            let t0 = env.now();
            slog.lock().push((t0, symbol));
            let _ = env.set_timer_us(0, TIMER_VALUES_MS[symbol] * 1000.0);
            // Sleep for the rest of the slice.
            env.sleep_slice();
        }
    });

    let rlog = Arc::clone(&receiver_log);
    let slot_cycles = spec.platform.config().us_to_cycles(spec.slice_us);
    b.spawn(d_spy, 0, 100, move |env: &mut UserEnv| {
        let mut last_resume: Option<u64> = None;
        let mut prev_offline = u64::MAX; // before the first resume: a slot boundary
        let mut taken = 0usize;
        while taken < samples + 1 {
            let (gap_start, resume) = env.wait_preempt();
            // Record the *first* online period of each of our slots: the
            // one whose start followed a long (slot-boundary) offline
            // period. Its length is where the Trojan's interrupt landed.
            if let Some(lr) = last_resume {
                if prev_offline > slot_cycles / 2 {
                    let online = (gap_start - lr) as f64;
                    rlog.lock().push((gap_start, online));
                    taken += 1;
                }
            }
            prev_offline = resume - gap_start;
            last_resume = Some(resume);
        }
    });

    let _ = b.try_run()?;
    let dataset = pair_logs(n_symbols, &sender_log.lock(), &receiver_log.lock());
    let verdict = leakage_test(&dataset, spec.seed ^ 0x0F0F_F0F0);
    Ok(ChannelOutcome { dataset, verdict })
}

/// Panicking wrapper over [`try_interrupt_channel`].
///
/// # Panics
/// Panics if the simulation fails.
#[deprecated(note = "use `try_interrupt_channel` and handle the `SimError`")]
#[must_use]
pub fn interrupt_channel(spec: &IntraCoreSpec) -> ChannelOutcome {
    try_interrupt_channel(spec).expect("simulated program failed")
}

/// The paper's spec: 10 ms tick.
#[must_use]
pub fn paper_spec(platform: tp_sim::Platform, partitioned: bool, samples: usize) -> IntraCoreSpec {
    IntraCoreSpec {
        platform,
        prot: interrupt_config(partitioned),
        n_symbols: TIMER_VALUES_MS.len(),
        samples,
        slice_us: 10_000.0,
        seed: 0x5EED,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_sim::Platform;

    #[test]
    fn unpartitioned_interrupts_leak() {
        let raw = try_interrupt_channel(&paper_spec(Platform::Haswell, false, 150))
            .expect("sim run failed");
        assert!(
            raw.verdict.leaks,
            "raw interrupt channel: {}",
            raw.summary()
        );
        assert!(raw.verdict.m.bits > 0.4, "weak: {}", raw.summary());
    }

    #[test]
    fn partitioning_closes_the_channel() {
        let raw = try_interrupt_channel(&paper_spec(Platform::Haswell, false, 120))
            .expect("sim run failed");
        let part = try_interrupt_channel(&paper_spec(Platform::Haswell, true, 120))
            .expect("sim run failed");
        assert!(
            part.verdict.m.bits < raw.verdict.m.bits / 5.0,
            "partitioning ineffective: {} vs {}",
            raw.summary(),
            part.summary()
        );
    }
}
