//! The cross-core LLC side channel against ElGamal (§5.3.3, Figure 4).
//!
//! Reproduces the attack of Liu et al. (2015): the victim repeatedly
//! decrypts on one core; a spy on another core prime&probes the LLC set
//! holding the victim's *square* function. Every squaring evicts the spy's
//! eviction set; the interval between evictions reveals whether a multiply
//! followed, i.e. the secret exponent bit. Under time protection the LLC
//! is partitioned by colour: the spy cannot even construct an eviction set
//! reaching the victim's colours, and the channel closes.

use crate::elgamal::{key_bits, BigUint, ElGamalKey, ExpOp};
use crate::probe::llc_slice_probe;
use parking_lot::Mutex;
use std::sync::Arc;
use tp_core::{
    CapObject, Capability, ProtectionConfig, Rights, SimError, Syscall, SystemBuilder, UserEnv,
};
use tp_sim::machine::slice_index;
use tp_sim::{CacheGeom, Platform, VAddr, FRAME_SIZE};

/// Compute cycles of a squaring beyond its memory traffic. (GnuPG's
/// squaring is specially optimised; the plain multiplication is roughly
/// twice as expensive — that asymmetry is what makes the interval lengths
/// clearly separable in Figure 4.)
const SQUARE_COMPUTE: u64 = 9_000;

/// Compute cycles of a multiplication beyond its memory traffic.
const MUL_COMPUTE: u64 = 18_000;

/// Spy probe-slot length in cycles.
const SLOT_CYCLES: u64 = 1_500;

/// Pause between decryptions (delimits key repetitions in the trace).
const DECRYPT_PAUSE: u64 = 120_000;

/// Result of the cross-core attack.
#[derive(Debug, Clone)]
pub struct LlcAttackResult {
    /// Per-probe observations (probe-start cycle, probe latency): Figure
    /// 4's time axis for the monitored set.
    pub trace: Vec<(u64, u64)>,
    /// Gap classifications recovered from the trace (one per exponent bit
    /// after the leading one, per decryption observed).
    pub recovered_bits: Vec<u8>,
    /// Ground-truth key bits.
    pub true_bits: Vec<u8>,
    /// Fraction of recovered bits matching the key (0.5 ≈ guessing).
    pub accuracy: f64,
    /// Whether the spy observed any victim cache activity at all.
    pub activity_detected: bool,
    /// Size of the eviction set the spy managed to build.
    pub eviction_set_size: usize,
    /// Ground truth: victim-core cycle of every squaring (for trace
    /// overlays and decoder validation; not available to a real attacker).
    pub victim_square_cycles: Vec<u64>,
}

/// Run the attack for `slots` spy probe slots on the paper's cross-core
/// platform (Haswell).
///
/// # Errors
/// Returns the [`SimError`] of the first simulated program that fails.
pub fn try_llc_attack(
    prot: ProtectionConfig,
    slots: usize,
    seed: u64,
) -> Result<LlcAttackResult, SimError> {
    try_llc_attack_on(Platform::Haswell, prot, slots, seed)
}

/// Panicking wrapper over [`try_llc_attack`].
///
/// # Panics
/// Panics if the simulation fails.
#[deprecated(note = "use `try_llc_attack` and handle the `SimError`")]
#[must_use]
pub fn llc_attack(prot: ProtectionConfig, slots: usize, seed: u64) -> LlcAttackResult {
    try_llc_attack(prot, slots, seed).expect("simulated program failed")
}

/// Run the attack on any registered platform with a sliced LLC.
///
/// # Errors
/// Returns the [`SimError`] of the first simulated program that fails.
///
/// # Panics
/// Panics if the platform has no LLC.
pub fn try_llc_attack_on(
    platform: Platform,
    prot: ProtectionConfig,
    slots: usize,
    seed: u64,
) -> Result<LlcAttackResult, SimError> {
    assert!(
        platform.config().llc.is_some(),
        "the LLC attack needs a last-level cache"
    );
    let key = ElGamalKey::demo();
    let true_bits = key_bits(&key.x);

    // The victim publishes the physical placement of its square function;
    // this models the attack's profiling phase (scanning all LLC sets for
    // the square-function access pattern), which is untimed setup. The
    // *value* travels through host memory, but the "published yet?" edge is
    // a simulated kernel notification: host-side polling of shared state
    // would make the spy's start slot depend on host-thread scheduling and
    // break run-to-run determinism (Invariant 1).
    let square_target: Arc<Mutex<Option<(usize, usize)>>> = Arc::new(Mutex::new(None));
    let trace: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let evset_size: Arc<Mutex<usize>> = Arc::new(Mutex::new(0));

    let mut b = SystemBuilder::new(platform, prot)
        .seed(seed)
        .max_cycles(slots as u64 * SLOT_CYCLES * 8 + 50_000_000)
        // Fine-grained cross-core interleaving: the spy's sampling must
        // resolve intervals of a few thousand cycles.
        .window(600)
        .open_scheduling();
    let d_spy = b.domain(None);
    let d_victim = b.domain(None);

    // Notification both threads hold a capability to (victim signals it
    // once the placement is published; the spy polls it in simulated time).
    let ntfn_cap: Arc<Mutex<(usize, usize)>> = Arc::new(Mutex::new((0, 0)));
    let ntfn_cap2 = Arc::clone(&ntfn_cap);
    b.setup(Box::new(move |k, _m, tcbs, domains| {
        let n = k.create_notification(domains[0]).expect("notification");
        let cap = Capability {
            obj: CapObject::Notification(n),
            rights: Rights::all(),
        };
        let victim_cap = k.grant_cap(tcbs[0], cap);
        let spy_cap = k.grant_cap(tcbs[1], cap);
        *ntfn_cap2.lock() = (victim_cap, spy_cap);
    }));

    let square_log: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

    // Victim: core 1.
    let target2 = Arc::clone(&square_target);
    let square_log2 = Arc::clone(&square_log);
    let ntfn_victim = Arc::clone(&ntfn_cap);
    b.spawn_daemon(d_victim, 1, 100, move |env: &mut UserEnv| {
        let cfg = *env.platform();
        let line = cfg.line;
        // Code pages: square function and multiply function.
        let (code_va, code_frames) = env.map_pages(2);
        let square_va = code_va;
        let mul_va = VAddr(code_va.0 + FRAME_SIZE);
        // Publish the (slice, set) of the square function's first line,
        // then signal the spy through the kernel.
        {
            let pa = code_frames[0] * FRAME_SIZE;
            let llc = cfg.llc.expect("x86");
            let per_slice = CacheGeom {
                size: llc.size / u64::from(cfg.llc_slices),
                ..llc
            };
            let slice = slice_index(pa / line, cfg.llc_slices.into());
            let set = tp_sim::cache::phys_set(per_slice, pa);
            *target2.lock() = Some((slice, set));
            let cap = ntfn_victim.lock().0;
            env.syscall(Syscall::Signal { cap })
                .expect("signal placement");
        }
        // Operand data.
        let (data_va, _) = env.map_pages(2);
        let c1 = BigUint::from_limbs(vec![0x1234_5678_9abc_def0, 0x0fed_cba9]);
        loop {
            let _ = key.decrypt_shared(&c1, |op| {
                let (fn_va, limbs, compute) = match op {
                    ExpOp::Square => (square_va, 4u64, SQUARE_COMPUTE),
                    ExpOp::Multiply => (mul_va, 4u64, MUL_COMPUTE),
                };
                if op == ExpOp::Square {
                    square_log2.lock().push(env.now());
                }
                for i in 0..4u64 {
                    env.exec(VAddr(fn_va.0 + i * line));
                }
                for i in 0..limbs {
                    env.load(VAddr(data_va.0 + i * line));
                }
                env.compute(compute);
            });
            env.compute(DECRYPT_PAUSE);
        }
    });

    // Spy: core 0.
    let target = Arc::clone(&square_target);
    let trace2 = Arc::clone(&trace);
    let evset2 = Arc::clone(&evset_size);
    let ntfn_spy = Arc::clone(&ntfn_cap);
    b.spawn(d_spy, 0, 100, move |env: &mut UserEnv| {
        let cfg = *env.platform();
        let llc = cfg.llc.expect("x86");
        let per_slice = CacheGeom {
            size: llc.size / u64::from(cfg.llc_slices),
            ..llc
        };
        // Wait (in simulated time) until the victim has signalled that its
        // placement is published. Polling the notification is a kernel
        // operation, so the wake-up slot is a function of simulated time
        // only — never of host-thread scheduling.
        let cap = ntfn_spy.lock().1;
        let mut tgt = None;
        for _ in 0..10_000 {
            if env.syscall(Syscall::Poll { cap }).expect("poll placement") != 0 {
                tgt = *target.lock();
                break;
            }
            env.compute(1_000);
        }
        let (slice, set) = tgt.expect("victim placement");
        let buf = llc_slice_probe(
            env,
            per_slice,
            cfg.llc_slices.into(),
            slice,
            set,
            llc.ways as usize,
            4096,
        );
        *evset2.lock() = buf.len();
        // Prime once.
        let _ = buf.probe(env);
        for _slot in 0..slots as u64 {
            let t0 = env.now();
            let lat = buf.probe(env);
            trace2.lock().push((t0, lat));
            let elapsed = env.now() - t0;
            if elapsed < SLOT_CYCLES {
                env.compute(SLOT_CYCLES - elapsed);
            }
        }
    });

    let _ = b.try_run()?;

    let trace = Arc::try_unwrap(trace).map_or_else(|a| a.lock().clone(), Mutex::into_inner);
    let eviction_set_size = *evset_size.lock();
    let squares = square_log.lock().clone();
    let mut result = decode_trace(trace, &true_bits, eviction_set_size);
    result.victim_square_cycles = squares;
    Ok(result)
}

/// Panicking wrapper over [`try_llc_attack_on`].
///
/// # Panics
/// Panics if the platform has no LLC or the simulation fails.
#[deprecated(note = "use `try_llc_attack_on` and handle the `SimError`")]
#[must_use]
pub fn llc_attack_on(
    platform: Platform,
    prot: ProtectionConfig,
    slots: usize,
    seed: u64,
) -> LlcAttackResult {
    try_llc_attack_on(platform, prot, slots, seed).expect("simulated program failed")
}

/// Decode the probe trace into exponent bits.
///
/// Steps: (1) threshold the probe latencies into *activity* events (each a
/// squaring refilling the monitored set); (2) measure the gaps between
/// events in cycles; (3) split the gap sequence into decryption blocks at
/// the long inter-decryption pauses; (4) classify each in-block gap as
/// short (no multiply: bit 0) or long (multiply: bit 1) with an adaptive
/// cut; (5) score each block against the key bits — blocks are aligned
/// because each starts at the first squaring after a pause.
fn decode_trace(
    trace: Vec<(u64, u64)>,
    true_bits: &[u8],
    eviction_set_size: usize,
) -> LlcAttackResult {
    let lats: Vec<f64> = trace.iter().map(|&(_, l)| l as f64).collect();
    let (events, activity_detected) = if lats.is_empty() || eviction_set_size == 0 {
        (Vec::new(), false)
    } else {
        let floor = tp_analysis::stats::percentile(&lats, 20.0);
        let peak = tp_analysis::stats::percentile(&lats, 99.0);
        if peak < floor + 100.0 {
            (Vec::new(), false)
        } else {
            // Catch even a single evicted line (one DRAM round-trip above
            // the quiet floor).
            let threshold = floor + 120.0;
            let raw_events: Vec<u64> = trace
                .iter()
                .filter(|&&(_, l)| (l as f64) > threshold)
                .map(|&(t, _)| t)
                .collect();
            // A squaring interleaved with a probe registers on two
            // consecutive probes; merge events closer than one squaring.
            let min_gap = SQUARE_COMPUTE * 3 / 4;
            let mut events: Vec<u64> = Vec::new();
            for t in raw_events {
                if events.last().is_none_or(|&e| t - e > min_gap) {
                    events.push(t);
                }
            }
            let detected = !events.is_empty();
            (events, detected)
        }
    };

    // Split into per-decryption blocks at pause-length gaps (cycles).
    let pause_cut = DECRYPT_PAUSE * 2 / 3;
    let mut blocks: Vec<Vec<u64>> = vec![Vec::new()];
    for w in events.windows(2) {
        let gap = w[1] - w[0];
        if gap >= pause_cut {
            blocks.push(Vec::new());
        } else {
            blocks.last_mut().expect("nonempty").push(gap);
        }
    }
    // Drop the (unaligned) first block and any trailing partial block.
    let complete: Vec<&Vec<u64>> = blocks
        .iter()
        .skip(1)
        .filter(|b| b.len() + 2 >= true_bits.len())
        .collect();

    // Adaptive short/long cut over all in-block gaps.
    let all_gaps: Vec<f64> = complete
        .iter()
        .flat_map(|b| b.iter().map(|&g| g as f64))
        .collect();
    let cut = if all_gaps.is_empty() {
        0.0
    } else {
        (tp_analysis::stats::percentile(&all_gaps, 10.0)
            + tp_analysis::stats::percentile(&all_gaps, 90.0))
            / 2.0
    };

    // Classify and score: gap j of a block encodes key bit j (a long gap
    // means the squaring was followed by a multiply).
    let mut recovered = Vec::new();
    let mut matches = 0usize;
    let mut total = 0usize;
    for block in &complete {
        for (j, &g) in block.iter().enumerate() {
            let bit = u8::from((g as f64) > cut);
            recovered.push(bit);
            if j < true_bits.len() {
                total += 1;
                if true_bits[j] == bit {
                    matches += 1;
                }
            }
        }
    }
    let accuracy = if total == 0 {
        0.0
    } else {
        matches as f64 / total as f64
    };

    LlcAttackResult {
        trace,
        recovered_bits: recovered,
        true_bits: true_bits.to_vec(),
        accuracy,
        activity_detected,
        eviction_set_size,
        victim_square_cycles: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_attack_recovers_key_bits() {
        let r = try_llc_attack(ProtectionConfig::raw(), 6_000, 42).expect("sim run failed");
        assert_eq!(r.eviction_set_size, 16);
        assert!(r.activity_detected, "no victim activity observed");
        assert!(
            r.accuracy > 0.9,
            "key recovery accuracy {} with {} bits",
            r.accuracy,
            r.recovered_bits.len()
        );
    }

    #[test]
    fn colouring_closes_the_side_channel() {
        let r = try_llc_attack(ProtectionConfig::protected(), 2_000, 42).expect("sim run failed");
        // The spy cannot build an eviction set into the victim's colours.
        assert!(
            !r.activity_detected || r.accuracy < 0.65,
            "protected attack still works: accuracy {} (evset {})",
            r.accuracy,
            r.eviction_set_size
        );
    }
}
