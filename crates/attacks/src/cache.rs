//! Intra-core cache channels: L1-D, L1-I and L2 (§5.3.2, Table 3).
//!
//! Prime&probe: the receiver fills the target cache with its own lines;
//! the sender, during its slice, touches a number of cache sets
//! proportional to the symbol; the receiver then re-probes and the total
//! latency reveals how many of its lines were evicted.

use crate::harness::{try_measure_channel, ChannelOutcome, IntraCoreSpec, Receiver};
use crate::probe::{l1_probe, phys_probe, ProbeBuf};
use tp_core::SimError;
use tp_core::UserEnv;
use tp_sim::PlatformConfig;

/// Symbols used by the cache channels (16 ⇒ up to 4 bits).
pub const CACHE_SYMBOLS: usize = 16;

/// Upper bound on the number of *lines* in an L2 probe buffer, so the
/// probe fits comfortably inside a slice on every platform (the whole
/// 4096-line Haswell L2; a quarter of the Sabre's 1 MiB L2).
const L2_PROBE_LINES: usize = 4096;

/// The L1-D channel: sender dirties `k` sets, receiver probes the full
/// cache with loads.
///
/// # Errors
/// Returns the [`SimError`] of the first simulated program that fails.
pub fn try_l1d_channel(spec: &IntraCoreSpec) -> Result<ChannelOutcome, SimError> {
    let n = spec.n_symbols;
    let mut sbuf: Option<ProbeBuf> = None;
    try_measure_channel(
        spec,
        move |env: &mut UserEnv, sym: usize| {
            let geom = env.platform().l1d;
            let buf = sbuf.get_or_insert_with(|| l1_probe(env, geom));
            let sets = geom.sets() as usize;
            let ways = geom.ways as usize;
            let k = sets * sym / n.max(1);
            buf.dirty_prefix(env, k * ways);
        },
        Receiver {
            setup: |env: &mut UserEnv| {
                let geom = env.platform().l1d;
                let buf = l1_probe(env, geom);
                // Warm the backing L2/LLC so probe misses are L2-bounded.
                let _ = buf.probe(env);
                buf
            },
            measure: |env: &mut UserEnv, buf: &mut ProbeBuf| buf.probe(env) as f64,
        },
    )
}

/// Panicking wrapper over [`try_l1d_channel`].
///
/// # Panics
/// Panics if the simulation fails.
#[deprecated(note = "use `try_l1d_channel` and handle the `SimError`")]
#[must_use]
pub fn l1d_channel(spec: &IntraCoreSpec) -> ChannelOutcome {
    try_l1d_channel(spec).expect("simulated program failed")
}

/// The L1-I channel: as L1-D but with instruction fetches on both sides.
///
/// # Errors
/// Returns the [`SimError`] of the first simulated program that fails.
pub fn try_l1i_channel(spec: &IntraCoreSpec) -> Result<ChannelOutcome, SimError> {
    let n = spec.n_symbols;
    let mut sbuf: Option<ProbeBuf> = None;
    try_measure_channel(
        spec,
        move |env: &mut UserEnv, sym: usize| {
            let geom = env.platform().l1i;
            let buf = sbuf.get_or_insert_with(|| l1_probe(env, geom));
            let sets = geom.sets() as usize;
            let ways = geom.ways as usize;
            let k = sets * sym / n.max(1);
            for va in &buf.lines[..(k * ways).min(buf.lines.len())] {
                env.exec(*va);
            }
        },
        Receiver {
            setup: |env: &mut UserEnv| {
                let geom = env.platform().l1i;
                let buf = l1_probe(env, geom);
                let _ = buf.probe_exec(env);
                buf
            },
            measure: |env: &mut UserEnv, buf: &mut ProbeBuf| buf.probe_exec(env) as f64,
        },
    )
}

/// Panicking wrapper over [`try_l1i_channel`].
///
/// # Panics
/// Panics if the simulation fails.
#[deprecated(note = "use `try_l1i_channel` and handle the `SimError`")]
#[must_use]
pub fn l1i_channel(spec: &IntraCoreSpec) -> ChannelOutcome {
    try_l1i_channel(spec).expect("simulated program failed")
}

/// How many L2 sets each side works with on a platform: as many sets as
/// keep the probe buffer within `L2_PROBE_LINES` (4096) lines, derived
/// from the cache geometry rather than a per-platform table.
#[must_use]
pub fn l2_probe_sets(cfg: &PlatformConfig) -> usize {
    (cfg.l2.sets() as usize).min(L2_PROBE_LINES / (cfg.l2.ways as usize).max(1))
}

/// Slice length (µs) that leaves the L2 probe ~3× headroom on this
/// platform, rounded up to a 50 µs grid (50 µs on the Haswell, 400 µs on
/// the slower-clocked Sabre — the values the paper-pinned runs used).
#[must_use]
pub fn l2_slice_us(cfg: &PlatformConfig) -> f64 {
    let probe_lines = (l2_probe_sets(cfg) * cfg.l2.ways as usize) as u64;
    let probe_us = cfg.cycles_to_us(probe_lines * cfg.lat.l2_hit);
    ((3.0 * probe_us) / 50.0).ceil().max(1.0) * 50.0
}

/// The L2 channel: physically-indexed, so colouring (not flushing) is the
/// defence — and the residual x86 channel via the data prefetcher lives
/// here (§5.3.2).
///
/// # Errors
/// Returns the [`SimError`] of the first simulated program that fails.
pub fn try_l2_channel(spec: &IntraCoreSpec) -> Result<ChannelOutcome, SimError> {
    let n = spec.n_symbols;
    let n_sets = l2_probe_sets(&spec.platform.config());
    let mut sbuf: Option<ProbeBuf> = None;
    try_measure_channel(
        spec,
        move |env: &mut UserEnv, sym: usize| {
            let buf = sbuf.get_or_insert_with(|| {
                let geom = env.platform().l2;
                let targets: Vec<usize> = (0..n_sets.min(geom.sets() as usize)).collect();
                let ways = geom.ways as usize;
                let b = phys_probe(env, geom, &targets, ways, 4 * n_sets.max(64));
                // Warm the whole buffer once so per-slice footprints are
                // L2-bounded and fit within the slice.
                let _ = b.probe(env);
                b
            });
            let per_set = buf.per_set.max(1);
            let covered = buf.len() / per_set;
            let k = covered * sym / n.max(1);
            buf.dirty_prefix(env, k * per_set);
        },
        Receiver {
            setup: move |env: &mut UserEnv| {
                let geom = env.platform().l2;
                let targets: Vec<usize> = (0..n_sets.min(geom.sets() as usize)).collect();
                let ways = geom.ways as usize;
                let buf = phys_probe(env, geom, &targets, ways, 4 * n_sets.max(64));
                let _ = buf.probe(env);
                buf
            },
            measure: |env: &mut UserEnv, buf: &mut ProbeBuf| buf.probe(env) as f64,
        },
    )
}

/// Panicking wrapper over [`try_l2_channel`].
///
/// # Panics
/// Panics if the simulation fails.
#[deprecated(note = "use `try_l2_channel` and handle the `SimError`")]
#[must_use]
pub fn l2_channel(spec: &IntraCoreSpec) -> ChannelOutcome {
    try_l2_channel(spec).expect("simulated program failed")
}

/// The §5.3.2 residual-channel ablation: the sender walks `2·symbol` pages
/// sequentially, leaving that many *confidently trained* streams in the
/// data prefetcher. The on-core flush (manual L1 flush + IBC) does not
/// reset the prefetcher; its stale streams resume against the receiver's
/// first demand misses, perturbing the probe time in proportion to the
/// sender's stream count. Disabling the prefetcher (MSR 0x1A4) removes the
/// effect — the paper's follow-up experiment.
///
/// # Errors
/// Returns the [`SimError`] of the first simulated program that fails.
pub fn try_l2_prefetcher_residual(spec: &IntraCoreSpec) -> Result<ChannelOutcome, SimError> {
    let n = spec.n_symbols;
    let mut sender_buf: Option<tp_sim::VAddr> = None;
    try_measure_channel(
        spec,
        move |env: &mut UserEnv, sym: usize| {
            let pages = 2 * n;
            let base = *sender_buf.get_or_insert_with(|| env.map_pages(pages).0);
            let line = env.platform().line;
            let lines_per_page = tp_sim::FRAME_SIZE / line;
            // Walk `2·sym` pages sequentially: one trained stream each.
            for p in 0..(2 * sym) as u64 {
                for l in 0..lines_per_page {
                    env.load(tp_sim::VAddr(base.0 + p * tp_sim::FRAME_SIZE + l * line));
                }
            }
        },
        Receiver {
            setup: move |env: &mut UserEnv| {
                let geom = env.platform().l2;
                let targets: Vec<usize> = (0..256).collect();
                let buf = phys_probe(env, geom, &targets, geom.ways as usize, 1024);
                let _ = buf.probe(env);
                buf
            },
            measure: |env: &mut UserEnv, buf: &mut ProbeBuf| buf.probe(env) as f64,
        },
    )
}

/// Panicking wrapper over [`try_l2_prefetcher_residual`].
///
/// # Panics
/// Panics if the simulation fails.
#[deprecated(note = "use `try_l2_prefetcher_residual` and handle the `SimError`")]
#[must_use]
pub fn l2_prefetcher_residual(spec: &IntraCoreSpec) -> ChannelOutcome {
    try_l2_prefetcher_residual(spec).expect("simulated program failed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scenario;
    use tp_sim::Platform;

    #[test]
    fn l2_probe_sizing_matches_pinned_runs() {
        // The geometry-derived sizes must reproduce the hand-picked values
        // of the pinned paper runs exactly.
        let h = Platform::Haswell.config();
        let a = Platform::Sabre.config();
        assert_eq!(l2_probe_sets(&h), 512);
        assert_eq!(l2_probe_sets(&a), 256);
        assert!((l2_slice_us(&h) - 50.0).abs() < 1e-9);
        assert!((l2_slice_us(&a) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn l1d_raw_leaks_and_protected_does_not() {
        let raw = try_l1d_channel(&IntraCoreSpec::new(
            Platform::Haswell,
            Scenario::Raw,
            8,
            120,
        ))
        .expect("sim run failed");
        assert!(raw.verdict.leaks, "raw L1-D: {}", raw.summary());
        assert!(
            raw.verdict.m.bits > 0.5,
            "raw L1-D too weak: {}",
            raw.summary()
        );

        let prot = try_l1d_channel(&IntraCoreSpec::new(
            Platform::Haswell,
            Scenario::Protected,
            8,
            120,
        ))
        .expect("sim run failed");
        assert!(
            prot.verdict.m.bits < raw.verdict.m.bits / 5.0,
            "protection ineffective: raw {} vs protected {}",
            raw.summary(),
            prot.summary()
        );
    }

    #[test]
    fn l1i_raw_leaks_on_arm() {
        let raw = try_l1i_channel(&IntraCoreSpec::new(Platform::Sabre, Scenario::Raw, 8, 100))
            .expect("sim run failed");
        assert!(raw.verdict.leaks, "raw L1-I: {}", raw.summary());
    }

    #[test]
    fn l2_full_flush_closes_channel() {
        let raw = try_l2_channel(
            &IntraCoreSpec::new(Platform::Haswell, Scenario::Raw, 8, 100).with_slice_us(60.0),
        )
        .expect("sim run failed");
        let ff = try_l2_channel(
            &IntraCoreSpec::new(Platform::Haswell, Scenario::FullFlush, 8, 100).with_slice_us(60.0),
        )
        .expect("sim run failed");
        assert!(raw.verdict.leaks, "raw L2: {}", raw.summary());
        assert!(
            ff.verdict.m.bits < raw.verdict.m.bits / 5.0,
            "full flush ineffective: {} vs {}",
            raw.summary(),
            ff.summary()
        );
    }
}
