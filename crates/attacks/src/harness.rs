//! The shared sender/receiver experiment harness.
//!
//! Structure of every intra-core channel measurement (§5.3): two security
//! domains time-share a core under strict slots. The *sender* encodes a
//! seeded random symbol into micro-architectural state during its slice;
//! the *receiver* takes one timing observation per slice. Observations are
//! paired with the sender slice that immediately preceded them (robust to
//! multi-slice receiver setup phases), yielding a
//! [`Dataset`] for MI estimation.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tp_analysis::{leakage_test, Dataset, LeakageVerdict};
use tp_core::{ProtectionConfig, SimError, SystemBuilder, UserEnv};
use tp_sim::Platform;

/// The three defence scenarios of §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Unmitigated.
    Raw,
    /// Maximal architecture-supported reset on every switch.
    FullFlush,
    /// Time protection: colouring + cloning + on-core flush.
    Protected,
}

impl Scenario {
    /// The protection configuration for the scenario.
    #[must_use]
    pub fn config(self) -> ProtectionConfig {
        match self {
            Scenario::Raw => ProtectionConfig::raw(),
            Scenario::FullFlush => ProtectionConfig::full_flush(),
            Scenario::Protected => ProtectionConfig::protected(),
        }
    }

    /// Display name matching the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Raw => "raw",
            Scenario::FullFlush => "full flush",
            Scenario::Protected => "protected",
        }
    }
}

/// Parameters of one intra-core channel measurement.
#[derive(Debug, Clone)]
pub struct IntraCoreSpec {
    /// Platform under test.
    pub platform: Platform,
    /// Protection configuration.
    pub prot: ProtectionConfig,
    /// Number of input symbols.
    pub n_symbols: usize,
    /// Receiver observations to collect.
    pub samples: usize,
    /// Time-slice length in microseconds.
    pub slice_us: f64,
    /// RNG seed (drives the symbol sequence and all simulator noise).
    pub seed: u64,
}

impl IntraCoreSpec {
    /// A spec with experiment defaults (50 µs slices — shorter than the
    /// paper's 1 ms purely for simulation speed; the channels are
    /// per-slice phenomena).
    #[must_use]
    pub fn new(platform: Platform, scenario: Scenario, n_symbols: usize, samples: usize) -> Self {
        IntraCoreSpec {
            platform,
            prot: scenario.config(),
            n_symbols,
            samples,
            slice_us: 50.0,
            seed: 0x5EED,
        }
    }

    /// Override the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the slice length.
    #[must_use]
    pub fn with_slice_us(mut self, us: f64) -> Self {
        self.slice_us = us;
        self
    }

    /// A generous cycle budget for the run: two slices per sample plus the
    /// worst-case switch work (a full flush costs ~1 M cycles per switch).
    #[must_use]
    pub fn cycle_budget(&self) -> u64 {
        let slice_cycles = (self.slice_us * 4_000.0) as u64; // over-estimate
        (self.samples as u64 + 64) * 2 * (2 * slice_cycles + 3_000_000)
    }
}

/// Log shared between harness and programs: (slice-start cycle, symbol).
pub type SenderLog = Arc<Mutex<Vec<(u64, usize)>>>;
/// Log of receiver observations: (probe-start cycle, output).
pub type ReceiverLog = Arc<Mutex<Vec<(u64, f64)>>>;

/// Outcome of a channel measurement: the dataset and its leakage verdict.
#[derive(Debug, Clone)]
pub struct ChannelOutcome {
    /// The paired observations.
    pub dataset: Dataset,
    /// The §5.1 leakage test result.
    pub verdict: LeakageVerdict,
}

impl ChannelOutcome {
    /// Pretty one-line summary, paper-style.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "M = {:.1} mb, M0 = {:.1} mb, n = {}{}",
            self.verdict.m.millibits(),
            self.verdict.m0_millibits(),
            self.dataset.len(),
            if self.verdict.leaks {
                "  ** LEAK **"
            } else {
                "  (no evidence of leak)"
            }
        )
    }
}

/// A sender body: called once per sender slice with the environment and the
/// symbol to encode.
pub trait SenderFn: FnMut(&mut UserEnv, usize) + Send + 'static {}
impl<F: FnMut(&mut UserEnv, usize) + Send + 'static> SenderFn for F {}

/// A receiver body: `setup` runs once (untimed allocation/profiling),
/// `measure` once per slice returning the observation.
pub struct Receiver<S, M> {
    /// One-time setup returning the receiver's probe state.
    pub setup: S,
    /// Per-slice measurement.
    pub measure: M,
}

/// Run a sender/receiver pair and return the paired dataset.
///
/// `sender` is invoked with the symbol sequence infrastructure already
/// in place; `setup`/`measure` describe the receiver.
///
/// # Errors
/// Returns the [`SimError`] of the first simulated program that fails.
pub fn try_run_intra_core<T: Send + 'static>(
    spec: &IntraCoreSpec,
    sender: impl SenderFn,
    receiver: Receiver<
        impl FnOnce(&mut UserEnv) -> T + Send + 'static,
        impl FnMut(&mut UserEnv, &mut T) -> f64 + Send + 'static,
    >,
) -> Result<Dataset, SimError> {
    try_run_intra_core_with_setup(spec, None, sender, receiver)
}

/// Panicking wrapper over [`try_run_intra_core`].
///
/// # Panics
/// Panics if a simulated program fails.
#[deprecated(note = "use `try_run_intra_core` and handle the `SimError`")]
#[must_use]
pub fn run_intra_core<T: Send + 'static>(
    spec: &IntraCoreSpec,
    sender: impl SenderFn,
    receiver: Receiver<
        impl FnOnce(&mut UserEnv) -> T + Send + 'static,
        impl FnMut(&mut UserEnv, &mut T) -> f64 + Send + 'static,
    >,
) -> Dataset {
    try_run_intra_core(spec, sender, receiver).expect("simulated program failed")
}

/// As [`try_run_intra_core`], with an optional kernel-setup hook that runs
/// after thread creation (capability grants etc.). The hook sees the TCBs
/// in order `[sender, receiver]`.
///
/// # Errors
/// Returns the [`SimError`] of the first simulated program that fails.
pub fn try_run_intra_core_with_setup<T: Send + 'static>(
    spec: &IntraCoreSpec,
    setup_hook: Option<tp_core::system::SetupFn>,
    mut sender: impl SenderFn,
    receiver: Receiver<
        impl FnOnce(&mut UserEnv) -> T + Send + 'static,
        impl FnMut(&mut UserEnv, &mut T) -> f64 + Send + 'static,
    >,
) -> Result<Dataset, SimError> {
    let sender_log: SenderLog = Arc::new(Mutex::new(Vec::new()));
    let receiver_log: ReceiverLog = Arc::new(Mutex::new(Vec::new()));

    let mut b = SystemBuilder::new(spec.platform, spec.prot)
        .seed(spec.seed)
        .slice_us(spec.slice_us)
        .max_cycles(spec.cycle_budget())
        // Channels sharing a boot shape (platform × prot × seed × slice)
        // restore a cached checkpoint instead of re-booting; restoration
        // is bit-identical, so verdicts and goldens are unaffected.
        .warm_boot(true);
    // Receiver first: it owns slot 0, so its probe follows the sender slice.
    let d_recv = b.domain(None);
    let d_send = b.domain(None);
    if let Some(hook) = setup_hook {
        b.setup(hook);
    }

    let n_symbols = spec.n_symbols;
    let samples = spec.samples;
    let seed = spec.seed;

    let slog = Arc::clone(&sender_log);
    b.spawn_daemon(d_send, 0, 100, move |env: &mut UserEnv| {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD_EF01);
        loop {
            let symbol = rng.gen_range(0..n_symbols);
            let t0 = env.now();
            slog.lock().push((t0, symbol));
            sender(env, symbol);
            let _ = env.wait_preempt();
        }
    });

    let rlog = Arc::clone(&receiver_log);
    let Receiver { setup, mut measure } = receiver;
    let mut setup = Some(setup);
    b.spawn(d_recv, 0, 100, move |env: &mut UserEnv| {
        let mut state = (setup.take().expect("setup once"))(env);
        // Synchronise to a slice boundary after setup.
        let _ = env.wait_preempt();
        for _ in 0..samples + 1 {
            let t0 = env.now();
            let out = measure(env, &mut state);
            rlog.lock().push((t0, out));
            let _ = env.wait_preempt();
        }
    });

    let _ = b.try_run()?;

    let sends = sender_log.lock().clone();
    let recvs = receiver_log.lock().clone();
    Ok(pair_logs(n_symbols, &sends, &recvs))
}

/// Panicking wrapper over [`try_run_intra_core_with_setup`].
///
/// # Panics
/// Panics if a simulated program fails.
#[deprecated(note = "use `try_run_intra_core_with_setup` and handle the `SimError`")]
#[must_use]
pub fn run_intra_core_with_setup<T: Send + 'static>(
    spec: &IntraCoreSpec,
    setup_hook: Option<tp_core::system::SetupFn>,
    sender: impl SenderFn,
    receiver: Receiver<
        impl FnOnce(&mut UserEnv) -> T + Send + 'static,
        impl FnMut(&mut UserEnv, &mut T) -> f64 + Send + 'static,
    >,
) -> Dataset {
    try_run_intra_core_with_setup(spec, setup_hook, sender, receiver)
        .expect("simulated program failed")
}

/// Pair each receiver observation with the sender slice that most recently
/// *started before* the observation.
#[must_use]
pub fn pair_logs(n_symbols: usize, sends: &[(u64, usize)], recvs: &[(u64, f64)]) -> Dataset {
    let mut data = Dataset::new(n_symbols);
    for &(t, out) in recvs {
        // Latest sender entry with start < t.
        let prev = sends.iter().rev().find(|(ts, _)| *ts < t);
        if let Some(&(_, symbol)) = prev {
            data.push(symbol, out);
        }
    }
    data
}

/// Run the full measurement + §5.1 leakage test.
///
/// # Errors
/// Returns the [`SimError`] of the first simulated program that fails.
pub fn try_measure_channel<T: Send + 'static>(
    spec: &IntraCoreSpec,
    sender: impl SenderFn,
    receiver: Receiver<
        impl FnOnce(&mut UserEnv) -> T + Send + 'static,
        impl FnMut(&mut UserEnv, &mut T) -> f64 + Send + 'static,
    >,
) -> Result<ChannelOutcome, SimError> {
    let dataset = try_run_intra_core(spec, sender, receiver)?;
    let verdict = leakage_test(&dataset, spec.seed ^ 0x0F0F_F0F0);
    Ok(ChannelOutcome { dataset, verdict })
}

/// Panicking wrapper over [`try_measure_channel`].
///
/// # Panics
/// Panics if a simulated program fails.
#[deprecated(note = "use `try_measure_channel` and handle the `SimError`")]
#[must_use]
pub fn measure_channel<T: Send + 'static>(
    spec: &IntraCoreSpec,
    sender: impl SenderFn,
    receiver: Receiver<
        impl FnOnce(&mut UserEnv) -> T + Send + 'static,
        impl FnMut(&mut UserEnv, &mut T) -> f64 + Send + 'static,
    >,
) -> ChannelOutcome {
    try_measure_channel(spec, sender, receiver).expect("simulated program failed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairing_uses_most_recent_sender_slice() {
        let sends = vec![(100, 0), (300, 1), (500, 2)];
        let recvs = vec![(50, 9.0), (200, 10.0), (400, 11.0), (600, 12.0)];
        let d = pair_logs(3, &sends, &recvs);
        // t=50 has no preceding sender slice and is dropped.
        assert_eq!(d.len(), 3);
        assert_eq!(d.inputs(), &[0, 1, 2]);
        assert_eq!(d.outputs(), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn scenario_configs_differ() {
        assert!(Scenario::Protected.config().clone_kernel);
        assert!(!Scenario::Raw.config().clone_kernel);
        assert_eq!(Scenario::FullFlush.config().flush, tp_core::FlushMode::Full);
    }

    #[test]
    fn trivial_compute_channel_end_to_end() {
        // Smoke test of the harness itself: sender does nothing observable;
        // dataset must still assemble with the right shape.
        let spec = IntraCoreSpec::new(Platform::Haswell, Scenario::Raw, 2, 10).with_slice_us(20.0);
        let d = try_run_intra_core(
            &spec,
            |env: &mut UserEnv, _sym| {
                env.compute(500);
            },
            Receiver {
                setup: |_env: &mut UserEnv| (),
                measure: |env: &mut UserEnv, (): &mut ()| {
                    env.compute(100);
                    1.0
                },
            },
        )
        .expect("harness smoke run failed");
        assert!(d.len() >= 8, "only {} samples", d.len());
    }
}
