//! Branch-predictor channels: BTB and BHB (§5.3.2, Table 3).
//!
//! **BTB**: the sender executes `k` taken branches whose addresses collide
//! with the receiver's probe branches in the branch target buffer; the
//! receiver's probe latency grows with the evictions (after Evtyushkin et
//! al.; the paper probes 3584–3712 branches on Haswell, 0–512 on Sabre).
//!
//! **BHB**: the residual-state channel of Evtyushkin et al. (2016): the
//! sender either takes or skips a conditional jump, biasing a shared
//! pattern-history counter; the receiver senses the bias as a
//! (mis)prediction on an aliasing conditional jump. `BPIALL`/IBC reset the
//! predictor and close both channels.

use crate::harness::{try_measure_channel, ChannelOutcome, IntraCoreSpec, Receiver};
use tp_core::SimError;
use tp_core::UserEnv;
use tp_sim::{PlatformConfig, VAddr};

/// Shared virtual code region both parties use for branch probes (the BTB
/// is indexed by virtual address, and the covert-channel parties cooperate
/// on the layout).
const BRANCH_BASE: u64 = 0x40_0000;

/// Branch slots the receiver probes: an eighth of the BTB, floored at 128
/// so small predictors still yield a measurable probe (512 slots of the
/// Haswell's 4096-entry BTB, 128 of the Sabre's 512 — and scaled
/// automatically for any registered platform).
#[must_use]
pub fn btb_probe_slots(cfg: &PlatformConfig) -> usize {
    (cfg.btb.entries as usize / 8).max(128)
}

/// Total branch slots the sender sweeps. (The paper sweeps absolute probe
/// counts of 3584–3712 on Haswell and 0–512 on Sabre; here the sender
/// covers the receiver's probe slots, which carries the same signal —
/// conflict evictions proportional to the sender's branch working set —
/// while fitting in a slice.)
#[must_use]
pub fn btb_sweep_slots(cfg: &PlatformConfig) -> usize {
    btb_probe_slots(cfg)
}

fn slot_pc(i: usize) -> VAddr {
    // 4-byte spaced branch instructions.
    VAddr(BRANCH_BASE + (i as u64) * 4)
}

/// Run the BTB channel.
///
/// # Errors
/// Returns the [`SimError`] of the first simulated program that fails.
pub fn try_btb_channel(spec: &IntraCoreSpec) -> Result<ChannelOutcome, SimError> {
    let n = spec.n_symbols;
    let cfg = spec.platform.config();
    let sweep = btb_sweep_slots(&cfg);
    let slots = btb_probe_slots(&cfg);
    let ways = u64::from(cfg.btb.ways);
    try_measure_channel(
        spec,
        move |env: &mut UserEnv, sym: usize| {
            // The sender's branches live at *different* code addresses that
            // collide with the receiver's probe slots in the BTB index but
            // differ in tag — filling all ways of the first `k` sets and
            // evicting the receiver's entries.
            let k = sweep * sym / n.max(1);
            for w in 1..=ways {
                for i in 0..k {
                    let pc = VAddr(slot_pc(i).0 + w * 0x100_0000);
                    env.branch(pc, VAddr(pc.0 + 8), true, false);
                }
            }
        },
        Receiver {
            setup: move |env: &mut UserEnv| {
                // Warm the receiver's probe slots.
                for i in 0..slots {
                    let pc = slot_pc(i);
                    env.branch(pc, VAddr(pc.0 + 8), true, false);
                }
            },
            measure: move |env: &mut UserEnv, (): &mut ()| {
                let mut total = 0u64;
                for i in 0..slots {
                    let pc = slot_pc(i);
                    total += env.branch(pc, VAddr(pc.0 + 8), true, false);
                }
                total as f64
            },
        },
    )
}

/// Panicking wrapper over [`try_btb_channel`].
///
/// # Panics
/// Panics if the simulation fails.
#[deprecated(note = "use `try_btb_channel` and handle the `SimError`")]
#[must_use]
pub fn btb_channel(spec: &IntraCoreSpec) -> ChannelOutcome {
    try_btb_channel(spec).expect("simulated program failed")
}

/// Drive the global history register to a known (all-zero) state by
/// executing `n` never-taken conditional branches at a scratch pc.
///
/// The scratch pc must not alias the probe pc in the pattern-history table
/// (indices are `pc/4 xor history` modulo the PHT size), or the zeroing
/// itself would erase the trained state.
fn zero_history(env: &mut UserEnv, n: u32) {
    let pc = VAddr(BRANCH_BASE + 0x44);
    for _ in 0..n {
        env.branch(pc, VAddr(pc.0 + 8), false, true);
    }
}

/// Run the BHB channel: 1-bit symbols.
///
/// # Errors
/// Returns the [`SimError`] of the first simulated program that fails.
pub fn try_bhb_channel(spec: &IntraCoreSpec) -> Result<ChannelOutcome, SimError> {
    let ghr_bits = spec.platform.config().ghr_bits;
    let probe_pc = VAddr(BRANCH_BASE + 0x80);
    try_measure_channel(
        spec,
        move |env: &mut UserEnv, sym: usize| {
            // Repeatedly train the aliased PHT entry towards taken (1) or
            // not-taken (0), always from zeroed history so the same counter
            // is hit.
            for _ in 0..6 {
                zero_history(env, ghr_bits + 2);
                env.branch(probe_pc, VAddr(probe_pc.0 + 8), sym == 1, true);
            }
        },
        Receiver {
            setup: move |_env: &mut UserEnv| (),
            measure: move |env: &mut UserEnv, (): &mut ()| {
                zero_history(env, ghr_bits + 2);
                // Probe with a taken branch: fast iff the sender trained
                // the counter to taken.
                let lat = env.branch(probe_pc, VAddr(probe_pc.0 + 8), true, true);
                lat as f64
            },
        },
    )
}

/// Panicking wrapper over [`try_bhb_channel`].
///
/// # Panics
/// Panics if the simulation fails.
#[deprecated(note = "use `try_bhb_channel` and handle the `SimError`")]
#[must_use]
pub fn bhb_channel(spec: &IntraCoreSpec) -> ChannelOutcome {
    try_bhb_channel(spec).expect("simulated program failed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scenario;
    use tp_sim::Platform;

    #[test]
    fn btb_raw_leaks_on_haswell() {
        let raw = try_btb_channel(&IntraCoreSpec::new(
            Platform::Haswell,
            Scenario::Raw,
            8,
            120,
        ))
        .expect("sim run failed");
        assert!(raw.verdict.leaks, "raw BTB: {}", raw.summary());
        let prot = try_btb_channel(&IntraCoreSpec::new(
            Platform::Haswell,
            Scenario::Protected,
            8,
            120,
        ))
        .expect("sim run failed");
        assert!(
            prot.verdict.m.bits < raw.verdict.m.bits / 4.0,
            "BTB protection ineffective: {} vs {}",
            raw.summary(),
            prot.summary()
        );
    }

    #[test]
    fn bhb_raw_leaks_and_flush_closes() {
        let raw = try_bhb_channel(&IntraCoreSpec::new(
            Platform::Haswell,
            Scenario::Raw,
            2,
            150,
        ))
        .expect("sim run failed");
        assert!(raw.verdict.leaks, "raw BHB: {}", raw.summary());
        assert!(raw.verdict.m.bits > 0.3, "raw BHB weak: {}", raw.summary());
        let ff = try_bhb_channel(&IntraCoreSpec::new(
            Platform::Haswell,
            Scenario::FullFlush,
            2,
            150,
        ))
        .expect("sim run failed");
        assert!(
            !ff.verdict.leaks || ff.verdict.m.bits < 0.05,
            "full flush BHB: {}",
            ff.summary()
        );
    }
}
