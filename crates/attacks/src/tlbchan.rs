//! The TLB channel (§5.3.2, after Gras et al. (2018) / Hund et al. (2013)).
//!
//! The sender touches an integer on each of `k` consecutive pages, evicting
//! the receiver's TLB entries; the receiver probes one load per page of its
//! own working set and observes the extra page-walk latency. Flushing the
//! TLBs on domain switch (invpcid / TLBIALL) closes the channel.

use crate::harness::{measure_channel, ChannelOutcome, IntraCoreSpec};
use tp_core::UserEnv;
use tp_sim::{Platform, VAddr, FRAME_SIZE};

/// Number of pages the *receiver* probes: somewhat below the first-level
/// D-TLB capacity, so the probe set is TLB-resident when undisturbed and
/// every sender-induced eviction shows up as second-level/walk latency.
#[must_use]
pub fn tlb_probe_pages(platform: Platform) -> usize {
    match platform {
        // D-TLB holds 64 entries (4-way).
        Platform::Haswell => 48,
        // D-TLB holds 32 entries (1-way).
        Platform::Sabre => 24,
    }
}

/// Number of pages the *sender* sweeps over (its working-set signal).
#[must_use]
pub fn tlb_sweep_pages(platform: Platform) -> usize {
    match platform {
        Platform::Haswell => 128,
        Platform::Sabre => 64,
    }
}

/// Run the TLB channel.
#[must_use]
pub fn tlb_channel(spec: &IntraCoreSpec) -> ChannelOutcome {
    let pages = tlb_probe_pages(spec.platform);
    let sweep = tlb_sweep_pages(spec.platform);
    let n = spec.n_symbols;
    let mut sender_base: Option<VAddr> = None;
    measure_channel(
        spec,
        move |env: &mut UserEnv, sym: usize| {
            let base = *sender_base.get_or_insert_with(|| env.map_pages(sweep).0);
            let k = sweep * sym / n.max(1);
            for p in 0..k {
                env.load(VAddr(base.0 + p as u64 * FRAME_SIZE));
            }
        },
        crate::harness::Receiver {
            setup: move |env: &mut UserEnv| {
                let (base, _) = env.map_pages(pages);
                // Warm the pages into caches so the residual signal is TLB
                // latency, not cache misses.
                for _ in 0..2 {
                    for p in 0..pages {
                        env.load(VAddr(base.0 + p as u64 * FRAME_SIZE));
                    }
                }
                base
            },
            measure: move |env: &mut UserEnv, base: &mut VAddr| {
                let mut total = 0u64;
                for p in 0..pages {
                    total += env.load(VAddr(base.0 + p as u64 * FRAME_SIZE));
                }
                total as f64
            },
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scenario;

    #[test]
    fn tlb_raw_leaks_protected_closed() {
        let raw = tlb_channel(&IntraCoreSpec::new(Platform::Haswell, Scenario::Raw, 8, 120));
        assert!(raw.verdict.leaks, "raw TLB: {}", raw.summary());
        let prot =
            tlb_channel(&IntraCoreSpec::new(Platform::Haswell, Scenario::Protected, 8, 120));
        // Protected outputs are near-constant, which makes the absolute MI
        // estimate noise-dominated; the §5.1 criterion is M ≤ M0.
        assert!(!prot.verdict.leaks, "TLB protection ineffective: {}", prot.summary());
    }
}
