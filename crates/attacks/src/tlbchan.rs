//! The TLB channel (§5.3.2, after Gras et al. (2018) / Hund et al. (2013)).
//!
//! The sender touches an integer on each of `k` consecutive pages, evicting
//! the receiver's TLB entries; the receiver probes one load per page of its
//! own working set and observes the extra page-walk latency. Flushing the
//! TLBs on domain switch (invpcid / TLBIALL) closes the channel.

use crate::harness::{try_measure_channel, ChannelOutcome, IntraCoreSpec};
use tp_core::SimError;
use tp_core::UserEnv;
use tp_sim::{PlatformConfig, VAddr, FRAME_SIZE};

/// Capacity of the innermost TLB level large enough to host a stable
/// probe set. Micro-TLBs of a dozen entries (e.g. the A53's) thrash under
/// the probe itself and saturate after a handful of sender pages, so on
/// such platforms the channel works through the main (second-level) TLB —
/// as the Armv8 TLB attacks do in practice.
fn tlb_probe_capacity(cfg: &PlatformConfig) -> usize {
    let dtlb = cfg.dtlb.entries as usize;
    if dtlb >= 32 {
        dtlb
    } else {
        (cfg.stlb.entries as usize).min(128)
    }
}

/// Number of pages the *receiver* probes: three quarters of the probed
/// TLB level's capacity, so the probe set is TLB-resident when
/// undisturbed and every sender-induced eviction shows up as
/// second-level/walk latency. (48 of the 64 D-TLB entries on Haswell, 24
/// of 32 on the Sabre — and scaled automatically for any registered
/// platform.)
#[must_use]
pub fn tlb_probe_pages(cfg: &PlatformConfig) -> usize {
    (tlb_probe_capacity(cfg) * 3 / 4).max(4)
}

/// Number of pages the *sender* sweeps over (its working-set signal):
/// twice the probed capacity, enough to displace the whole level.
#[must_use]
pub fn tlb_sweep_pages(cfg: &PlatformConfig) -> usize {
    (tlb_probe_capacity(cfg) * 2).max(8)
}

/// Run the TLB channel.
///
/// # Errors
/// Returns the [`SimError`] of the first simulated program that fails.
pub fn try_tlb_channel(spec: &IntraCoreSpec) -> Result<ChannelOutcome, SimError> {
    let cfg = spec.platform.config();
    let pages = tlb_probe_pages(&cfg);
    let sweep = tlb_sweep_pages(&cfg);
    let n = spec.n_symbols;
    let mut sender_base: Option<VAddr> = None;
    try_measure_channel(
        spec,
        move |env: &mut UserEnv, sym: usize| {
            let base = *sender_base.get_or_insert_with(|| env.map_pages(sweep).0);
            let k = sweep * sym / n.max(1);
            for p in 0..k {
                env.load(VAddr(base.0 + p as u64 * FRAME_SIZE));
            }
        },
        crate::harness::Receiver {
            setup: move |env: &mut UserEnv| {
                let (base, _) = env.map_pages(pages);
                // Warm the pages into caches so the residual signal is TLB
                // latency, not cache misses.
                for _ in 0..2 {
                    for p in 0..pages {
                        env.load(VAddr(base.0 + p as u64 * FRAME_SIZE));
                    }
                }
                base
            },
            measure: move |env: &mut UserEnv, base: &mut VAddr| {
                let mut total = 0u64;
                for p in 0..pages {
                    total += env.load(VAddr(base.0 + p as u64 * FRAME_SIZE));
                }
                total as f64
            },
        },
    )
}

/// Panicking wrapper over [`try_tlb_channel`].
///
/// # Panics
/// Panics if the simulation fails.
#[deprecated(note = "use `try_tlb_channel` and handle the `SimError`")]
#[must_use]
pub fn tlb_channel(spec: &IntraCoreSpec) -> ChannelOutcome {
    try_tlb_channel(spec).expect("simulated program failed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scenario;
    use tp_sim::Platform;

    #[test]
    fn tlb_raw_leaks_protected_closed() {
        let raw = try_tlb_channel(&IntraCoreSpec::new(
            Platform::Haswell,
            Scenario::Raw,
            8,
            120,
        ))
        .expect("sim run failed");
        assert!(raw.verdict.leaks, "raw TLB: {}", raw.summary());
        let prot = try_tlb_channel(&IntraCoreSpec::new(
            Platform::Haswell,
            Scenario::Protected,
            8,
            120,
        ))
        .expect("sim run failed");
        // Protected outputs are near-constant, which makes the absolute MI
        // estimate noise-dominated; the §5.1 criterion is M ≤ M0.
        assert!(
            !prot.verdict.leaks,
            "TLB protection ineffective: {}",
            prot.summary()
        );
    }
}
