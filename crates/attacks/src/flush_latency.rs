//! The cache-flush latency channel (§5.3.4, Figure 5, Table 4).
//!
//! Flushing the L1-D on a domain switch writes back all dirty lines, so the
//! switch latency depends on how much dirty data the outgoing domain left
//! behind — execution history leaks through the *flush itself*. The sender
//! modulates the number of dirty cache sets; the receiver watches its cycle
//! counter for the preemption jump and measures *online* time (between
//! jumps) and *offline* time (the jump length). Requirement 4: padding the
//! switch to its worst-case latency closes the channel.

use crate::harness::{pair_logs, ChannelOutcome, IntraCoreSpec};
use crate::probe::{l1_probe, ProbeBuf};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tp_analysis::leakage_test;
use tp_core::{ProtectionConfig, SimError, SystemBuilder, UserEnv};
use tp_sim::Platform;

/// Which side of the preemption jump the receiver reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Timing {
    /// Time between jumps (the uninterrupted period).
    Online,
    /// The jump length.
    Offline,
}

/// The padding values used in Table 4 — read from the platform registry
/// ([`tp_sim::PlatformConfig::switch_pad_us`]), so every registered
/// platform carries its own worst-case switch bound.
#[must_use]
pub fn table4_pad_us(platform: Platform) -> f64 {
    platform.config().switch_pad_us
}

/// The flush-channel protection configuration: full time protection with or
/// without padding.
#[must_use]
pub fn flush_channel_config(pad_us: Option<f64>) -> ProtectionConfig {
    let mut p = ProtectionConfig::protected();
    p.pad_us = pad_us;
    p
}

/// Run the cache-flush channel and report the chosen timing.
///
/// # Errors
/// Returns the [`SimError`] if the simulation fails.
pub fn flush_channel(spec: &IntraCoreSpec, timing: Timing) -> Result<ChannelOutcome, SimError> {
    let sender_log: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    let receiver_log: Arc<Mutex<Vec<(u64, f64)>>> = Arc::new(Mutex::new(Vec::new()));

    let mut b = SystemBuilder::new(spec.platform, spec.prot)
        .seed(spec.seed)
        .slice_us(spec.slice_us)
        .max_cycles(spec.cycle_budget());
    let d_recv = b.domain(None);
    let d_send = b.domain(None);

    let n_symbols = spec.n_symbols;
    let samples = spec.samples;
    let seed = spec.seed;

    let slog = Arc::clone(&sender_log);
    b.spawn_daemon(d_send, 0, 100, move |env: &mut UserEnv| {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD_EF01);
        let geom = env.platform().l1d;
        let buf: ProbeBuf = l1_probe(env, geom);
        loop {
            let symbol = rng.gen_range(0..n_symbols);
            let t0 = env.now();
            slog.lock().push((t0, symbol));
            // Dirty `k` cache sets: the flush on the switch away from us
            // will write them all back.
            let per_set = geom.ways as usize;
            let k = geom.sets() as usize * symbol / n_symbols.max(1);
            buf.dirty_prefix(env, k * per_set);
            let _ = env.wait_preempt();
        }
    });

    let rlog = Arc::clone(&receiver_log);
    b.spawn(d_recv, 0, 100, move |env: &mut UserEnv| {
        let mut last_resume: Option<u64> = None;
        let mut taken = 0usize;
        while taken < samples + 1 {
            let (gap_start, resume) = env.wait_preempt();
            // Pairing timestamps: the offline period *contains* the sender
            // slice that modulated the flush, so it is stamped at its end
            // (resume); the online period follows the switch-in from the
            // previous sender slice, so it is stamped at its end too —
            // which still precedes the next sender slice's log entry.
            let value = match timing {
                Timing::Offline => Some(((resume - gap_start) as f64, resume)),
                Timing::Online => last_resume.map(|lr| ((gap_start - lr) as f64, gap_start)),
            };
            if let Some((v, ts)) = value {
                rlog.lock().push((ts, v));
                taken += 1;
            }
            last_resume = Some(resume);
        }
    });

    let _ = b.try_run()?;
    let dataset = pair_logs(n_symbols, &sender_log.lock(), &receiver_log.lock());
    let verdict = leakage_test(&dataset, spec.seed ^ 0x0F0F_F0F0);
    Ok(ChannelOutcome { dataset, verdict })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(platform: Platform, pad: Option<f64>, samples: usize) -> IntraCoreSpec {
        IntraCoreSpec {
            platform,
            prot: flush_channel_config(pad),
            n_symbols: 8,
            samples,
            slice_us: 50.0,
            seed: 0x5EED,
        }
    }

    #[test]
    fn unpadded_offline_time_leaks_on_arm() {
        let no_pad =
            flush_channel(&spec(Platform::Sabre, None, 150), Timing::Offline).expect("simulation");
        assert!(no_pad.verdict.leaks, "no-pad offline: {}", no_pad.summary());
        assert!(
            no_pad.verdict.m.bits > 0.2,
            "no-pad channel weak: {}",
            no_pad.summary()
        );
    }

    #[test]
    fn padding_closes_the_offline_channel() {
        let pad = table4_pad_us(Platform::Sabre);
        let no_pad =
            flush_channel(&spec(Platform::Sabre, None, 120), Timing::Offline).expect("simulation");
        let padded = flush_channel(&spec(Platform::Sabre, Some(pad), 120), Timing::Offline)
            .expect("simulation");
        assert!(
            no_pad.verdict.leaks,
            "no-pad must leak: {}",
            no_pad.summary()
        );
        // With near-constant padded outputs the absolute MI estimate is
        // noise-dominated; the §5.1 criterion is M ≤ M0.
        assert!(
            !padded.verdict.leaks,
            "padding ineffective: {}",
            padded.summary()
        );
    }
}
