//! The interconnect (memory-bus) covert channel — the paper's declared
//! limitation (§2.3, §3.1, §6.1).
//!
//! Stateless interconnects cannot be flushed (there is nothing to flush)
//! and contemporary hardware offers no way to partition their bandwidth,
//! so time protection *cannot* close a covert channel between concurrently
//! executing domains that modulate bus utilisation. This is why the
//! paper's threat model restricts intra-core channels to time-multiplexed
//! cores and cross-core channels to side channels only.
//!
//! This module demonstrates the limitation: a sender on one core either
//! hammers DRAM or idles; a receiver on another core times its own DRAM
//! accesses and reads the sender's bit from the queuing delay — even under
//! full time protection.

use crate::harness::{pair_logs, ChannelOutcome, IntraCoreSpec};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tp_analysis::leakage_test;
use tp_core::{SimError, SystemBuilder, UserEnv};
use tp_sim::{VAddr, FRAME_SIZE};

/// Accesses per receiver measurement.
const PROBE_ACCESSES: u64 = 24;

/// Sender DRAM accesses per symbol period.
const HAMMER_ACCESSES: u64 = 600;

/// Run the cross-core bus covert channel (1-bit symbols: hammer / idle).
///
/// The `slice_us` of the spec is reinterpreted as the symbol period; the
/// parties run concurrently on cores 0 and 1 with open scheduling.
///
/// # Errors
/// Returns the [`SimError`] if the simulation fails.
///
/// # Panics
/// Panics if `n_symbols != 2` — a misuse of the API, not a simulation
/// outcome.
pub fn bus_channel(spec: &IntraCoreSpec) -> Result<ChannelOutcome, SimError> {
    assert_eq!(
        spec.n_symbols, 2,
        "the bus channel sends one bit per period"
    );
    let sender_log: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    let receiver_log: Arc<Mutex<Vec<(u64, f64)>>> = Arc::new(Mutex::new(Vec::new()));
    let period = spec.platform.config().us_to_cycles(spec.slice_us);

    let mut b = SystemBuilder::new(spec.platform, spec.prot)
        .seed(spec.seed)
        .max_cycles(spec.cycle_budget())
        .window(800)
        .open_scheduling();
    let d_recv = b.domain(None);
    let d_send = b.domain(None);

    let n_symbols = spec.n_symbols;
    let samples = spec.samples;
    let seed = spec.seed;

    let slog = Arc::clone(&sender_log);
    b.spawn_daemon(d_send, 1, 100, move |env: &mut UserEnv| {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD_EF01);
        // Stream fresh cache lines over a large buffer: the reuse distance
        // exceeds the LLC, so every access is DRAM traffic.
        let (base, _) = env.map_pages(4096);
        let lines = 4096 * (FRAME_SIZE / env.platform().line);
        let line_sz = env.platform().line;
        let mut cursor = 0u64;
        loop {
            let symbol = rng.gen_range(0..n_symbols);
            let t0 = env.now();
            slog.lock().push((t0, symbol));
            if symbol == 1 {
                for _ in 0..HAMMER_ACCESSES {
                    cursor = (cursor + 97) % lines; // non-sequential: defeats the prefetcher
                    env.load(VAddr(base.0 + cursor * line_sz));
                }
            }
            let elapsed = env.now() - t0;
            if elapsed < period {
                env.compute(period - elapsed);
            }
        }
    });

    let rlog = Arc::clone(&receiver_log);
    b.spawn(d_recv, 0, 100, move |env: &mut UserEnv| {
        let (base, _) = env.map_pages(4096);
        let lines = 4096 * (FRAME_SIZE / env.platform().line);
        let line_sz = env.platform().line;
        let mut cursor = 0u64;
        for _ in 0..samples + 1 {
            let t0 = env.now();
            let mut total = 0u64;
            for _ in 0..PROBE_ACCESSES {
                cursor = (cursor + 101) % lines;
                total += env.load(VAddr(base.0 + cursor * line_sz));
            }
            rlog.lock().push((env.now(), total as f64));
            let elapsed = env.now() - t0;
            if elapsed < period {
                env.compute(period - elapsed);
            }
        }
    });

    let _ = b.try_run()?;
    let dataset = pair_logs(n_symbols, &sender_log.lock(), &receiver_log.lock());
    let verdict = leakage_test(&dataset, spec.seed ^ 0x0F0F_F0F0);
    Ok(ChannelOutcome { dataset, verdict })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scenario;
    use tp_sim::Platform;

    fn spec(scenario: Scenario) -> IntraCoreSpec {
        IntraCoreSpec::new(Platform::Haswell, scenario, 2, 150).with_slice_us(30.0)
    }

    #[test]
    fn bus_channel_exists_raw() {
        let raw = bus_channel(&spec(Scenario::Raw)).expect("simulation");
        assert!(raw.verdict.leaks, "bus channel raw: {}", raw.summary());
    }

    #[test]
    fn time_protection_cannot_close_the_bus_channel() {
        // §6.1: "we are powerless without appropriate hardware support" —
        // colouring and flushing do not touch bus bandwidth.
        let prot = bus_channel(&spec(Scenario::Protected)).expect("simulation");
        assert!(
            prot.verdict.leaks,
            "the interconnect channel should survive time protection: {}",
            prot.summary()
        );
        assert!(prot.verdict.m.bits > 0.1, "{}", prot.summary());
    }
}
