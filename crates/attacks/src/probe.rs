//! Prime&probe machinery (after Mastik [Yarom 2017]).
//!
//! A probe buffer is an ordered list of virtual addresses covering a chosen
//! part of a cache: for the (physically-page-sized-indexed) L1s the page
//! offset selects the set directly; for physically-indexed L2/LLC sets the
//! attacker needs lines whose *physical* addresses map to the target sets,
//! found during an untimed profiling phase (the [`tp_core::UserEnv::translate`]
//! oracle stands in for timing-based eviction-set construction).

use std::cell::RefCell;
use tp_core::{EnvPlan, UserEnv};
use tp_sim::cache::phys_set;
use tp_sim::machine::slice_index;
use tp_sim::{CacheGeom, VAddr, FRAME_SIZE};

/// Cached per-buffer sweep plans, one per access side (the I- and D-side
/// L1 geometries can differ).
#[derive(Debug, Clone, Default)]
struct Plans {
    data: Option<EnvPlan>,
    insn: Option<EnvPlan>,
}

/// An ordered set of probe addresses.
///
/// All probe entry points run through the environment's batched sweep API:
/// the buffer lazily builds (and caches) a translated [`EnvPlan`] per
/// access side, so a probe takes the simulation lock and the scheduler
/// turn once per sweep instead of once per line. The `*_scalar` siblings
/// keep the original line-at-a-time path as a reference oracle — the
/// workspace property tests pin batch and scalar to bit-identical cycle
/// totals and hit sequences.
#[derive(Debug, Clone)]
pub struct ProbeBuf {
    /// The probe addresses, grouped by target set.
    pub lines: Vec<VAddr>,
    /// Lines per target set.
    pub per_set: usize,
    plans: RefCell<Plans>,
}

impl ProbeBuf {
    /// Build a probe buffer from an ordered address list.
    #[must_use]
    pub fn new(lines: Vec<VAddr>, per_set: usize) -> Self {
        ProbeBuf {
            lines,
            per_set,
            plans: RefCell::new(Plans::default()),
        }
    }

    /// Run `sweep` against the cached plan for the chosen side, building or
    /// rebuilding the plan when absent or stale (address space changed).
    fn with_plan<R>(
        &self,
        env: &mut UserEnv,
        insn: bool,
        mut sweep: impl FnMut(&EnvPlan, &mut UserEnv) -> Option<R>,
    ) -> R {
        loop {
            {
                let mut plans = self.plans.borrow_mut();
                let slot = if insn {
                    &mut plans.insn
                } else {
                    &mut plans.data
                };
                if slot.is_none() {
                    *slot = Some(env.build_plan(&self.lines, insn));
                }
            }
            let plans = self.plans.borrow();
            let plan = if insn { &plans.insn } else { &plans.data };
            if let Some(r) = sweep(plan.as_ref().expect("plan built above"), env) {
                return r;
            }
            drop(plans);
            let mut plans = self.plans.borrow_mut();
            *(if insn {
                &mut plans.insn
            } else {
                &mut plans.data
            }) = None;
        }
    }

    /// Probe with loads; returns the total latency in cycles.
    #[must_use]
    pub fn probe(&self, env: &mut UserEnv) -> u64 {
        self.with_plan(env, false, |p, env| {
            env.probe_batch(p, usize::MAX, false, None)
        })
    }

    /// Probe with stores (dirties the lines).
    #[must_use]
    pub fn probe_write(&self, env: &mut UserEnv) -> u64 {
        self.with_plan(env, false, |p, env| {
            env.probe_batch(p, usize::MAX, true, None)
        })
    }

    /// Probe with instruction fetches.
    #[must_use]
    pub fn probe_exec(&self, env: &mut UserEnv) -> u64 {
        self.with_plan(env, true, |p, env| {
            env.probe_batch(p, usize::MAX, false, None)
        })
    }

    /// Probe with loads, counting accesses slower than `threshold` (cache
    /// misses at the monitored level).
    #[must_use]
    pub fn probe_misses(&self, env: &mut UserEnv, threshold: u64) -> u64 {
        let mut costs = Vec::with_capacity(self.lines.len());
        self.with_plan(env, false, |p, env| {
            costs.clear();
            env.probe_batch(p, usize::MAX, false, Some(&mut costs))
        });
        costs.iter().filter(|&&c| c >= threshold).count() as u64
    }

    /// Probe a sub-range `[0, n)` of the buffer's lines with loads.
    #[must_use]
    pub fn probe_prefix(&self, env: &mut UserEnv, n: usize) -> u64 {
        self.with_plan(env, false, |p, env| env.probe_batch(p, n, false, None))
    }

    /// Dirty the first `n` lines (the §5.3.4 sender).
    pub fn dirty_prefix(&self, env: &mut UserEnv, n: usize) {
        self.with_plan(env, false, |p, env| env.probe_batch(p, n, true, None));
    }

    /// Line-at-a-time load probe: the reference oracle for
    /// [`ProbeBuf::probe`].
    #[must_use]
    pub fn probe_scalar(&self, env: &mut UserEnv) -> u64 {
        self.lines.iter().map(|&va| env.load(va)).sum()
    }

    /// Line-at-a-time store probe: the reference oracle for
    /// [`ProbeBuf::probe_write`].
    #[must_use]
    pub fn probe_write_scalar(&self, env: &mut UserEnv) -> u64 {
        self.lines.iter().map(|&va| env.store(va)).sum()
    }

    /// Line-at-a-time fetch probe: the reference oracle for
    /// [`ProbeBuf::probe_exec`].
    #[must_use]
    pub fn probe_exec_scalar(&self, env: &mut UserEnv) -> u64 {
        self.lines.iter().map(|&va| env.exec(va)).sum()
    }

    /// Number of probe lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

/// Build a probe buffer covering the L1 cache (`sets × ways` lines). The L1
/// set index is a pure page-offset function, so any `ways` pages suffice.
#[must_use]
pub fn l1_probe(env: &mut UserEnv, geom: CacheGeom) -> ProbeBuf {
    let sets = geom.sets();
    let ways = geom.ways as u64;
    let line = geom.line;
    let lines_per_page = FRAME_SIZE / line;
    let pages_per_way = (sets * line).div_ceil(FRAME_SIZE).max(1);
    let (va, _) = env.map_pages((ways * pages_per_way) as usize);
    let mut lines = Vec::with_capacity((sets * ways) as usize);
    for set in 0..sets {
        for w in 0..ways {
            // The address within way-w's page group whose offset selects
            // `set`.
            let page = w * pages_per_way + set / lines_per_page;
            let off = (set % lines_per_page) * line;
            lines.push(VAddr(va.0 + page * FRAME_SIZE + off));
        }
    }
    ProbeBuf::new(lines, ways as usize)
}

/// Build a probe buffer for a set of physically-indexed cache sets.
///
/// Allocates `pool_pages` pages from the domain pool and selects, per
/// target set, up to `ways` lines whose physical addresses map there
/// (profiling phase; untimed). Target sets with no reachable lines (e.g.
/// off-colour sets under partitioning) are simply not covered — exactly the
/// situation of a coloured attacker.
#[must_use]
pub fn phys_probe(
    env: &mut UserEnv,
    geom: CacheGeom,
    target_sets: &[usize],
    ways: usize,
    pool_pages: usize,
) -> ProbeBuf {
    let line = geom.line;
    let lines_per_page = FRAME_SIZE / line;
    let (va, frames) = env.map_pages(pool_pages);
    // Direct set → target-slot table: the profiling scan visits every line
    // of the pool, so membership tests must be O(1) (a linear
    // `contains` over hundreds of target sets made this scan quadratic).
    let mut slot_of: Vec<Option<u32>> = vec![None; geom.sets() as usize];
    for (slot, &s) in target_sets.iter().enumerate() {
        slot_of[s] = Some(slot as u32);
    }
    let mut per_set: Vec<Vec<VAddr>> = vec![Vec::new(); target_sets.len()];
    let mut filled = 0usize;
    'outer: for (pi, pfn) in frames.iter().enumerate() {
        for l in 0..lines_per_page {
            let pa = pfn * FRAME_SIZE + l * line;
            let set = phys_set(geom, pa);
            if let Some(slot) = slot_of[set] {
                let v = &mut per_set[slot as usize];
                if v.len() < ways {
                    v.push(VAddr(va.0 + pi as u64 * FRAME_SIZE + l * line));
                    if v.len() == ways {
                        filled += 1;
                        if filled == target_sets.len() {
                            break 'outer;
                        }
                    }
                }
            }
        }
    }
    let mut lines = Vec::new();
    for v in per_set {
        lines.extend_from_slice(&v);
    }
    ProbeBuf::new(lines, ways)
}

/// Build a probe buffer for one (slice, set) position of the sliced LLC —
/// the cross-core attack's monitored set (§5.3.3).
#[must_use]
pub fn llc_slice_probe(
    env: &mut UserEnv,
    per_slice_geom: CacheGeom,
    slices: u64,
    target_slice: usize,
    target_set: usize,
    ways: usize,
    pool_pages: usize,
) -> ProbeBuf {
    let line = per_slice_geom.line;
    let lines_per_page = FRAME_SIZE / line;
    let (va, frames) = env.map_pages(pool_pages);
    let mut lines = Vec::new();
    'outer: for (pi, pfn) in frames.iter().enumerate() {
        for l in 0..lines_per_page {
            let pa = pfn * FRAME_SIZE + l * line;
            if phys_set(per_slice_geom, pa) == target_set
                && slice_index(pa / line, slices) == target_slice
            {
                lines.push(VAddr(va.0 + pi as u64 * FRAME_SIZE + l * line));
                if lines.len() >= ways {
                    break 'outer;
                }
            }
        }
    }
    ProbeBuf::new(lines, ways)
}

/// The latency threshold distinguishing a hit at `inner` from a miss that
/// went at least to `outer`.
#[must_use]
pub fn miss_threshold(inner: u64, outer: u64) -> u64 {
    (inner + outer) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;
    use tp_core::{ProtectionConfig, SystemBuilder};
    use tp_sim::Platform;

    #[test]
    fn l1_probe_covers_every_set() {
        let hits: Arc<Mutex<(usize, u64, u64)>> = Arc::new(Mutex::new((0, 0, 0)));
        let hits2 = Arc::clone(&hits);
        let mut b =
            SystemBuilder::new(Platform::Haswell, ProtectionConfig::raw()).max_cycles(50_000_000);
        let d = b.domain(None);
        b.spawn(d, 0, 100, move |env: &mut UserEnv| {
            let geom = env.platform().l1d;
            let buf = l1_probe(env, geom);
            let cold = buf.probe(env);
            let warm = buf.probe(env);
            *hits2.lock() = (buf.len(), cold, warm);
        });
        let _ = b.run();
        let (len, cold, warm) = *hits.lock();
        assert_eq!(len, 512, "64 sets x 8 ways");
        // Second pass must be nearly all L1 hits: the buffer exactly fills
        // the cache.
        assert!(warm < cold / 2, "warm {warm} vs cold {cold}");
        assert!(warm <= 512 * 8, "warm probe {warm} not hitting L1");
    }

    #[test]
    fn phys_probe_respects_colour_partitioning() {
        let found: Arc<Mutex<(usize, usize)>> = Arc::new(Mutex::new((0, 0)));
        let found2 = Arc::clone(&found);
        let mut b = SystemBuilder::new(Platform::Haswell, ProtectionConfig::protected())
            .max_cycles(50_000_000);
        let d0 = b.domain(None); // colours 0..4
        let _d1 = b.domain(None); // colours 4..8
        b.spawn(d0, 0, 100, move |env: &mut UserEnv| {
            let geom = env.platform().l2;
            // L2 colour = set/64 on Haswell (512 sets, 8 colours).
            // Sets 0..64 are colour 0 (ours); sets 256..320 are colour 4
            // (the other domain's).
            let ours: Vec<usize> = (0..64).collect();
            let theirs: Vec<usize> = (256..320).collect();
            let buf_ours = phys_probe(env, geom, &ours, 8, 128);
            let buf_theirs = phys_probe(env, geom, &theirs, 8, 128);
            *found2.lock() = (buf_ours.len(), buf_theirs.len());
        });
        let _ = b.run();
        let (ours, theirs) = *found.lock();
        assert_eq!(ours, 64 * 8, "full coverage of own-colour sets");
        assert_eq!(theirs, 0, "no reachable lines in foreign colours");
    }

    #[test]
    fn llc_slice_probe_finds_target() {
        let found: Arc<Mutex<usize>> = Arc::new(Mutex::new(0));
        let found2 = Arc::clone(&found);
        let mut b =
            SystemBuilder::new(Platform::Haswell, ProtectionConfig::raw()).max_cycles(50_000_000);
        let d = b.domain(None);
        b.spawn(d, 0, 100, move |env: &mut UserEnv| {
            let cfg = *env.platform();
            let llc = cfg.llc.unwrap();
            let per_slice = CacheGeom {
                size: llc.size / u64::from(cfg.llc_slices),
                ..llc
            };
            let buf = llc_slice_probe(env, per_slice, cfg.llc_slices.into(), 2, 100, 16, 4096);
            *found2.lock() = buf.len();
        });
        let _ = b.run();
        assert_eq!(*found.lock(), 16, "eviction set must reach full ways");
    }
}
