//! Criterion benchmarks of kernel paths: syscall dispatch, the domain
//! switch, and kernel cloning.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tp_core::kernel::{Kernel, Syscall};
use tp_core::objects::{CapObject, Capability, Rights};
use tp_core::ProtectionConfig;
use tp_sim::{ColorSet, Machine, Platform};

fn setup(prot: ProtectionConfig) -> (Machine, Kernel) {
    let cfg = Platform::Haswell.config();
    let m = Machine::new(cfg, 3);
    let k = Kernel::new(cfg, prot, 16_384, u64::MAX / 4);
    (m, k)
}

fn bench_syscall(c: &mut Criterion) {
    let (mut m, mut k) = setup(ProtectionConfig::raw());
    let t = k.create_thread(k.boot_domain, 0, 100).unwrap();
    let n = k.create_notification(k.boot_domain).unwrap();
    let cap = k.grant_cap(
        t,
        Capability {
            obj: CapObject::Notification(n),
            rights: Rights::all(),
        },
    );
    k.cores[0].cur = Some(t);
    c.bench_function("syscall_signal", |b| {
        b.iter(|| black_box(k.syscall(&mut m, 0, t, Syscall::Signal { cap })));
    });
}

fn bench_domain_switch(c: &mut Criterion) {
    let mut g = c.benchmark_group("domain_switch");
    for (name, prot) in [
        ("raw", ProtectionConfig::raw()),
        ("protected", ProtectionConfig::protected()),
    ] {
        g.bench_function(name, |b| {
            let (mut m, mut k) = setup(prot);
            let d0 = k.create_domain(ColorSet::range(0, 4), 1024).unwrap();
            let d1 = k.create_domain(ColorSet::range(4, 8), 1024).unwrap();
            if prot.clone_kernel {
                k.clone_kernel_for_domain(&mut m, 0, d0).unwrap();
                k.clone_kernel_for_domain(&mut m, 0, d1).unwrap();
            }
            let _t0 = k.create_thread(d0, 0, 100).unwrap();
            let _t1 = k.create_thread(d1, 0, 100).unwrap();
            b.iter(|| black_box(k.handle_tick(&mut m, 0)));
        });
    }
    g.finish();
}

fn bench_clone(c: &mut Criterion) {
    c.bench_function("kernel_clone_and_destroy", |b| {
        let (mut m, mut k) = setup(ProtectionConfig::protected());
        let d = k.create_domain(ColorSet::range(0, 4), 4096).unwrap();
        b.iter(|| {
            let img = k.clone_kernel_for_domain(&mut m, 0, d).unwrap();
            k.kernel_destroy(&mut m, 0, img).unwrap();
        });
    });
}

criterion_group!(benches, bench_syscall, bench_domain_switch, bench_clone);
criterion_main!(benches);
