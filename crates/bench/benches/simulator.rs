//! Criterion benchmarks of the hot simulator paths: these bound how fast
//! the channel experiments can run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tp_sim::{Asid, Machine, PAddr, Platform, VAddr};

fn bench_data_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine");
    g.bench_function("data_access_l1_hit", |b| {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        m.data_access(0, Asid(1), VAddr(0x1000), PAddr(0x1000), false, false);
        b.iter(|| black_box(m.data_access(0, Asid(1), VAddr(0x1000), PAddr(0x1000), false, false)));
    });
    g.bench_function("data_access_streaming", |b| {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(64);
            let a = 0x10_0000 + (i % (64 * 1024 * 1024));
            black_box(m.data_access(0, Asid(1), VAddr(a), PAddr(a), false, false))
        });
    });
    g.bench_function("branch_predicted", |b| {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        for _ in 0..32 {
            m.branch(0, VAddr(0x400), VAddr(0x800), true, true);
        }
        b.iter(|| black_box(m.branch(0, VAddr(0x400), VAddr(0x800), true, true)));
    });
    g.finish();
}

fn bench_flush(c: &mut Criterion) {
    let mut g = c.benchmark_group("flush");
    g.bench_function("wbinvd", |b| {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        b.iter(|| {
            for i in 0..256u64 {
                let a = 0x20_0000 + i * 64;
                m.data_access(0, Asid(1), VAddr(a), PAddr(a), true, false);
            }
            black_box(tp_sim::flush::wbinvd(&mut m, 0))
        });
    });
    g.bench_function("manual_l1d", |b| {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        b.iter(|| black_box(tp_sim::flush::manual_flush_l1d(&mut m, 0, PAddr(0x10_0000))));
    });
    g.finish();
}

criterion_group!(benches, bench_data_access, bench_flush);
criterion_main!(benches);
