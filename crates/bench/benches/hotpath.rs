//! Criterion micro-benchmarks of the sweep-granularity hot path: the
//! scalar timed access, a 4 KiB probe sweep through `access_batch`, and
//! the flat page-table lookup. These are the loops that bound how fast a
//! probe-heavy campaign cell can run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tp_sim::mem::Mapping;
use tp_sim::{Asid, BatchOut, Machine, PAddr, PhysMap, Platform, VAddr, FRAME_SIZE};

fn bench_timed_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.bench_function("timed_access_l1_hit", |b| {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        m.data_access(0, Asid(1), VAddr(0x1000), PAddr(0x1000), false, false);
        b.iter(|| black_box(m.data_access(0, Asid(1), VAddr(0x1000), PAddr(0x1000), false, false)));
    });
    g.bench_function("timed_access_l2_sweep", |b| {
        // A 64-line round-robin that always misses L1 but hits L2.
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        let stride = m.cfg.l1d.sets() * m.cfg.line; // same L1 set, distinct L2 sets
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 64;
            let a = 0x10_0000 + i * stride;
            black_box(m.data_access(0, Asid(1), VAddr(a), PAddr(a), false, false))
        });
    });
    g.finish();
}

fn bench_probe_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    // A 4 KiB probe sweep (64 lines × 64 B): the Mastik-style unit of work.
    g.bench_function("probe_sweep_4k_batch", |b| {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        let pas: Vec<PAddr> = (0..64).map(|i| PAddr(0x40_0000 + i * 64)).collect();
        let plan = m.plan_sweep(false, &pas);
        // Warm so the steady state is the L1-hit sweep a receiver sees.
        m.access_batch(0, Asid(1), &plan, false, false, &mut BatchOut::default());
        b.iter(|| {
            black_box(m.access_batch(0, Asid(1), &plan, false, false, &mut BatchOut::default()))
        });
    });
    g.bench_function("probe_sweep_4k_scalar", |b| {
        let mut m = Machine::new(Platform::Haswell.config(), 1);
        let pas: Vec<PAddr> = (0..64).map(|i| PAddr(0x40_0000 + i * 64)).collect();
        for &pa in &pas {
            m.data_access(0, Asid(1), VAddr(pa.0), pa, false, false);
        }
        b.iter(|| {
            let mut total = 0u64;
            for &pa in &pas {
                total += m.data_access(0, Asid(1), VAddr(pa.0), pa, false, false);
            }
            black_box(total)
        });
    });
    g.finish();
}

fn bench_translate(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.bench_function("physmap_translate", |b| {
        let mut pm = PhysMap::new(Asid(1));
        for vpn in 0..1024u64 {
            pm.map(
                0x10000 + vpn,
                Mapping {
                    pfn: 4096 + vpn,
                    global: false,
                    writable: true,
                },
            );
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1024;
            black_box(pm.translate(VAddr((0x10000 + i) * FRAME_SIZE + 8)))
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_timed_access,
    bench_probe_sweep,
    bench_translate
);
criterion_main!(benches);
