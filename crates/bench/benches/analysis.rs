//! Criterion benchmarks of the analysis toolchain: MI estimation dominates
//! the shuffle test (100 re-estimates per channel), so both the naive
//! reference oracle and the banded-convolution fast path are timed here,
//! plus the end-to-end shuffle test they feed.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use tp_analysis::kde::Kde;
use tp_analysis::{leakage_test, mutual_information, mutual_information_naive, Dataset, MiContext};

fn dataset(n: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(5);
    let mut d = Dataset::new(8);
    for _ in 0..n {
        let s = rng.gen_range(0..8);
        let o: f64 = rng.gen_range(0.0..100.0) + s as f64 * 10.0;
        d.push(s, o);
    }
    d
}

fn bench_mi(c: &mut Criterion) {
    let d = dataset(1_000);
    c.bench_function("mutual_information_1k", |b| {
        b.iter(|| black_box(mutual_information(&d)));
    });
    c.bench_function("mutual_information_naive_1k", |b| {
        b.iter(|| black_box(mutual_information_naive(&d)));
    });
}

fn bench_density(c: &mut Criterion) {
    let d = dataset(1_000);
    let samples = d.class(3);
    let (lo, hi) = (0.0, 180.0);
    let width = (hi - lo) / 256.0;
    let kde = Kde::fit(&samples, lo, hi, width);
    let grid: Vec<f64> = (0..256).map(|i| lo + (i as f64 + 0.5) * width).collect();
    let mut g = c.benchmark_group("kde_density_256");
    g.bench_function("naive_oracle", |b| {
        b.iter(|| black_box(kde.density_grid(&grid)));
    });
    g.bench_function("banded_convolution", |b| {
        b.iter(|| black_box(kde.density_grid_aligned(256)));
    });
    g.finish();
}

fn bench_shuffle(c: &mut Criterion) {
    let d = dataset(400);
    let mut g = c.benchmark_group("shuffle_test");
    g.sample_size(10);
    g.bench_function("leakage_test_400", |b| {
        b.iter(|| black_box(leakage_test(&d, 9)));
    });
    // One re-paired estimate through the shared context — the unit of work
    // each of the 100 shuffles performs.
    let ctx = MiContext::new(&d);
    let perm: Vec<usize> = (0..d.len()).rev().collect();
    g.bench_function("mi_shuffled_400", |b| {
        b.iter(|| black_box(ctx.mi_shuffled(&perm)));
    });
    g.finish();
}

criterion_group!(benches, bench_mi, bench_density, bench_shuffle);
criterion_main!(benches);
