//! Criterion benchmarks of the analysis toolchain: MI estimation dominates
//! the shuffle test (100 re-estimates per channel).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use tp_analysis::{leakage_test, mutual_information, Dataset};

fn dataset(n: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(5);
    let mut d = Dataset::new(8);
    for _ in 0..n {
        let s = rng.gen_range(0..8);
        let o: f64 = rng.gen_range(0.0..100.0) + s as f64 * 10.0;
        d.push(s, o);
    }
    d
}

fn bench_mi(c: &mut Criterion) {
    let d = dataset(1_000);
    c.bench_function("mutual_information_1k", |b| {
        b.iter(|| black_box(mutual_information(&d)));
    });
}

fn bench_shuffle(c: &mut Criterion) {
    let d = dataset(400);
    let mut g = c.benchmark_group("shuffle_test");
    g.sample_size(10);
    g.bench_function("leakage_test_400", |b| {
        b.iter(|| black_box(leakage_test(&d, 9)));
    });
    g.finish();
}

criterion_group!(benches, bench_mi, bench_shuffle);
criterion_main!(benches);
