//! The `cloud` tenant-consolidation scenario.
//!
//! The paper motivates time protection with the public-cloud setting:
//! many mutually distrusting tenants time-share cores, and any pair of
//! co-resident tenants is a potential covert/side-channel pair (§1, §2.1).
//! This scenario scales the two-domain harness up to that shape: hundreds
//! to thousands of tenant domains on one core under strict slots, an
//! open-loop request generator driving the ordinary tenants (exponential
//! arrivals, heavy-tailed Pareto service times — the classic datacenter
//! workload shape), and several *co-resident attacker pairs* embedded at
//! known rotation positions.
//!
//! Each pair is a sender/receiver L1-D prime&probe channel exactly like
//! the §5.3.2 harness: the victim dirties a symbol-dependent number of
//! cache sets during its slice, the adjacent attacker probes in the slice
//! that immediately follows. Observations from every pair are pooled into
//! one dataset, so the reported verdict is *aggregate* co-resident
//! leakage across the fleet, and the ordinary tenants double as realistic
//! cache noise between rotations.
//!
//! Alongside leakage, the scenario reports what the protection costs the
//! tenants: request throughput and sojourn-time percentiles (queueing +
//! service, in simulated time), so `raw` vs `protected` shows the
//! overhead side of the paper's trade-off on the same run.

use crate::util::samples;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tp_analysis::{leakage_test, Dataset};
use tp_attacks::harness::{pair_logs, ChannelOutcome};
use tp_attacks::probe::{l1_probe, ProbeBuf};
use tp_core::{
    EnvOutcome, ExecMode, ProtectionConfig, SimError, SystemBuilder, SystemSpec, UserEnv,
};
use tp_sim::{ColorSet, Platform};

/// Symbols the attacker pairs encode (8 ⇒ up to 3 bits per slice).
pub const CLOUD_SYMBOLS: usize = 8;

/// Pareto shape for tenant service times. α ≈ 1.3 is the heavy-tailed
/// regime measured for request sizes in datacenter traces: finite mean,
/// infinite variance, so p95 sojourn is dominated by rare huge requests.
const PARETO_ALPHA: f64 = 1.3;

/// Pareto scale (minimum service) in simulated cycles.
const PARETO_XM: f64 = 2_000.0;

/// Parameters of one cloud consolidation run.
#[derive(Debug, Clone, Copy)]
pub struct CloudSpec {
    /// Platform under test.
    pub platform: Platform,
    /// Protection configuration shared by the whole machine.
    pub prot: ProtectionConfig,
    /// Ordinary (non-attacker) tenant domains.
    pub tenants: usize,
    /// Co-resident attacker pairs embedded in the rotation.
    pub pairs: usize,
    /// Total pooled attacker observations across all pairs.
    pub samples: usize,
    /// Time-slice length in microseconds.
    pub slice_us: f64,
    /// RNG seed (symbol sequences, arrivals, service times, sim noise).
    pub seed: u64,
    /// Executor running the environments (worker count must be invisible
    /// in every reported number; tests pin different counts here).
    pub executor: ExecMode,
}

impl CloudSpec {
    /// A spec with scenario defaults: 4 embedded pairs, `samples(120)`
    /// pooled observations, 50 µs slices.
    #[must_use]
    pub fn new(platform: Platform, prot: ProtectionConfig, tenants: usize) -> Self {
        CloudSpec {
            platform,
            prot,
            tenants,
            pairs: 4,
            samples: samples(120),
            slice_us: 50.0,
            seed: 0x5EED,
            executor: ExecMode::default(),
        }
    }

    /// Override the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the executor.
    #[must_use]
    pub fn with_executor(mut self, mode: ExecMode) -> Self {
        self.executor = mode;
        self
    }

    /// Total domains in the rotation (pairs contribute two each).
    #[must_use]
    pub fn domains(&self) -> usize {
        2 * self.pairs + self.tenants
    }

    /// Observations each pair's receiver collects.
    #[must_use]
    pub fn per_pair(&self) -> usize {
        self.samples.div_ceil(self.pairs.max(1))
    }
}

/// Outcome of one cloud run: aggregate leakage plus tenant-side cost.
#[derive(Debug, Clone)]
pub struct CloudReport {
    /// Pooled co-resident channel measurement and §5.1 verdict.
    pub outcome: ChannelOutcome,
    /// Ordinary tenants simulated.
    pub tenants: usize,
    /// Tenant environments that died in isolation during the run (the
    /// fleet keeps running; throughput and sojourn stats cover the
    /// survivors only).
    pub failed_tenants: usize,
    /// Requests completed across all tenants.
    pub completed: usize,
    /// Simulated wall time of the run, seconds.
    pub sim_seconds: f64,
    /// Completed requests per simulated second, across the fleet.
    pub throughput_rps: f64,
    /// Median request sojourn time (queueing + service), microseconds.
    pub p50_us: f64,
    /// 95th-percentile sojourn time, microseconds.
    pub p95_us: f64,
}

impl CloudReport {
    /// One-line summary for tables and logs.
    #[must_use]
    pub fn summary(&self) -> String {
        let dead = if self.failed_tenants > 0 {
            format!(" ({} dead, stats over survivors)", self.failed_tenants)
        } else {
            String::new()
        };
        format!(
            "{} tenants{dead} | {:.0} req/s, p50 {:.0} us, p95 {:.0} us | {}",
            self.tenants,
            self.throughput_rps,
            self.p50_us,
            self.p95_us,
            self.outcome.summary()
        )
    }
}

/// Per-domain memory pool for an attacker or victim (kernel clone + L1
/// probe buffer + slack).
const PAIR_FRAMES: usize = 96;

/// Per-domain memory pool for an ordinary tenant (kernel clone + a couple
/// of mapped pages).
const TENANT_FRAMES: usize = 64;

/// Run the scenario.
///
/// Rotation order is `[V0, A0, V1, A1, …, T0, T1, …]`: each attacker's
/// probe slice immediately follows its victim's encode slice, exactly the
/// adjacency a co-resident pair gets under round-robin consolidation.
/// Everything downstream of the seed is deterministic, including host
/// worker count (the cooperative executor serializes on the window
/// token), so verdicts are stable across `TP_THREADS`.
///
/// # Errors
/// Returns the [`SimError`] of the first simulated program that fails.
#[allow(clippy::too_many_lines)]
pub fn run_cloud(spec: &CloudSpec) -> Result<CloudReport, SimError> {
    let cfg = spec.platform.config();
    let n_colors = cfg.partition_colors();
    let n_domains = spec.domains();
    let per_pair = spec.per_pair();

    // Generous cycle budget: every receiver needs one observation per
    // rotation, plus setup/sync rotations, plus worst-case switch work.
    let slice_cycles = cfg.us_to_cycles(spec.slice_us);
    let rotations = (per_pair + 8) as u64;
    let max_cycles = rotations * n_domains as u64 * (2 * slice_cycles + 3_000_000);

    // Enough frames that every colour class can feed its share of
    // domains, with headroom for the boot image and allocator slack.
    let demand = (2 * spec.pairs * PAIR_FRAMES + spec.tenants * TENANT_FRAMES) as u64;
    let ram_frames = (2 * demand + 16_384).max(tp_core::system::DEFAULT_RAM_FRAMES);

    let sys = SystemSpec {
        ram_frames,
        max_cycles,
        executor: spec.executor,
        ..SystemSpec::new(spec.platform, spec.prot)
    };
    let mut b = SystemBuilder::from_spec(sys)
        .slice_us(spec.slice_us)
        .seed(spec.seed);

    // With colouring on, every domain gets one explicit colour,
    // round-robin — a victim and its attacker land in different classes,
    // which is exactly the partitioning the mechanism promises. Without
    // colouring the builder's `None` default (all colours) applies, so
    // `raw` tenants genuinely share cache sets.
    let mut color_cursor = 0u64;
    let mut next_domain = |b: &mut SystemBuilder, frames: usize| {
        let colors = if spec.prot.color_userland {
            let c = color_cursor % n_colors;
            color_cursor += 1;
            Some(ColorSet::range(c, c + 1))
        } else {
            None
        };
        b.domain_sized(colors, frames)
    };

    type Log = Arc<Mutex<Vec<(u64, usize)>>>;
    type Obs = Arc<Mutex<Vec<(u64, f64)>>>;
    let mut sender_logs: Vec<Log> = Vec::new();
    let mut receiver_logs: Vec<Obs> = Vec::new();

    for k in 0..spec.pairs {
        let d_victim = next_domain(&mut b, PAIR_FRAMES);
        let d_attacker = next_domain(&mut b, PAIR_FRAMES);

        let slog: Log = Arc::new(Mutex::new(Vec::new()));
        let rlog: Obs = Arc::new(Mutex::new(Vec::new()));
        sender_logs.push(Arc::clone(&slog));
        receiver_logs.push(Arc::clone(&rlog));

        // Victim: encodes a seeded symbol stream into L1-D occupancy,
        // one symbol per slice (identical to the §5.3.2 harness sender).
        let seed = spec.seed ^ 0xABCD_EF01 ^ (k as u64).wrapping_mul(0x9E37_79B9);
        let mut sbuf: Option<ProbeBuf> = None;
        b.spawn_daemon(d_victim, 0, 100, move |env: &mut UserEnv| {
            let mut rng = StdRng::seed_from_u64(seed);
            loop {
                let symbol = rng.gen_range(0..CLOUD_SYMBOLS);
                let t0 = env.now();
                slog.lock().push((t0, symbol));
                let geom = env.platform().l1d;
                let buf = sbuf.get_or_insert_with(|| l1_probe(env, geom));
                let sets = geom.sets() as usize;
                let ways = geom.ways as usize;
                let prefix_sets = sets * symbol / CLOUD_SYMBOLS;
                buf.dirty_prefix(env, prefix_sets * ways);
                let _ = env.wait_preempt();
            }
        });

        // Attacker: primary; the run ends once every pair has its quota.
        b.spawn(d_attacker, 0, 100, move |env: &mut UserEnv| {
            let geom = env.platform().l1d;
            let buf = l1_probe(env, geom);
            let _ = buf.probe(env); // warm the backing levels
            let _ = env.wait_preempt(); // sync to a slice boundary
            for _ in 0..per_pair + 1 {
                let t0 = env.now();
                let lat = buf.probe(env) as f64;
                rlog.lock().push((t0, lat));
                let _ = env.wait_preempt();
            }
        });
    }

    // Tenant-side request accounting: (completion cycle, sojourn cycles).
    let sojourns: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

    // Mean inter-arrival per tenant: ~4 requests per rotation, so the
    // fleet stays busy without saturating (Pareto mean is ~4.3·x_m).
    let mean_gap = (n_domains as u64 * slice_cycles / 4).max(1) as f64;

    for i in 0..spec.tenants {
        let d = next_domain(&mut b, TENANT_FRAMES);
        let log = Arc::clone(&sojourns);
        let seed = spec.seed ^ 0xC10D_0000 ^ (i as u64).wrapping_mul(0x6A09_E667);
        b.spawn_daemon(d, 0, 100, move |env: &mut UserEnv| {
            let mut rng = StdRng::seed_from_u64(seed);
            let exp = |rng: &mut StdRng, mean: f64| -> u64 {
                let u: f64 = rng.gen();
                (-mean * (1.0 - u).max(f64::MIN_POSITIVE).ln()) as u64
            };
            let pareto = |rng: &mut StdRng| -> u64 {
                let u: f64 = rng.gen();
                (PARETO_XM * (1.0 - u).max(f64::MIN_POSITIVE).powf(-1.0 / PARETO_ALPHA)) as u64
            };
            // A couple of mapped pages give each request real memory
            // traffic, so tenants act as cache noise between rotations.
            let (va, _) = env.map_pages(2);
            let mut next_arrival = env.now() + exp(&mut rng, mean_gap);
            let mut backlog: std::collections::VecDeque<u64> = Default::default();
            loop {
                let now = env.now();
                while next_arrival <= now {
                    backlog.push_back(next_arrival);
                    next_arrival += exp(&mut rng, mean_gap).max(1);
                }
                match backlog.pop_front() {
                    Some(arrived) => {
                        env.load(va);
                        env.compute(pareto(&mut rng));
                        // The sojourn log is shared by every tenant: read the
                        // clock *before* locking it, because env ops block
                        // until this tenant is scheduled and holding the lock
                        // across that wait would deadlock the fleet.
                        let done = env.now();
                        log.lock().push(done - arrived);
                    }
                    None => {
                        // Idle until the next slice; arrivals accrue in
                        // simulated time regardless.
                        let _ = env.wait_preempt();
                    }
                }
            }
        });
    }

    let report = b.try_run()?;

    // Per-environment isolation: a tenant daemon that died (panic, stack
    // smash) is counted here, not propagated — the fleet completed and
    // every stat below covers the survivors.
    let failed_tenants = report
        .env_outcomes
        .iter()
        .filter(|o| matches!(o, EnvOutcome::Failed { .. }))
        .count();

    // Pool every pair's paired observations into one aggregate dataset.
    let mut dataset = Dataset::new(CLOUD_SYMBOLS);
    for (slog, rlog) in sender_logs.iter().zip(&receiver_logs) {
        let d = pair_logs(CLOUD_SYMBOLS, &slog.lock(), &rlog.lock());
        for (&s, &o) in d.inputs().iter().zip(d.outputs()) {
            dataset.push(s, o);
        }
    }
    let verdict = leakage_test(&dataset, spec.seed ^ 0x0F0F_F0F0);
    let outcome = ChannelOutcome { dataset, verdict };

    let mut sj: Vec<u64> = sojourns.lock().clone();
    sj.sort_unstable();
    let completed = sj.len();
    let sim_seconds = cfg.cycles_to_us(report.cycles[0]) / 1e6;
    let pct = |sorted: &[u64], p: f64| -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
        cfg.cycles_to_us(sorted[idx])
    };
    Ok(CloudReport {
        outcome,
        tenants: spec.tenants,
        failed_tenants,
        completed,
        sim_seconds,
        throughput_rps: if sim_seconds > 0.0 {
            completed as f64 / sim_seconds
        } else {
            0.0
        },
        p50_us: pct(&sj, 50.0),
        p95_us: pct(&sj, 95.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_geometry() {
        let s = CloudSpec::new(Platform::Haswell, ProtectionConfig::raw(), 96);
        assert_eq!(s.domains(), 96 + 8);
        assert!(s.per_pair() * s.pairs >= s.samples);
    }

    #[test]
    fn small_cloud_raw_leaks_and_protected_closes() {
        let mut spec = CloudSpec::new(Platform::Haswell, ProtectionConfig::raw(), 24);
        spec.samples = 60;
        let raw = run_cloud(&spec).expect("raw cloud run");
        assert!(raw.completed > 0, "no tenant requests completed");
        assert!(
            raw.outcome.verdict.leaks,
            "raw cloud should leak: {}",
            raw.summary()
        );

        let mut spec = CloudSpec::new(Platform::Haswell, ProtectionConfig::protected(), 24);
        spec.samples = 60;
        let prot = run_cloud(&spec).expect("protected cloud run");
        assert!(
            !prot.outcome.verdict.leaks,
            "protected cloud should be closed: {}",
            prot.summary()
        );
        assert!(prot.completed > 0, "no tenant requests completed");
    }

    #[test]
    fn dead_tenant_leaves_survivor_stats_standing() {
        use tp_core::fault;
        let run = |armed| {
            let mut spec = CloudSpec::new(Platform::Sabre, ProtectionConfig::raw(), 12);
            spec.samples = 24;
            fault::arm(armed);
            let r = run_cloud(&spec);
            fault::arm(None);
            r.expect("cloud run completes despite the dead tenant")
        };
        let clean = run(None);
        assert_eq!(clean.failed_tenants, 0);

        // The ordinal is calibrated so the panic lands on a daemon tenant
        // (a primary's death would abort the run and fail this test).
        let faulted = run(Some(tp_core::FaultKind::EnvPanic { at: 50 }));
        assert_eq!(faulted.failed_tenants, 1, "{}", faulted.summary());
        assert!(
            faulted.completed > 0,
            "survivors keep completing requests: {}",
            faulted.summary()
        );
        assert!(faulted.summary().contains("stats over survivors"));
    }

    #[test]
    fn tenant_accounting_is_deterministic() {
        let run = || {
            let mut spec = CloudSpec::new(Platform::Sabre, ProtectionConfig::raw(), 12);
            spec.samples = 24;
            run_cloud(&spec).expect("cloud run")
        };
        let (a, b) = (run(), run());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.outcome.dataset.outputs(), b.outcome.dataset.outputs());
        assert!((a.p95_us - b.p95_us).abs() < 1e-12);
    }
}
