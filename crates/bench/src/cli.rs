//! Shared command-line parsing for the tp-bench binaries.
//!
//! The `campaign`, `chaos` and `replay` drivers each grew their own
//! hand-rolled flag loop; this module centralizes the surface they share —
//! `--platform`, `--seed`, `--json` — together with the helpers those
//! loops duplicate (value-taking flags, number parsing, the platform-list
//! grammar) and one exit-code convention: a bad flag is reported on
//! stderr and the process exits with status 2.
//!
//! The parsing core is pure (`Result`-returning, fed from any iterator of
//! strings) so it is unit-testable; only [`parse_or_exit`] touches the
//! process.

use std::collections::VecDeque;
use tp_sim::Platform;

/// A stream of command-line arguments with flag-value helpers.
pub struct ArgStream {
    args: VecDeque<String>,
}

impl ArgStream {
    /// The process's arguments, program name stripped.
    #[must_use]
    pub fn from_env() -> Self {
        Self::new(std::env::args().skip(1))
    }

    /// A stream over explicit arguments (tests).
    pub fn new(args: impl IntoIterator<Item = impl Into<String>>) -> Self {
        ArgStream {
            args: args.into_iter().map(Into::into).collect(),
        }
    }

    /// The next argument, if any.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<String> {
        self.args.pop_front()
    }

    /// The value of a flag that requires one.
    ///
    /// # Errors
    /// When the stream is exhausted.
    pub fn value(&mut self, flag: &str) -> Result<String, String> {
        self.next().ok_or_else(|| format!("{flag} needs a value"))
    }
}

/// Parse an unsigned integer flag value.
///
/// # Errors
/// When `s` is not a `u64`.
pub fn parse_u64(flag: &str, s: &str) -> Result<u64, String> {
    s.parse()
        .map_err(|_| format!("{flag} needs a number, got {s:?}"))
}

/// Parse a `--platform` value: `all`, or a comma-separated list of
/// registered platform keys.
///
/// # Errors
/// When a key is not in the platform registry.
pub fn platform_list(spec: &str) -> Result<Vec<Platform>, String> {
    if spec == "all" {
        return Ok(Platform::ALL.to_vec());
    }
    spec.split(',')
        .map(|key| {
            Platform::from_key(key).ok_or_else(|| {
                let known: Vec<_> = Platform::ALL.iter().map(|p| p.key()).collect();
                format!("unknown platform {key:?}; known: {}, all", known.join(", "))
            })
        })
        .collect()
}

/// The flags shared across tp-bench binaries. Each binary enables the
/// subset it honours; [`Common::accept`] consumes an enabled flag and
/// leaves everything else to the binary's own match.
pub struct Common {
    /// Platforms selected by `--platform` (defaults to the full registry).
    pub platforms: Vec<Platform>,
    /// Whether `--platform` appeared explicitly.
    pub platforms_given: bool,
    /// Seed from `--seed` (present iff the binary enabled it).
    pub seed: Option<u64>,
    /// Output path from `--json` (enabled binaries only).
    pub json: Option<String>,
    accept_seed: bool,
    accept_json: bool,
}

impl Common {
    /// Platform selection only.
    #[must_use]
    pub fn new() -> Self {
        Common {
            platforms: Platform::ALL.to_vec(),
            platforms_given: false,
            seed: None,
            json: None,
            accept_seed: false,
            accept_json: false,
        }
    }

    /// Also honour `--seed`, with the given default.
    #[must_use]
    pub fn with_seed(mut self, default: u64) -> Self {
        self.seed = Some(default);
        self.accept_seed = true;
        self
    }

    /// Also honour `--json PATH`.
    #[must_use]
    pub fn with_json(mut self) -> Self {
        self.accept_json = true;
        self
    }

    /// Try to consume `flag` as one of the enabled common flags. Returns
    /// `Ok(true)` when consumed, `Ok(false)` when the flag is not ours.
    ///
    /// # Errors
    /// When the flag is ours but its value is missing or malformed.
    pub fn accept(&mut self, flag: &str, it: &mut ArgStream) -> Result<bool, String> {
        match flag {
            "--platform" => {
                let list = platform_list(&it.value("--platform")?)?;
                if self.platforms_given {
                    self.platforms.extend(list);
                } else {
                    self.platforms = list;
                    self.platforms_given = true;
                }
                Ok(true)
            }
            "--seed" if self.accept_seed => {
                self.seed = Some(parse_u64("--seed", &it.value("--seed")?)?);
                Ok(true)
            }
            "--json" if self.accept_json => {
                self.json = Some(it.value("--json")?);
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

impl Default for Common {
    fn default() -> Self {
        Self::new()
    }
}

/// Run a parse function; on error, report `bin: error` on stderr and exit
/// the process with status 2 (the shared bad-flag convention).
pub fn parse_or_exit<T>(bin: &str, parse: impl FnOnce() -> Result<T, String>) -> T {
    match parse() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{bin}: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_list_grammar() {
        assert_eq!(platform_list("all").unwrap(), Platform::ALL.to_vec());
        let two = platform_list("haswell,sabre").unwrap();
        assert_eq!(two.len(), 2);
        let err = platform_list("z80").unwrap_err();
        assert!(err.contains("unknown platform"), "{err}");
    }

    #[test]
    fn common_consumes_enabled_flags_only() {
        let mut it = ArgStream::new(["--platform", "haswell", "--seed", "7", "--json", "o.json"]);
        let mut c = Common::new().with_seed(1).with_json();
        while let Some(flag) = it.next() {
            assert!(c.accept(&flag, &mut it).unwrap(), "{flag} not consumed");
        }
        assert!(c.platforms_given);
        assert_eq!(c.platforms.len(), 1);
        assert_eq!(c.seed, Some(7));
        assert_eq!(c.json.as_deref(), Some("o.json"));

        // A binary that did not enable --seed leaves it to its own match.
        let mut it = ArgStream::new(["--seed", "7"]);
        let mut c = Common::new();
        assert!(!c.accept("--seed", &mut it).unwrap());
    }

    #[test]
    fn missing_values_are_errors() {
        let mut it = ArgStream::new(Vec::<String>::new());
        let mut c = Common::new().with_seed(0);
        assert!(c.accept("--platform", &mut it).is_err());
        assert!(parse_u64("--ops", "ten").is_err());
    }

    #[test]
    fn repeated_platform_flags_accumulate() {
        let mut it = ArgStream::new(["--platform", "haswell", "--platform", "sabre"]);
        let mut c = Common::new();
        while let Some(flag) = it.next() {
            assert!(c.accept(&flag, &mut it).unwrap());
        }
        assert_eq!(c.platforms.len(), 2);
    }
}
