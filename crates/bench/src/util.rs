//! Shared harness utilities: effort scaling, parallelism and table
//! formatting.
//!
//! Two environment variables tune every experiment binary:
//!
//! * `TP_SAMPLES` — scale factor for sample counts (default `1.0`; e.g.
//!   `0.25` for a quick pass, `4` for higher statistical resolution);
//! * `TP_THREADS` — worker-thread count for the shuffle test and for
//!   `reproduce_all`'s experiment fan-out (default: the machine's
//!   available parallelism; `1` forces a fully sequential run). Thread
//!   count affects wall-clock time only — results are bit-identical for
//!   every value, because all per-work-item RNG seeds are derived from
//!   the master seed.

/// Parse a `TP_SAMPLES` value. `None`/empty means "unset" (default 1.0);
/// anything set but not a positive finite number is a hard error naming
/// the variable — a typo must never silently run at the default scale and
/// then fail the golden gate's `tp_samples` check (or worse, pass it).
///
/// # Errors
/// A human-readable message naming `TP_SAMPLES` and the rejected value.
pub fn parse_effort(raw: Option<&str>) -> Result<f64, String> {
    let Some(raw) = raw else { return Ok(1.0) };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(1.0);
    }
    match trimmed.parse::<f64>() {
        Ok(v) if v > 0.0 && v.is_finite() => Ok(v),
        _ => Err(format!(
            "TP_SAMPLES: `{raw}` is not a positive number (expected e.g. 0.25, 1 or 4)"
        )),
    }
}

/// Scale factor for sample counts, from the `TP_SAMPLES` environment
/// variable (default 1.0). Exits with status 2 on a malformed value,
/// naming the variable — same contract as `TP_FAULT`.
#[must_use]
pub fn effort() -> f64 {
    match parse_effort(std::env::var("TP_SAMPLES").ok().as_deref()) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

/// `base` samples scaled by the effort factor (minimum 40).
#[must_use]
pub fn samples(base: usize) -> usize {
    ((base as f64 * effort()) as usize).max(40)
}

/// The resolved worker-thread count (the `TP_THREADS` environment
/// variable, defaulting to available parallelism). Reported in
/// `BENCH.json` so perf numbers can be compared like-for-like.
#[must_use]
pub fn threads() -> usize {
    rayon::current_num_threads()
}

/// A simple fixed-width text table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = width[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i < cols {
                    width[i] = width[i].max(c.len());
                }
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>w$}", c, w = width[i.min(width.len() - 1)]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
        }
        out
    }
}

/// Format a millibit value like the paper (bold leaks are marked `*`).
#[must_use]
pub fn fmt_mb(m_mb: f64, leaks: bool) -> String {
    if leaks {
        format!("{m_mb:.1}*")
    } else {
        format!("{m_mb:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with(" 1"));
    }

    #[test]
    fn effort_default_is_one() {
        // (Cannot safely mutate env in tests; just check the default path.)
        assert!(samples(100) >= 40);
    }

    #[test]
    fn effort_parses_or_errors_naming_the_variable() {
        assert_eq!(parse_effort(None), Ok(1.0));
        assert_eq!(parse_effort(Some("")), Ok(1.0));
        assert_eq!(parse_effort(Some("  ")), Ok(1.0));
        assert_eq!(parse_effort(Some("0.25")), Ok(0.25));
        assert_eq!(parse_effort(Some(" 4 ")), Ok(4.0));
        for bad in ["garbage", "0", "-1", "1.5x", "NaN", "inf"] {
            let err = parse_effort(Some(bad)).unwrap_err();
            assert!(err.contains("TP_SAMPLES"), "{err}");
            assert!(err.contains(bad), "{err}");
        }
    }

    #[test]
    fn leak_marker() {
        assert_eq!(fmt_mb(12.34, true), "12.3*");
        assert_eq!(fmt_mb(0.5, false), "0.5");
    }
}
