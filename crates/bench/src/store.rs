//! The durable artifact store: crash-consistent writes, the per-cell
//! campaign journal, and the advisory campaign lock.
//!
//! Every artifact the harness emits (`BENCH.json`, `BENCH-campaign.json`,
//! `campaign-results.json`, `goldens/verdicts.json`, the quarantine
//! ledger) used to be a bare `std::fs::write` — a SIGKILL or power loss
//! mid-write tore the file and discarded the whole run. This module makes
//! the artifacts durable and the campaign *resumable*:
//!
//! * [`write_atomic`] writes payload + a self-describing checksum trailer
//!   to a temp file and renames it into place, rotating the previous good
//!   version to `.bak`; [`read_artifact`] verifies the trailer (FNV-1a
//!   with the same SplitMix64 finalizer as [`tp_core::StateHasher`]) and
//!   falls back to `.bak` when the primary is torn or rotted.
//! * [`Journal`] is an append-only JSON-lines file
//!   (`goldens/campaign.journal`) holding one checksummed record per
//!   completed campaign cell, flushed as each cell finishes. `campaign
//!   --resume` replays it — verifying every record, truncating at the
//!   first torn one — and skips already-completed cells, so an
//!   interrupted campaign finishes without re-running finished work.
//! * [`CampaignLock`] is an advisory lock file next to the journal so two
//!   concurrent campaigns can't interleave appends into one journal.
//! * [`resume_counters`] accounts for all of the above in the `resume`
//!   object of `BENCH-campaign.json`, which CI gates to all-zero on a
//!   clean (uninterrupted, unlocked-against) run.
//!
//! Records are keyed on (experiment, platform, platform-config hash) per
//! record plus (schema, `TP_SAMPLES`, vote-seed base, code version) in the
//! journal header: any mismatch invalidates the cache rather than serving
//! stale results.

use crate::campaign::ChannelResult;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use tp_core::StateHasher;
use tp_sim::Platform;

/// Journal/trailer format version; bump to invalidate every cached cell.
pub const STORE_SCHEMA: u32 = 1;

/// FNV-1a over `bytes` with the SplitMix64 finalizer — byte-compatible
/// with [`tp_core::StateHasher`], the hash already trusted for kernel
/// state equality in the replay plane.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = StateHasher::new();
    for &b in bytes {
        h.byte(b);
    }
    h.finish()
}

// ---------------------------------------------------------------- counters

static CELLS_SKIPPED: AtomicU64 = AtomicU64::new(0);
static RECORDS_RECOVERED: AtomicU64 = AtomicU64::new(0);
static RECORDS_TRUNCATED: AtomicU64 = AtomicU64::new(0);
static LOCK_WAITS: AtomicU64 = AtomicU64::new(0);

/// Resume/durability accounting, serialised into `BENCH-campaign.json` as
/// the `resume` object. A clean (non-resumed, uncontended) campaign
/// reports zeroes everywhere and CI gates on exactly that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResumeCounters {
    /// Cells skipped because a verified journal record already covers them.
    pub cells_skipped: u64,
    /// Journal records that verified and were replayed.
    pub records_recovered: u64,
    /// Journal records dropped at or after the first torn/rotted one.
    pub records_truncated: u64,
    /// Times the advisory campaign lock was held by a live process and had
    /// to be waited for.
    pub lock_waits: u64,
}

/// Snapshot the resume counters.
#[must_use]
pub fn resume_counters() -> ResumeCounters {
    ResumeCounters {
        cells_skipped: CELLS_SKIPPED.load(Ordering::Relaxed),
        records_recovered: RECORDS_RECOVERED.load(Ordering::Relaxed),
        records_truncated: RECORDS_TRUNCATED.load(Ordering::Relaxed),
        lock_waits: LOCK_WAITS.load(Ordering::Relaxed),
    }
}

/// Record that one scheduled cell was served from the journal.
pub fn note_cell_skipped() {
    CELLS_SKIPPED.fetch_add(1, Ordering::Relaxed);
}

/// Fold one journal load's accounting into the global counters (used for
/// shard journals, which are loaded read-only rather than resumed).
pub fn note_load(report: &LoadReport) {
    RECORDS_RECOVERED.fetch_add(report.recovered, Ordering::Relaxed);
    RECORDS_TRUNCATED.fetch_add(report.truncated, Ordering::Relaxed);
}

// ------------------------------------------------------- checksum trailer

/// Start of the trailer line appended to every artifact.
const TRAILER_TAG: &str = "{\"tp_store\": ";

fn trailer_line(payload: &str) -> String {
    format!(
        "{{\"tp_store\": {{\"schema\": {STORE_SCHEMA}, \"algo\": \"fnv1a-sm64\", \"len\": {}, \"sum\": \"{:016x}\"}}}}\n",
        payload.len(),
        fnv64(payload.as_bytes()),
    )
}

/// Split `text` into (payload, trailer claims) if its last line is a
/// `tp_store` trailer. `None` when there is no trailer at all.
fn split_trailer(text: &str) -> Option<(&str, u64, usize)> {
    let idx = text.rfind(TRAILER_TAG)?;
    if idx > 0 && text.as_bytes()[idx - 1] != b'\n' {
        return None;
    }
    let trailer = &text[idx..];
    // The trailer must be the final line (plus at most a trailing newline).
    if trailer.trim_end().contains('\n') {
        return None;
    }
    let sum = u64::from_str_radix(str_field(trailer, "sum")?, 16).ok()?;
    let len = num_field(trailer, "len")? as usize;
    Some((&text[..idx], sum, len))
}

/// How [`read_artifact`] authenticated the bytes it returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// The primary file carried a trailer and verified.
    Checksummed,
    /// The primary file has no trailer (written before this store existed,
    /// or hand-edited); returned as-is.
    Unchecksummed,
    /// The primary was torn or rotted; the verified `.bak` was served.
    RestoredFromBak,
}

enum FileState {
    Good(String),
    Legacy(String),
    Bad(String),
}

fn classify(path: &Path) -> Result<FileState, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    match split_trailer(&text) {
        // A trailer tag that doesn't parse as a complete final line means
        // the file was torn mid-trailer — that's damage, not a legacy file.
        None if text.contains(TRAILER_TAG) => Ok(FileState::Bad(format!(
            "{}: torn or unparseable checksum trailer",
            path.display()
        ))),
        None => Ok(FileState::Legacy(text)),
        Some((payload, sum, len)) => {
            if payload.len() == len && fnv64(payload.as_bytes()) == sum {
                Ok(FileState::Good(payload.to_string()))
            } else {
                Ok(FileState::Bad(format!(
                    "{}: checksum trailer mismatch (trailer claims len {len} sum {sum:016x}, \
                     payload has len {} sum {:016x})",
                    path.display(),
                    payload.len(),
                    fnv64(payload.as_bytes()),
                )))
            }
        }
    }
}

/// The `.bak` sibling of `path`.
#[must_use]
pub fn bak_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map_or_else(Default::default, |n| n.to_os_string());
    name.push(".bak");
    path.with_file_name(name)
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map_or_else(Default::default, |n| n.to_os_string());
    name.push(".tmp");
    path.with_file_name(name)
}

/// Read an artifact, verifying its checksum trailer and falling back to
/// the `.bak` rotation when the primary is torn or rotted.
///
/// # Errors
/// When the primary is unreadable or corrupt and no verified `.bak`
/// exists either; the message names both files.
pub fn read_artifact(path: impl AsRef<Path>) -> Result<(String, Provenance), String> {
    let path = path.as_ref();
    let primary = match classify(path) {
        Ok(FileState::Good(p)) => return Ok((p, Provenance::Checksummed)),
        Ok(FileState::Legacy(t)) => return Ok((t, Provenance::Unchecksummed)),
        Ok(FileState::Bad(why)) => why,
        Err(why) => why,
    };
    match classify(&bak_path(path)) {
        Ok(FileState::Good(p)) => Ok((p, Provenance::RestoredFromBak)),
        Ok(FileState::Legacy(_) | FileState::Bad(_)) | Err(_) => Err(format!(
            "{primary}; no verified .bak fallback at {}",
            bak_path(path).display()
        )),
    }
}

/// Write `payload` + checksum trailer atomically: temp file in the same
/// directory, `sync_all`, then rename over `path`. The previous version is
/// rotated to `.bak` first — but only when it verifies, so a torn primary
/// never clobbers a good backup.
///
/// # Errors
/// Propagates I/O errors from the temp write or the final rename.
pub fn write_atomic(path: impl AsRef<Path>, payload: &str) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    let tmp = tmp_path(path);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(payload.as_bytes())?;
        f.write_all(trailer_line(payload).as_bytes())?;
        f.sync_all()?;
    }
    if matches!(
        classify(path),
        Ok(FileState::Good(_) | FileState::Legacy(_))
    ) {
        let _ = fs::rename(path, bak_path(path));
    }
    fs::rename(&tmp, path)?;
    // Durability of the rename itself: sync the containing directory
    // (best-effort; not every filesystem supports opening a directory).
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

// ------------------------------------------------------- field extraction
// The journal is machine-written one record per line, same as the golden
// and bench files; a full JSON parser would be a dependency for no
// robustness gain (every line is additionally checksummed).

fn str_field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

fn num_field(line: &str, name: &str) -> Option<f64> {
    let tag = format!("\"{name}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn u64_field(line: &str, name: &str) -> Option<u64> {
    let tag = format!("\"{name}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn bool_field(line: &str, name: &str) -> Option<bool> {
    let tag = format!("\"{name}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

// --------------------------------------------------------- sealed records

/// Seal one record body into a checksummed journal line.
fn seal(body: &str) -> String {
    format!(
        "{{\"fnv\": \"{:016x}\", \"record\": {body}}}\n",
        fnv64(body.as_bytes())
    )
}

/// Verify one journal line and return the record body. `None` when the
/// line is torn, rotted or not a sealed record at all.
fn unseal(line: &str) -> Option<&str> {
    const PREFIX: &str = "{\"fnv\": \"";
    const MID: &str = "\", \"record\": ";
    let rest = line.strip_prefix(PREFIX)?;
    let sum = u64::from_str_radix(rest.get(..16)?, 16).ok()?;
    let body = rest.get(16..)?.strip_prefix(MID)?.strip_suffix('}')?;
    (fnv64(body.as_bytes()) == sum).then_some(body)
}

/// The journal header: the run parameters every cached cell is keyed on.
/// A journal whose header differs from the current run's in any field is
/// discarded wholesale — stale caches recompute, never serve.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalHeader {
    /// Journal format version ([`STORE_SCHEMA`]).
    pub schema: u32,
    /// The `TP_SAMPLES` effort scale the cells ran at.
    pub tp_samples: f64,
    /// The base vote seed (`campaign::VOTE_SEED_BASE`).
    pub seed: u64,
    /// Code version stamp; any crate-version bump invalidates the cache.
    pub code_version: String,
}

impl JournalHeader {
    /// The header for the current process's run parameters.
    #[must_use]
    pub fn current() -> Self {
        JournalHeader {
            schema: STORE_SCHEMA,
            tp_samples: crate::util::effort(),
            seed: crate::campaign::VOTE_SEED_BASE,
            code_version: code_version(),
        }
    }

    fn body(&self) -> String {
        format!(
            "{{\"kind\": \"header\", \"schema\": {}, \"tp_samples\": {}, \"seed\": {}, \"code_version\": \"{}\"}}",
            self.schema, self.tp_samples, self.seed, self.code_version,
        )
    }

    fn parse(body: &str) -> Option<Self> {
        if str_field(body, "kind") != Some("header") {
            return None;
        }
        Some(JournalHeader {
            schema: u64_field(body, "schema")? as u32,
            tp_samples: num_field(body, "tp_samples")?,
            seed: u64_field(body, "seed")?,
            code_version: str_field(body, "code_version")?.to_string(),
        })
    }
}

/// The code-version component of the journal key: the crate version plus
/// the store schema, so either bump invalidates every cached cell.
#[must_use]
pub fn code_version() -> String {
    format!("{}+store{STORE_SCHEMA}", env!("CARGO_PKG_VERSION"))
}

/// The platform-config component of the journal key: a fingerprint of the
/// full [`tp_sim::PlatformConfig`], so editing a platform's geometry
/// invalidates its cached cells but nobody else's.
#[must_use]
pub fn config_fingerprint(platform: Platform) -> u64 {
    fnv64(format!("{:?}", platform.config()).as_bytes())
}

/// One completed campaign cell, as journaled and replayed.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Experiment registry name.
    pub experiment: String,
    /// Platform key.
    pub platform: String,
    /// [`config_fingerprint`] of the platform at record time.
    pub config_fnv: u64,
    /// The cell's wall time, bit-exact (for byte-identical re-serialisation).
    pub seconds: f64,
    /// The cell's channel measurements.
    pub channels: Vec<ChannelResult>,
}

impl CellRecord {
    /// Capture a completed cell.
    #[must_use]
    pub fn new(
        experiment: &str,
        platform: Platform,
        seconds: f64,
        channels: &[ChannelResult],
    ) -> Self {
        CellRecord {
            experiment: experiment.to_string(),
            platform: platform.key().to_string(),
            config_fnv: config_fingerprint(platform),
            seconds,
            channels: channels.to_vec(),
        }
    }

    /// The (experiment, platform) identity of this record.
    #[must_use]
    pub fn key(&self) -> (String, String) {
        (self.experiment.clone(), self.platform.clone())
    }

    /// The record's one-line JSON body, as sealed into the journal.
    /// Carries every `f64` both human-readable and as raw bits
    /// (`*_bits`), so [`parse`](CellRecord::parse) round-trips bit-exactly
    /// and a replayed cell re-serialises byte-identically.
    #[must_use]
    pub fn body(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"kind\": \"cell\", \"experiment\": \"{}\", \"platform\": \"{}\", \"config_fnv\": \"{:016x}\", \"seconds_bits\": {}, \"seconds\": {:.3}, \"channels\": [",
            self.experiment,
            self.platform,
            self.config_fnv,
            self.seconds.to_bits(),
            self.seconds,
        );
        for (i, c) in self.channels.iter().enumerate() {
            let comma = if i + 1 < self.channels.len() {
                ", "
            } else {
                ""
            };
            let _ = write!(
                s,
                "{{\"channel\": \"{}\", \"mechanism\": \"{}\", \"metric\": \"{}\", \"value_bits\": {}, \"baseline_bits\": {}, \"value\": {:.3}, \"baseline\": {:.3}, \"leaks\": {}, \"samples\": {}}}{comma}",
                c.channel,
                c.mechanism,
                c.metric,
                c.value.to_bits(),
                c.baseline.to_bits(),
                c.value,
                c.baseline,
                c.leaks,
                c.samples,
            );
        }
        s.push_str("]}");
        s
    }

    /// Parse a record body written by [`body`](CellRecord::body). `None`
    /// when the body is damaged or not a cell record.
    #[must_use]
    pub fn parse(body: &str) -> Option<Self> {
        if str_field(body, "kind") != Some("cell") {
            return None;
        }
        let experiment = str_field(body, "experiment")?.to_string();
        let platform = str_field(body, "platform")?.to_string();
        let config_fnv = u64::from_str_radix(str_field(body, "config_fnv")?, 16).ok()?;
        let seconds = f64::from_bits(u64_field(body, "seconds_bits")?);
        let start = body.find("\"channels\": [")? + "\"channels\": [".len();
        let inner = body.get(start..)?.strip_suffix("]}")?;
        let mut channels = Vec::new();
        if !inner.is_empty() {
            let inner = inner.strip_prefix('{')?.strip_suffix('}')?;
            for part in inner.split("}, {") {
                channels.push(ChannelResult {
                    channel: leak_str(str_field(part, "channel")?),
                    mechanism: leak_str(str_field(part, "mechanism")?),
                    metric: leak_str(str_field(part, "metric")?),
                    value: f64::from_bits(u64_field(part, "value_bits")?),
                    baseline: f64::from_bits(u64_field(part, "baseline_bits")?),
                    leaks: bool_field(part, "leaks")?,
                    samples: u64_field(part, "samples")? as usize,
                });
            }
        }
        Some(CellRecord {
            experiment,
            platform,
            config_fnv,
            seconds,
            channels,
        })
    }
}

/// Intern a journal string as `&'static str` (the campaign result types
/// carry static names). The table dedups across resumes in one process so
/// repeated replays don't leak the same handful of identifiers twice.
fn leak_str(s: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock};
    static INTERN: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let mut set = INTERN
        .get_or_init(Mutex::default)
        .lock()
        .expect("intern table poisoned");
    if let Some(&hit) = set.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// What a journal load recovered, and what it had to drop.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    /// Verified records, in append order (first write of a key wins).
    pub records: Vec<CellRecord>,
    /// Records replayed (equals `records.len()`).
    pub recovered: u64,
    /// Lines dropped at or after the first torn/rotted record (or the whole
    /// journal, when its header doesn't match this run).
    pub truncated: u64,
    /// 0-based index (counting cell records) of the first damaged record,
    /// when any was dropped.
    pub first_damaged: Option<usize>,
    /// Human-readable reason for any truncation.
    pub why: Option<String>,
}

/// Replay journal `text`, verifying every record against `expect` and
/// truncating at the first torn one. Pure string-level core of
/// [`Journal::load`], exposed for the damage property tests.
#[must_use]
pub fn replay_journal(text: &str, expect: &JournalHeader) -> LoadReport {
    let mut report = LoadReport::default();
    let mut lines = text.lines();
    let count_cells = |s: &str| s.lines().filter(|l| !l.trim().is_empty()).count() as u64;
    match lines.next() {
        None => return report,
        Some(first) => {
            let header = unseal(first).and_then(JournalHeader::parse);
            if header.as_ref() != Some(expect) {
                report.truncated = count_cells(text).saturating_sub(1);
                report.first_damaged = Some(0);
                report.why = Some(match header {
                    Some(h) => {
                        format!("journal header mismatch (journal: {h:?}, this run: {expect:?})")
                    }
                    None => "journal header torn or unparseable".to_string(),
                });
                return report;
            }
        }
    }
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match unseal(line).and_then(CellRecord::parse) {
            Some(rec) => {
                report.recovered += 1;
                report.records.push(rec);
            }
            None => {
                // Append-only file: everything after the first damaged
                // record is unreliable too. Truncate, never skip-and-trust.
                report.truncated = count_cells(text)
                    .saturating_sub(1) // header
                    .saturating_sub(report.recovered);
                report.first_damaged = Some(i);
                report.why = Some(format!("record #{i} torn or rotted"));
                return report;
            }
        }
    }
    report
}

/// The append-only per-cell journal.
///
/// `create` starts a fresh journal (header only); `open_resume` replays an
/// existing one, rewrites it to just its verified prefix (physically
/// truncating any torn tail) and reopens for append. Every [`append`] is
/// flushed and fsynced before it returns, so a completed cell survives a
/// SIGKILL in the very next instruction.
///
/// [`append`]: Journal::append
#[derive(Debug)]
pub struct Journal {
    file: fs::File,
    path: PathBuf,
}

impl Journal {
    /// Start a fresh journal at `path` containing only the header record.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn create(path: impl AsRef<Path>, header: &JournalHeader) -> std::io::Result<Self> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let mut file = fs::File::create(path)?;
        file.write_all(seal(&header.body()).as_bytes())?;
        file.sync_all()?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Replay the journal at `path` (missing file ⇒ empty report), rewrite
    /// it to its verified prefix, and reopen it for appending. Updates the
    /// global [`resume_counters`].
    ///
    /// # Errors
    /// Propagates I/O errors from the rewrite.
    pub fn open_resume(
        path: impl AsRef<Path>,
        header: &JournalHeader,
    ) -> std::io::Result<(Self, LoadReport)> {
        let path = path.as_ref();
        let report = Self::load(path, header);
        note_load(&report);
        if let Some(why) = &report.why {
            eprintln!(
                "[journal {}: {} — {} record(s) recovered, {} dropped and will recompute]",
                path.display(),
                why,
                report.recovered,
                report.truncated,
            );
        }
        // Rewrite to the verified prefix so the torn tail can't shadow the
        // records we are about to append after it.
        let mut journal = Self::create(path, header)?;
        for rec in &report.records {
            journal.append_unsynced(rec)?;
        }
        journal.file.sync_all()?;
        Ok((journal, report))
    }

    /// Replay the journal at `path` without opening it for append (missing
    /// file ⇒ empty report). Does **not** touch the global counters.
    #[must_use]
    pub fn load(path: impl AsRef<Path>, header: &JournalHeader) -> LoadReport {
        match fs::read(path.as_ref()) {
            Err(_) => LoadReport::default(),
            Ok(bytes) => replay_journal(&String::from_utf8_lossy(&bytes), header),
        }
    }

    /// Append one completed cell and fsync before returning.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn append(&mut self, rec: &CellRecord) -> std::io::Result<()> {
        self.append_unsynced(rec)?;
        self.file.sync_data()
    }

    fn append_unsynced(&mut self, rec: &CellRecord) -> std::io::Result<()> {
        self.file.write_all(seal(&rec.body()).as_bytes())
    }

    /// The journal's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Index a load report's records by (experiment, platform), keeping the
/// first record per key and dropping records whose platform fingerprint no
/// longer matches the current code's.
#[must_use]
pub fn completed_cells(reports: &[LoadReport]) -> BTreeMap<(String, String), CellRecord> {
    let mut m = BTreeMap::new();
    for report in reports {
        for rec in &report.records {
            let stale = Platform::from_key(&rec.platform)
                .is_none_or(|p| config_fingerprint(p) != rec.config_fnv);
            if stale {
                continue;
            }
            m.entry(rec.key()).or_insert_with(|| rec.clone());
        }
    }
    m
}

// ----------------------------------------------------------- file locking

/// An advisory lock file (`<journal>.lock`) so two concurrent campaigns
/// can't interleave appends into one journal or race the artifact writes.
///
/// Acquisition creates the file exclusively and writes the holder's PID.
/// A lock whose holder is no longer alive (checked via `/proc/<pid>`, with
/// an age-based fallback where `/proc` doesn't exist) is broken as stale —
/// a SIGKILLed campaign must not wedge every future `--resume`. Contending
/// against a *live* holder waits (counted in [`resume_counters`]
/// `lock_waits`) up to `timeout`, then errors.
#[derive(Debug)]
pub struct CampaignLock {
    path: PathBuf,
}

impl CampaignLock {
    /// Acquire the lock at `path`, waiting up to `timeout` for a live
    /// holder to release it.
    ///
    /// # Errors
    /// When a live holder still holds the lock after `timeout`.
    pub fn acquire(path: impl AsRef<Path>, timeout: Duration) -> Result<Self, String> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                let _ = fs::create_dir_all(dir);
            }
        }
        let deadline = Instant::now() + timeout;
        let mut waited = false;
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(path)
            {
                Ok(mut f) => {
                    let _ = writeln!(f, "{}", std::process::id());
                    let _ = f.sync_all();
                    return Ok(CampaignLock {
                        path: path.to_path_buf(),
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if Self::is_stale(path) {
                        eprintln!("[breaking stale campaign lock {}]", path.display());
                        let _ = fs::remove_file(path);
                        continue;
                    }
                    if !waited {
                        waited = true;
                        LOCK_WAITS.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "[campaign lock {} held by a live campaign; waiting]",
                            path.display()
                        );
                    }
                    if Instant::now() >= deadline {
                        return Err(format!(
                            "campaign lock {} still held after {:.0}s; \
                             another campaign is running (or remove the lock by hand)",
                            path.display(),
                            timeout.as_secs_f64(),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
                Err(e) => return Err(format!("cannot create lock {}: {e}", path.display())),
            }
        }
    }

    /// A lock is stale when its holder PID is provably dead, or — where
    /// `/proc` is unavailable — when the lock file is over ten minutes old.
    fn is_stale(path: &Path) -> bool {
        let pid = fs::read_to_string(path)
            .ok()
            .and_then(|s| s.trim().parse::<u32>().ok());
        match pid {
            Some(pid) if Path::new("/proc").is_dir() => {
                pid != std::process::id() && !Path::new(&format!("/proc/{pid}")).exists()
            }
            _ => fs::metadata(path)
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| t.elapsed().ok())
                .is_some_and(|age| age > Duration::from_secs(600)),
        }
    }
}

impl Drop for CampaignLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

// ------------------------------------------------------------------ tests

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tp-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).expect("mk temp dir");
        d
    }

    fn channel(mech: &'static str, leaks: bool) -> ChannelResult {
        ChannelResult {
            channel: "L1-D",
            mechanism: mech,
            metric: "M_mb",
            value: 123.456_789,
            baseline: 40.25,
            leaks,
            samples: 120,
        }
    }

    fn record(exp: &str, value_salt: f64) -> CellRecord {
        let mut c = vec![channel("raw", true), channel("protected", false)];
        c[0].value += value_salt;
        CellRecord::new(exp, Platform::Haswell, 1.25 + value_salt, &c)
    }

    #[test]
    fn trailer_roundtrip_and_tamper_detection() {
        let payload = "{\n  \"x\": 1\n}\n";
        let full = format!("{payload}{}", trailer_line(payload));
        let (p, sum, len) = split_trailer(&full).expect("trailer parses");
        assert_eq!(p, payload);
        assert_eq!(len, payload.len());
        assert_eq!(sum, fnv64(payload.as_bytes()));
        // Any single-byte change to the payload fails verification.
        let tampered = full.replacen("\"x\": 1", "\"x\": 2", 1);
        let (p2, sum2, _) = split_trailer(&tampered).expect("still shaped like a trailer");
        assert_ne!(fnv64(p2.as_bytes()), sum2);
        assert!(split_trailer(payload).is_none(), "no trailer, no claims");
    }

    #[test]
    fn atomic_write_read_and_bak_fallback() {
        let dir = tmp_dir("atomic");
        let path = dir.join("artifact.json");

        write_atomic(&path, "{\"v\": 1}\n").unwrap();
        let (text, prov) = read_artifact(&path).unwrap();
        assert_eq!(
            (text.as_str(), prov),
            ("{\"v\": 1}\n", Provenance::Checksummed)
        );

        // Second write rotates the first version to .bak.
        write_atomic(&path, "{\"v\": 2}\n").unwrap();
        assert_eq!(read_artifact(&path).unwrap().0, "{\"v\": 2}\n");
        assert!(bak_path(&path).exists());

        // Tear the primary: read falls back to the .bak (version 1).
        let torn = fs::read_to_string(&path).unwrap();
        fs::write(&path, &torn[..torn.len() - 10]).unwrap();
        let (text, prov) = read_artifact(&path).unwrap();
        assert_eq!(
            (text.as_str(), prov),
            ("{\"v\": 1}\n", Provenance::RestoredFromBak)
        );

        // Tear the .bak too: read errors, naming both files.
        fs::write(bak_path(&path), "garbage").unwrap();
        // (a trailer-less .bak is Legacy, which the fallback refuses — it
        // cannot vouch for the bytes)
        let err = read_artifact(&path).unwrap_err();
        assert!(err.contains("checksum trailer"), "{err}");
        assert!(err.contains(".bak"), "{err}");

        // A legacy (pre-store) primary is served as-is.
        let legacy = dir.join("legacy.json");
        fs::write(&legacy, "{\"old\": true}\n").unwrap();
        let (text, prov) = read_artifact(&legacy).unwrap();
        assert_eq!(
            (text.as_str(), prov),
            ("{\"old\": true}\n", Provenance::Unchecksummed)
        );
    }

    #[test]
    fn cell_record_roundtrips_bit_exactly() {
        let rec = record("l1d", 0.000_123);
        let body = rec.body();
        let parsed = CellRecord::parse(&body).expect("parses");
        assert_eq!(parsed, rec);
        assert_eq!(parsed.seconds.to_bits(), rec.seconds.to_bits());
        assert_eq!(
            parsed.channels[0].value.to_bits(),
            rec.channels[0].value.to_bits()
        );
        // Empty channel lists roundtrip too.
        let empty = CellRecord::new("x", Platform::Sabre, 0.5, &[]);
        assert_eq!(CellRecord::parse(&empty.body()), Some(empty));
    }

    #[test]
    fn journal_create_append_resume() {
        let dir = tmp_dir("journal");
        let path = dir.join("campaign.journal");
        let header = JournalHeader::current();

        let mut j = Journal::create(&path, &header).unwrap();
        j.append(&record("l1d", 0.0)).unwrap();
        j.append(&record("tlb", 1.0)).unwrap();
        drop(j);

        let report = Journal::load(&path, &header);
        assert_eq!(report.recovered, 2);
        assert_eq!(report.truncated, 0);
        assert_eq!(report.records[0].experiment, "l1d");
        assert_eq!(report.records[1].experiment, "tlb");

        // A header from different run parameters discards the journal.
        let mut other = header.clone();
        other.tp_samples += 1.0;
        let stale = Journal::load(&path, &other);
        assert_eq!(stale.recovered, 0);
        assert_eq!(stale.truncated, 2);
        assert!(stale.why.as_deref().unwrap_or("").contains("header"));
    }

    #[test]
    fn torn_tail_truncates_and_resume_rewrites() {
        let dir = tmp_dir("torn");
        let path = dir.join("campaign.journal");
        let header = JournalHeader::current();
        let mut j = Journal::create(&path, &header).unwrap();
        j.append(&record("l1d", 0.0)).unwrap();
        j.append(&record("tlb", 1.0)).unwrap();
        drop(j);

        // Tear the last record mid-line, as a SIGKILL mid-append would.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 17]).unwrap();

        let (mut j, report) = Journal::open_resume(&path, &header).unwrap();
        assert_eq!(report.recovered, 1);
        assert_eq!(report.truncated, 1);
        assert_eq!(report.first_damaged, Some(1));
        assert_eq!(report.records[0].experiment, "l1d");

        // The rewrite dropped the torn tail; appends after it are clean.
        j.append(&record("btb", 2.0)).unwrap();
        drop(j);
        let report = Journal::load(&path, &header);
        assert_eq!(report.recovered, 2);
        assert_eq!(report.truncated, 0);
        assert_eq!(report.records[1].experiment, "btb");
    }

    #[test]
    fn rotted_record_truncates_everything_after_it() {
        let dir = tmp_dir("rot");
        let path = dir.join("campaign.journal");
        let header = JournalHeader::current();
        let mut j = Journal::create(&path, &header).unwrap();
        for (i, exp) in ["l1d", "tlb", "btb"].iter().enumerate() {
            j.append(&record(exp, i as f64)).unwrap();
        }
        drop(j);

        // Flip one byte inside the second cell record's body.
        let mut bytes = fs::read(&path).unwrap();
        let line_starts: Vec<usize> = std::iter::once(0)
            .chain(
                bytes
                    .iter()
                    .enumerate()
                    .filter(|&(_, &b)| b == b'\n')
                    .map(|(i, _)| i + 1),
            )
            .collect();
        let target = line_starts[2] + 60;
        bytes[target] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        let report = Journal::load(&path, &header);
        assert_eq!(report.recovered, 1, "only the record before the rot");
        assert_eq!(report.truncated, 2, "the rotted record and its successors");
        assert_eq!(report.first_damaged, Some(1));
    }

    #[test]
    fn completed_cells_keeps_first_and_drops_stale_fingerprints() {
        let a = record("l1d", 0.0);
        let mut dup = record("l1d", 9.0);
        dup.platform = a.platform.clone();
        let mut stale = record("tlb", 1.0);
        stale.config_fnv ^= 1;
        let m = completed_cells(&[LoadReport {
            records: vec![a.clone(), dup, stale],
            recovered: 3,
            ..Default::default()
        }]);
        assert_eq!(m.len(), 1);
        assert_eq!(m[&a.key()], a, "first record for a key wins");
    }

    #[test]
    fn lock_excludes_and_breaks_stale() {
        let dir = tmp_dir("lock");
        let path = dir.join("campaign.journal.lock");

        let lock = CampaignLock::acquire(&path, Duration::from_millis(50)).unwrap();
        // Held by this (live) process: a second acquire waits, then errors.
        let before = resume_counters().lock_waits;
        let err = CampaignLock::acquire(&path, Duration::from_millis(50)).unwrap_err();
        assert!(err.contains("still held"), "{err}");
        assert!(resume_counters().lock_waits > before);
        drop(lock);
        assert!(!path.exists(), "drop releases the lock");

        // A lock naming a dead PID is broken as stale.
        fs::write(&path, "999999999\n").unwrap();
        let lock = CampaignLock::acquire(&path, Duration::from_millis(50)).unwrap();
        drop(lock);
    }
}
