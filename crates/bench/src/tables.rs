//! Tables 1, 2, 5, 6 and 7: platform inventory, flush costs, IPC
//! microbenchmarks, domain-switch costs and kernel clone/destroy costs.
//!
//! These experiments run directly against `Machine` + `Kernel` (no
//! concurrent user programs needed), which makes them exactly repeatable.

use crate::util::Table;
use tp_core::kernel::{Kernel, SysReturn, Syscall};
use tp_core::{CapObject, Capability, ProtectionConfig, Rights};
use tp_sim::flush as hwflush;
use tp_sim::{Asid, ColorSet, Machine, PAddr, Platform, VAddr, FRAME_SIZE};

/// Format a cache size in KiB below one MiB, MiB above.
fn fmt_cache(size: u64, ways: u32) -> String {
    if size >= 1024 * 1024 {
        format!("{} MiB, {ways}-way", size / 1024 / 1024)
    } else {
        format!("{} KiB, {ways}-way", size / 1024)
    }
}

/// Table 1: the hardware platforms — one column per registry entry.
#[must_use]
pub fn table1() -> String {
    let cfgs: Vec<_> = Platform::ALL.iter().map(|p| p.config()).collect();
    let mut header = vec!["System"];
    header.extend(Platform::ALL.iter().map(|p| p.name()));
    let mut t = Table::new(&header);
    let mut row = |name: &str, cell: &dyn Fn(&tp_sim::PlatformConfig) -> String| {
        let mut cells = vec![name.to_string()];
        cells.extend(cfgs.iter().map(cell));
        t.row(&cells);
    };
    row("Cores", &|c| format!("{}", c.cores));
    row("Clock", &|c| {
        format!("{:.1} GHz", c.freq_mhz as f64 / 1000.0)
    });
    row("Cache line size", &|c| format!("{} B", c.line));
    row("L1-D cache", &|c| fmt_cache(c.l1d.size, c.l1d.ways));
    row("L1-I cache", &|c| fmt_cache(c.l1i.size, c.l1i.ways));
    row("L2 cache", &|c| fmt_cache(c.l2.size, c.l2.ways));
    row("L3 cache", &|c| {
        c.llc.map_or("N/A".into(), |l| fmt_cache(l.size, l.ways))
    });
    row("I-TLB", &|c| {
        format!("{}, {}-way", c.itlb.entries, c.itlb.ways)
    });
    row("D-TLB", &|c| {
        format!("{}, {}-way", c.dtlb.entries, c.dtlb.ways)
    });
    row("L2-TLB", &|c| {
        format!("{}, {}-way", c.stlb.entries, c.stlb.ways)
    });
    row("Page colours (L2)", &|c| {
        format!("{}", c.partition_colors())
    });
    row("Page colours (LLC)", &|c| format!("{}", c.llc_colors()));
    format!("Table 1: Hardware platforms.\n\n{}", t.render())
}

fn dirty_buffer(m: &mut Machine, core: usize, base: u64, bytes: u64) {
    let line = m.cfg.line;
    for i in 0..bytes / line {
        let pa = PAddr(base + i * line);
        m.data_access(core, Asid(500), VAddr(pa.0), pa, true, false);
    }
}

fn pass_time(m: &mut Machine, core: usize, base: u64, bytes: u64) -> u64 {
    let line = m.cfg.line;
    let t0 = m.cycles(core);
    for i in 0..bytes / line {
        let pa = PAddr(base + i * line);
        m.data_access(core, Asid(500), VAddr(pa.0), pa, false, false);
    }
    m.cycles(core) - t0
}

/// Table 2: worst-case cost of cache flushes (µs): direct (the flush
/// itself, all lines dirty) and indirect (one-off slowdown of an
/// application whose working set is the size of the flushed cache).
#[must_use]
pub fn table2() -> String {
    let mut header: Vec<String> = vec!["Cache".into()];
    for p in Platform::ALL {
        let s = p.short_name();
        header.extend([format!("{s} dir"), format!("{s} ind"), format!("{s} total")]);
    }
    let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    let mut cells_l1 = Vec::new();
    let mut cells_full = Vec::new();
    for platform in Platform::ALL {
        let cfg = platform.config();
        let x86 = cfg.llc.is_some();
        let app_base = 0x400_0000u64;

        // --- L1-only flush ---
        let mut m = Machine::new(cfg, 7);
        // Application working set = L1 size, warmed.
        dirty_buffer(&mut m, 0, app_base, cfg.l1d.size);
        let warm = pass_time(&mut m, 0, app_base, cfg.l1d.size);
        // Worst case: every L1-D line dirty.
        dirty_buffer(&mut m, 0, app_base, cfg.l1d.size);
        let t0 = m.cycles(0);
        if x86 {
            hwflush::manual_flush_l1d(&mut m, 0, PAddr(0x10_0000));
            hwflush::manual_flush_l1i(&mut m, 0, PAddr(0x20_0000));
        } else {
            hwflush::flush_l1d_arch(&mut m, 0);
            hwflush::flush_l1i_arch(&mut m, 0);
        }
        let direct = m.cycles(0) - t0;
        let cold = pass_time(&mut m, 0, app_base, cfg.l1d.size);
        let indirect = cold.saturating_sub(warm);
        cells_l1.push((cfg.cycles_to_us(direct), cfg.cycles_to_us(indirect)));

        // --- Full hierarchy flush ---
        let mut m = Machine::new(cfg, 7);
        let hier = cfg.l2.size + cfg.llc.map_or(0, |l| l.size);
        dirty_buffer(&mut m, 0, app_base, hier.min(8 * 1024 * 1024));
        let warm = pass_time(&mut m, 0, app_base, hier.min(8 * 1024 * 1024));
        dirty_buffer(&mut m, 0, app_base, hier.min(8 * 1024 * 1024));
        let t0 = m.cycles(0);
        if x86 {
            hwflush::wbinvd(&mut m, 0);
        } else {
            hwflush::arm_full_flush(&mut m, 0);
        }
        let direct = m.cycles(0) - t0;
        let cold = pass_time(&mut m, 0, app_base, hier.min(8 * 1024 * 1024));
        let indirect = cold.saturating_sub(warm);
        cells_full.push((cfg.cycles_to_us(direct), cfg.cycles_to_us(indirect)));
    }
    let f = |x: f64| format!("{x:.0}");
    for (name, cells) in [("L1 only", &cells_l1), ("Full flush", &cells_full)] {
        let mut row = vec![name.to_string()];
        for &(dir, ind) in cells.iter() {
            row.extend([f(dir), f(ind), f(dir + ind)]);
        }
        t.row(&row);
    }
    format!(
        "Table 2: Worst-case cost of cache flushes (µs).\n\n{}",
        t.render()
    )
}

/// One IPC configuration of Table 5.
fn ipc_cycles(platform: Platform, prot: ProtectionConfig, cross_domain: bool) -> f64 {
    let cfg = platform.config();
    let mut m = Machine::new(cfg, 21);
    let mut k = Kernel::new(cfg, prot, 16_384, u64::MAX / 4);
    let n = k.cfg.partition_colors();
    let d0 = k
        .create_domain(ColorSet::range(0, n / 2), 2048)
        .expect("domain");
    let d1 = if cross_domain {
        k.create_domain(ColorSet::range(n / 2, n), 2048)
            .expect("domain")
    } else {
        d0
    };
    if k.prot.clone_kernel {
        k.clone_kernel_for_domain(&mut m, 0, d0).expect("clone");
        if cross_domain {
            k.clone_kernel_for_domain(&mut m, 0, d1).expect("clone");
        }
    }
    let client = k.create_thread(d0, 0, 100).expect("client");
    let server = k.create_thread(d1, 0, 100).expect("server");
    let ep = k.create_endpoint(d0).expect("ep");
    let cap = Capability {
        obj: CapObject::Endpoint(ep),
        rights: Rights::all(),
    };
    let ccap = k.grant_cap(client, cap);
    let scap = k.grant_cap(server, cap);
    // Open scheduling: IPC performs the direct switch.
    for c in &mut k.cores {
        c.mode = tp_core::EngineMode::Open;
    }
    k.cores[0].cur = Some(server);
    let out = k.syscall(&mut m, 0, server, Syscall::Recv { cap: scap });
    assert_eq!(out.ret, SysReturn::Blocked);
    k.cores[0].cur = Some(client);

    let roundtrip = |k: &mut Kernel, m: &mut Machine| {
        let out = k.syscall(m, 0, client, Syscall::Call { cap: ccap, msg: 1 });
        assert_eq!(out.ret, SysReturn::Blocked);
        assert_eq!(k.cores[0].cur, Some(server));
        let out = k.syscall(m, 0, server, Syscall::ReplyRecv { cap: scap, msg: 2 });
        assert_eq!(out.ret, SysReturn::Blocked);
        assert_eq!(k.cores[0].cur, Some(client));
    };
    // Warm-up.
    for _ in 0..300 {
        roundtrip(&mut k, &mut m);
    }
    let iters = 2_000u64;
    let t0 = m.cycles(0);
    for _ in 0..iters {
        roundtrip(&mut k, &mut m);
    }
    // One-way IPC cost: half a round trip.
    (m.cycles(0) - t0) as f64 / iters as f64 / 2.0
}

/// Table 5: cross-address-space IPC microbenchmark.
#[must_use]
pub fn table5() -> String {
    let mut header: Vec<String> = vec!["Version".into()];
    for p in Platform::ALL {
        let s = p.short_name();
        header.extend([format!("{s} cycles"), format!("{s} slowd.")]);
    }
    let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    let mut results: Vec<Vec<f64>> = Vec::new();
    for platform in Platform::ALL {
        let original = ipc_cycles(platform, ProtectionConfig::raw(), false);
        let ready = ipc_cycles(platform, ProtectionConfig::colour_ready(), false);
        let intra = ipc_cycles(platform, ProtectionConfig::protected(), false);
        let inter = ipc_cycles(platform, ProtectionConfig::protected(), true);
        results.push(vec![original, ready, intra, inter]);
    }
    let names = ["original", "colour-ready", "intra-colour", "inter-colour"];
    for (i, name) in names.iter().enumerate() {
        let mut row = vec![(*name).to_string()];
        for per_platform in &results {
            let cycles = per_platform[i];
            let slow = (cycles / per_platform[0] - 1.0) * 100.0;
            row.push(format!("{cycles:.0}"));
            row.push(if i == 0 {
                "-".into()
            } else {
                format!("{slow:.0}%")
            });
        }
        t.row(&row);
    }
    format!(
        "Table 5: IPC microbenchmark performance and slowdown.\n\n{}",
        t.render()
    )
}

/// The receiver workloads of Table 6: pollute the caches like the §5.3.2
/// attackers before the switch is measured.
fn table6_workload(m: &mut Machine, cfg: &tp_sim::PlatformConfig, which: &str) {
    let base = 0x800_0000u64;
    match which {
        "Idle" => {}
        "L1-D" => dirty_buffer(m, 0, base, cfg.l1d.size),
        "L1-I" => {
            for i in 0..cfg.l1i.lines() {
                let pa = PAddr(base + i * cfg.line);
                m.insn_fetch(0, Asid(500), VAddr(pa.0), pa, false);
            }
        }
        "L2" => dirty_buffer(m, 0, base, cfg.l2.size),
        "L3" => dirty_buffer(m, 0, base, cfg.llc.map_or(cfg.l2.size, |l| l.size / 4)),
        _ => unreachable!(),
    }
}

/// Table 6: absolute cost (µs, no padding) of switching away from a domain
/// running various receivers.
#[must_use]
pub fn table6() -> String {
    let mut t = Table::new(&["Platf.", "Mode", "Idle", "L1-D", "L1-I", "L2", "L3"]);
    for platform in Platform::ALL {
        let cfg = platform.config();
        for (mode_name, prot) in [
            ("Raw", ProtectionConfig::raw()),
            ("Full flush", ProtectionConfig::full_flush()),
            ("Protected", ProtectionConfig::protected()),
        ] {
            let mut cells = vec![platform.short_name().to_string(), mode_name.to_string()];
            for wl in ["Idle", "L1-D", "L1-I", "L2", "L3"] {
                if wl == "L3" && cfg.llc.is_none() {
                    cells.push("N/A".into());
                    continue;
                }
                let mut m = Machine::new(cfg, 33);
                let mut k = Kernel::new(cfg, prot, 16_384, u64::MAX / 4);
                let n = k.cfg.partition_colors();
                let d0 = k
                    .create_domain(ColorSet::range(0, n / 2), 2048)
                    .expect("d0");
                let d1 = k
                    .create_domain(ColorSet::range(n / 2, n), 2048)
                    .expect("d1");
                let (img0, img1) = if prot.clone_kernel {
                    (
                        k.clone_kernel_for_domain(&mut m, 0, d0).expect("clone"),
                        k.clone_kernel_for_domain(&mut m, 0, d1).expect("clone"),
                    )
                } else {
                    (k.boot_image, k.boot_image)
                };
                k.cores[0].cur_image = img0;
                // Average over runs with the receiver state rebuilt,
                // scaled by TP_SAMPLES like every other sample count (the
                // switch cost is nearly deterministic, so a handful of
                // runs already averages the jitter away).
                let runs = ((20.0 * crate::util::effort()).ceil() as u64).max(4);
                let mut total = 0u64;
                for r in 0..runs {
                    table6_workload(&mut m, &cfg, wl);
                    let to = if r % 2 == 0 { img1 } else { img0 };
                    total += k.measure_switch_cost(&mut m, 0, to);
                }
                let us = cfg.cycles_to_us(total / runs);
                cells.push(format!("{us:.2}"));
            }
            t.row(&cells);
        }
    }
    format!(
        "Table 6: Absolute cost (µs) with no padding of switching away from\na domain running various receivers.\n\n{}",
        t.render()
    )
}

/// A modelled monolithic-kernel `fork+exec`: copy-on-write setup over the
/// page tables, loading the executable image and zeroing bss through the
/// memory system. Substitutes for the paper's Linux measurement (Table 7's
/// point is the ratio: kernel clone ≪ process creation).
fn modeled_fork_exec(m: &mut Machine, core: usize) -> u64 {
    let line = m.cfg.line;
    let lines_per_page = FRAME_SIZE / line;
    let t0 = m.cycles(core);
    // fork: duplicate ~32 page-table pages + task state.
    for p in 0..32u64 {
        for l in 0..lines_per_page {
            let src = PAddr(0xA00_0000 + p * FRAME_SIZE + l * line);
            let dst = PAddr(0xB00_0000 + p * FRAME_SIZE + l * line);
            m.data_access(core, Asid::KERNEL, VAddr(src.0), src, false, true);
            m.data_access(core, Asid::KERNEL, VAddr(dst.0), dst, true, true);
        }
    }
    m.advance(core, 20_000); // scheduler, vfs, accounting
                             // exec: read a ~150-page binary and zero ~40 pages of bss.
    for p in 0..150u64 {
        for l in 0..lines_per_page {
            let pa = PAddr(0xC00_0000 + p * FRAME_SIZE + l * line);
            m.data_access(core, Asid::KERNEL, VAddr(pa.0), pa, false, true);
        }
    }
    for p in 0..40u64 {
        for l in 0..lines_per_page {
            let pa = PAddr(0xD00_0000 + p * FRAME_SIZE + l * line);
            m.data_access(core, Asid::KERNEL, VAddr(pa.0), pa, true, true);
        }
    }
    m.advance(core, 30_000); // ELF parsing, mmap setup
    m.cycles(core) - t0
}

/// Table 7: cost of kernel clone/destroy vs (modelled) Linux process
/// creation.
#[must_use]
pub fn table7() -> String {
    let mut t = Table::new(&[
        "Arch",
        "clone (µs)",
        "destroy (µs)",
        "fork+exec (µs, modelled)",
    ]);
    for platform in Platform::ALL {
        let cfg = platform.config();
        let mut m = Machine::new(cfg, 55);
        let mut k = Kernel::new(cfg, ProtectionConfig::protected(), 16_384, u64::MAX / 4);
        let n = cfg.partition_colors();
        let d = k
            .create_domain(ColorSet::range(0, n / 2), 4096)
            .expect("domain");
        // Average over several clone/destroy cycles.
        let runs = 10;
        let mut clone_total = 0u64;
        let mut destroy_total = 0u64;
        for _ in 0..runs {
            let t0 = m.cycles(0);
            let img = k.clone_kernel_for_domain(&mut m, 0, d).expect("clone");
            clone_total += m.cycles(0) - t0;
            let t0 = m.cycles(0);
            k.kernel_destroy(&mut m, 0, img).expect("destroy");
            destroy_total += m.cycles(0) - t0;
        }
        let fork = modeled_fork_exec(&mut m, 0);
        t.row(&[
            platform.short_name().to_string(),
            format!("{:.0}", cfg.cycles_to_us(clone_total / runs)),
            format!("{:.1}", cfg.cycles_to_us(destroy_total / runs)),
            format!("{:.0}", cfg.cycles_to_us(fork)),
        ]);
    }
    format!(
        "Table 7: Cost of cloning/destroying kernel images vs (modelled)\nLinux process creation.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_prints_every_registered_platform() {
        let s = table1();
        for p in Platform::ALL {
            assert!(s.contains(p.name()), "missing {}: {s}", p.name());
        }
        assert!(s.contains("8")); // 8 colours
    }

    #[test]
    fn table2_full_flush_dwarfs_l1_flush() {
        let s = table2();
        // Parse the two totals crudely: the full-flush x86 total must exceed
        // the L1 total by a large factor.
        let lines: Vec<&str> = s.lines().collect();
        let l1: Vec<f64> = lines
            .iter()
            .find(|l| l.contains("L1 only"))
            .unwrap()
            .split_whitespace()
            .filter_map(|w| w.parse().ok())
            .collect();
        let full: Vec<f64> = lines
            .iter()
            .find(|l| l.contains("Full flush"))
            .unwrap()
            .split_whitespace()
            .filter_map(|w| w.parse().ok())
            .collect();
        // Totals are every 3rd numeric column, one triple per platform.
        for (i, p) in Platform::ALL.iter().enumerate() {
            let (f, l) = (full[3 * i + 2], l1[3 * i + 2]);
            assert!(f > 5.0 * l, "{}: full {f} vs L1 {l}", p.short_name());
        }
    }

    #[test]
    fn ipc_baseline_is_a_few_hundred_cycles() {
        let c = ipc_cycles(Platform::Haswell, ProtectionConfig::raw(), false);
        assert!((150.0..1500.0).contains(&c), "IPC {c} cycles");
    }

    #[test]
    fn arm_colour_ready_pays_tlb_cost() {
        let orig = ipc_cycles(Platform::Sabre, ProtectionConfig::raw(), false);
        let ready = ipc_cycles(Platform::Sabre, ProtectionConfig::colour_ready(), false);
        let slow = ready / orig - 1.0;
        // Table 5: ~14% on the Sabre's 2-way L2 TLB; accept a loose band.
        assert!(
            slow > 0.02,
            "expected visible Arm colour-ready cost, got {slow}"
        );
        assert!(slow < 0.60, "implausible Arm colour-ready cost {slow}");
    }

    #[test]
    fn x86_colour_ready_is_cheap() {
        let orig = ipc_cycles(Platform::Haswell, ProtectionConfig::raw(), false);
        let ready = ipc_cycles(Platform::Haswell, ProtectionConfig::colour_ready(), false);
        let slow = (ready / orig - 1.0).abs();
        assert!(slow < 0.10, "x86 colour-ready should be ~1%, got {slow}");
    }

    #[test]
    fn inter_colour_close_to_intra() {
        let intra = ipc_cycles(Platform::Haswell, ProtectionConfig::protected(), false);
        let inter = ipc_cycles(Platform::Haswell, ProtectionConfig::protected(), true);
        let delta = (inter / intra - 1.0).abs();
        assert!(delta < 0.25, "inter vs intra diverge: {delta}");
    }

    #[test]
    fn table7_clone_beats_fork_exec() {
        let s = table7();
        let mut rows = 0;
        for line in s.lines().filter(|l| {
            Platform::ALL
                .iter()
                .any(|p| l.trim_start().starts_with(p.short_name()))
        }) {
            let nums: Vec<f64> = line
                .split_whitespace()
                .filter_map(|w| w.parse().ok())
                .collect();
            assert!(nums[0] < nums[2], "clone must beat fork+exec: {line}");
            assert!(nums[1] < nums[0], "destroy must beat clone: {line}");
            rows += 1;
        }
        assert_eq!(rows, Platform::ALL.len());
    }
}
