//! The channel experiments: Figures 3–6 and Tables 3–4.

use crate::util::{fmt_mb, samples, Table};
use tp_analysis::ChannelMatrix;
use tp_attacks::harness::{ChannelOutcome, IntraCoreSpec, Scenario};
use tp_attacks::{branchchan, cache, flush_latency, interrupt, kernel_image, llc, tlbchan};
use tp_core::{ProtectionConfig, SimError};
use tp_sim::Platform;

/// Figure 3: the kernel-image channel matrix and MI, coloured-userland
/// (shared kernel) vs full time protection, on both platforms.
///
/// # Errors
/// Propagates the first [`SimError`] from a failed channel simulation.
pub fn fig3() -> Result<String, SimError> {
    let mut out = String::from("Figure 3: Kernel timing-channel matrix (conditional probability\nof LLC misses given the sender's system call).\n\n");
    for platform in Platform::ALL {
        for (name, prot) in [
            (
                "coloured userland only (shared kernel)",
                kernel_image::coloured_userland_config(),
            ),
            (
                "full time protection (cloned kernels)",
                ProtectionConfig::protected(),
            ),
        ] {
            let spec = IntraCoreSpec {
                platform,
                prot,
                n_symbols: 4,
                samples: samples(300),
                slice_us: 50.0,
                seed: 0x5EED,
            };
            let o = kernel_image::kernel_image_channel(&spec)?;
            out.push_str(&format!("{} — {}\n", platform.name(), name));
            if o.dataset.len() >= 8 {
                let m = ChannelMatrix::from_dataset(&o.dataset, 48);
                out.push_str(&m.render(&kernel_image::SYMBOLS));
            }
            out.push_str(&format!("  {}\n\n", o.summary()));
        }
    }
    Ok(out)
}

/// The six intra-core channels of Table 3.
fn run_channel(name: &str, spec: &IntraCoreSpec) -> Result<ChannelOutcome, SimError> {
    match name {
        "L1-D" => cache::try_l1d_channel(spec),
        "L1-I" => cache::try_l1i_channel(spec),
        "TLB" => tlbchan::try_tlb_channel(spec),
        "BTB" => branchchan::try_btb_channel(spec),
        "BHB" => branchchan::try_bhb_channel(spec),
        "L2" => cache::try_l2_channel(spec),
        _ => unreachable!(),
    }
}

fn channel_spec(platform: Platform, scenario: Scenario, name: &str, n: usize) -> IntraCoreSpec {
    let n_symbols = if name == "BHB" { 2 } else { 8 };
    let mut spec = IntraCoreSpec::new(platform, scenario, n_symbols, n);
    // Large L2 probes (slow clocks, big caches) get proportionally longer
    // slices, derived from the platform geometry.
    if name == "L2" {
        spec = spec.with_slice_us(cache::l2_slice_us(&platform.config()));
    }
    spec
}

/// Table 3: MI of the intra-core channels under raw / full flush /
/// protected, on both platforms. The residual protected x86 L2 channel is
/// additionally re-measured with the data prefetcher disabled (the §5.3.2
/// follow-up).
///
/// # Errors
/// Infallible today (the Table 3 channels never fail their simulations);
/// `Result` keeps the experiment surface uniform.
pub fn table3() -> Result<String, SimError> {
    let mut t = Table::new(&[
        "Platform",
        "Cache",
        "Raw M",
        "FullFlush M",
        "(M0)",
        "Protected M",
        "(M0)",
    ]);
    let n = samples(250);
    let mut residual_note = String::new();
    for platform in Platform::ALL {
        for name in ["L1-D", "L1-I", "TLB", "BTB", "BHB", "L2"] {
            let raw = run_channel(name, &channel_spec(platform, Scenario::Raw, name, n))?;
            let ff = run_channel(name, &channel_spec(platform, Scenario::FullFlush, name, n))?;
            let prot = run_channel(name, &channel_spec(platform, Scenario::Protected, name, n))?;
            t.row(&[
                platform.short_name().to_string(),
                name.to_string(),
                fmt_mb(raw.verdict.m.millibits(), raw.verdict.leaks),
                fmt_mb(ff.verdict.m.millibits(), ff.verdict.leaks),
                format!("{:.1}", ff.verdict.m0_millibits()),
                fmt_mb(prot.verdict.m.millibits(), prot.verdict.leaks),
                format!("{:.1}", prot.verdict.m0_millibits()),
            ]);
            // §5.3.2 follow-up: the protected x86 L2 channel with the data
            // prefetcher disabled. In the paper the prefetcher *carries* a
            // residual 50 mb channel; in this model the analogous
            // unresettable-state channel flows through the brittle manual
            // L1 flush (pseudo-LRU stragglers), and the prefetcher's fill
            // noise *masks* it — disabling the prefetcher exposes it. Both
            // stories share the paper's root cause (x86's missing
            // architected L1 flush) and conclusion (only the full-hierarchy
            // flush closes the residue); see EXPERIMENTS.md.
            if name == "L2" && platform == Platform::Haswell {
                let mut spec = channel_spec(platform, Scenario::Protected, name, 3 * n);
                spec.prot = spec.prot.with_prefetcher_disabled();
                let nopf = run_channel(name, &spec)?;
                residual_note = format!(
                    "x86 L2 protected, data prefetcher disabled (n = {}): M = {} mb (M0 = {:.1} mb)\n",
                    nopf.dataset.len(),
                    fmt_mb(nopf.verdict.m.millibits(), nopf.verdict.leaks),
                    nopf.verdict.m0_millibits()
                );
            }
        }
    }
    Ok(format!(
        "Table 3: Mutual information (mb) of intra-core timing channels.\n('*' marks a definite channel, M > M0.)\n\n{}\n{}",
        t.render(),
        residual_note
    ))
}

/// Figure 4: the cross-core LLC side channel against ElGamal, raw and
/// protected.
///
/// # Errors
/// Propagates the first [`SimError`] from a failed channel simulation.
pub fn fig4() -> Result<String, SimError> {
    let slots = samples(6_000).max(3_000);
    let raw = llc::try_llc_attack(ProtectionConfig::raw(), slots, 42)?;
    let prot = llc::try_llc_attack(ProtectionConfig::protected(), slots / 2, 42)?;
    let mut out = String::from("Figure 4: Cross-core LLC side channel against ElGamal\n(square-and-multiply exponentiation, Liu et al. prime&probe).\n\n");
    out.push_str(&format!(
        "raw:       eviction set {:2} lines, activity {}, {} bits recovered, key-bit accuracy {:.1}%\n",
        raw.eviction_set_size,
        raw.activity_detected,
        raw.recovered_bits.len(),
        raw.accuracy * 100.0
    ));
    out.push_str(&format!(
        "protected: eviction set {:2} lines, activity {}, {} bits recovered, key-bit accuracy {:.1}%\n\n",
        prot.eviction_set_size,
        prot.activity_detected,
        prot.recovered_bits.len(),
        prot.accuracy * 100.0
    ));
    // A sparkline of the raw trace: the dot pattern of Figure 4.
    out.push_str("raw probe trace (first 160 probes; '#' = monitored-set activity):\n  ");
    let lats: Vec<f64> = raw.trace.iter().map(|&(_, l)| l as f64).collect();
    if !lats.is_empty() {
        let floor = tp_analysis::stats::percentile(&lats, 20.0);
        for &(_, l) in raw.trace.iter().take(160) {
            out.push(if (l as f64) > floor + 120.0 { '#' } else { '.' });
        }
    }
    out.push('\n');
    Ok(out)
}

/// Figure 5: the unmitigated cache-flush channel on Arm (receiver-observed
/// offline time vs the sender's dirty-cache footprint).
///
/// # Errors
/// Propagates the first [`SimError`] from a failed channel simulation.
pub fn fig5() -> Result<String, SimError> {
    let spec = IntraCoreSpec {
        platform: Platform::Sabre,
        prot: flush_latency::flush_channel_config(None),
        n_symbols: 8,
        samples: samples(300),
        slice_us: 50.0,
        seed: 0x5EED,
    };
    let o = flush_latency::flush_channel(&spec, flush_latency::Timing::Offline)?;
    let mut out = String::from(
        "Figure 5: Unmitigated cache-flush channel on Arm: receiver-observed\noffline time vs sender cache footprint (8 symbols = 0..256 dirty sets).\n\n",
    );
    if o.dataset.len() >= 8 {
        let m = ChannelMatrix::from_dataset(&o.dataset, 48);
        out.push_str(&m.render(&["0", "32", "64", "96", "128", "160", "192", "224"]));
    }
    out.push_str(&format!("  {}\n", o.summary()));
    Ok(out)
}

/// Table 4: the flush-latency channel, online/offline timing, with and
/// without padding.
///
/// # Errors
/// Propagates the first [`SimError`] from a failed channel simulation.
pub fn table4() -> Result<String, SimError> {
    let mut t = Table::new(&[
        "Platform",
        "Timing",
        "No pad M",
        "(M0)",
        "Protected M",
        "(M0)",
    ]);
    let n = samples(250);
    for platform in Platform::ALL {
        let pad = flush_latency::table4_pad_us(platform);
        for timing in [
            flush_latency::Timing::Online,
            flush_latency::Timing::Offline,
        ] {
            let mk = |pad_us: Option<f64>| IntraCoreSpec {
                platform,
                prot: flush_latency::flush_channel_config(pad_us),
                n_symbols: 8,
                samples: n,
                slice_us: 50.0,
                seed: 0x5EED,
            };
            let no_pad = flush_latency::flush_channel(&mk(None), timing)?;
            let padded = flush_latency::flush_channel(&mk(Some(pad)), timing)?;
            t.row(&[
                format!("{} (pad {pad} µs)", platform.short_name()),
                format!("{timing:?}"),
                fmt_mb(no_pad.verdict.m.millibits(), no_pad.verdict.leaks),
                format!("{:.1}", no_pad.verdict.m0_millibits()),
                fmt_mb(padded.verdict.m.millibits(), padded.verdict.leaks),
                format!("{:.1}", padded.verdict.m0_millibits()),
            ]);
        }
    }
    Ok(format!(
        "Table 4: Channel through cache-flush latency (mb) without and with\ntime padding.\n\n{}",
        t.render()
    ))
}

/// Figure 6: the interrupt channel (spy online time vs the Trojan's timer
/// value), unmitigated and with IRQ partitioning.
///
/// # Errors
/// Propagates the first [`SimError`] from a failed channel simulation.
pub fn fig6() -> Result<String, SimError> {
    let n = samples(250);
    let raw =
        interrupt::try_interrupt_channel(&interrupt::paper_spec(Platform::Haswell, false, n))?;
    let part =
        interrupt::try_interrupt_channel(&interrupt::paper_spec(Platform::Haswell, true, n))?;
    let mut out = String::from(
        "Figure 6: Interrupt channel: spy-observed online time vs the timer\ninterrupt configured by the Trojan (13..17 ms, 10 ms tick).\n\n",
    );
    if raw.dataset.len() >= 8 {
        let m = ChannelMatrix::from_dataset(&raw.dataset, 48);
        out.push_str("unmitigated:\n");
        out.push_str(&m.render(&["13ms", "14ms", "15ms", "16ms", "17ms"]));
    }
    out.push_str(&format!("  raw:         {}\n", raw.summary()));
    out.push_str(&format!("  partitioned: {}\n", part.summary()));
    Ok(out)
}

/// Per-mechanism ablations: switching off each Requirement's mechanism
/// (with the rest of time protection intact) re-opens exactly its channel
/// — and the interconnect channel stays open no matter what (§6.1).
///
/// # Errors
/// Propagates the first [`SimError`] from a failed channel simulation.
pub fn ablations() -> Result<String, SimError> {
    use tp_attacks::bus;
    let n = samples(150);
    let mut t = Table::new(&[
        "Mechanism disabled",
        "Re-opened channel",
        "M (mb)",
        "M0 (mb)",
        "leak?",
    ]);

    // Requirement 1: on-core flush off -> L1-D channel.
    let mut prot = ProtectionConfig::protected();
    prot.flush = tp_core::FlushMode::None;
    let o = cache::try_l1d_channel(&IntraCoreSpec {
        platform: Platform::Haswell,
        prot,
        n_symbols: 8,
        samples: n,
        slice_us: 50.0,
        seed: 0x5EED,
    })?;
    push_ablation(&mut t, "R1 on-core flush", "L1-D prime&probe", &o);

    // Requirement 2: kernel clone off — the Figure 3 "coloured userland
    // only" configuration. (With the on-core flush also active, the manual
    // flush buffers blanket the L2 every switch and strongly attenuate the
    // differential kernel footprint; the channel the paper demonstrates is
    // against the colouring-only baseline.)
    let o = kernel_image::kernel_image_channel(&IntraCoreSpec {
        platform: Platform::Haswell,
        prot: kernel_image::coloured_userland_config(),
        n_symbols: 4,
        samples: n,
        slice_us: 50.0,
        seed: 0x5EED,
    })?;
    push_ablation(&mut t, "R2 kernel clone (+R1)", "kernel-image syscalls", &o);

    // Requirement 4: padding off -> flush-latency channel (Arm).
    let o = flush_latency::flush_channel(
        &IntraCoreSpec {
            platform: Platform::Sabre,
            prot: flush_latency::flush_channel_config(None),
            n_symbols: 8,
            samples: n,
            slice_us: 50.0,
            seed: 0x5EED,
        },
        flush_latency::Timing::Offline,
    )?;
    push_ablation(&mut t, "R4 switch padding", "flush write-back latency", &o);

    // Requirement 5: interrupt partitioning off.
    let o = interrupt::try_interrupt_channel(&interrupt::paper_spec(Platform::Haswell, false, n))?;
    push_ablation(
        &mut t,
        "R5 IRQ partitioning",
        "timer-interrupt placement",
        &o,
    );

    // The limitation: nothing disables the bus channel's defence, because
    // there is none (§2.3: no bandwidth-partitioning hardware exists).
    let o = bus::bus_channel(
        &IntraCoreSpec::new(Platform::Haswell, Scenario::Protected, 2, n).with_slice_us(30.0),
    )?;
    push_ablation(
        &mut t,
        "(none: unpartitionable)",
        "cross-core memory bus",
        &o,
    );

    Ok(format!(
        "Ablations: each time-protection mechanism individually disabled\n(everything else active). The re-opened channel demonstrates what the\nmechanism defends; the bus row is the paper's declared hardware\nlimitation — it leaks under FULL protection.\n\n{}",
        t.render()
    ))
}

fn push_ablation(t: &mut Table, mech: &str, chan: &str, o: &ChannelOutcome) {
    t.row(&[
        mech.to_string(),
        chan.to_string(),
        format!("{:.1}", o.verdict.m.millibits()),
        format!("{:.1}", o.verdict.m0_millibits()),
        if o.verdict.leaks {
            "YES".into()
        } else {
            "no".into()
        },
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The individual channels are tested in tp-attacks; here we exercise
    // the reporting glue at reduced sample counts.

    #[test]
    fn fig4_report_contains_both_scenarios() {
        // No TP_SAMPLES override here: env vars are process-global and the
        // tables/util tests in this binary read it concurrently.
        let s = fig4().expect("fig4 is infallible");
        assert!(s.contains("raw:"));
        assert!(s.contains("protected:"));
        assert!(s.contains('#'), "raw trace should show activity: {s}");
    }
}
