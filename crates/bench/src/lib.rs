//! # tp-bench — the evaluation harness
//!
//! One module per group of results from §5 of the paper; each experiment
//! returns a printable report. The `src/bin/` binaries are thin wrappers
//! (`cargo run --release -p tp-bench --bin table3`), `reproduce_all`
//! regenerates every table and figure in one run, and `campaign` runs the
//! experiment registry ([`campaign`]) across the platform registry with
//! machine-readable results and a golden leak/closed verdict gate.
//!
//! Sample sizes default to values that finish in minutes; set the
//! environment variable `TP_SAMPLES` (a scale factor, e.g. `0.25` or `4`)
//! to trade precision for time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod channels;
pub mod cli;
pub mod cloud;
pub mod splash;
pub mod store;
pub mod supervise;
pub mod tables;
pub mod util;
