//! Figure 7 and Table 8: the Splash-2 colouring cost study.

use crate::util::{samples, Table};
use tp_analysis::stats;
use tp_core::{ProtectionConfig, SimError};
use tp_sim::Platform;
use tp_workloads::{all_benchmarks, run_workload, WorkloadRun};

/// The five Figure 7 configurations, relative to the 100%-colour baseline
/// on the standard kernel.
const CASES: [(&str, bool, (u64, u64)); 5] = [
    ("75% colours base", false, (3, 4)),
    ("50% colours base", false, (1, 2)),
    ("100% colours clone", true, (1, 1)),
    ("75% colours clone", true, (3, 4)),
    ("50% colours clone", true, (1, 2)),
];

fn prot_for(clone: bool) -> ProtectionConfig {
    if clone {
        ProtectionConfig::protected()
    } else {
        ProtectionConfig::raw()
    }
}

/// Figure 7: per-benchmark slowdowns of cache colouring and kernel
/// cloning, plus the geometric mean.
///
/// # Errors
/// Propagates the first [`SimError`] from a failed workload run.
pub fn fig7() -> Result<String, SimError> {
    let ops = samples(60_000);
    let mut out = String::from(
        "Figure 7: Slowdowns of Splash-2 benchmarks against the baseline\nkernel without partitioning (single process on the system).\n\n",
    );
    for platform in Platform::ALL {
        let mut t = Table::new(&[
            "benchmark",
            CASES[0].0,
            CASES[1].0,
            CASES[2].0,
            CASES[3].0,
            CASES[4].0,
        ]);
        let mut per_case: Vec<Vec<f64>> = vec![Vec::new(); CASES.len()];
        for bench in all_benchmarks() {
            let base = run_workload(
                &bench,
                &WorkloadRun::solo(platform, ProtectionConfig::raw(), (1, 1)).with_ops(ops),
            )?;
            let mut cells = vec![bench.name.to_string()];
            for (i, (_, clone, colors)) in CASES.iter().enumerate() {
                let r = run_workload(
                    &bench,
                    &WorkloadRun::solo(platform, prot_for(*clone), *colors).with_ops(ops),
                )?;
                let slow = r.slowdown_vs(base);
                per_case[i].push(1.0 + slow);
                cells.push(format!("{:.2}%", slow * 100.0));
            }
            t.row(&cells);
        }
        let mut mean_cells = vec!["GEOMEAN".to_string()];
        for case in &per_case {
            let g = stats::geomean(case) - 1.0;
            mean_cells.push(format!("{:.2}%", g * 100.0));
        }
        t.row(&mean_cells);
        out.push_str(&format!("{}\n{}\n", platform.name(), t.render()));
    }
    Ok(out)
}

/// Table 8: the impact of time protection with 50% colours when
/// time-sharing with an idle domain, with and without padding. Slowdowns
/// are relative to the 100%-colour unprotected baseline, counting only the
/// benchmark's own share of the processor.
///
/// # Errors
/// Propagates the first [`SimError`] from a failed workload run.
pub fn table8() -> Result<String, SimError> {
    let ops = samples(60_000);
    let mut out = String::from(
        "Table 8: Performance impact on Splash-2 of time protection with 50%\ncolours, time-shared with an idle domain, with and without padding.\n\n",
    );
    for platform in Platform::ALL {
        let pad = tp_attacks::flush_latency::table4_pad_us(platform);
        let mut rows: Vec<(String, f64, f64)> = Vec::new();
        for bench in all_benchmarks() {
            // Baseline: raw kernel time-shared with the same idle domain —
            // isolates the *protection* cost from the CPU-share cost.
            let base = run_workload(
                &bench,
                &WorkloadRun::shared(platform, ProtectionConfig::raw(), (1, 2)).with_ops(ops),
            )?;
            let no_pad = run_workload(
                &bench,
                &WorkloadRun::shared(platform, ProtectionConfig::protected(), (1, 2)).with_ops(ops),
            )?;
            let padded = run_workload(
                &bench,
                &WorkloadRun::shared(
                    platform,
                    ProtectionConfig::protected().with_pad_us(pad),
                    (1, 2),
                )
                .with_ops(ops),
            )?;
            rows.push((
                bench.name.to_string(),
                no_pad.slowdown_vs(base),
                padded.slowdown_vs(base),
            ));
        }
        let mut t = Table::new(&["Pad", "Max", "Min", "Mean"]);
        for (pad_name, idx) in [("no", 1usize), ("yes", 2usize)] {
            let vals: Vec<f64> = rows
                .iter()
                .map(|r| if idx == 1 { r.1 } else { r.2 })
                .collect();
            let max_row = rows
                .iter()
                .max_by(|a, b| pick(a, idx).total_cmp(&pick(b, idx)))
                .expect("rows");
            let min_row = rows
                .iter()
                .min_by(|a, b| pick(a, idx).total_cmp(&pick(b, idx)))
                .expect("rows");
            let gmean = stats::geomean(&vals.iter().map(|v| 1.0 + v).collect::<Vec<_>>()) - 1.0;
            t.row(&[
                pad_name.to_string(),
                format!("{:.2}% ({})", pick(max_row, idx) * 100.0, max_row.0),
                format!("{:.2}% ({})", pick(min_row, idx) * 100.0, min_row.0),
                format!("{:.2}%", gmean * 100.0),
            ]);
        }
        out.push_str(&format!("{}\n{}\n", platform.name(), t.render()));
    }
    Ok(out)
}

fn pick(row: &(String, f64, f64), idx: usize) -> f64 {
    if idx == 1 {
        row.1
    } else {
        row.2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_cases_cover_the_paper() {
        assert_eq!(CASES.len(), 5);
        assert!(CASES.iter().any(|c| c.0.contains("50% colours base")));
        assert!(CASES.iter().any(|c| c.0.contains("100% colours clone")));
    }
}
