//! Regenerates the paper's fig6 (see DESIGN.md experiment index).
fn main() {
    println!("{}", tp_bench::channels::fig6());
}
