//! Regenerates the paper's fig6 (see DESIGN.md experiment index).
use std::process::ExitCode;

fn main() -> ExitCode {
    match tp_bench::channels::fig6() {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fig6: simulation failed: {e}");
            ExitCode::FAILURE
        }
    }
}
