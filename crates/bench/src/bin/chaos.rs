//! Chaos harness: prove the campaign supervisor survives every fault
//! class, and that the durable store recovers from process death and
//! journal damage.
//!
//! ```text
//! cargo run --release -p tp-bench --bin chaos    # all eight classes
//! TP_FAULT=env-stall@3 cargo run -p tp-bench --bin chaos
//! TP_FAULT=kill@2      cargo run --release -p tp-bench --bin chaos
//! ```
//!
//! Two families of faults:
//!
//! * **In-process** (all of [`tp_core::FaultKind::all_defaults`]): the
//!   harness supervises a synthetic cell with the fault armed and asserts
//!   the supervisor classifies it as expected — then runs one healthy
//!   control cell and asserts it still comes back clean, with zero
//!   retries. The quarantine ledger the faulted cells produced is written
//!   exactly as a real campaign would write it.
//! * **Store-level** (`kill@N`, `torn-write`, `journal-rot`): the harness
//!   runs the real `campaign` binary as a subprocess in a scratch
//!   directory, injures it — SIGKILL after its Nth journal record, a
//!   truncated journal tail, a flipped byte inside a journal record — and
//!   then runs `campaign --resume`, asserting the resumed run exits
//!   cleanly and produces the same artifacts (byte-identical goldens,
//!   results modulo wall times) as an undisturbed reference run.
//!
//! Any mismatch exits nonzero.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode, Stdio};
use std::time::{Duration, Instant};
use tp_bench::campaign::{self, ChannelResult, ExperimentDef};
use tp_bench::cli;
use tp_bench::store::write_atomic;
use tp_bench::supervise::{
    self, cell_timeout_override, fleet_cell, pair_cell, probe_cell, quarantine_json, run_cell,
    CellOutcome, QuarantineEntry,
};
use tp_bench::util::Table;
use tp_core::{ExecMode, FaultKind, FaultPlan, SimError};
use tp_sim::Platform;

/// Where the quarantine ledger is written (same path as the campaign's).
const QUARANTINE_PATH: &str = "goldens/quarantine.json";

/// The journal path the campaign subprocess writes, relative to its cwd.
const CHILD_JOURNAL: &str = "goldens/campaign.journal";

/// The cell subset the store scenarios run: four cheap cells, enough to
/// kill a campaign between journal appends and still finish fast.
const CHILD_CELLS: &[&str] = &["--only", "tlb,btb", "--platform", "haswell,sabre"];

fn expected_outcome(kind: FaultKind) -> CellOutcome {
    match kind {
        FaultKind::EnvPanic { .. } | FaultKind::NoisePoison { .. } => CellOutcome::Panicked,
        FaultKind::EnvStall { .. } => CellOutcome::TimedOut,
        FaultKind::CommitFlip { .. } => CellOutcome::ReplayDiverged,
        FaultKind::SnapshotCorrupt => CellOutcome::SnapshotCorrupt,
        // The deadlock detector must classify the wedged token, never the
        // wall-clock watchdog.
        FaultKind::LostWakeup { .. } => CellOutcome::Deadlock,
        // A killed worker's coroutines are adopted by the survivors; the
        // cell completes as if nothing happened.
        FaultKind::WorkerKill { .. } => CellOutcome::Ok,
        FaultKind::StackOverflow => CellOutcome::StackOverflow,
    }
}

/// The synthetic cell a fault class is exercised against. `lost-wakeup`
/// needs cross-core token rotation (the pair cell) and `worker-kill`
/// needs coroutines left to adopt (the fleet cell, two coop workers);
/// both pin the cooperative executor explicitly — it is the component
/// under test — so the matrix classifies identically under
/// `TP_EXECUTOR=threads`. Everything else runs the probe cell under the
/// process default executor.
fn cell_body(
    kind: FaultKind,
    seed: u64,
) -> Box<dyn Fn() -> Result<Vec<ChannelResult>, SimError> + Send + Sync> {
    match kind {
        FaultKind::LostWakeup { .. } => {
            Box::new(move || pair_cell(seed, ExecMode::Coop { workers: 0 }))
        }
        FaultKind::WorkerKill { .. } => {
            Box::new(move || fleet_cell(seed, ExecMode::Coop { workers: 2 }))
        }
        _ => Box::new(move || probe_cell(seed)),
    }
}

/// Per-class deadline: `worker-kill` is expected to *complete* (adoption,
/// not detection), so it gets the generous default instead of the tight
/// stall-bounding one.
fn class_deadline(kind: FaultKind, tight: Duration) -> Duration {
    match kind {
        FaultKind::WorkerKill { .. } => Duration::from_secs(120),
        _ => tight,
    }
}

// ------------------------------------------------------ store fault classes

/// A process-level fault injected around the real `campaign` binary.
#[derive(Debug, Clone, Copy, PartialEq)]
enum StoreFault {
    /// SIGKILL the campaign subprocess once its journal holds N records.
    Kill(u64),
    /// Truncate the journal mid-record, as a crash mid-append would.
    TornWrite,
    /// Flip one byte inside a committed journal record.
    JournalRot,
}

impl StoreFault {
    fn all() -> Vec<StoreFault> {
        vec![
            StoreFault::Kill(2),
            StoreFault::TornWrite,
            StoreFault::JournalRot,
        ]
    }

    fn parse(raw: &str) -> Option<StoreFault> {
        match raw.trim() {
            "torn-write" => Some(StoreFault::TornWrite),
            "journal-rot" => Some(StoreFault::JournalRot),
            "kill" => Some(StoreFault::Kill(2)),
            other => other
                .strip_prefix("kill@")
                .and_then(|n| n.parse().ok())
                .map(StoreFault::Kill),
        }
    }

    fn name(self) -> String {
        match self {
            StoreFault::Kill(n) => format!("kill@{n}"),
            StoreFault::TornWrite => "torn-write".to_string(),
            StoreFault::JournalRot => "journal-rot".to_string(),
        }
    }

    /// Scratch directory name for this class's campaign runs.
    fn dir(self) -> String {
        match self {
            StoreFault::Kill(_) => "kill".to_string(),
            other => other.name(),
        }
    }
}

/// The real `campaign` binary, expected next to this executable.
fn campaign_exe() -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("cannot locate chaos binary: {e}"))?;
    let name = if cfg!(windows) {
        "campaign.exe"
    } else {
        "campaign"
    };
    let exe = me.with_file_name(name);
    if exe.exists() {
        Ok(exe)
    } else {
        Err(format!(
            "{} not found; build it first: cargo build --release -p tp-bench --bin campaign",
            exe.display()
        ))
    }
}

/// The effort scale forwarded to campaign subprocesses: the caller's
/// `TP_SAMPLES` when set, otherwise the CI default of 0.25.
fn child_samples() -> String {
    std::env::var("TP_SAMPLES")
        .ok()
        .filter(|s| !s.trim().is_empty())
        .unwrap_or_else(|| "0.25".to_string())
}

/// A campaign subprocess invocation in `dir`. `TP_THREADS=1` makes cells
/// finish one at a time, so `kill@N` lands between journal appends;
/// results are thread-count-invariant so the reference run matches.
fn campaign_cmd(exe: &Path, dir: &Path, resume: bool) -> Command {
    let mut c = Command::new(exe);
    c.current_dir(dir)
        .args(CHILD_CELLS)
        .args(["--json", "results.json", "--update-goldens", "goldens.json"])
        .env_remove("TP_FAULT")
        .env("TP_SAMPLES", child_samples())
        .env("TP_THREADS", "1")
        .stdout(Stdio::null());
    if resume {
        c.arg("--resume");
    }
    c
}

fn run_campaign(exe: &Path, dir: &Path, resume: bool) -> Result<(), String> {
    let out = campaign_cmd(exe, dir, resume)
        .output()
        .map_err(|e| format!("cannot spawn campaign: {e}"))?;
    if out.status.success() {
        Ok(())
    } else {
        Err(format!(
            "campaign in {} exited with {}:\n{}",
            dir.display(),
            out.status,
            String::from_utf8_lossy(&out.stderr),
        ))
    }
}

/// Strip wall-clock-dependent content from a `results.json`: the
/// `total_seconds` line, per-cell `"seconds"` fields, and the store
/// trailer (whose checksum covers the stripped bytes).
fn normalize_results(text: &str) -> String {
    let mut out = String::new();
    for line in text.lines() {
        if line.contains("\"total_seconds\"") || line.starts_with("{\"tp_store\": ") {
            continue;
        }
        let mut line = line.to_string();
        if let Some(i) = line.find("\"seconds\": ") {
            if let Some(j) = line[i..].find(", ") {
                line.replace_range(i..i + j + 2, "");
            }
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Extract `"name": <int>` from machine-written JSON.
fn json_u64(text: &str, name: &str) -> Option<u64> {
    let tag = format!("\"{name}\": ");
    let start = text.find(&tag)? + tag.len();
    let rest = &text[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn read_to_string(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

/// The undisturbed reference artifacts every damaged run must reproduce.
struct Reference {
    goldens: String,
    results_norm: String,
}

fn reference_run(exe: &Path, base: &Path) -> Result<Reference, String> {
    let dir = base.join("ref");
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    run_campaign(exe, &dir, false)?;
    Ok(Reference {
        goldens: read_to_string(&dir.join("goldens.json"))?,
        results_norm: normalize_results(&read_to_string(&dir.join("results.json"))?),
    })
}

/// Assert a resumed run reproduced the reference artifacts and report the
/// resume counters it recorded in its `BENCH-campaign.json`.
fn check_recovery(dir: &Path, reference: &Reference) -> Result<String, String> {
    let goldens = read_to_string(&dir.join("goldens.json"))?;
    if goldens != reference.goldens {
        return Err("resumed goldens.json differs from the reference run's".to_string());
    }
    let results = normalize_results(&read_to_string(&dir.join("results.json"))?);
    if results != reference.results_norm {
        return Err(
            "resumed results.json differs from the reference run's (beyond wall times)".to_string(),
        );
    }
    let bench = read_to_string(&dir.join("BENCH-campaign.json"))?;
    let resume = bench
        .find("\"resume\": ")
        .map(|i| &bench[i..])
        .ok_or("BENCH-campaign.json has no resume object")?;
    let skipped = json_u64(resume, "cells_skipped").unwrap_or(0);
    let recovered = json_u64(resume, "records_recovered").unwrap_or(0);
    let truncated = json_u64(resume, "records_truncated").unwrap_or(0);
    Ok(format!(
        "skipped {skipped}, recovered {recovered}, truncated {truncated}"
    ))
}

/// Run one store-level fault scenario end to end. Returns the human
/// summary of what the recovery accounted for.
fn run_store_fault(
    fault: StoreFault,
    exe: &Path,
    base: &Path,
    reference: &Reference,
) -> Result<String, String> {
    let dir = base.join(fault.dir());
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let journal = dir.join(CHILD_JOURNAL);

    match fault {
        StoreFault::Kill(n) => {
            // Kill the campaign once its journal holds n cell records
            // (header line + n), then prove --resume finishes the rest.
            let mut child = campaign_cmd(exe, &dir, false)
                .stderr(Stdio::null())
                .spawn()
                .map_err(|e| format!("cannot spawn campaign: {e}"))?;
            let deadline = Instant::now() + Duration::from_secs(300);
            let lines = |p: &Path| {
                std::fs::read(p)
                    .map(|b| b.iter().filter(|&&c| c == b'\n').count() as u64)
                    .unwrap_or(0)
            };
            let mut finished_early = false;
            loop {
                if child
                    .try_wait()
                    .map_err(|e| format!("wait on campaign: {e}"))?
                    .is_some()
                {
                    finished_early = true;
                    break;
                }
                // Header line + n cell records.
                if lines(&journal) > n {
                    let _ = child.kill();
                    let _ = child.wait();
                    break;
                }
                if Instant::now() > deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(format!(
                        "campaign never reached {n} journal record(s) before the deadline"
                    ));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            if finished_early {
                eprintln!("[kill@{n}: campaign finished before the kill; resume still verified]");
            }
        }
        StoreFault::TornWrite => {
            // A full run, then a crash-mid-append torn tail.
            run_campaign(exe, &dir, false)?;
            let bytes = std::fs::read(&journal).map_err(|e| format!("{CHILD_JOURNAL}: {e}"))?;
            if bytes.len() < 32 {
                return Err("journal too short to tear".to_string());
            }
            std::fs::write(&journal, &bytes[..bytes.len() - 7])
                .map_err(|e| format!("{CHILD_JOURNAL}: {e}"))?;
        }
        StoreFault::JournalRot => {
            // A full run, then one flipped byte inside the second cell
            // record: the record before it must be served, everything at
            // and after it recomputed.
            run_campaign(exe, &dir, false)?;
            let mut bytes = std::fs::read(&journal).map_err(|e| format!("{CHILD_JOURNAL}: {e}"))?;
            let newlines: Vec<usize> = bytes
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b == b'\n')
                .map(|(i, _)| i)
                .collect();
            let target = newlines
                .get(1)
                .map(|&i| i + 60)
                .filter(|&i| i < bytes.len())
                .ok_or("journal too short to rot")?;
            bytes[target] ^= 0x01;
            std::fs::write(&journal, bytes).map_err(|e| format!("{CHILD_JOURNAL}: {e}"))?;
        }
    }

    run_campaign(exe, &dir, true)?;
    let summary = check_recovery(&dir, reference)?;

    // The damage classes must actually have skipped/truncated something —
    // a recovery that silently re-ran everything would also "match".
    let bench = read_to_string(&dir.join("BENCH-campaign.json"))?;
    let resume = &bench[bench.find("\"resume\": ").unwrap_or(0)..];
    match fault {
        StoreFault::Kill(_) => {}
        StoreFault::TornWrite | StoreFault::JournalRot => {
            if json_u64(resume, "records_truncated").unwrap_or(0) == 0 {
                return Err("damaged journal reported zero truncated records".to_string());
            }
            if json_u64(resume, "cells_skipped").unwrap_or(0) == 0 {
                return Err("resume served nothing from the journal".to_string());
            }
        }
    }
    Ok(summary)
}

// ---------------------------------------------------------- randomized sweep

/// SplitMix64: the sweep's only randomness source, so a `--seed` replays
/// the exact plan sequence.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draw one fuzzed fault class with a fuzzed trigger ordinal in 1..=40.
fn fuzz_kind(state: &mut u64) -> FaultKind {
    let at = 1 + splitmix(state) % 40;
    match splitmix(state) % 8 {
        0 => FaultKind::EnvPanic { at },
        1 => FaultKind::EnvStall { at },
        2 => FaultKind::CommitFlip { index: at as usize },
        3 => FaultKind::SnapshotCorrupt,
        4 => FaultKind::NoisePoison { after: at * 8 },
        5 => FaultKind::LostWakeup { at },
        6 => FaultKind::WorkerKill { at },
        _ => FaultKind::StackOverflow,
    }
}

/// The classifications a fuzzed plan is allowed to produce on a real
/// campaign cell. `Ok` is allowed wherever the fuzzed trigger may simply
/// never fire (single-core cells never rotate the token; a cold boot has
/// no snapshot to corrupt; environments that never syscall or
/// `wait_preempt` — e.g. the bus channel's pure load/compute loops —
/// never tick the interaction ordinal that arms env-level faults) — but
/// an `Ok` faulted cell must then be byte-identical to the healthy
/// reference, which the sweep enforces.
fn allowed_outcomes(kind: FaultKind) -> Vec<CellOutcome> {
    use CellOutcome as O;
    match kind {
        FaultKind::EnvPanic { .. } => vec![O::Panicked, O::EnvFailed, O::Ok],
        FaultKind::EnvStall { .. } => vec![O::TimedOut, O::Ok],
        FaultKind::CommitFlip { .. } => vec![O::ReplayDiverged],
        FaultKind::SnapshotCorrupt => vec![O::SnapshotCorrupt, O::Ok],
        FaultKind::NoisePoison { .. } => vec![O::Panicked, O::EnvFailed, O::Ok],
        FaultKind::LostWakeup { .. } => match tp_core::default_exec_mode() {
            // Without the coop driver there is no deadlock detector; the
            // watchdog is the legacy engine's (acceptable) backstop.
            ExecMode::Threads => vec![O::TimedOut, O::Ok],
            // The detector needs every environment suspended. A cell with a
            // spinning daemon (e.g. the bus sender's compute loop) turns a
            // wedged token into a livelock, which only the watchdog can
            // classify — `TimedOut` is the correct verdict there.
            ExecMode::Coop { .. } => vec![O::Deadlock, O::TimedOut, O::Ok],
        },
        FaultKind::WorkerKill { .. } => vec![O::Ok],
        FaultKind::StackOverflow => vec![O::StackOverflow, O::EnvFailed, O::Ok],
    }
}

/// A bit-exact fingerprint of a cell's results, for the healthy-cells-
/// byte-identical gate (`f64`s compared by bit pattern, not display).
fn fingerprint(channels: &[ChannelResult]) -> String {
    let mut s = String::new();
    for c in channels {
        let _ = writeln!(
            s,
            "{}/{}/{} v={:016x} b={:016x} leaks={} n={}",
            c.channel,
            c.mechanism,
            c.metric,
            c.value.to_bits(),
            c.baseline.to_bits(),
            c.leaks,
            c.samples
        );
    }
    s
}

/// The sweep universe: the four cheap registry experiments on two
/// platforms — eight real campaign cells, fast enough to re-run dozens of
/// times under fuzzed faults.
fn sweep_universe(defs: &[ExperimentDef]) -> Vec<(&ExperimentDef, Platform)> {
    const CHEAP: [&str; 4] = ["tlb", "btb", "bhb", "bus"];
    let mut u = Vec::new();
    for name in CHEAP {
        if let Some(d) = defs.iter().find(|d| d.name == name) {
            for p in [Platform::Haswell, Platform::Sabre] {
                if (d.supports)(p) {
                    u.push((d, p));
                }
            }
        }
    }
    u
}

/// Compare the reference pass's verdicts against the committed goldens,
/// when the sample scale matches the pinned one. Returns the number of
/// mismatches (0 when skipped).
fn check_reference_verdicts(cells: &[(&ExperimentDef, Platform, Vec<ChannelResult>)]) -> usize {
    let Ok((text, _)) = tp_bench::store::read_artifact("goldens/verdicts.json") else {
        eprintln!("[sweep: goldens/verdicts.json unreadable; reference-verdict gate skipped]");
        return 0;
    };
    let scale = tp_bench::util::effort();
    match campaign::golden_tp_samples(&text) {
        Some(pinned) if (pinned - scale).abs() < 1e-9 => {}
        pinned => {
            eprintln!(
                "[sweep: goldens pinned at TP_SAMPLES={pinned:?}, run at {scale}; \
                 reference-verdict gate skipped]"
            );
            return 0;
        }
    }
    let golden = campaign::parse_golden(&text);
    let mut mismatches = 0;
    for (d, p, channels) in cells {
        for c in channels {
            let key = (
                d.name.to_string(),
                p.key().to_string(),
                c.channel.to_string(),
                c.mechanism.to_string(),
            );
            match golden.get(&key) {
                Some(v) if v == c.verdict() => {}
                Some(v) => {
                    mismatches += 1;
                    eprintln!(
                        "sweep: reference verdict for {}/{}/{}/{} is {:?}, golden says {v:?}",
                        d.name,
                        p.key(),
                        c.channel,
                        c.mechanism,
                        c.verdict()
                    );
                }
                None => {} // platform-filtered goldens: absence is not a diff
            }
        }
    }
    mismatches
}

/// The randomized chaos sweep: fuzz `budget` seeded `(class, ordinal,
/// cell)` fault plans across real campaign cells. Gates: every faulted
/// cell classifies inside its allowed set (and the supervisor never
/// unwinds — the sweep itself is the "faulted campaigns exit 0" proof);
/// an `Ok` faulted cell and every interleaved healthy re-run must be
/// byte-identical to the healthy reference pass.
fn run_sweep(seed: u64, budget: usize) -> ExitCode {
    let defs = campaign::registry();
    let universe = sweep_universe(&defs);
    eprintln!(
        "[sweep: seed {seed:#x}, {budget} plan(s) over {} cell(s), executor {:?}]",
        universe.len(),
        tp_core::default_exec_mode()
    );

    // Healthy reference pass: fingerprints + per-cell wall times (which
    // derive the faulted runs' deadlines) + the golden-verdict gate.
    let mut reference: Vec<(String, f64)> = Vec::new();
    let mut ref_cells: Vec<(&ExperimentDef, Platform, Vec<ChannelResult>)> = Vec::new();
    for &(d, p) in &universe {
        let t0 = Instant::now();
        let run = d.run;
        let report = run_cell(d.name, p.key(), None, Duration::from_secs(600), move || {
            run(p)
        });
        let secs = t0.elapsed().as_secs_f64();
        let Some(channels) = report
            .channels
            .filter(|_| report.outcome == CellOutcome::Ok)
        else {
            eprintln!(
                "sweep: reference run of {} on {} came back {}: {}",
                d.name,
                p.key(),
                report.outcome.name(),
                report.error.as_deref().unwrap_or("no detail"),
            );
            return ExitCode::FAILURE;
        };
        reference.push((fingerprint(&channels), secs));
        ref_cells.push((d, p, channels));
        eprintln!("[sweep reference: {} on {} in {secs:.1}s]", d.name, p.key());
    }
    let mut failures = check_reference_verdicts(&ref_cells);

    let mut t = Table::new(&["Plan", "Cell", "Outcome", "Attempts", "Result"]);
    let mut state = seed;
    for i in 0..budget {
        let kind = fuzz_kind(&mut state);
        let idx = (splitmix(&mut state) % universe.len() as u64) as usize;
        let (d, p) = universe[idx];
        let plan = FaultPlan {
            kind,
            cell: Some((d.name.to_string(), p.key().to_string())),
        };
        // A stalled attempt burns its whole deadline, so bound it by the
        // cell's observed healthy runtime instead of the generous default.
        let deadline = Duration::from_secs_f64((reference[idx].1 * 4.0).clamp(2.0, 600.0));
        let run = d.run;
        let report = run_cell(d.name, p.key(), Some(&plan), deadline, move || run(p));
        let allowed = allowed_outcomes(kind);
        let mut verdict = if allowed.contains(&report.outcome) {
            "PASS"
        } else {
            failures += 1;
            eprintln!(
                "sweep: plan {plan} on {}/{} classified {} (allowed: {}): {}",
                d.name,
                p.key(),
                report.outcome.name(),
                allowed
                    .iter()
                    .map(|o| o.name())
                    .collect::<Vec<_>>()
                    .join(", "),
                report.error.as_deref().unwrap_or("no detail"),
            );
            "FAIL"
        };
        if verdict == "PASS"
            && report.outcome == CellOutcome::Ok
            && !matches!(kind, FaultKind::LostWakeup { .. })
        {
            // The fault never fired: the cell must be indistinguishable
            // from the healthy reference. (`lost-wakeup` is exempt: a
            // wedged token starves off-token environments, and when the
            // primaries can still finish the run completes `Ok` with
            // legitimately degraded data — the strong detector guarantees
            // are pinned on the dedicated pair cell instead.)
            let fp = fingerprint(&report.channels.unwrap_or_default());
            if fp != reference[idx].0 {
                failures += 1;
                verdict = "FAIL";
                eprintln!(
                    "sweep: plan {plan} on {}/{} came back ok but diverged from the reference",
                    d.name,
                    p.key()
                );
            }
        }
        t.row(&[
            plan.to_string(),
            format!("{}/{}", d.name, p.key()),
            report.outcome.name().to_string(),
            report.attempts.to_string(),
            verdict.to_string(),
        ]);

        // One rotating healthy cell per plan: fault injection is scoped
        // and thread-local, so sick plans must never contaminate healthy
        // cells — byte-identical to the reference, every time.
        let h = i % universe.len();
        let (hd, hp) = universe[h];
        let hrun = hd.run;
        let healthy = run_cell(
            hd.name,
            hp.key(),
            None,
            Duration::from_secs(600),
            move || hrun(hp),
        );
        let clean = healthy.outcome == CellOutcome::Ok
            && fingerprint(&healthy.channels.unwrap_or_default()) == reference[h].0;
        if !clean {
            failures += 1;
            eprintln!(
                "sweep: healthy cell {} on {} diverged from the reference after plan {plan} ({})",
                hd.name,
                hp.key(),
                healthy.outcome.name(),
            );
        }
    }

    println!("{}", t.render());
    if failures == 0 {
        println!("sweep: {budget} fuzzed plan(s) classified inside their allowed sets; healthy cells byte-identical");
        ExitCode::SUCCESS
    } else {
        println!("sweep: {failures} gate failure(s)");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    // The class matrix is driven by `TP_FAULT`; the randomized sweep by
    // `--sweep`. Anything else is the shared bad-flag convention (report
    // + exit 2) so a typo'd invocation fails loudly.
    let sweep = cli::parse_or_exit("chaos", || {
        let mut sweep: Option<(u64, usize)> = None;
        let mut seed = 0xC4A0_5EED_u64;
        let mut budget = 40_usize;
        let mut flags = false;
        let mut it = cli::ArgStream::from_env();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--sweep" => sweep = Some((0, 0)),
                "--seed" => {
                    seed = cli::parse_u64("--seed", &it.value("--seed")?)?;
                    flags = true;
                }
                "--budget" => {
                    budget = cli::parse_u64("--budget", &it.value("--budget")?)? as usize;
                    flags = true;
                }
                other => {
                    return Err(format!(
                        "unknown argument {other:?} (chaos takes --sweep [--seed N] \
                         [--budget N]; the class matrix is configured via TP_FAULT)"
                    ))
                }
            }
        }
        if sweep.is_none() && flags {
            return Err("--seed/--budget require --sweep".into());
        }
        if budget == 0 {
            return Err("--budget needs at least one plan".into());
        }
        Ok(sweep.map(|_| (seed, budget)))
    });
    if let Some((seed, budget)) = sweep {
        return run_sweep(seed, budget);
    }

    // `TP_FAULT` selects either one store-level class (parsed here) or one
    // in-process class (parsed by `FaultPlan`); unset runs everything.
    let raw_fault = std::env::var("TP_FAULT").ok();
    let store_only = raw_fault.as_deref().and_then(StoreFault::parse);

    let plans: Vec<FaultPlan> = if store_only.is_some() {
        Vec::new()
    } else {
        match FaultPlan::from_env() {
            Ok(Some(mut p)) => {
                if p.cell.take().is_some() {
                    eprintln!("[chaos: ignoring the :cell= scope; chaos runs synthetic cells]");
                }
                vec![p]
            }
            Ok(None) => FaultKind::all_defaults()
                .into_iter()
                .map(FaultPlan::new)
                .collect(),
            Err(e) => {
                eprintln!("chaos: {e}");
                return ExitCode::from(2);
            }
        }
    };
    let store_faults: Vec<StoreFault> = match store_only {
        Some(f) => vec![f],
        None if raw_fault.is_some() => Vec::new(),
        None => StoreFault::all(),
    };

    // A tight deadline keeps the env-stall class (3 watchdog-bounded
    // attempts) fast; `TP_CELL_TIMEOUT` still overrides for debugging.
    let deadline = cell_timeout_override().unwrap_or(Duration::from_secs(2));

    let mut t = Table::new(&["Fault", "Expected", "Classified", "Attempts", "Result"]);
    let mut quarantine: Vec<QuarantineEntry> = Vec::new();
    let mut failures = 0usize;
    for (i, plan) in plans.iter().enumerate() {
        let expected = expected_outcome(plan.kind);
        let seed = 0xC4A0_5000 + i as u64;
        if plan.kind == FaultKind::SnapshotCorrupt {
            // Prime the boot cache so the supervised run below restores a
            // (corrupted) snapshot instead of booting cold.
            if let Err(e) = probe_cell(seed) {
                eprintln!("chaos: cache-priming run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        let name = plan.kind.class_name();
        let report = run_cell(
            "chaos",
            "haswell",
            Some(plan),
            class_deadline(plan.kind, deadline),
            cell_body(plan.kind, seed),
        );
        if matches!(plan.kind, FaultKind::LostWakeup { .. }) {
            // The CI deadlock smoke diffs this line across coroutine
            // backends: same classification, same interaction ordinal.
            println!(
                "deadlock-detail: {}",
                report.error.as_deref().unwrap_or("no detail")
            );
        }
        let pass = report.outcome == expected;
        if !pass {
            failures += 1;
            eprintln!(
                "chaos: {} misclassified as {} (expected {}): {}",
                plan,
                report.outcome.name(),
                expected.name(),
                report.error.as_deref().unwrap_or("no detail"),
            );
        }
        if report.outcome != CellOutcome::Ok {
            supervise::note_quarantined();
            quarantine.push(QuarantineEntry {
                experiment: format!("chaos-{name}"),
                platform: "haswell".to_string(),
                outcome: report.outcome,
                attempts: report.attempts,
                error: report.error.unwrap_or_default(),
            });
        }
        t.row(&[
            plan.to_string(),
            expected.name().to_string(),
            report.outcome.name().to_string(),
            report.attempts.to_string(),
            if pass { "PASS" } else { "FAIL" }.to_string(),
        ]);
    }

    if !plans.is_empty() && raw_fault.is_none() {
        // Per-environment isolation: an env-panic that lands on a daemon
        // tenant of the fleet cell must *complete* with survivor-only
        // results — `EnvFailed`, one attempt, partial report instead of a
        // whole-cell quarantine.
        let p = FaultPlan::new(FaultKind::EnvPanic { at: 2 });
        let r = run_cell(
            "chaos-fleet",
            "haswell",
            Some(&p),
            Duration::from_secs(120),
            || fleet_cell(0xC4A0_51EE, ExecMode::default()),
        );
        let pass = r.outcome == CellOutcome::EnvFailed && r.channels.is_some() && r.attempts == 1;
        if !pass {
            failures += 1;
            eprintln!(
                "chaos: fleet isolation demo came back {} after {} attempt(s): {}",
                r.outcome.name(),
                r.attempts,
                r.error.as_deref().unwrap_or("no detail"),
            );
        }
        t.row(&[
            "env-panic@2 (fleet daemon)".to_string(),
            "env-failed".to_string(),
            r.outcome.name().to_string(),
            r.attempts.to_string(),
            if pass { "PASS" } else { "FAIL" }.to_string(),
        ]);
    }

    if !plans.is_empty() {
        // The healthy control: supervision must be transparent for a cell
        // that needs none of it.
        let before = supervise::counters();
        let healthy = run_cell(
            "chaos-healthy",
            "haswell",
            None,
            Duration::from_secs(120),
            || probe_cell(0xC4A0_50FF),
        );
        let after = supervise::counters();
        let healthy_ok = healthy.outcome == CellOutcome::Ok
            && healthy.attempts == 1
            && after.retries == before.retries;
        if !healthy_ok {
            failures += 1;
            eprintln!(
                "chaos: healthy control cell came back {} after {} attempt(s): {}",
                healthy.outcome.name(),
                healthy.attempts,
                healthy.error.as_deref().unwrap_or("no detail"),
            );
        }
        t.row(&[
            "(none)".to_string(),
            "ok".to_string(),
            healthy.outcome.name().to_string(),
            healthy.attempts.to_string(),
            if healthy_ok { "PASS" } else { "FAIL" }.to_string(),
        ]);

        match write_atomic(QUARANTINE_PATH, &quarantine_json(&quarantine)) {
            Ok(()) => eprintln!(
                "[wrote {QUARANTINE_PATH}: {} quarantined cell(s)]",
                quarantine.len()
            ),
            Err(e) => eprintln!("[failed to write {QUARANTINE_PATH}: {e}]"),
        }
    }

    // Store-level classes: injure a real campaign subprocess, resume it,
    // and require the reference artifacts back.
    if !store_faults.is_empty() {
        let setup = campaign_exe().and_then(|exe| {
            let base = std::env::temp_dir().join(format!("tp-chaos-store-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&base);
            eprintln!(
                "[store scenarios: reference campaign in {}]",
                base.display()
            );
            reference_run(&exe, &base).map(|r| (exe, base, r))
        });
        match setup {
            Err(e) => {
                failures += store_faults.len();
                eprintln!("chaos: store scenarios failed to set up: {e}");
                for f in &store_faults {
                    t.row(&[
                        f.name(),
                        "recovered".to_string(),
                        "setup-failed".to_string(),
                        "-".to_string(),
                        "FAIL".to_string(),
                    ]);
                }
            }
            Ok((exe, base, reference)) => {
                for &fault in &store_faults {
                    let res = run_store_fault(fault, &exe, &base, &reference);
                    let (classified, pass) = match &res {
                        Ok(summary) => {
                            eprintln!("[{}: recovered — {summary}]", fault.name());
                            ("recovered".to_string(), true)
                        }
                        Err(e) => {
                            failures += 1;
                            eprintln!("chaos: {} NOT recovered: {e}", fault.name());
                            ("not-recovered".to_string(), false)
                        }
                    };
                    t.row(&[
                        fault.name(),
                        "recovered".to_string(),
                        classified,
                        "-".to_string(),
                        if pass { "PASS" } else { "FAIL" }.to_string(),
                    ]);
                }
                let _ = std::fs::remove_dir_all(&base);
            }
        }
    }

    println!("{}", t.render());
    let total = plans.len() + store_faults.len();
    if failures == 0 {
        println!("chaos: all {total} fault class(es) classified correctly");
        ExitCode::SUCCESS
    } else {
        println!("chaos: {failures} classification failure(s)");
        ExitCode::FAILURE
    }
}
