//! Chaos harness: prove the campaign supervisor survives every fault class.
//!
//! ```text
//! cargo run --release -p tp-bench --bin chaos          # all five classes
//! TP_FAULT=env-stall@3 cargo run -p tp-bench --bin chaos
//! ```
//!
//! For each fault class (all of [`tp_core::FaultKind::all_defaults`], or
//! just the one named by `TP_FAULT`), the harness supervises a synthetic
//! cell with that fault armed and asserts the supervisor classifies it as
//! expected — then runs one healthy control cell and asserts it still
//! comes back clean, with zero retries. The quarantine ledger the faulted
//! cells produced is written to `goldens/quarantine.json` exactly as a
//! real campaign would. Any classification mismatch exits nonzero.

use std::process::ExitCode;
use std::time::Duration;
use tp_bench::supervise::{
    self, probe_cell, quarantine_json, run_cell, CellOutcome, QuarantineEntry,
};
use tp_bench::util::Table;
use tp_core::{FaultKind, FaultPlan};

/// Where the quarantine ledger is written (same path as the campaign's).
const QUARANTINE_PATH: &str = "goldens/quarantine.json";

fn expected_outcome(kind: FaultKind) -> CellOutcome {
    match kind {
        FaultKind::EnvPanic { .. } | FaultKind::NoisePoison { .. } => CellOutcome::Panicked,
        FaultKind::EnvStall { .. } => CellOutcome::TimedOut,
        FaultKind::CommitFlip { .. } => CellOutcome::ReplayDiverged,
        FaultKind::SnapshotCorrupt => CellOutcome::SnapshotCorrupt,
    }
}

fn main() -> ExitCode {
    let plans: Vec<FaultPlan> = match FaultPlan::from_env() {
        Ok(Some(mut p)) => {
            if p.cell.take().is_some() {
                eprintln!("[chaos: ignoring the :cell= scope; chaos runs synthetic cells]");
            }
            vec![p]
        }
        Ok(None) => FaultKind::all_defaults()
            .into_iter()
            .map(FaultPlan::new)
            .collect(),
        Err(e) => {
            eprintln!("chaos: {e}");
            return ExitCode::from(2);
        }
    };

    // A tight deadline keeps the env-stall class (3 watchdog-bounded
    // attempts) fast; `TP_CELL_TIMEOUT` still overrides for debugging.
    let deadline = std::env::var("TP_CELL_TIMEOUT")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .map_or(Duration::from_secs(2), Duration::from_secs_f64);

    let mut t = Table::new(&["Fault", "Expected", "Classified", "Attempts", "Result"]);
    let mut quarantine: Vec<QuarantineEntry> = Vec::new();
    let mut failures = 0usize;
    for (i, plan) in plans.iter().enumerate() {
        let expected = expected_outcome(plan.kind);
        let seed = 0xC4A0_5000 + i as u64;
        if plan.kind == FaultKind::SnapshotCorrupt {
            // Prime the boot cache so the supervised run below restores a
            // (corrupted) snapshot instead of booting cold.
            if let Err(e) = probe_cell(seed) {
                eprintln!("chaos: cache-priming run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        let name = plan.kind.class_name();
        let report = run_cell("chaos", "haswell", Some(plan), deadline, move || {
            probe_cell(seed)
        });
        let pass = report.outcome == expected;
        if !pass {
            failures += 1;
            eprintln!(
                "chaos: {} misclassified as {} (expected {}): {}",
                plan,
                report.outcome.name(),
                expected.name(),
                report.error.as_deref().unwrap_or("no detail"),
            );
        }
        if report.outcome != CellOutcome::Ok {
            supervise::note_quarantined();
            quarantine.push(QuarantineEntry {
                experiment: format!("chaos-{name}"),
                platform: "haswell".to_string(),
                outcome: report.outcome,
                attempts: report.attempts,
                error: report.error.unwrap_or_default(),
            });
        }
        t.row(&[
            plan.to_string(),
            expected.name().to_string(),
            report.outcome.name().to_string(),
            report.attempts.to_string(),
            if pass { "PASS" } else { "FAIL" }.to_string(),
        ]);
    }

    // The healthy control: supervision must be transparent for a cell
    // that needs none of it.
    let before = supervise::counters();
    let healthy = run_cell(
        "chaos-healthy",
        "haswell",
        None,
        Duration::from_secs(120),
        || probe_cell(0xC4A0_50FF),
    );
    let after = supervise::counters();
    let healthy_ok = healthy.outcome == CellOutcome::Ok
        && healthy.attempts == 1
        && after.retries == before.retries;
    if !healthy_ok {
        failures += 1;
        eprintln!(
            "chaos: healthy control cell came back {} after {} attempt(s): {}",
            healthy.outcome.name(),
            healthy.attempts,
            healthy.error.as_deref().unwrap_or("no detail"),
        );
    }
    t.row(&[
        "(none)".to_string(),
        "ok".to_string(),
        healthy.outcome.name().to_string(),
        healthy.attempts.to_string(),
        if healthy_ok { "PASS" } else { "FAIL" }.to_string(),
    ]);

    if let Some(dir) = std::path::Path::new(QUARANTINE_PATH).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(QUARANTINE_PATH, quarantine_json(&quarantine)) {
        Ok(()) => eprintln!(
            "[wrote {QUARANTINE_PATH}: {} quarantined cell(s)]",
            quarantine.len()
        ),
        Err(e) => eprintln!("[failed to write {QUARANTINE_PATH}: {e}]"),
    }

    println!("{}", t.render());
    if failures == 0 {
        println!(
            "chaos: all {} fault class(es) classified correctly",
            plans.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("chaos: {failures} classification failure(s)");
        ExitCode::FAILURE
    }
}
