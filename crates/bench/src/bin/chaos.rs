//! Chaos harness: prove the campaign supervisor survives every fault
//! class, and that the durable store recovers from process death and
//! journal damage.
//!
//! ```text
//! cargo run --release -p tp-bench --bin chaos    # all eight classes
//! TP_FAULT=env-stall@3 cargo run -p tp-bench --bin chaos
//! TP_FAULT=kill@2      cargo run --release -p tp-bench --bin chaos
//! ```
//!
//! Two families of faults:
//!
//! * **In-process** (all of [`tp_core::FaultKind::all_defaults`]): the
//!   harness supervises a synthetic cell with the fault armed and asserts
//!   the supervisor classifies it as expected — then runs one healthy
//!   control cell and asserts it still comes back clean, with zero
//!   retries. The quarantine ledger the faulted cells produced is written
//!   exactly as a real campaign would write it.
//! * **Store-level** (`kill@N`, `torn-write`, `journal-rot`): the harness
//!   runs the real `campaign` binary as a subprocess in a scratch
//!   directory, injures it — SIGKILL after its Nth journal record, a
//!   truncated journal tail, a flipped byte inside a journal record — and
//!   then runs `campaign --resume`, asserting the resumed run exits
//!   cleanly and produces the same artifacts (byte-identical goldens,
//!   results modulo wall times) as an undisturbed reference run.
//!
//! Any mismatch exits nonzero.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode, Stdio};
use std::time::{Duration, Instant};
use tp_bench::cli;
use tp_bench::store::write_atomic;
use tp_bench::supervise::{
    self, cell_timeout_override, probe_cell, quarantine_json, run_cell, CellOutcome,
    QuarantineEntry,
};
use tp_bench::util::Table;
use tp_core::{FaultKind, FaultPlan};

/// Where the quarantine ledger is written (same path as the campaign's).
const QUARANTINE_PATH: &str = "goldens/quarantine.json";

/// The journal path the campaign subprocess writes, relative to its cwd.
const CHILD_JOURNAL: &str = "goldens/campaign.journal";

/// The cell subset the store scenarios run: four cheap cells, enough to
/// kill a campaign between journal appends and still finish fast.
const CHILD_CELLS: &[&str] = &["--only", "tlb,btb", "--platform", "haswell,sabre"];

fn expected_outcome(kind: FaultKind) -> CellOutcome {
    match kind {
        FaultKind::EnvPanic { .. } | FaultKind::NoisePoison { .. } => CellOutcome::Panicked,
        FaultKind::EnvStall { .. } => CellOutcome::TimedOut,
        FaultKind::CommitFlip { .. } => CellOutcome::ReplayDiverged,
        FaultKind::SnapshotCorrupt => CellOutcome::SnapshotCorrupt,
    }
}

// ------------------------------------------------------ store fault classes

/// A process-level fault injected around the real `campaign` binary.
#[derive(Debug, Clone, Copy, PartialEq)]
enum StoreFault {
    /// SIGKILL the campaign subprocess once its journal holds N records.
    Kill(u64),
    /// Truncate the journal mid-record, as a crash mid-append would.
    TornWrite,
    /// Flip one byte inside a committed journal record.
    JournalRot,
}

impl StoreFault {
    fn all() -> Vec<StoreFault> {
        vec![
            StoreFault::Kill(2),
            StoreFault::TornWrite,
            StoreFault::JournalRot,
        ]
    }

    fn parse(raw: &str) -> Option<StoreFault> {
        match raw.trim() {
            "torn-write" => Some(StoreFault::TornWrite),
            "journal-rot" => Some(StoreFault::JournalRot),
            "kill" => Some(StoreFault::Kill(2)),
            other => other
                .strip_prefix("kill@")
                .and_then(|n| n.parse().ok())
                .map(StoreFault::Kill),
        }
    }

    fn name(self) -> String {
        match self {
            StoreFault::Kill(n) => format!("kill@{n}"),
            StoreFault::TornWrite => "torn-write".to_string(),
            StoreFault::JournalRot => "journal-rot".to_string(),
        }
    }

    /// Scratch directory name for this class's campaign runs.
    fn dir(self) -> String {
        match self {
            StoreFault::Kill(_) => "kill".to_string(),
            other => other.name(),
        }
    }
}

/// The real `campaign` binary, expected next to this executable.
fn campaign_exe() -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("cannot locate chaos binary: {e}"))?;
    let name = if cfg!(windows) {
        "campaign.exe"
    } else {
        "campaign"
    };
    let exe = me.with_file_name(name);
    if exe.exists() {
        Ok(exe)
    } else {
        Err(format!(
            "{} not found; build it first: cargo build --release -p tp-bench --bin campaign",
            exe.display()
        ))
    }
}

/// The effort scale forwarded to campaign subprocesses: the caller's
/// `TP_SAMPLES` when set, otherwise the CI default of 0.25.
fn child_samples() -> String {
    std::env::var("TP_SAMPLES")
        .ok()
        .filter(|s| !s.trim().is_empty())
        .unwrap_or_else(|| "0.25".to_string())
}

/// A campaign subprocess invocation in `dir`. `TP_THREADS=1` makes cells
/// finish one at a time, so `kill@N` lands between journal appends;
/// results are thread-count-invariant so the reference run matches.
fn campaign_cmd(exe: &Path, dir: &Path, resume: bool) -> Command {
    let mut c = Command::new(exe);
    c.current_dir(dir)
        .args(CHILD_CELLS)
        .args(["--json", "results.json", "--update-goldens", "goldens.json"])
        .env_remove("TP_FAULT")
        .env("TP_SAMPLES", child_samples())
        .env("TP_THREADS", "1")
        .stdout(Stdio::null());
    if resume {
        c.arg("--resume");
    }
    c
}

fn run_campaign(exe: &Path, dir: &Path, resume: bool) -> Result<(), String> {
    let out = campaign_cmd(exe, dir, resume)
        .output()
        .map_err(|e| format!("cannot spawn campaign: {e}"))?;
    if out.status.success() {
        Ok(())
    } else {
        Err(format!(
            "campaign in {} exited with {}:\n{}",
            dir.display(),
            out.status,
            String::from_utf8_lossy(&out.stderr),
        ))
    }
}

/// Strip wall-clock-dependent content from a `results.json`: the
/// `total_seconds` line, per-cell `"seconds"` fields, and the store
/// trailer (whose checksum covers the stripped bytes).
fn normalize_results(text: &str) -> String {
    let mut out = String::new();
    for line in text.lines() {
        if line.contains("\"total_seconds\"") || line.starts_with("{\"tp_store\": ") {
            continue;
        }
        let mut line = line.to_string();
        if let Some(i) = line.find("\"seconds\": ") {
            if let Some(j) = line[i..].find(", ") {
                line.replace_range(i..i + j + 2, "");
            }
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Extract `"name": <int>` from machine-written JSON.
fn json_u64(text: &str, name: &str) -> Option<u64> {
    let tag = format!("\"{name}\": ");
    let start = text.find(&tag)? + tag.len();
    let rest = &text[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn read_to_string(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

/// The undisturbed reference artifacts every damaged run must reproduce.
struct Reference {
    goldens: String,
    results_norm: String,
}

fn reference_run(exe: &Path, base: &Path) -> Result<Reference, String> {
    let dir = base.join("ref");
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    run_campaign(exe, &dir, false)?;
    Ok(Reference {
        goldens: read_to_string(&dir.join("goldens.json"))?,
        results_norm: normalize_results(&read_to_string(&dir.join("results.json"))?),
    })
}

/// Assert a resumed run reproduced the reference artifacts and report the
/// resume counters it recorded in its `BENCH-campaign.json`.
fn check_recovery(dir: &Path, reference: &Reference) -> Result<String, String> {
    let goldens = read_to_string(&dir.join("goldens.json"))?;
    if goldens != reference.goldens {
        return Err("resumed goldens.json differs from the reference run's".to_string());
    }
    let results = normalize_results(&read_to_string(&dir.join("results.json"))?);
    if results != reference.results_norm {
        return Err(
            "resumed results.json differs from the reference run's (beyond wall times)".to_string(),
        );
    }
    let bench = read_to_string(&dir.join("BENCH-campaign.json"))?;
    let resume = bench
        .find("\"resume\": ")
        .map(|i| &bench[i..])
        .ok_or("BENCH-campaign.json has no resume object")?;
    let skipped = json_u64(resume, "cells_skipped").unwrap_or(0);
    let recovered = json_u64(resume, "records_recovered").unwrap_or(0);
    let truncated = json_u64(resume, "records_truncated").unwrap_or(0);
    Ok(format!(
        "skipped {skipped}, recovered {recovered}, truncated {truncated}"
    ))
}

/// Run one store-level fault scenario end to end. Returns the human
/// summary of what the recovery accounted for.
fn run_store_fault(
    fault: StoreFault,
    exe: &Path,
    base: &Path,
    reference: &Reference,
) -> Result<String, String> {
    let dir = base.join(fault.dir());
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let journal = dir.join(CHILD_JOURNAL);

    match fault {
        StoreFault::Kill(n) => {
            // Kill the campaign once its journal holds n cell records
            // (header line + n), then prove --resume finishes the rest.
            let mut child = campaign_cmd(exe, &dir, false)
                .stderr(Stdio::null())
                .spawn()
                .map_err(|e| format!("cannot spawn campaign: {e}"))?;
            let deadline = Instant::now() + Duration::from_secs(300);
            let lines = |p: &Path| {
                std::fs::read(p)
                    .map(|b| b.iter().filter(|&&c| c == b'\n').count() as u64)
                    .unwrap_or(0)
            };
            let mut finished_early = false;
            loop {
                if child
                    .try_wait()
                    .map_err(|e| format!("wait on campaign: {e}"))?
                    .is_some()
                {
                    finished_early = true;
                    break;
                }
                // Header line + n cell records.
                if lines(&journal) > n {
                    let _ = child.kill();
                    let _ = child.wait();
                    break;
                }
                if Instant::now() > deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(format!(
                        "campaign never reached {n} journal record(s) before the deadline"
                    ));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            if finished_early {
                eprintln!("[kill@{n}: campaign finished before the kill; resume still verified]");
            }
        }
        StoreFault::TornWrite => {
            // A full run, then a crash-mid-append torn tail.
            run_campaign(exe, &dir, false)?;
            let bytes = std::fs::read(&journal).map_err(|e| format!("{CHILD_JOURNAL}: {e}"))?;
            if bytes.len() < 32 {
                return Err("journal too short to tear".to_string());
            }
            std::fs::write(&journal, &bytes[..bytes.len() - 7])
                .map_err(|e| format!("{CHILD_JOURNAL}: {e}"))?;
        }
        StoreFault::JournalRot => {
            // A full run, then one flipped byte inside the second cell
            // record: the record before it must be served, everything at
            // and after it recomputed.
            run_campaign(exe, &dir, false)?;
            let mut bytes = std::fs::read(&journal).map_err(|e| format!("{CHILD_JOURNAL}: {e}"))?;
            let newlines: Vec<usize> = bytes
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b == b'\n')
                .map(|(i, _)| i)
                .collect();
            let target = newlines
                .get(1)
                .map(|&i| i + 60)
                .filter(|&i| i < bytes.len())
                .ok_or("journal too short to rot")?;
            bytes[target] ^= 0x01;
            std::fs::write(&journal, bytes).map_err(|e| format!("{CHILD_JOURNAL}: {e}"))?;
        }
    }

    run_campaign(exe, &dir, true)?;
    let summary = check_recovery(&dir, reference)?;

    // The damage classes must actually have skipped/truncated something —
    // a recovery that silently re-ran everything would also "match".
    let bench = read_to_string(&dir.join("BENCH-campaign.json"))?;
    let resume = &bench[bench.find("\"resume\": ").unwrap_or(0)..];
    match fault {
        StoreFault::Kill(_) => {}
        StoreFault::TornWrite | StoreFault::JournalRot => {
            if json_u64(resume, "records_truncated").unwrap_or(0) == 0 {
                return Err("damaged journal reported zero truncated records".to_string());
            }
            if json_u64(resume, "cells_skipped").unwrap_or(0) == 0 {
                return Err("resume served nothing from the journal".to_string());
            }
        }
    }
    Ok(summary)
}

fn main() -> ExitCode {
    // Chaos is driven entirely by `TP_FAULT`; it takes no flags of its
    // own, but it shares the bad-flag convention (report + exit 2) so a
    // typo'd invocation fails loudly instead of running the full matrix.
    cli::parse_or_exit("chaos", || {
        let mut it = cli::ArgStream::from_env();
        match it.next() {
            Some(other) => Err(format!(
                "unknown argument {other:?} (chaos is configured via TP_FAULT)"
            )),
            None => Ok(()),
        }
    });

    // `TP_FAULT` selects either one store-level class (parsed here) or one
    // in-process class (parsed by `FaultPlan`); unset runs everything.
    let raw_fault = std::env::var("TP_FAULT").ok();
    let store_only = raw_fault.as_deref().and_then(StoreFault::parse);

    let plans: Vec<FaultPlan> = if store_only.is_some() {
        Vec::new()
    } else {
        match FaultPlan::from_env() {
            Ok(Some(mut p)) => {
                if p.cell.take().is_some() {
                    eprintln!("[chaos: ignoring the :cell= scope; chaos runs synthetic cells]");
                }
                vec![p]
            }
            Ok(None) => FaultKind::all_defaults()
                .into_iter()
                .map(FaultPlan::new)
                .collect(),
            Err(e) => {
                eprintln!("chaos: {e}");
                return ExitCode::from(2);
            }
        }
    };
    let store_faults: Vec<StoreFault> = match store_only {
        Some(f) => vec![f],
        None if raw_fault.is_some() => Vec::new(),
        None => StoreFault::all(),
    };

    // A tight deadline keeps the env-stall class (3 watchdog-bounded
    // attempts) fast; `TP_CELL_TIMEOUT` still overrides for debugging.
    let deadline = cell_timeout_override().unwrap_or(Duration::from_secs(2));

    let mut t = Table::new(&["Fault", "Expected", "Classified", "Attempts", "Result"]);
    let mut quarantine: Vec<QuarantineEntry> = Vec::new();
    let mut failures = 0usize;
    for (i, plan) in plans.iter().enumerate() {
        let expected = expected_outcome(plan.kind);
        let seed = 0xC4A0_5000 + i as u64;
        if plan.kind == FaultKind::SnapshotCorrupt {
            // Prime the boot cache so the supervised run below restores a
            // (corrupted) snapshot instead of booting cold.
            if let Err(e) = probe_cell(seed) {
                eprintln!("chaos: cache-priming run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        let name = plan.kind.class_name();
        let report = run_cell("chaos", "haswell", Some(plan), deadline, move || {
            probe_cell(seed)
        });
        let pass = report.outcome == expected;
        if !pass {
            failures += 1;
            eprintln!(
                "chaos: {} misclassified as {} (expected {}): {}",
                plan,
                report.outcome.name(),
                expected.name(),
                report.error.as_deref().unwrap_or("no detail"),
            );
        }
        if report.outcome != CellOutcome::Ok {
            supervise::note_quarantined();
            quarantine.push(QuarantineEntry {
                experiment: format!("chaos-{name}"),
                platform: "haswell".to_string(),
                outcome: report.outcome,
                attempts: report.attempts,
                error: report.error.unwrap_or_default(),
            });
        }
        t.row(&[
            plan.to_string(),
            expected.name().to_string(),
            report.outcome.name().to_string(),
            report.attempts.to_string(),
            if pass { "PASS" } else { "FAIL" }.to_string(),
        ]);
    }

    if !plans.is_empty() {
        // The healthy control: supervision must be transparent for a cell
        // that needs none of it.
        let before = supervise::counters();
        let healthy = run_cell(
            "chaos-healthy",
            "haswell",
            None,
            Duration::from_secs(120),
            || probe_cell(0xC4A0_50FF),
        );
        let after = supervise::counters();
        let healthy_ok = healthy.outcome == CellOutcome::Ok
            && healthy.attempts == 1
            && after.retries == before.retries;
        if !healthy_ok {
            failures += 1;
            eprintln!(
                "chaos: healthy control cell came back {} after {} attempt(s): {}",
                healthy.outcome.name(),
                healthy.attempts,
                healthy.error.as_deref().unwrap_or("no detail"),
            );
        }
        t.row(&[
            "(none)".to_string(),
            "ok".to_string(),
            healthy.outcome.name().to_string(),
            healthy.attempts.to_string(),
            if healthy_ok { "PASS" } else { "FAIL" }.to_string(),
        ]);

        match write_atomic(QUARANTINE_PATH, &quarantine_json(&quarantine)) {
            Ok(()) => eprintln!(
                "[wrote {QUARANTINE_PATH}: {} quarantined cell(s)]",
                quarantine.len()
            ),
            Err(e) => eprintln!("[failed to write {QUARANTINE_PATH}: {e}]"),
        }
    }

    // Store-level classes: injure a real campaign subprocess, resume it,
    // and require the reference artifacts back.
    if !store_faults.is_empty() {
        let setup = campaign_exe().and_then(|exe| {
            let base = std::env::temp_dir().join(format!("tp-chaos-store-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&base);
            eprintln!(
                "[store scenarios: reference campaign in {}]",
                base.display()
            );
            reference_run(&exe, &base).map(|r| (exe, base, r))
        });
        match setup {
            Err(e) => {
                failures += store_faults.len();
                eprintln!("chaos: store scenarios failed to set up: {e}");
                for f in &store_faults {
                    t.row(&[
                        f.name(),
                        "recovered".to_string(),
                        "setup-failed".to_string(),
                        "-".to_string(),
                        "FAIL".to_string(),
                    ]);
                }
            }
            Ok((exe, base, reference)) => {
                for &fault in &store_faults {
                    let res = run_store_fault(fault, &exe, &base, &reference);
                    let (classified, pass) = match &res {
                        Ok(summary) => {
                            eprintln!("[{}: recovered — {summary}]", fault.name());
                            ("recovered".to_string(), true)
                        }
                        Err(e) => {
                            failures += 1;
                            eprintln!("chaos: {} NOT recovered: {e}", fault.name());
                            ("not-recovered".to_string(), false)
                        }
                    };
                    t.row(&[
                        fault.name(),
                        "recovered".to_string(),
                        classified,
                        "-".to_string(),
                        if pass { "PASS" } else { "FAIL" }.to_string(),
                    ]);
                }
                let _ = std::fs::remove_dir_all(&base);
            }
        }
    }

    println!("{}", t.render());
    let total = plans.len() + store_faults.len();
    if failures == 0 {
        println!("chaos: all {total} fault class(es) classified correctly");
        ExitCode::SUCCESS
    } else {
        println!("chaos: {failures} classification failure(s)");
        ExitCode::FAILURE
    }
}
