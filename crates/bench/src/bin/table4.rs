//! Regenerates the paper's table4 (see DESIGN.md experiment index).
use std::process::ExitCode;

fn main() -> ExitCode {
    match tp_bench::channels::table4() {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("table4: simulation failed: {e}");
            ExitCode::FAILURE
        }
    }
}
