//! Regenerates the paper's table4 (see DESIGN.md experiment index).
fn main() {
    println!("{}", tp_bench::channels::table4());
}
