//! Campaign runner: every registered channel experiment × every
//! registered platform, with machine-readable results and a golden
//! verdict gate.
//!
//! ```text
//! campaign --list                         # what would run, and where
//! campaign                                # everything, all platforms
//! campaign --platform skylake             # one platform
//! campaign --only l1d,flush-latency       # a subset of experiments
//! campaign --json results.json            # write structured results
//! campaign --check goldens/verdicts.json  # fail on any verdict diff
//! campaign --update-goldens goldens/verdicts.json
//! campaign --resume                       # skip journaled cells
//! campaign --shard 0/2                    # run half the matrix
//! campaign --merge 2                      # fold shard journals + finish
//! ```
//!
//! `TP_SAMPLES` scales sample counts as everywhere else; the pinned
//! golden file is generated at `TP_SAMPLES=0.25` (what CI runs).
//!
//! Every cell runs under the campaign supervisor
//! ([`tp_bench::supervise`]): a panicking, hanging or corrupted cell is
//! classified, retried where transient, quarantined into
//! `goldens/quarantine.json`, and the campaign still completes with the
//! remaining cells' results. `TP_FAULT` injects a deterministic fault for
//! chaos-testing exactly that machinery (see `tp_core::fault`), and
//! `TP_CELL_TIMEOUT` overrides the per-cell wall-clock deadline that is
//! otherwise derived from the previous run's `BENCH-campaign.json`.
//!
//! Every completed cell is appended (checksummed, fsynced) to the
//! per-cell journal `goldens/campaign.journal` as it finishes, so a
//! campaign killed at any point resumes with `--resume` instead of
//! re-running finished work: the journal is replayed, torn records are
//! truncated, verified cells are skipped, and the final artifacts are
//! byte-identical (modulo wall times) to an uninterrupted run. `--shard
//! i/N` deterministically runs every Nth cell into a per-shard journal;
//! `--merge N` folds the shard journals together, runs anything still
//! missing, and emits the single unified artifacts. An advisory lock next
//! to each journal keeps concurrent campaigns from interleaving appends.

use std::process::ExitCode;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use tp_bench::campaign::{
    bench_json, check_goldens, golden_json, registry, results_json, ExperimentDef, ExperimentResult,
};
use tp_bench::cli;
use tp_bench::store::{
    self, read_artifact, write_atomic, CampaignLock, CellRecord, Journal, JournalHeader,
};
use tp_bench::supervise::{
    self, cell_deadline, parse_bench_history, quarantine_json, CellOutcome, QuarantineEntry,
};
use tp_bench::util::Table;
use tp_core::FaultPlan;
use tp_sim::Platform;

/// Where the quarantine ledger is written (next to the golden verdicts).
const QUARANTINE_PATH: &str = "goldens/quarantine.json";

/// The unsharded per-cell journal (shards append `.shard-i-of-N`).
const JOURNAL_PATH: &str = "goldens/campaign.journal";

/// How long to wait on the advisory lock before giving up.
const LOCK_TIMEOUT: Duration = Duration::from_secs(900);

struct Args {
    list: bool,
    only: Vec<String>,
    platforms: Vec<Platform>,
    json: Option<String>,
    check: Option<String>,
    update_goldens: Option<String>,
    resume: bool,
    shard: Option<(usize, usize)>,
    merge: Option<usize>,
}

fn parse_shard(spec: &str) -> Result<(usize, usize), String> {
    let (i, n) = spec
        .split_once('/')
        .ok_or_else(|| format!("--shard {spec:?} is not i/N (e.g. 0/2)"))?;
    let (i, n): (usize, usize) = match (i.parse(), n.parse()) {
        (Ok(i), Ok(n)) => (i, n),
        _ => return Err(format!("--shard {spec:?} is not i/N with integer i and N")),
    };
    if n == 0 || i >= n {
        return Err(format!("--shard {spec:?} needs 0 <= i < N"));
    }
    Ok((i, n))
}

fn parse_args() -> Result<Args, String> {
    let mut common = cli::Common::new().with_json();
    let mut args = Args {
        list: false,
        only: Vec::new(),
        platforms: Vec::new(),
        json: None,
        check: None,
        update_goldens: None,
        resume: false,
        shard: None,
        merge: None,
    };
    let mut it = cli::ArgStream::from_env();
    while let Some(arg) = it.next() {
        if common.accept(&arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--list" => args.list = true,
            "--resume" => args.resume = true,
            "--only" => {
                args.only
                    .extend(it.value("--only")?.split(',').map(str::to_string));
            }
            "--check" => args.check = Some(it.value("--check")?),
            "--update-goldens" => args.update_goldens = Some(it.value("--update-goldens")?),
            "--shard" => args.shard = Some(parse_shard(&it.value("--shard")?)?),
            "--merge" => {
                let n: usize = it
                    .value("--merge")?
                    .parse()
                    .map_err(|_| "--merge needs a shard count N".to_string())?;
                if n == 0 {
                    return Err("--merge needs N >= 1".into());
                }
                args.merge = Some(n);
            }
            other => {
                return Err(format!(
                    "unknown argument {other:?} (see --list usage in the module docs)"
                ))
            }
        }
    }
    args.platforms = common.platforms;
    args.json = common.json;
    if args.shard.is_some() && args.merge.is_some() {
        return Err("--shard and --merge are mutually exclusive".into());
    }
    if args.shard.is_some()
        && (args.json.is_some() || args.check.is_some() || args.update_goldens.is_some())
    {
        return Err(
            "--shard runs write only their journal; emit artifacts from --merge instead".into(),
        );
    }
    Ok(args)
}

fn shard_journal_path(i: usize, n: usize) -> String {
    format!("{JOURNAL_PATH}.shard-{i}-of-{n}")
}

fn print_list(defs: &[ExperimentDef], platforms: &[Platform]) {
    let mut t = Table::new(&["Name", "Cost", "Platforms", "Paper", "Title"]);
    for d in defs {
        let supported: Vec<&str> = platforms
            .iter()
            .filter(|&&p| (d.supports)(p))
            .map(|p| p.key())
            .collect();
        t.row(&[
            d.name.to_string(),
            format!("{}", d.cost),
            supported.join(","),
            d.paper.to_string(),
            d.title.to_string(),
        ]);
    }
    println!("{}", t.render());
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("campaign: {e}");
            return ExitCode::from(2);
        }
    };

    // Registry sanity: a malformed platform entry should fail loudly
    // before any experiment burns time on it.
    for &p in &args.platforms {
        let errs = p.config().validate();
        if !errs.is_empty() {
            eprintln!("campaign: platform {} fails validation: {errs:?}", p.key());
            return ExitCode::from(2);
        }
    }

    let mut defs = registry();
    if !args.only.is_empty() {
        for name in &args.only {
            if !defs.iter().any(|d| d.name == name) {
                eprintln!("campaign: unknown experiment {name:?}; see campaign --list");
                return ExitCode::from(2);
            }
        }
        defs.retain(|d| args.only.iter().any(|n| n == d.name));
    }

    if args.list {
        print_list(&defs, &args.platforms);
        return ExitCode::SUCCESS;
    }

    // The fault plan (chaos knob) must parse before any cell burns time.
    let plan = match FaultPlan::from_env() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("campaign: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(p) = &plan {
        eprintln!("[fault injection armed: {p}]");
    }

    // Per-cell deadlines derive from the previous run's wall times; a
    // missing or stale history degrades to a generous default.
    let history = read_artifact("BENCH-campaign.json")
        .map(|(t, _)| parse_bench_history(&t))
        .unwrap_or_default();

    // Work items keyed by registry × platform report order. The index is
    // assigned over the *full* supported matrix before any shard filter,
    // so shard i/N always owns the same deterministic slice of cells.
    let mut schedule: Vec<(usize, &ExperimentDef, Platform)> = Vec::new();
    for d in &defs {
        for &p in &args.platforms {
            if (d.supports)(p) {
                schedule.push((schedule.len(), d, p));
            }
        }
    }
    if let Some((i, n)) = args.shard {
        schedule.retain(|&(idx, _, _)| idx % n == i);
        eprintln!("[shard {i}/{n}: {} of the matrix's cells]", schedule.len());
    }

    // The journal this run appends to, guarded by its advisory lock.
    let journal_path = match args.shard {
        Some((i, n)) => shard_journal_path(i, n),
        None => JOURNAL_PATH.to_string(),
    };
    let _lock = match CampaignLock::acquire(format!("{journal_path}.lock"), LOCK_TIMEOUT) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("campaign: {e}");
            return ExitCode::from(2);
        }
    };

    // Replay whatever journals this invocation trusts: every shard journal
    // on --merge, plus this run's own journal on --resume. The own journal
    // is then reopened for append — a fresh run truncates it, a resumed run
    // rewrites the verified prefix and continues after it.
    let header = JournalHeader::current();
    let mut reports = Vec::new();
    if let Some(n) = args.merge {
        for i in 0..n {
            let path = shard_journal_path(i, n);
            let report = Journal::load(&path, &header);
            if report.records.is_empty() && report.truncated == 0 {
                eprintln!("[merge: shard journal {path} is missing or empty]");
            } else if let Some(why) = &report.why {
                eprintln!(
                    "[journal {path}: {why} — {} record(s) recovered, {} dropped and will recompute]",
                    report.recovered, report.truncated,
                );
            }
            store::note_load(&report);
            reports.push(report);
        }
    }
    let mut own_keys: std::collections::BTreeSet<(String, String)> = Default::default();
    let journal = if args.resume {
        Journal::open_resume(&journal_path, &header).map(|(j, report)| {
            own_keys = report.records.iter().map(CellRecord::key).collect();
            reports.push(report);
            j
        })
    } else {
        Journal::create(&journal_path, &header)
    };
    let journal = match journal {
        Ok(j) => Mutex::new(j),
        Err(e) => {
            eprintln!("campaign: cannot open journal {journal_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let completed = store::completed_cells(&reports);

    // Partition the schedule: journaled cells replay, the rest run.
    let mut replayed: Vec<(usize, ExperimentResult)> = Vec::new();
    let mut todo: Vec<(usize, &ExperimentDef, Platform)> = Vec::new();
    for &(idx, d, p) in &schedule {
        match completed.get(&(d.name.to_string(), p.key().to_string())) {
            Some(rec) => {
                store::note_cell_skipped();
                replayed.push((idx, ExperimentResult::from_record(d.name, p, rec)));
            }
            None => todo.push((idx, d, p)),
        }
    }
    if !replayed.is_empty() {
        eprintln!(
            "[resume: {} cell(s) replayed from the journal, {} still to run]",
            replayed.len(),
            todo.len()
        );
    }

    // Cells replayed from *other* journals (merged shards) land in this
    // run's own journal too, so the merged journal is itself a complete
    // resume point; cells already in the own journal's verified prefix were
    // rewritten by `open_resume` and must not be appended twice.
    {
        let mut j = journal.lock().expect("journal lock");
        for &(_, d, p) in &schedule {
            let key = (d.name.to_string(), p.key().to_string());
            if own_keys.contains(&key) {
                continue;
            }
            if let Some(rec) = completed.get(&key) {
                if let Err(e) = j.append(rec) {
                    eprintln!(
                        "[failed to journal replayed {} on {}: {e}]",
                        d.name,
                        p.key()
                    );
                }
            }
        }
    }

    // Heavy-first scheduling so expensive experiments overlap the cheap
    // tail; completed cells are journaled (checksummed + fsynced) the
    // moment they finish, so a SIGKILL between cells loses nothing.
    todo.sort_by_key(|&(_, d, _)| std::cmp::Reverse(d.cost));
    let t_all = Instant::now();
    type Cell = (usize, &'static str, Platform, f64, supervise::CellReport);
    let mut cells: Vec<Cell> = rayon::par_map(&todo, |&(i, d, p)| {
        let t0 = Instant::now();
        let deadline = cell_deadline(
            history
                .get(&(d.name.to_string(), p.key().to_string()))
                .copied(),
        );
        let run = d.run;
        let report = supervise::run_cell(d.name, p.key(), plan.as_ref(), deadline, move || run(p));
        let seconds = t0.elapsed().as_secs_f64();
        if report.outcome == CellOutcome::Ok {
            if let Some(channels) = &report.channels {
                let rec = CellRecord::new(d.name, p, seconds, channels);
                if let Err(e) = journal.lock().expect("journal lock").append(&rec) {
                    eprintln!("[failed to journal {} on {}: {e}]", d.name, p.key());
                }
            }
        }
        eprintln!("[{} on {}: {:.1}s]", d.name, p.key(), seconds);
        (i, d.name, p, seconds, report)
    });
    cells.sort_by_key(|&(i, ..)| i);
    let total_seconds = t_all.elapsed().as_secs_f64();

    // Partition: healthy cells feed the results; everything else goes to
    // the quarantine ledger and the campaign continues without it.
    let mut results: Vec<(usize, ExperimentResult)> = replayed;
    let mut quarantine: Vec<QuarantineEntry> = Vec::new();
    for (i, name, p, seconds, report) in cells {
        if report.outcome == CellOutcome::Ok {
            results.push((
                i,
                ExperimentResult {
                    experiment: name,
                    platform: p,
                    seconds,
                    channels: report.channels.unwrap_or_default(),
                },
            ));
        } else if report.outcome == CellOutcome::EnvFailed {
            // Graceful degradation: the cell completed over its surviving
            // environments. Report the partial results but do not journal
            // them — a resume must recompute the cell in full health.
            eprintln!(
                "[DEGRADED {} on {}: {}]",
                name,
                p.key(),
                report.error.as_deref().unwrap_or("no detail"),
            );
            results.push((
                i,
                ExperimentResult {
                    experiment: name,
                    platform: p,
                    seconds,
                    channels: report.channels.unwrap_or_default(),
                },
            ));
        } else {
            eprintln!(
                "[QUARANTINED {} on {}: {} after {} attempt(s): {}]",
                name,
                p.key(),
                report.outcome.name(),
                report.attempts,
                report.error.as_deref().unwrap_or("no detail"),
            );
            supervise::note_quarantined();
            quarantine.push(QuarantineEntry {
                experiment: name.to_string(),
                platform: p.key().to_string(),
                outcome: report.outcome,
                attempts: report.attempts,
                error: report.error.unwrap_or_default(),
            });
        }
    }
    results.sort_by_key(|&(i, _)| i);
    let results: Vec<ExperimentResult> = results.into_iter().map(|(_, r)| r).collect();

    if let Some((i, n)) = args.shard {
        // Shard runs produce only their journal; `--merge N` folds the
        // shards into the unified artifacts (and owns the golden gate).
        eprintln!(
            "[shard {i}/{n} done: {} cell(s) journaled to {journal_path}, {} quarantined, {:.1}s]",
            results.len(),
            quarantine.len(),
            total_seconds,
        );
        return if quarantine.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    // The ledger is written on every run, so a clean campaign visibly
    // overwrites the previous chaos run's entries with `[]`.
    match write_atomic(QUARANTINE_PATH, &quarantine_json(&quarantine)) {
        Ok(()) if quarantine.is_empty() => {}
        Ok(()) => eprintln!(
            "[wrote {QUARANTINE_PATH}: {} quarantined cell(s)]",
            quarantine.len()
        ),
        Err(e) => eprintln!("[failed to write {QUARANTINE_PATH}: {e}]"),
    }

    // Human-readable verdict table.
    let mut t = Table::new(&[
        "Experiment",
        "Platform",
        "Channel",
        "Mechanism",
        "Value",
        "Base",
        "Verdict",
    ]);
    for r in &results {
        for c in &r.channels {
            t.row(&[
                r.experiment.to_string(),
                r.platform.key().to_string(),
                c.channel.to_string(),
                c.mechanism.to_string(),
                format!(
                    "{:.1} {}",
                    c.value,
                    if c.metric == "M_mb" { "mb" } else { "%" }
                ),
                format!("{:.1}", c.baseline),
                c.verdict().to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    let res = store::resume_counters();
    eprintln!(
        "[campaign total {total_seconds:.1}s, {} experiment runs ({} replayed from the journal), {} threads, TP_SAMPLES={}]",
        results.len(),
        res.cells_skipped,
        tp_bench::util::threads(),
        tp_bench::util::effort()
    );

    // Per-cell wall times, mirroring reproduce_all's BENCH.json (CI
    // budgets the campaign total and keeps both files as artifacts).
    match write_atomic("BENCH-campaign.json", &bench_json(&results, total_seconds)) {
        Ok(()) => eprintln!("[wrote BENCH-campaign.json]"),
        Err(e) => eprintln!("[failed to write BENCH-campaign.json: {e}]"),
    }

    if let Some(path) = &args.json {
        let json = results_json(&results, total_seconds);
        if let Err(e) = write_atomic(path, &json) {
            eprintln!("campaign: failed to write {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("[wrote {path}]");
    }

    if let Some(path) = &args.update_goldens {
        if let Err(e) = write_atomic(path, &golden_json(&results)) {
            eprintln!("campaign: failed to write {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("[pinned goldens to {path}]");
    }

    if let Some(path) = &args.check {
        let golden = match read_artifact(path) {
            Ok((g, _)) => g,
            Err(e) => {
                eprintln!("campaign: cannot read golden file {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match check_goldens(&golden, &results) {
            Ok(n) => eprintln!("[goldens OK: {n} verdicts match {path}]"),
            Err(report) => {
                eprintln!("golden verdict check against {path} FAILED:\n{report}");
                return ExitCode::FAILURE;
            }
        }
    }

    ExitCode::SUCCESS
}
