//! Campaign runner: every registered channel experiment × every
//! registered platform, with machine-readable results and a golden
//! verdict gate.
//!
//! ```text
//! campaign --list                         # what would run, and where
//! campaign                                # everything, all platforms
//! campaign --platform skylake             # one platform
//! campaign --only l1d,flush-latency       # a subset of experiments
//! campaign --json results.json            # write structured results
//! campaign --check goldens/verdicts.json  # fail on any verdict diff
//! campaign --update-goldens goldens/verdicts.json
//! ```
//!
//! `TP_SAMPLES` scales sample counts as everywhere else; the pinned
//! golden file is generated at `TP_SAMPLES=0.25` (what CI runs).
//!
//! Every cell runs under the campaign supervisor
//! ([`tp_bench::supervise`]): a panicking, hanging or corrupted cell is
//! classified, retried where transient, quarantined into
//! `goldens/quarantine.json`, and the campaign still completes with the
//! remaining cells' results. `TP_FAULT` injects a deterministic fault for
//! chaos-testing exactly that machinery (see `tp_core::fault`), and
//! `TP_CELL_TIMEOUT` overrides the per-cell wall-clock deadline that is
//! otherwise derived from the previous run's `BENCH-campaign.json`.

use std::process::ExitCode;
use std::time::Instant;
use tp_bench::campaign::{
    bench_json, check_goldens, golden_json, registry, results_json, ExperimentDef, ExperimentResult,
};
use tp_bench::supervise::{
    self, cell_deadline, parse_bench_history, quarantine_json, CellOutcome, QuarantineEntry,
};
use tp_bench::util::Table;
use tp_core::FaultPlan;
use tp_sim::Platform;

/// Where the quarantine ledger is written (next to the golden verdicts).
const QUARANTINE_PATH: &str = "goldens/quarantine.json";

struct Args {
    list: bool,
    only: Vec<String>,
    platforms: Vec<Platform>,
    json: Option<String>,
    check: Option<String>,
    update_goldens: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        list: false,
        only: Vec::new(),
        platforms: Vec::new(),
        json: None,
        check: None,
        update_goldens: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--list" => args.list = true,
            "--only" => {
                args.only
                    .extend(value("--only")?.split(',').map(str::to_string));
            }
            "--platform" => {
                for key in value("--platform")?.split(',') {
                    let p = Platform::from_key(key).ok_or_else(|| {
                        let known: Vec<_> = Platform::ALL.iter().map(|p| p.key()).collect();
                        format!("unknown platform {key:?}; known: {}", known.join(", "))
                    })?;
                    args.platforms.push(p);
                }
            }
            "--json" => args.json = Some(value("--json")?),
            "--check" => args.check = Some(value("--check")?),
            "--update-goldens" => args.update_goldens = Some(value("--update-goldens")?),
            other => {
                return Err(format!(
                    "unknown argument {other:?} (see --list usage in the module docs)"
                ))
            }
        }
    }
    if args.platforms.is_empty() {
        args.platforms = Platform::ALL.to_vec();
    }
    Ok(args)
}

fn print_list(defs: &[ExperimentDef], platforms: &[Platform]) {
    let mut t = Table::new(&["Name", "Cost", "Platforms", "Paper", "Title"]);
    for d in defs {
        let supported: Vec<&str> = platforms
            .iter()
            .filter(|&&p| (d.supports)(p))
            .map(|p| p.key())
            .collect();
        t.row(&[
            d.name.to_string(),
            format!("{}", d.cost),
            supported.join(","),
            d.paper.to_string(),
            d.title.to_string(),
        ]);
    }
    println!("{}", t.render());
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("campaign: {e}");
            return ExitCode::from(2);
        }
    };

    // Registry sanity: a malformed platform entry should fail loudly
    // before any experiment burns time on it.
    for &p in &args.platforms {
        let errs = p.config().validate();
        if !errs.is_empty() {
            eprintln!("campaign: platform {} fails validation: {errs:?}", p.key());
            return ExitCode::from(2);
        }
    }

    let mut defs = registry();
    if !args.only.is_empty() {
        for name in &args.only {
            if !defs.iter().any(|d| d.name == name) {
                eprintln!("campaign: unknown experiment {name:?}; see campaign --list");
                return ExitCode::from(2);
            }
        }
        defs.retain(|d| args.only.iter().any(|n| n == d.name));
    }

    if args.list {
        print_list(&defs, &args.platforms);
        return ExitCode::SUCCESS;
    }

    // The fault plan (chaos knob) must parse before any cell burns time.
    let plan = match FaultPlan::from_env() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("campaign: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(p) = &plan {
        eprintln!("[fault injection armed: {p}]");
    }

    // Per-cell deadlines derive from the previous run's wall times; a
    // missing or stale history degrades to a generous default.
    let history = std::fs::read_to_string("BENCH-campaign.json")
        .map(|t| parse_bench_history(&t))
        .unwrap_or_default();

    // Work items keyed by registry × platform report order, scheduled
    // heavy-first so expensive experiments overlap the cheap tail.
    let mut schedule: Vec<(usize, &ExperimentDef, Platform)> = Vec::new();
    for d in &defs {
        for &p in &args.platforms {
            if (d.supports)(p) {
                schedule.push((schedule.len(), d, p));
            }
        }
    }
    schedule.sort_by_key(|&(_, d, _)| std::cmp::Reverse(d.cost));

    let t_all = Instant::now();
    type Cell = (usize, &'static str, Platform, f64, supervise::CellReport);
    let mut cells: Vec<Cell> = rayon::par_map(&schedule, |&(i, d, p)| {
        let t0 = Instant::now();
        let deadline = cell_deadline(
            history
                .get(&(d.name.to_string(), p.key().to_string()))
                .copied(),
        );
        let run = d.run;
        let report = supervise::run_cell(d.name, p.key(), plan.as_ref(), deadline, move || run(p));
        eprintln!(
            "[{} on {}: {:.1}s]",
            d.name,
            p.key(),
            t0.elapsed().as_secs_f64()
        );
        (i, d.name, p, t0.elapsed().as_secs_f64(), report)
    });
    cells.sort_by_key(|&(i, ..)| i);
    let total_seconds = t_all.elapsed().as_secs_f64();

    // Partition: healthy cells feed the results; everything else goes to
    // the quarantine ledger and the campaign continues without it.
    let mut results: Vec<ExperimentResult> = Vec::new();
    let mut quarantine: Vec<QuarantineEntry> = Vec::new();
    for (_, name, p, seconds, report) in cells {
        if report.outcome == CellOutcome::Ok {
            results.push(ExperimentResult {
                experiment: name,
                platform: p,
                seconds,
                channels: report.channels.unwrap_or_default(),
            });
        } else {
            eprintln!(
                "[QUARANTINED {} on {}: {} after {} attempt(s): {}]",
                name,
                p.key(),
                report.outcome.name(),
                report.attempts,
                report.error.as_deref().unwrap_or("no detail"),
            );
            supervise::note_quarantined();
            quarantine.push(QuarantineEntry {
                experiment: name.to_string(),
                platform: p.key().to_string(),
                outcome: report.outcome,
                attempts: report.attempts,
                error: report.error.unwrap_or_default(),
            });
        }
    }

    // The ledger is written on every run, so a clean campaign visibly
    // overwrites the previous chaos run's entries with `[]`.
    if let Some(dir) = std::path::Path::new(QUARANTINE_PATH).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(QUARANTINE_PATH, quarantine_json(&quarantine)) {
        Ok(()) if quarantine.is_empty() => {}
        Ok(()) => eprintln!(
            "[wrote {QUARANTINE_PATH}: {} quarantined cell(s)]",
            quarantine.len()
        ),
        Err(e) => eprintln!("[failed to write {QUARANTINE_PATH}: {e}]"),
    }

    // Human-readable verdict table.
    let mut t = Table::new(&[
        "Experiment",
        "Platform",
        "Channel",
        "Mechanism",
        "Value",
        "Base",
        "Verdict",
    ]);
    for r in &results {
        for c in &r.channels {
            t.row(&[
                r.experiment.to_string(),
                r.platform.key().to_string(),
                c.channel.to_string(),
                c.mechanism.to_string(),
                format!(
                    "{:.1} {}",
                    c.value,
                    if c.metric == "M_mb" { "mb" } else { "%" }
                ),
                format!("{:.1}", c.baseline),
                c.verdict().to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    eprintln!(
        "[campaign total {total_seconds:.1}s, {} experiment runs, {} threads, TP_SAMPLES={}]",
        results.len(),
        tp_bench::util::threads(),
        tp_bench::util::effort()
    );

    // Per-cell wall times, mirroring reproduce_all's BENCH.json (CI
    // budgets the campaign total and keeps both files as artifacts).
    match std::fs::write("BENCH-campaign.json", bench_json(&results, total_seconds)) {
        Ok(()) => eprintln!("[wrote BENCH-campaign.json]"),
        Err(e) => eprintln!("[failed to write BENCH-campaign.json: {e}]"),
    }

    if let Some(path) = &args.json {
        let json = results_json(&results, total_seconds);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("campaign: failed to write {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("[wrote {path}]");
    }

    if let Some(path) = &args.update_goldens {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(path, golden_json(&results)) {
            eprintln!("campaign: failed to write {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("[pinned goldens to {path}]");
    }

    if let Some(path) = &args.check {
        let golden = match std::fs::read_to_string(path) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("campaign: cannot read golden file {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match check_goldens(&golden, &results) {
            Ok(n) => eprintln!("[goldens OK: {n} verdicts match {path}]"),
            Err(report) => {
                eprintln!("golden verdict check against {path} FAILED:\n{report}");
                return ExitCode::FAILURE;
            }
        }
    }

    ExitCode::SUCCESS
}
