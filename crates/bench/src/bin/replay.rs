//! Record → replay → diff driver: time-travel debugging for the kernel.
//!
//! Boots the standard [`tp_core::replay::Genesis`] scenario, drives a
//! seeded random script through the logged kernel gateways, then replays
//! the commit log from genesis and diffs `state_hash()` at every commit.
//! A clean run exits 0 with `replay == original` on every platform; any
//! divergence is localized to the exact commit index where histories
//! split (`--flip` demonstrates this on a synthetically corrupted log).
//!
//! ```text
//! cargo run --release --bin replay -- --platform all --ops 200
//! cargo run --release --bin replay -- --platform sabre --flip 17
//! ```

use tp_bench::cli::{self, parse_u64};
use tp_core::replay::{self, Booted, Genesis};
use tp_core::{Commit, Snapshot};
use tp_sim::Platform;

struct Args {
    platforms: Vec<Platform>,
    seed: u64,
    ops: u64,
    snapshot_at: Option<u64>,
    flip: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut common = cli::Common::new().with_seed(0x5EED);
    let mut args = Args {
        platforms: Vec::new(),
        seed: 0,
        ops: 200,
        snapshot_at: None,
        flip: None,
    };
    let mut it = cli::ArgStream::from_env();
    while let Some(a) = it.next() {
        if common.accept(&a, &mut it)? {
            continue;
        }
        match a.as_str() {
            "--ops" => args.ops = parse_u64("--ops", &it.value("--ops")?)?,
            "--snapshot-at" => {
                args.snapshot_at = Some(parse_u64("--snapshot-at", &it.value("--snapshot-at")?)?);
            }
            "--flip" => args.flip = Some(parse_u64("--flip", &it.value("--flip")?)? as usize),
            "--help" | "-h" => {
                println!(
                    "usage: replay [--platform KEY|all] [--seed N] [--ops N] \
                     [--snapshot-at N] [--flip N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    args.platforms = common.platforms;
    args.seed = common.seed.expect("seed enabled");
    Ok(args)
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args = cli::parse_or_exit("replay", parse_args);
    let mut failed = false;

    for &platform in &args.platforms {
        let genesis = Genesis::new(platform);
        let Booted {
            mut machine,
            mut kernel,
            driver,
        } = genesis.boot();
        kernel.log.enable();

        // Record the original run, capturing the per-commit hash trace as
        // it happens (each script step issues at most one top-level
        // gateway call, so hashes align 1:1 with commits).
        let mut rng = args.seed ^ (platform as u64).wrapping_mul(0x9E37);
        let mut trace: Vec<u64> = Vec::new();
        let mut snapshot: Option<(Snapshot, u64)> = None;
        for i in 0..args.ops {
            let (x, y, z) = (splitmix(&mut rng), splitmix(&mut rng), splitmix(&mut rng));
            driver.step(&mut machine, &mut kernel, x, y, z);
            while trace.len() < kernel.log.len() {
                trace.push(kernel.state_hash());
            }
            if args.snapshot_at == Some(i) {
                snapshot = Some((Snapshot::take(&machine, &kernel, kernel.log.len()), rng));
            }
        }
        let original_hash = kernel.state_hash();
        let mut commits: Vec<Commit> = kernel.log.take();

        if let Some(flip) = args.flip {
            if flip < commits.len() {
                commits[flip] = Commit::Signal {
                    ntfn: tp_core::objects::NtfnId(0),
                    badge: 0xDEAD_BEEF,
                };
                println!(
                    "[{}] flipped commit #{flip} for demonstration",
                    platform.key()
                );
            }
        }

        // Replay from genesis and diff hashes at every commit.
        let (rm, rk) = replay::replay(&genesis, &commits);
        let replay_hash = rk.state_hash();
        let ok = replay_hash == original_hash && rm.cycles(0) == machine.cycles(0);
        println!(
            "[{}] {} commits | original {:016x} | replay {:016x} | {}",
            platform.key(),
            commits.len(),
            original_hash,
            replay_hash,
            if ok { "MATCH" } else { "DIVERGED" }
        );
        if !ok {
            match replay::replay_diff(&genesis, &commits, &trace) {
                Some(d) => println!(
                    "[{}]   first divergence at commit #{}: {:?}\n[{}]   expected {:016x}, got {:016x}",
                    platform.key(),
                    d.index,
                    d.commit,
                    platform.key(),
                    d.expected,
                    d.actual
                ),
                None => println!(
                    "[{}]   per-commit trace matches; divergence is outside logged ops",
                    platform.key()
                ),
            }
            failed = true;
        }

        // Snapshot/resume equivalence: fast-forward the remaining script
        // from the checkpoint and compare against straight-through.
        if let Some((snap, rng_at)) = snapshot {
            let (mut m2, mut k2) = snap.resume();
            let mut rng2 = rng_at;
            let start = args.snapshot_at.unwrap_or(0) + 1;
            for _ in start..args.ops {
                let (x, y, z) = (
                    splitmix(&mut rng2),
                    splitmix(&mut rng2),
                    splitmix(&mut rng2),
                );
                driver.step(&mut m2, &mut k2, x, y, z);
            }
            let resumed = k2.state_hash();
            let ok = resumed == original_hash;
            println!(
                "[{}] snapshot@{} (cursor {}, hash {:016x}) resume -> {:016x} | {}",
                platform.key(),
                start - 1,
                snap.cursor,
                snap.hash,
                resumed,
                if ok { "MATCH" } else { "DIVERGED" }
            );
            failed |= !ok;
        }
    }

    if failed && args.flip.is_none() {
        std::process::exit(1);
    }
}
