//! Regenerates the paper's fig5 (see DESIGN.md experiment index).
fn main() {
    println!("{}", tp_bench::channels::fig5());
}
