//! Regenerates the paper's fig5 (see DESIGN.md experiment index).
use std::process::ExitCode;

fn main() -> ExitCode {
    match tp_bench::channels::fig5() {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fig5: simulation failed: {e}");
            ExitCode::FAILURE
        }
    }
}
