//! Regenerates every table and figure of the paper in one run.
//!
//! Set `TP_SAMPLES=0.25` for a quick pass or `TP_SAMPLES=4` for higher
//! statistical resolution.
/// One experiment: display name and the function regenerating it.
type Experiment = (&'static str, fn() -> String);

fn main() {
    let experiments: Vec<Experiment> = vec![
        ("table1", tp_bench::tables::table1),
        ("table2", tp_bench::tables::table2),
        ("fig3", tp_bench::channels::fig3),
        ("table3", tp_bench::channels::table3),
        ("fig4", tp_bench::channels::fig4),
        ("fig5", tp_bench::channels::fig5),
        ("table4", tp_bench::channels::table4),
        ("fig6", tp_bench::channels::fig6),
        ("table5", tp_bench::tables::table5),
        ("table6", tp_bench::tables::table6),
        ("table7", tp_bench::tables::table7),
        ("fig7", tp_bench::splash::fig7),
        ("table8", tp_bench::splash::table8),
        ("ablations", tp_bench::channels::ablations),
    ];
    for (name, f) in experiments {
        let t0 = std::time::Instant::now();
        let report = f();
        println!("==================== {name} ====================");
        println!("{report}");
        eprintln!("[{name} took {:.1}s]", t0.elapsed().as_secs_f64());
    }
}
