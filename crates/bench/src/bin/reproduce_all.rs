//! Regenerates every table and figure of the paper in one run.
//!
//! Set `TP_SAMPLES=0.25` for a quick pass or `TP_SAMPLES=4` for higher
//! statistical resolution, and `TP_THREADS` to bound the worker count
//! (`TP_THREADS=1` runs fully sequentially). The independent experiments
//! run concurrently but their reports are printed in paper order, so
//! stdout is bit-identical for every thread count; per-experiment timings
//! go to stderr and to a machine-readable `BENCH.json` in the working
//! directory, which CI uses as a perf-smoke budget check.
//!
//! A failing simulation no longer tears the whole run down: the failing
//! experiment is named on stderr, the rest still print, and the process
//! exits nonzero.

use std::process::ExitCode;
use std::time::Instant;
use tp_core::SimError;

/// One experiment: display name and the function regenerating it.
type Experiment = (&'static str, fn() -> Result<String, SimError>);

// The table generators drive closed-form models and infallible channel
// summaries; shim them into the fallible experiment signature.
fn table1() -> Result<String, SimError> {
    Ok(tp_bench::tables::table1())
}
fn table2() -> Result<String, SimError> {
    Ok(tp_bench::tables::table2())
}
fn table5() -> Result<String, SimError> {
    Ok(tp_bench::tables::table5())
}
fn table6() -> Result<String, SimError> {
    Ok(tp_bench::tables::table6())
}
fn table7() -> Result<String, SimError> {
    Ok(tp_bench::tables::table7())
}

/// Wall-time record of one run, serialised by hand (no JSON dependency)
/// into `BENCH.json`.
///
/// Per-experiment `seconds` are wall times measured *while the
/// experiments run concurrently*, so with `threads > 1` they overlap and
/// can sum to more than `total_seconds`; refresh pinned per-experiment
/// numbers from a `TP_THREADS=1` run. `total_seconds` is always honest.
fn bench_json(per_exp: &[(&str, f64)], total_s: f64) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"tp_samples\": {},\n",
        tp_bench::util::effort()
    ));
    s.push_str(&format!("  \"threads\": {},\n", tp_bench::util::threads()));
    s.push_str(&format!("  \"total_seconds\": {total_s:.3},\n"));
    s.push_str("  \"experiments\": [\n");
    for (i, (name, secs)) in per_exp.iter().enumerate() {
        let comma = if i + 1 < per_exp.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"name\": \"{name}\", \"seconds\": {secs:.3}}}{comma}\n"
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() -> ExitCode {
    let experiments: Vec<Experiment> = vec![
        ("table1", table1),
        ("table2", table2),
        ("fig3", tp_bench::channels::fig3),
        ("table3", tp_bench::channels::table3),
        ("fig4", tp_bench::channels::fig4),
        ("fig5", tp_bench::channels::fig5),
        ("table4", tp_bench::channels::table4),
        ("fig6", tp_bench::channels::fig6),
        ("table5", table5),
        ("table6", table6),
        ("table7", table7),
        ("fig7", tp_bench::splash::fig7),
        ("table8", tp_bench::splash::table8),
        ("ablations", tp_bench::channels::ablations),
    ];
    let t_all = Instant::now();
    // Every experiment is independent and internally seeded, so they can
    // run concurrently; reports are printed in paper order below.
    let results: Vec<(Result<String, SimError>, f64)> = rayon::par_map(&experiments, |(_, f)| {
        let t0 = Instant::now();
        let report = f();
        (report, t0.elapsed().as_secs_f64())
    });
    let total_s = t_all.elapsed().as_secs_f64();

    let mut per_exp: Vec<(&str, f64)> = Vec::with_capacity(experiments.len());
    let mut failed: Vec<&str> = Vec::new();
    for ((name, _), (report, secs)) in experiments.iter().zip(&results) {
        match report {
            Ok(report) => {
                println!("==================== {name} ====================");
                println!("{report}");
                eprintln!("[{name} took {secs:.1}s]");
            }
            Err(e) => {
                eprintln!("[{name} FAILED after {secs:.1}s: {e}]");
                failed.push(name);
            }
        }
        per_exp.push((name, *secs));
    }
    eprintln!(
        "[reproduce_all total {total_s:.1}s, {} threads, TP_SAMPLES={}]",
        tp_bench::util::threads(),
        tp_bench::util::effort()
    );

    let json = bench_json(&per_exp, total_s);
    match tp_bench::store::write_atomic("BENCH.json", &json) {
        Ok(()) => eprintln!("[wrote BENCH.json]"),
        Err(e) => eprintln!("[failed to write BENCH.json: {e}]"),
    }

    if failed.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "reproduce_all: {} experiment(s) failed: {}",
            failed.len(),
            failed.join(", ")
        );
        ExitCode::FAILURE
    }
}
