//! Regenerates the paper's table6 (see DESIGN.md experiment index).
fn main() {
    println!("{}", tp_bench::tables::table6());
}
