//! Regenerates the paper's table1 (see DESIGN.md experiment index).
fn main() {
    println!("{}", tp_bench::tables::table1());
}
