//! Regenerates the paper's fig7 (see DESIGN.md experiment index).
use std::process::ExitCode;

fn main() -> ExitCode {
    match tp_bench::splash::fig7() {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fig7: simulation failed: {e}");
            ExitCode::FAILURE
        }
    }
}
