//! Regenerates the paper's fig7 (see DESIGN.md experiment index).
fn main() {
    println!("{}", tp_bench::splash::fig7());
}
