//! Regenerates the paper's table3 (see DESIGN.md experiment index).
use std::process::ExitCode;

fn main() -> ExitCode {
    match tp_bench::channels::table3() {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("table3: simulation failed: {e}");
            ExitCode::FAILURE
        }
    }
}
