//! Regenerates the paper's table3 (see DESIGN.md experiment index).
fn main() {
    println!("{}", tp_bench::channels::table3());
}
