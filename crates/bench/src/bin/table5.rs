//! Regenerates the paper's table5 (see DESIGN.md experiment index).
fn main() {
    println!("{}", tp_bench::tables::table5());
}
