//! Regenerates the paper's table8 (see DESIGN.md experiment index).
fn main() {
    println!("{}", tp_bench::splash::table8());
}
