//! Regenerates the paper's table8 (see DESIGN.md experiment index).
use std::process::ExitCode;

fn main() -> ExitCode {
    match tp_bench::splash::table8() {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("table8: simulation failed: {e}");
            ExitCode::FAILURE
        }
    }
}
