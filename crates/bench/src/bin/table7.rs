//! Regenerates the paper's table7 (see DESIGN.md experiment index).
fn main() {
    println!("{}", tp_bench::tables::table7());
}
