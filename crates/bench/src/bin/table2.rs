//! Regenerates the paper's table2 (see DESIGN.md experiment index).
fn main() {
    println!("{}", tp_bench::tables::table2());
}
