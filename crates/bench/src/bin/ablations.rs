//! Per-mechanism ablations of the time-protection suite (see DESIGN.md).
fn main() {
    println!("{}", tp_bench::channels::ablations());
}
