//! Per-mechanism ablations of the time-protection suite (see DESIGN.md).
use std::process::ExitCode;

fn main() -> ExitCode {
    match tp_bench::channels::ablations() {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ablations: simulation failed: {e}");
            ExitCode::FAILURE
        }
    }
}
