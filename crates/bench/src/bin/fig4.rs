//! Regenerates the paper's fig4 (see DESIGN.md experiment index).
fn main() {
    println!("{}", tp_bench::channels::fig4());
}
