//! Regenerates the paper's fig4 (see DESIGN.md experiment index).
use std::process::ExitCode;

fn main() -> ExitCode {
    match tp_bench::channels::fig4() {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fig4: simulation failed: {e}");
            ExitCode::FAILURE
        }
    }
}
