//! Regenerates the paper's fig3 (see DESIGN.md experiment index).
fn main() {
    println!("{}", tp_bench::channels::fig3());
}
