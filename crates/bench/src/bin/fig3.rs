//! Regenerates the paper's fig3 (see DESIGN.md experiment index).
use std::process::ExitCode;

fn main() -> ExitCode {
    match tp_bench::channels::fig3() {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fig3: simulation failed: {e}");
            ExitCode::FAILURE
        }
    }
}
