//! The campaign supervisor: run every cell to a verdict, never to a hang.
//!
//! A *cell* is one experiment × platform combination. The supervisor runs
//! each cell on its own worker thread under `catch_unwind` and a
//! wall-clock watchdog, classifies every failure into a [`CellOutcome`],
//! retries transient classes with deterministically bumped seeds, and
//! hands the campaign binary enough structure to quarantine the cell and
//! keep going — a mega-campaign always completes with partial results.
//!
//! The state machine per cell:
//!
//! ```text
//!            ┌────────────── retry (≤2, seed-bumped) ──────────────┐
//!            ▼                                                     │
//!   spawn → run ─ Ok ──────────→ selfchecks ──→ Ok                 │
//!            │                     │   │                           │
//!            │                     │   └ fallback seen → SnapshotCorrupt
//!            │                     └ replay diverges   → ReplayDiverged
//!            ├─ SimError(watchdog) / recv timeout → TimedOut ──────┤
//!            └─ panic / SimError(program)         → Panicked ──────┘
//! ```
//!
//! All counters feed the `supervisor` object of `BENCH-campaign.json`; a
//! healthy campaign reports zeroes everywhere and CI gates on that.

use crate::campaign::ChannelResult;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use tp_core::{fault, FaultKind, FaultPlan, SimError, SimErrorKind};

/// Maximum attempts per cell: the first run plus two seed-bumped retries.
pub const MAX_ATTEMPTS: u32 = 3;

/// Seed-salt stride between attempts. Attempt `n` salts every vote seed
/// with `n * RETRY_SALT_STRIDE`; attempt 0 therefore runs the canonical
/// seeds and is byte-identical to an unsupervised run.
pub const RETRY_SALT_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

thread_local! {
    /// The seed salt for the attempt running on this thread (0 outside a
    /// retry). Read by the campaign's `vote` when deriving channel seeds.
    static RETRY_SALT: Cell<u64> = const { Cell::new(0) };
}

/// Set the retry salt for work subsequently run on this thread.
pub fn set_retry_salt(salt: u64) {
    RETRY_SALT.with(|c| c.set(salt));
}

/// The retry salt of the current thread (0 outside a supervised retry).
#[must_use]
pub fn retry_salt() -> u64 {
    RETRY_SALT.with(Cell::get)
}

static RETRIES: AtomicU64 = AtomicU64::new(0);
static TIMEOUTS: AtomicU64 = AtomicU64::new(0);
static PANICS: AtomicU64 = AtomicU64::new(0);
static SNAPSHOT_CORRUPT: AtomicU64 = AtomicU64::new(0);
static REPLAY_DIVERGED: AtomicU64 = AtomicU64::new(0);
static QUARANTINED: AtomicU64 = AtomicU64::new(0);
static ENV_FAILED: AtomicU64 = AtomicU64::new(0);
static DEADLOCKS: AtomicU64 = AtomicU64::new(0);
static STACK_OVERFLOWS: AtomicU64 = AtomicU64::new(0);

/// Process-wide supervisor accounting, serialised into
/// `BENCH-campaign.json` as the `supervisor` object.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorCounters {
    /// Retried attempts (beyond each cell's first).
    pub retries: u64,
    /// Attempts abandoned by the watchdog (engine or host side).
    pub timeouts: u64,
    /// Attempts that panicked (host panic or simulated-program failure).
    pub panics: u64,
    /// Cells that completed only after a cold-boot fallback.
    pub snapshot_corrupt: u64,
    /// Cells whose commit log failed the replay selfcheck.
    pub replay_diverged: u64,
    /// Cells written to the quarantine ledger.
    pub quarantined: u64,
    /// Cells that completed with at least one environment failed in
    /// isolation (partial results over the survivors).
    pub env_failed: u64,
    /// Attempts classified as a deterministic scheduler deadlock.
    pub deadlocks: u64,
    /// Attempts killed by a dead stack guard canary.
    pub stack_overflows: u64,
}

/// Snapshot the supervisor counters.
#[must_use]
pub fn counters() -> SupervisorCounters {
    SupervisorCounters {
        retries: RETRIES.load(Ordering::Relaxed),
        timeouts: TIMEOUTS.load(Ordering::Relaxed),
        panics: PANICS.load(Ordering::Relaxed),
        snapshot_corrupt: SNAPSHOT_CORRUPT.load(Ordering::Relaxed),
        replay_diverged: REPLAY_DIVERGED.load(Ordering::Relaxed),
        quarantined: QUARANTINED.load(Ordering::Relaxed),
        env_failed: ENV_FAILED.load(Ordering::Relaxed),
        deadlocks: DEADLOCKS.load(Ordering::Relaxed),
        stack_overflows: STACK_OVERFLOWS.load(Ordering::Relaxed),
    }
}

/// Record that one cell was written to the quarantine ledger.
pub fn note_quarantined() {
    QUARANTINED.fetch_add(1, Ordering::Relaxed);
}

/// The supervisor's classification of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellOutcome {
    /// The cell completed and passed every selfcheck.
    Ok,
    /// Every attempt panicked (host panic or simulated-program failure).
    Panicked,
    /// Every attempt was stopped by the watchdog (or abandoned outright).
    TimedOut,
    /// A warm-boot snapshot failed its `state_hash()` check; the cell
    /// completed on the cold-boot fallback but is flagged for review.
    SnapshotCorrupt,
    /// The commit-log replay selfcheck found a diverging commit.
    ReplayDiverged,
    /// The cell completed, but one or more non-primary environments failed
    /// in isolation: partial results over the survivors, not a quarantine.
    EnvFailed,
    /// Every attempt ended in a deterministic scheduler deadlock (the coop
    /// driver proved no environment can ever be admitted again).
    Deadlock,
    /// Every attempt died on a clobbered stack guard canary.
    StackOverflow,
}

impl CellOutcome {
    /// Stable name used in the quarantine ledger.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CellOutcome::Ok => "ok",
            CellOutcome::Panicked => "panicked",
            CellOutcome::TimedOut => "timed-out",
            CellOutcome::SnapshotCorrupt => "snapshot-corrupt",
            CellOutcome::ReplayDiverged => "replay-diverged",
            CellOutcome::EnvFailed => "env-failed",
            CellOutcome::Deadlock => "deadlock",
            CellOutcome::StackOverflow => "stack-overflow",
        }
    }
}

/// What the supervisor learned about one cell.
#[derive(Debug)]
pub struct CellReport {
    /// Final classification.
    pub outcome: CellOutcome,
    /// The cell's results, when an attempt completed (present for
    /// [`CellOutcome::Ok`] and for the degraded-but-complete classes).
    pub channels: Option<Vec<ChannelResult>>,
    /// Attempts consumed (1 ⇒ no retry).
    pub attempts: u32,
    /// Environments that failed in isolation during the reported attempt
    /// (non-zero only for [`CellOutcome::EnvFailed`]).
    pub env_failed: u64,
    /// Human-readable failure description for non-`Ok` outcomes.
    pub error: Option<String>,
}

enum Attempt {
    /// Completed: channels, whether a cold-boot fallback was seen, and how
    /// many environments failed in isolation.
    Done(Vec<ChannelResult>, bool, u64),
    Panicked(String),
    TimedOut(String),
    Deadlocked(String),
    StackOverflow(String),
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_attempt(
    armed: Option<FaultKind>,
    deadline: Duration,
    salt: u64,
    f: Arc<dyn Fn() -> Result<Vec<ChannelResult>, SimError> + Send + Sync>,
) -> Attempt {
    let fallback_before = tp_core::boot_stats().fallback_boots;
    let env_failed_before = tp_core::health_stats().env_failed;
    let (tx, rx) = mpsc::channel();
    let cutoff = Instant::now() + deadline;
    std::thread::spawn(move || {
        fault::arm(armed);
        fault::set_deadline(Some(cutoff));
        set_retry_salt(salt);
        let r = catch_unwind(AssertUnwindSafe(|| f()));
        let _ = tx.send(r);
    });
    // Grace beyond the engine deadline: the engine watchdog should fire
    // first and return a classified error; the host-side timeout is the
    // backstop for a worker wedged outside the engine. A timed-out worker
    // is abandoned (detached), never joined.
    let grace = deadline + deadline / 4 + Duration::from_secs(10);
    match rx.recv_timeout(grace) {
        Err(_) => Attempt::TimedOut(format!(
            "cell exceeded its {:.0}s deadline plus grace; worker abandoned",
            deadline.as_secs_f64()
        )),
        Ok(Err(payload)) => {
            // Cells whose experiments drive `SystemBuilder::run` (rather
            // than `try_run`) surface a watchdog abort as a panic carrying
            // the watchdog message; classify it by cause, not by transport.
            let msg = panic_message(payload.as_ref());
            if msg.starts_with("watchdog") {
                Attempt::TimedOut(msg)
            } else if msg.starts_with("deadlock") {
                Attempt::Deadlocked(msg)
            } else if msg.starts_with("stack overflow") {
                Attempt::StackOverflow(msg)
            } else {
                Attempt::Panicked(msg)
            }
        }
        Ok(Ok(Err(e))) => match e.kind {
            SimErrorKind::Watchdog => Attempt::TimedOut(e.to_string()),
            SimErrorKind::ProgramPanic => Attempt::Panicked(e.to_string()),
            SimErrorKind::Deadlock { .. } => Attempt::Deadlocked(e.to_string()),
            SimErrorKind::StackOverflow => Attempt::StackOverflow(e.to_string()),
        },
        Ok(Ok(Ok(channels))) => {
            let fell_back = matches!(armed, Some(FaultKind::SnapshotCorrupt))
                && tp_core::boot_stats().fallback_boots > fallback_before;
            // The env-failure delta is only trusted when the armed fault is
            // one that can kill an environment — the counter is process-wide
            // and concurrent healthy cells must not inherit a stray delta.
            // (`noise-poison` qualifies: the exhausted stream panics inside
            // whichever environment drew next, and when that is a daemon the
            // isolation plane degrades the run instead of failing it.)
            let env_failed = if matches!(
                armed,
                Some(FaultKind::EnvPanic { .. })
                    | Some(FaultKind::StackOverflow)
                    | Some(FaultKind::NoisePoison { .. })
            ) {
                tp_core::health_stats()
                    .env_failed
                    .saturating_sub(env_failed_before)
            } else {
                0
            };
            Attempt::Done(channels, fell_back, env_failed)
        }
    }
}

/// Supervise one cell: run `f` on a worker thread with the given fault
/// plan (if it matches this cell) and wall-clock deadline, classify the
/// outcome, and retry panicked/timed-out attempts up to
/// [`MAX_ATTEMPTS`] with deterministically salted seeds.
pub fn run_cell(
    experiment: &str,
    platform: &str,
    plan: Option<&FaultPlan>,
    deadline: Duration,
    f: impl Fn() -> Result<Vec<ChannelResult>, SimError> + Send + Sync + 'static,
) -> CellReport {
    let armed = plan
        .filter(|p| p.matches(experiment, platform))
        .map(|p| p.kind);
    let f: Arc<dyn Fn() -> Result<Vec<ChannelResult>, SimError> + Send + Sync> = Arc::new(f);
    let mut last_error = None;
    let mut last_outcome = CellOutcome::Panicked;
    for attempt in 0..MAX_ATTEMPTS {
        if attempt > 0 {
            RETRIES.fetch_add(1, Ordering::Relaxed);
        }
        let salt = u64::from(attempt).wrapping_mul(RETRY_SALT_STRIDE);
        match run_attempt(armed, deadline, salt, Arc::clone(&f)) {
            Attempt::Done(channels, fell_back, env_failed) => {
                if fell_back {
                    SNAPSHOT_CORRUPT.fetch_add(1, Ordering::Relaxed);
                    return CellReport {
                        outcome: CellOutcome::SnapshotCorrupt,
                        channels: Some(channels),
                        attempts: attempt + 1,
                        env_failed: 0,
                        error: Some(
                            "a warm-boot snapshot failed its state-hash check; \
                             the cell completed on the cold-boot fallback"
                                .to_string(),
                        ),
                    };
                }
                if let Some(FaultKind::CommitFlip { index }) = armed {
                    if let Some(d) = commit_flip_selfcheck(index) {
                        REPLAY_DIVERGED.fetch_add(1, Ordering::Relaxed);
                        return CellReport {
                            outcome: CellOutcome::ReplayDiverged,
                            channels: Some(channels),
                            attempts: attempt + 1,
                            env_failed: 0,
                            error: Some(format!(
                                "commit log fails replay: first divergence at commit #{} \
                                 (expected {:#018x}, got {:#018x})",
                                d.index, d.expected, d.actual
                            )),
                        };
                    }
                }
                if env_failed > 0 {
                    // Graceful degradation, not a quarantine: the cell
                    // completed with partial results over the surviving
                    // environments.
                    ENV_FAILED.fetch_add(1, Ordering::Relaxed);
                    return CellReport {
                        outcome: CellOutcome::EnvFailed,
                        channels: Some(channels),
                        attempts: attempt + 1,
                        env_failed,
                        error: Some(format!(
                            "{env_failed} environment(s) failed in isolation; \
                             results cover the survivors"
                        )),
                    };
                }
                return CellReport {
                    outcome: CellOutcome::Ok,
                    channels: Some(channels),
                    attempts: attempt + 1,
                    env_failed: 0,
                    error: None,
                };
            }
            Attempt::Panicked(msg) => {
                PANICS.fetch_add(1, Ordering::Relaxed);
                last_error = Some(msg);
                last_outcome = CellOutcome::Panicked;
            }
            Attempt::TimedOut(msg) => {
                TIMEOUTS.fetch_add(1, Ordering::Relaxed);
                last_error = Some(msg);
                last_outcome = CellOutcome::TimedOut;
            }
            Attempt::Deadlocked(msg) => {
                DEADLOCKS.fetch_add(1, Ordering::Relaxed);
                last_error = Some(msg);
                last_outcome = CellOutcome::Deadlock;
            }
            Attempt::StackOverflow(msg) => {
                STACK_OVERFLOWS.fetch_add(1, Ordering::Relaxed);
                last_error = Some(msg);
                last_outcome = CellOutcome::StackOverflow;
            }
        }
    }
    CellReport {
        outcome: last_outcome,
        channels: None,
        attempts: MAX_ATTEMPTS,
        env_failed: 0,
        error: last_error,
    }
}

/// Verify that a forged commit is *detectable*: record the scripted
/// reference run twice — once clean (whose per-commit hash trace is the
/// truth) and once with the commit log forging index `flip` — and replay
/// the forged log against the clean trace. A healthy replay plane returns
/// the divergence; `None` means the forgery went undetected.
#[must_use]
pub fn commit_flip_selfcheck(flip: usize) -> Option<tp_core::Divergence> {
    use tp_core::replay::hash_trace;
    use tp_core::{Booted, Genesis};
    const STEPS: u64 = 60;
    let g = Genesis::new(tp_sim::Platform::Haswell);

    let Booted {
        mut machine,
        mut kernel,
        driver,
    } = g.boot();
    kernel.log.enable();
    for i in 0..STEPS {
        driver.step(&mut machine, &mut kernel, i * 7 + 3, i, i * 13 + 1);
    }
    let clean = kernel.log.take();
    if clean.is_empty() {
        return None;
    }
    let trace = hash_trace(&g, &clean);
    let flip = flip % clean.len();

    let Booted {
        mut machine,
        mut kernel,
        driver,
    } = g.boot();
    kernel.log.enable();
    kernel.log.arm_flip(flip);
    for i in 0..STEPS {
        driver.step(&mut machine, &mut kernel, i * 7 + 3, i, i * 13 + 1);
    }
    let forged = kernel.log.take();
    tp_core::replay_diff(&g, &forged, &trace)
}

/// A miniature synthetic cell for the chaos harness and the supervisor
/// tests: a single domain issuing enough syscalls to trip the env faults
/// and enough cache evictions to drain a poisoned noise stream, in well
/// under a second.
///
/// # Errors
/// Returns the [`SimError`] when the simulation fails — which is the
/// point: every injected fault class surfaces here.
pub fn probe_cell(seed: u64) -> Result<Vec<ChannelResult>, SimError> {
    probe_cell_with(seed, tp_core::ExecMode::default())
}

/// [`probe_cell`] under an explicit executor, for the differential
/// regression that pins fault classification across engines.
///
/// # Errors
/// As [`probe_cell`].
pub fn probe_cell_with(seed: u64, mode: tp_core::ExecMode) -> Result<Vec<ChannelResult>, SimError> {
    use tp_core::{ProtectionConfig, Syscall, SystemBuilder, UserEnv};
    let mut b = SystemBuilder::new(tp_sim::Platform::Haswell, ProtectionConfig::raw())
        .seed(seed)
        .warm_boot(true)
        .max_cycles(200_000_000)
        .executor(mode);
    let d = b.domain(None);
    b.spawn(d, 0, 100, |env: &mut UserEnv| {
        let (base, _) = env.map_pages(32);
        for i in 0..600u64 {
            env.load(tp_sim::VAddr(base.0 + (i % 32) * tp_sim::FRAME_SIZE));
            if i % 20 == 0 {
                let _ = env.syscall(Syscall::Yield);
            }
        }
    });
    b.try_run()?;
    Ok(Vec::new())
}

/// A two-core pair cell: one primary per core, each interleaving probe
/// loads with `Yield`s, so forward progress *requires* cross-core token
/// rotation. The `lost-wakeup` fault wedges the token here and the coop
/// driver's deadlock detector must classify it — deterministically, at the
/// same interaction ordinal for every worker count and coroutine backend.
///
/// # Errors
/// The [`SimError`] when the simulation fails (under `lost-wakeup`, a
/// [`tp_core::SimErrorKind::Deadlock`]).
pub fn pair_cell_report(
    seed: u64,
    mode: tp_core::ExecMode,
) -> Result<tp_core::SystemReport, SimError> {
    use tp_core::{ProtectionConfig, Syscall, SystemBuilder, UserEnv};
    let mut b = SystemBuilder::new(tp_sim::Platform::Haswell, ProtectionConfig::raw())
        .seed(seed)
        .max_cycles(400_000_000)
        .executor(mode);
    let d0 = b.domain(None);
    let d1 = b.domain(None);
    for (core, d) in [d0, d1].into_iter().enumerate() {
        b.spawn(d, core, 100, move |env: &mut UserEnv| {
            let (base, _) = env.map_pages(16);
            for i in 0..400u64 {
                env.load(tp_sim::VAddr(base.0 + (i % 16) * tp_sim::FRAME_SIZE));
                if i % 25 == 0 {
                    let _ = env.syscall(Syscall::Yield);
                }
            }
        });
    }
    b.try_run()
}

/// [`pair_cell_report`] shaped as a supervised cell body.
///
/// # Errors
/// As [`pair_cell_report`].
pub fn pair_cell(seed: u64, mode: tp_core::ExecMode) -> Result<Vec<ChannelResult>, SimError> {
    pair_cell_report(seed, mode).map(|_| Vec::new())
}

/// A small fleet cell: one primary plus two daemon tenants in their own
/// domains on one core. The daemons issue all the early syscalls (tight
/// `Yield` loops), so a low-ordinal `env-panic@N` deterministically kills a
/// *daemon* — exercising per-environment isolation ([`CellOutcome::EnvFailed`],
/// survivors unperturbed) — and `worker-kill@N` has suspended coroutines for
/// the surviving workers to adopt.
///
/// # Errors
/// The [`SimError`] when the simulation fails.
pub fn fleet_cell_report(
    seed: u64,
    mode: tp_core::ExecMode,
) -> Result<tp_core::SystemReport, SimError> {
    use tp_core::{ProtectionConfig, Syscall, SystemBuilder, UserEnv};
    let mut b = SystemBuilder::new(tp_sim::Platform::Haswell, ProtectionConfig::raw())
        .seed(seed)
        .slice_us(50.0)
        .max_cycles(300_000_000)
        .executor(mode);
    let d0 = b.domain(None);
    let d1 = b.domain(None);
    let d2 = b.domain(None);
    b.spawn(d0, 0, 100, |env: &mut UserEnv| {
        let (base, _) = env.map_pages(16);
        for i in 0..400u64 {
            env.load(tp_sim::VAddr(base.0 + (i % 16) * tp_sim::FRAME_SIZE));
            env.compute(500);
        }
    });
    for d in [d1, d2] {
        b.spawn_daemon(d, 0, 100, |env: &mut UserEnv| loop {
            let _ = env.syscall(Syscall::Yield);
        });
    }
    b.try_run()
}

/// [`fleet_cell_report`] shaped as a supervised cell body.
///
/// # Errors
/// As [`fleet_cell_report`].
pub fn fleet_cell(seed: u64, mode: tp_core::ExecMode) -> Result<Vec<ChannelResult>, SimError> {
    fleet_cell_report(seed, mode).map(|_| Vec::new())
}

/// Parse a `TP_CELL_TIMEOUT` value (seconds). `None`/empty means "unset";
/// anything set but not a positive finite number is a hard error naming
/// the variable — a typo must never silently degrade to the default
/// deadline and let a wedged cell run 10× longer than asked.
///
/// # Errors
/// A human-readable message naming `TP_CELL_TIMEOUT` and the rejected
/// value.
pub fn parse_cell_timeout(raw: Option<&str>) -> Result<Option<Duration>, String> {
    let Some(raw) = raw else { return Ok(None) };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    match trimmed.parse::<f64>() {
        Ok(v) if v > 0.0 && v.is_finite() => Ok(Some(Duration::from_secs_f64(v))),
        _ => Err(format!(
            "TP_CELL_TIMEOUT: `{raw}` is not a positive number of seconds"
        )),
    }
}

/// The `TP_CELL_TIMEOUT` override, if set. Exits with status 2 on a
/// malformed value, naming the variable — same contract as `TP_FAULT`.
#[must_use]
pub fn cell_timeout_override() -> Option<Duration> {
    match parse_cell_timeout(std::env::var("TP_CELL_TIMEOUT").ok().as_deref()) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

/// The wall-clock deadline for one cell: 20× its last recorded wall time
/// (clamped to \[30 s, 600 s\]), 120 s with no history, and whatever
/// `TP_CELL_TIMEOUT` (seconds) says when set.
#[must_use]
pub fn cell_deadline(history_seconds: Option<f64>) -> Duration {
    if let Some(d) = cell_timeout_override() {
        return d;
    }
    match history_seconds {
        Some(s) if s > 0.0 => Duration::from_secs_f64((s * 20.0).clamp(30.0, 600.0)),
        _ => Duration::from_secs(120),
    }
}

fn str_field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

fn num_field(line: &str, name: &str) -> Option<f64> {
    let tag = format!("\"{name}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse the `cells` records of a previous `BENCH-campaign.json` into a
/// per-cell wall-time history (seconds), for deadline derivation. The
/// file is machine-written one cell object per line; unknown lines are
/// skipped, so a missing or stale file degrades to the default deadline.
#[must_use]
pub fn parse_bench_history(text: &str) -> BTreeMap<(String, String), f64> {
    let mut m = BTreeMap::new();
    for line in text.lines() {
        let (Some(exp), Some(plat), Some(secs)) = (
            str_field(line, "experiment"),
            str_field(line, "platform"),
            num_field(line, "seconds"),
        ) else {
            continue;
        };
        m.insert((exp.to_string(), plat.to_string()), secs);
    }
    m
}

/// One quarantined cell, as written to `goldens/quarantine.json`.
#[derive(Debug, Clone)]
pub struct QuarantineEntry {
    /// Experiment name of the quarantined cell.
    pub experiment: String,
    /// Platform key of the quarantined cell.
    pub platform: String,
    /// Final classification (never `ok`).
    pub outcome: CellOutcome,
    /// Attempts consumed before giving up (or detecting corruption).
    pub attempts: u32,
    /// The last failure message.
    pub error: String,
}

/// Serialise the quarantine ledger: a JSON array, one entry per line,
/// `[]` when the campaign was healthy. Written on every campaign run so a
/// clean run visibly overwrites an old ledger.
#[must_use]
pub fn quarantine_json(entries: &[QuarantineEntry]) -> String {
    if entries.is_empty() {
        return "[]\n".to_string();
    }
    let mut s = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "  {{\"experiment\": \"{}\", \"platform\": \"{}\", \"outcome\": \"{}\", \"attempts\": {}, \"error\": \"{}\"}}{comma}",
            e.experiment,
            e.platform,
            e.outcome.name(),
            e.attempts,
            e.error.replace('\\', "\\\\").replace('"', "\\\""),
        );
    }
    s.push_str("]\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cell(seed: u64) -> Result<Vec<ChannelResult>, SimError> {
        probe_cell(seed)
    }

    fn plan(kind: FaultKind) -> FaultPlan {
        FaultPlan::new(kind)
    }

    #[test]
    fn healthy_cell_is_ok_first_attempt() {
        let r = run_cell("tiny", "haswell", None, Duration::from_secs(60), || {
            tiny_cell(0xA11C_E000)
        });
        assert_eq!(r.outcome, CellOutcome::Ok, "{:?}", r.error);
        assert_eq!(r.attempts, 1);
        assert!(r.channels.is_some());
        assert!(r.error.is_none());
    }

    #[test]
    fn env_panic_classifies_as_panicked_with_deterministic_retries() {
        let p = plan(FaultKind::EnvPanic { at: 3 });
        let r1 = run_cell("tiny", "haswell", Some(&p), Duration::from_secs(60), || {
            tiny_cell(0xA11C_E001)
        });
        assert_eq!(r1.outcome, CellOutcome::Panicked);
        assert_eq!(
            r1.attempts, MAX_ATTEMPTS,
            "deterministic fault on every attempt"
        );
        assert!(r1.channels.is_none());
        assert!(
            r1.error.as_deref().unwrap_or("").contains("env-panic"),
            "{:?}",
            r1.error
        );
        // A deterministic fault reclassifies identically on a second
        // supervised run — same outcome, same attempt count.
        let r2 = run_cell("tiny", "haswell", Some(&p), Duration::from_secs(60), || {
            tiny_cell(0xA11C_E001)
        });
        assert_eq!((r2.outcome, r2.attempts), (r1.outcome, r1.attempts));
    }

    #[test]
    fn env_stall_is_caught_by_the_watchdog_as_timed_out() {
        let p = plan(FaultKind::EnvStall { at: 3 });
        let r = run_cell("tiny", "haswell", Some(&p), Duration::from_secs(1), || {
            tiny_cell(0xA11C_E002)
        });
        assert_eq!(r.outcome, CellOutcome::TimedOut, "{:?}", r.error);
        assert_eq!(r.attempts, MAX_ATTEMPTS);
        assert!(
            r.error.as_deref().unwrap_or("").contains("watchdog"),
            "{:?}",
            r.error
        );
    }

    #[test]
    fn noise_poison_classifies_as_panicked() {
        let p = plan(FaultKind::NoisePoison { after: 64 });
        let r = run_cell("tiny", "haswell", Some(&p), Duration::from_secs(60), || {
            tiny_cell(0xA11C_E003)
        });
        assert_eq!(r.outcome, CellOutcome::Panicked, "{:?}", r.error);
        assert!(
            r.error.as_deref().unwrap_or("").contains("noise-poison"),
            "{:?}",
            r.error
        );
    }

    #[test]
    fn snapshot_corrupt_falls_back_cold_and_is_flagged() {
        // Populate the boot cache with this shape first (cold boot), so
        // the supervised run below takes the warm-restore path and meets
        // the corrupted clone.
        let seed = 0xA11C_E004;
        tiny_cell(seed).expect("cache-priming run");
        let p = plan(FaultKind::SnapshotCorrupt);
        let r = run_cell(
            "tiny",
            "haswell",
            Some(&p),
            Duration::from_secs(60),
            move || tiny_cell(seed),
        );
        assert_eq!(r.outcome, CellOutcome::SnapshotCorrupt, "{:?}", r.error);
        assert_eq!(r.attempts, 1, "graceful degradation, not a retry");
        assert!(
            r.channels.is_some(),
            "the cell completes on the cold-boot fallback"
        );
    }

    #[test]
    fn commit_flip_fails_the_replay_selfcheck() {
        let p = plan(FaultKind::CommitFlip { index: 17 });
        let r = run_cell("tiny", "haswell", Some(&p), Duration::from_secs(60), || {
            tiny_cell(0xA11C_E005)
        });
        assert_eq!(r.outcome, CellOutcome::ReplayDiverged, "{:?}", r.error);
        assert!(
            r.error.as_deref().unwrap_or("").contains("divergence"),
            "{:?}",
            r.error
        );
    }

    #[test]
    fn selfcheck_finds_the_forged_commit() {
        let d = commit_flip_selfcheck(17).expect("forged log must diverge");
        assert_eq!(d.index, 17, "divergence at the forged index");
        assert!(commit_flip_selfcheck(3).is_some());
    }

    #[test]
    fn scoped_plan_leaves_other_cells_alone() {
        let p = FaultPlan::parse("env-panic@3:cell=other/skylake").unwrap();
        let r = run_cell("tiny", "haswell", Some(&p), Duration::from_secs(60), || {
            tiny_cell(0xA11C_E006)
        });
        assert_eq!(r.outcome, CellOutcome::Ok, "{:?}", r.error);
    }

    #[test]
    fn cell_timeout_parses_or_errors_naming_the_variable() {
        assert_eq!(parse_cell_timeout(None), Ok(None));
        assert_eq!(parse_cell_timeout(Some("")), Ok(None));
        assert_eq!(parse_cell_timeout(Some("  ")), Ok(None));
        assert_eq!(
            parse_cell_timeout(Some("1.5")),
            Ok(Some(Duration::from_secs_f64(1.5)))
        );
        assert_eq!(
            parse_cell_timeout(Some(" 120 ")),
            Ok(Some(Duration::from_secs(120)))
        );
        for bad in ["soon", "0", "-5", "12s", "inf"] {
            let err = parse_cell_timeout(Some(bad)).unwrap_err();
            assert!(err.contains("TP_CELL_TIMEOUT"), "{err}");
            assert!(err.contains(bad), "{err}");
        }
    }

    #[test]
    fn deadline_derivation_and_history_parse() {
        assert_eq!(cell_deadline(None), Duration::from_secs(120));
        assert_eq!(cell_deadline(Some(1.0)), Duration::from_secs(30));
        assert_eq!(cell_deadline(Some(10.0)), Duration::from_secs(200));
        assert_eq!(cell_deadline(Some(1e6)), Duration::from_secs(600));

        let hist = parse_bench_history(
            "{\n  \"cells\": [\n    {\"experiment\": \"l1d\", \"platform\": \"haswell\", \"seconds\": 1.250},\n    {\"experiment\": \"llc\", \"platform\": \"skylake\", \"seconds\": 9.000}\n  ]\n}\n",
        );
        assert_eq!(hist.len(), 2);
        assert!((hist[&("l1d".into(), "haswell".into())] - 1.25).abs() < 1e-9);
    }

    #[test]
    fn lost_wakeup_classifies_as_deadlock_at_one_ordinal() {
        use tp_core::ExecMode;
        let p = plan(FaultKind::LostWakeup { at: 2 });
        let mut errors = Vec::new();
        for workers in [1, 2] {
            let r = run_cell(
                "pair",
                "haswell",
                Some(&p),
                Duration::from_secs(60),
                move || pair_cell(0xA11C_E007, ExecMode::Coop { workers }),
            );
            assert_eq!(r.outcome, CellOutcome::Deadlock, "{:?}", r.error);
            assert_eq!(r.attempts, MAX_ATTEMPTS, "deterministic on every attempt");
            let err = r.error.expect("deadlock detail");
            assert!(err.starts_with("deadlock:"), "{err}");
            assert!(err.contains("at interaction"), "{err}");
            errors.push(err);
        }
        assert_eq!(
            errors[0], errors[1],
            "deadlock ordinal must be worker-count-invariant"
        );
    }

    #[test]
    fn stack_overflow_classifies_and_names_the_guard() {
        let p = plan(FaultKind::StackOverflow);
        let r = run_cell("tiny", "haswell", Some(&p), Duration::from_secs(60), || {
            tiny_cell(0xA11C_E008)
        });
        assert_eq!(r.outcome, CellOutcome::StackOverflow, "{:?}", r.error);
        let err = r.error.expect("overflow detail");
        assert!(err.starts_with("stack overflow"), "{err}");
        assert!(err.contains("TP_STACK_KB"), "{err}");
    }

    #[test]
    fn fleet_daemon_panic_degrades_to_env_failed() {
        use tp_core::ExecMode;
        let p = plan(FaultKind::EnvPanic { at: 2 });
        let r = run_cell(
            "fleet",
            "haswell",
            Some(&p),
            Duration::from_secs(60),
            || fleet_cell(0xA11C_E009, ExecMode::default()),
        );
        assert_eq!(r.outcome, CellOutcome::EnvFailed, "{:?}", r.error);
        assert_eq!(r.attempts, 1, "partial completion, not a retry");
        assert!(r.channels.is_some(), "survivor results are reported");
        assert!(r.env_failed > 0);
        assert!(
            r.error.as_deref().unwrap_or("").contains("survivors"),
            "{:?}",
            r.error
        );
    }

    #[test]
    fn worker_kill_is_invisible_in_the_report() {
        use tp_core::ExecMode;
        let seed = 0xA11C_E00A;
        let clean = fleet_cell_report(seed, ExecMode::Coop { workers: 2 }).expect("clean run");
        fault::arm(Some(FaultKind::WorkerKill { at: 3 }));
        let killed = fleet_cell_report(seed, ExecMode::Coop { workers: 2 });
        fault::arm(None);
        let killed = killed.expect("killed-worker run completes");
        assert_eq!(
            clean.state_hash, killed.state_hash,
            "adopted coroutines must not perturb machine state"
        );
        assert_eq!(clean.cycles, killed.cycles);
    }

    #[test]
    fn quarantine_ledger_roundtrips_shape() {
        assert_eq!(quarantine_json(&[]), "[]\n");
        let entries = vec![QuarantineEntry {
            experiment: "l1d".into(),
            platform: "haswell".into(),
            outcome: CellOutcome::Panicked,
            attempts: 3,
            error: "injected fault: env-panic at syscall 3".into(),
        }];
        let s = quarantine_json(&entries);
        assert!(s.contains("\"outcome\": \"panicked\""));
        assert!(s.contains("\"attempts\": 3"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }
}
