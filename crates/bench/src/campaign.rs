//! The experiment registry and campaign runner.
//!
//! Every channel experiment of the paper is registered as data: name,
//! paper reference, supported platforms and a relative cost weight. The
//! `campaign` binary iterates the registry crossed with the platform
//! registry ([`tp_sim::Platform::ALL`]), runs each supported combination
//! and emits *structured* per-channel results — capacity estimates,
//! leak/closed verdicts and wall times — instead of prose tables.
//!
//! The leak/closed verdicts of a run are diffable against a pinned golden
//! file (`goldens/verdicts.json`): CI fails when any channel × mechanism ×
//! platform verdict diverges, turning the reproduction into a regression
//! gate for *result correctness*, not just wall-clock. Each verdict is a
//! majority vote over three independent seeds (see `VOTE_SEEDS`) so the
//! gate is robust against single-shot boundary noise in the §5.1 shuffle
//! test.

use crate::util::samples;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use tp_attacks::harness::{ChannelOutcome, IntraCoreSpec, Scenario};
use tp_attacks::{branchchan, bus, cache, flush_latency, interrupt, kernel_image, llc, tlbchan};
use tp_core::{ProtectionConfig, SimError};
use tp_sim::Platform;

/// One structured measurement: a channel under one defence mechanism.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelResult {
    /// Channel name (e.g. `L1-D`).
    pub channel: &'static str,
    /// Defence mechanism / scenario (e.g. `raw`, `protected`).
    pub mechanism: &'static str,
    /// What `value` measures: `M_mb` (channel capacity, millibits) or
    /// `accuracy_pct` (key-recovery accuracy, the LLC attack).
    pub metric: &'static str,
    /// The measured value.
    pub value: f64,
    /// The zero-leakage baseline (M0 in millibits, or chance accuracy).
    pub baseline: f64,
    /// The §5.1 verdict: does the channel leak?
    pub leaks: bool,
    /// Number of paired observations behind the verdict.
    pub samples: usize,
}

/// Base seed every vote seed is derived from. Part of the campaign
/// journal's cache key ([`crate::store::JournalHeader`]): changing the
/// seeds invalidates every cached cell.
pub const VOTE_SEED_BASE: u64 = 0x5EED;

/// Seeds for the three independent repetitions behind every pinned
/// verdict. A channel is reported as leaking iff at least two of three
/// seeds flag it: real channels (M ≫ M0) leak under every seed, while a
/// cell whose M hovers at the M0 boundary — a ~1% single-shot false
/// positive of the §5.1 shuffle test — does not survive the vote. This is
/// what makes the golden file a stable CI gate.
const VOTE_SEEDS: [u64; 3] = [
    VOTE_SEED_BASE,
    VOTE_SEED_BASE ^ 0x9E37_79B9,
    VOTE_SEED_BASE ^ 0x6A09_E667,
];

/// Run one measurement under each of [`VOTE_SEEDS`] and combine: leak
/// verdict by majority, value/baseline from the first seed that agrees
/// with the majority (so a reported row is always self-consistent — a
/// "leak" row shows an M above its M0, a "closed" row one below).
///
/// Each seed is XORed with the supervisor's retry salt
/// ([`crate::supervise::retry_salt`], zero outside a retry), so a retried
/// cell explores fresh seeds deterministically while a first attempt is
/// byte-identical to an unsupervised run.
fn vote(
    channel: &'static str,
    mechanism: &'static str,
    run: impl Fn(u64) -> Result<ChannelOutcome, SimError>,
) -> Result<ChannelResult, SimError> {
    let salt = crate::supervise::retry_salt();
    let outcomes: Vec<ChannelOutcome> = VOTE_SEEDS
        .iter()
        .map(|&s| run(s ^ salt))
        .collect::<Result<_, _>>()?;
    let leaks = outcomes.iter().filter(|o| o.verdict.leaks).count() * 2 > outcomes.len();
    let o = outcomes
        .iter()
        .find(|o| o.verdict.leaks == leaks)
        .expect("majority verdict has at least one witness");
    Ok(ChannelResult {
        channel,
        mechanism,
        metric: "M_mb",
        value: o.verdict.m.millibits(),
        baseline: o.verdict.m0_millibits(),
        leaks,
        samples: o.dataset.len(),
    })
}

impl ChannelResult {
    /// `leak` / `closed`, the strings pinned in the golden file.
    #[must_use]
    pub fn verdict(&self) -> &'static str {
        if self.leaks {
            "leak"
        } else {
            "closed"
        }
    }
}

/// The outcome of one experiment on one platform.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Registry name of the experiment.
    pub experiment: &'static str,
    /// Platform it ran on.
    pub platform: Platform,
    /// Wall time of this experiment alone, seconds.
    pub seconds: f64,
    /// Per-channel × mechanism measurements.
    pub channels: Vec<ChannelResult>,
}

impl ExperimentResult {
    /// Rebuild a result from a replayed journal record. `experiment` is
    /// the registry's static name for the cell (the journal string is only
    /// used to find it); channel strings are interned by the store. The
    /// record carries bit-exact `f64`s, so re-serialising a replayed cell
    /// is byte-identical to serialising the original run.
    #[must_use]
    pub fn from_record(
        experiment: &'static str,
        platform: Platform,
        rec: &crate::store::CellRecord,
    ) -> Self {
        ExperimentResult {
            experiment,
            platform,
            seconds: rec.seconds,
            channels: rec.channels.clone(),
        }
    }
}

/// A registered experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentDef {
    /// Stable registry name (CLI `--only` values, JSON output).
    pub name: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// Where in the paper the experiment comes from.
    pub paper: &'static str,
    /// Relative cost weight (higher = slower); the runner schedules
    /// heavier experiments first so they overlap with the cheap tail.
    pub cost: u32,
    /// Which platforms the experiment supports.
    pub supports: fn(Platform) -> bool,
    /// Run on one platform, producing the structured results. Errors
    /// (simulation failures under fault injection) are classified by the
    /// campaign supervisor ([`crate::supervise`]), never unwound.
    pub run: fn(Platform) -> Result<Vec<ChannelResult>, SimError>,
}

fn any_platform(_: Platform) -> bool {
    true
}

fn needs_llc(p: Platform) -> bool {
    p.config().llc.is_some()
}

/// Run one intra-core channel under the three §5.2 scenarios.
fn scenario_sweep(
    channel: &'static str,
    run: fn(&IntraCoreSpec) -> Result<ChannelOutcome, SimError>,
    platform: Platform,
) -> Result<Vec<ChannelResult>, SimError> {
    // The L2 channel's protected residue is the paper's most marginal
    // effect; at small sample scales the M-vs-M0 test is noise-prone
    // there, so it gets twice the observations.
    let n = if channel == "L2" {
        samples(500)
    } else {
        samples(250)
    };
    [
        (Scenario::Raw, "raw"),
        (Scenario::FullFlush, "full-flush"),
        (Scenario::Protected, "protected"),
    ]
    .into_iter()
    .map(|(scenario, mech)| {
        vote(channel, mech, |seed| {
            let n_symbols = if channel == "BHB" { 2 } else { 8 };
            let mut spec = IntraCoreSpec::new(platform, scenario, n_symbols, n).with_seed(seed);
            if channel == "L2" {
                spec = spec.with_slice_us(cache::l2_slice_us(&platform.config()));
            }
            run(&spec)
        })
    })
    .collect()
}

fn run_l1d(p: Platform) -> Result<Vec<ChannelResult>, SimError> {
    scenario_sweep("L1-D", cache::try_l1d_channel, p)
}

fn run_l1i(p: Platform) -> Result<Vec<ChannelResult>, SimError> {
    scenario_sweep("L1-I", cache::try_l1i_channel, p)
}

fn run_tlb(p: Platform) -> Result<Vec<ChannelResult>, SimError> {
    scenario_sweep("TLB", tlbchan::try_tlb_channel, p)
}

fn run_btb(p: Platform) -> Result<Vec<ChannelResult>, SimError> {
    scenario_sweep("BTB", branchchan::try_btb_channel, p)
}

fn run_bhb(p: Platform) -> Result<Vec<ChannelResult>, SimError> {
    scenario_sweep("BHB", branchchan::try_bhb_channel, p)
}

fn run_l2(p: Platform) -> Result<Vec<ChannelResult>, SimError> {
    scenario_sweep("L2", cache::try_l2_channel, p)
}

fn run_kernel_image(p: Platform) -> Result<Vec<ChannelResult>, SimError> {
    let n = samples(300);
    [
        ("coloured-only", kernel_image::coloured_userland_config()),
        ("protected", ProtectionConfig::protected()),
    ]
    .into_iter()
    .map(|(mech, prot)| {
        vote("kernel-image", mech, |seed| {
            let spec = IntraCoreSpec {
                platform: p,
                prot,
                n_symbols: 4,
                samples: n,
                slice_us: 50.0,
                seed,
            };
            kernel_image::kernel_image_channel(&spec)
        })
    })
    .collect()
}

fn run_flush(p: Platform) -> Result<Vec<ChannelResult>, SimError> {
    let n = samples(250);
    let pad = flush_latency::table4_pad_us(p);
    let mk = |pad_us: Option<f64>, seed: u64| IntraCoreSpec {
        platform: p,
        prot: flush_latency::flush_channel_config(pad_us),
        n_symbols: 8,
        samples: n,
        slice_us: 50.0,
        seed,
    };
    [
        ("online-nopad", flush_latency::Timing::Online, None),
        ("online-pad", flush_latency::Timing::Online, Some(pad)),
        ("offline-nopad", flush_latency::Timing::Offline, None),
        ("offline-pad", flush_latency::Timing::Offline, Some(pad)),
    ]
    .into_iter()
    .map(|(mech, timing, pad_us)| {
        vote("flush-latency", mech, |seed| {
            flush_latency::flush_channel(&mk(pad_us, seed), timing)
        })
    })
    .collect()
}

fn run_interrupt(p: Platform) -> Result<Vec<ChannelResult>, SimError> {
    let n = samples(250);
    [("raw", false), ("partitioned", true)]
        .into_iter()
        .map(|(mech, part)| {
            vote("interrupt", mech, |seed| {
                interrupt::try_interrupt_channel(&interrupt::paper_spec(p, part, n).with_seed(seed))
            })
        })
        .collect()
}

fn run_bus(p: Platform) -> Result<Vec<ChannelResult>, SimError> {
    let n = samples(150);
    [("raw", Scenario::Raw), ("protected", Scenario::Protected)]
        .into_iter()
        .map(|(mech, scenario)| {
            vote("bus", mech, |seed| {
                let spec = IntraCoreSpec::new(p, scenario, 2, n)
                    .with_slice_us(30.0)
                    .with_seed(seed);
                bus::bus_channel(&spec)
            })
        })
        .collect()
}

fn run_cloud(p: Platform) -> Result<Vec<ChannelResult>, SimError> {
    [
        ("raw", ProtectionConfig::raw()),
        ("protected", ProtectionConfig::protected()),
    ]
    .into_iter()
    .map(|(mech, prot)| {
        vote("cloud", mech, |seed| {
            let spec = crate::cloud::CloudSpec::new(p, prot, 96).with_seed(seed);
            crate::cloud::run_cloud(&spec).map(|r| r.outcome)
        })
    })
    .collect()
}

fn run_llc(p: Platform) -> Result<Vec<ChannelResult>, SimError> {
    let slots = samples(6_000).max(3_000);
    [
        ("raw", ProtectionConfig::raw(), slots),
        ("protected", ProtectionConfig::protected(), slots / 2),
    ]
    .into_iter()
    .map(|(mech, prot, slots)| {
        let r = llc::try_llc_attack_on(p, prot, slots, 42)?;
        Ok(ChannelResult {
            channel: "LLC-ElGamal",
            mechanism: mech,
            metric: "accuracy_pct",
            value: r.accuracy * 100.0,
            baseline: 50.0,
            leaks: r.activity_detected && r.accuracy > 0.65,
            samples: r.recovered_bits.len(),
        })
    })
    .collect()
}

/// The experiment registry, in report order.
#[must_use]
pub fn registry() -> Vec<ExperimentDef> {
    vec![
        ExperimentDef {
            name: "l1d",
            title: "L1-D prime&probe channel",
            paper: "§5.3.2, Table 3",
            cost: 3,
            supports: any_platform,
            run: run_l1d,
        },
        ExperimentDef {
            name: "l1i",
            title: "L1-I prime&probe channel",
            paper: "§5.3.2, Table 3",
            cost: 3,
            supports: any_platform,
            run: run_l1i,
        },
        ExperimentDef {
            name: "tlb",
            title: "TLB eviction channel",
            paper: "§5.3.2, Table 3",
            cost: 2,
            supports: any_platform,
            run: run_tlb,
        },
        ExperimentDef {
            name: "btb",
            title: "BTB conflict channel",
            paper: "§5.3.2, Table 3",
            cost: 2,
            supports: any_platform,
            run: run_btb,
        },
        ExperimentDef {
            name: "bhb",
            title: "Branch-history (PHT bias) channel",
            paper: "§5.3.2, Table 3",
            cost: 2,
            supports: any_platform,
            run: run_bhb,
        },
        ExperimentDef {
            name: "l2",
            title: "L2 prime&probe channel (+prefetcher residue)",
            paper: "§5.3.2, Table 3",
            cost: 5,
            supports: any_platform,
            run: run_l2,
        },
        ExperimentDef {
            name: "kernel-image",
            title: "Shared-kernel-image syscall channel",
            paper: "§5.3.1, Figure 3",
            cost: 3,
            supports: any_platform,
            run: run_kernel_image,
        },
        ExperimentDef {
            name: "flush-latency",
            title: "Cache-flush latency channel, padded and not",
            paper: "§5.3.4, Figure 5 / Table 4",
            cost: 4,
            supports: any_platform,
            run: run_flush,
        },
        ExperimentDef {
            name: "interrupt",
            title: "Timer-interrupt placement channel",
            paper: "§5.3.5, Figure 6",
            cost: 4,
            supports: any_platform,
            run: run_interrupt,
        },
        ExperimentDef {
            name: "bus",
            title: "Cross-core memory-bus channel (unpartitionable)",
            paper: "§2.3 / §6.1",
            cost: 2,
            supports: any_platform,
            run: run_bus,
        },
        ExperimentDef {
            name: "llc",
            title: "Cross-core LLC prime&probe vs ElGamal",
            paper: "§5.3.3, Figure 4",
            cost: 6,
            supports: needs_llc,
            run: run_llc,
        },
        ExperimentDef {
            name: "cloud",
            title: "Consolidated-tenant aggregate leakage (cloud scenario)",
            paper: "§1 / §2.1 motivation, §5 mechanisms",
            cost: 7,
            supports: any_platform,
            run: run_cloud,
        },
    ]
}

/// Serialise a campaign run to JSON (hand-rolled: the workspace is
/// dependency-free by design; all strings are static identifiers).
#[must_use]
pub fn results_json(results: &[ExperimentResult], total_seconds: f64) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema\": 1,");
    let _ = writeln!(s, "  \"tp_samples\": {},", crate::util::effort());
    let _ = writeln!(s, "  \"threads\": {},", crate::util::threads());
    let _ = writeln!(s, "  \"total_seconds\": {total_seconds:.3},");
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"experiment\": \"{}\", \"platform\": \"{}\", \"seconds\": {:.3}, \"channels\": [",
            r.experiment,
            r.platform.key(),
            r.seconds
        );
        for (j, c) in r.channels.iter().enumerate() {
            let comma = if j + 1 < r.channels.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "      {{\"channel\": \"{}\", \"mechanism\": \"{}\", \"metric\": \"{}\", \"value\": {:.3}, \"baseline\": {:.3}, \"verdict\": \"{}\", \"samples\": {}}}{comma}",
                c.channel, c.mechanism, c.metric, c.value, c.baseline, c.verdict(), c.samples
            );
        }
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(s, "    ]}}{comma}");
    }
    s.push_str("  ]\n}\n");
    s
}

/// Serialise the campaign's wall-time record (`BENCH-campaign.json`):
/// the total plus one entry per experiment × platform cell, mirroring the
/// `BENCH.json` the `reproduce_all` binary writes. CI budgets the total;
/// the per-cell times localise a regression to one cell.
///
/// With `threads > 1` the cells run concurrently, so per-cell times
/// overlap and can sum to more than `total_seconds`; `total_seconds` is
/// always honest wall clock.
#[must_use]
pub fn bench_json(results: &[ExperimentResult], total_seconds: f64) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"tp_samples\": {},", crate::util::effort());
    let _ = writeln!(s, "  \"threads\": {},", crate::util::threads());
    let _ = writeln!(s, "  \"total_seconds\": {total_seconds:.3},");
    // Boot accounting: CI asserts that warm starts (shared boot-prefix
    // checkpoints) actually cut per-cell boot time vs. cold boots.
    let boot = tp_core::system::boot_stats();
    let mean_ms = |nanos: u64, n: u64| {
        if n == 0 {
            0.0
        } else {
            nanos as f64 / n as f64 / 1e6
        }
    };
    let _ = writeln!(
        s,
        "  \"boot\": {{\"cold\": {}, \"warm\": {}, \"fallback\": {}, \"cold_mean_ms\": {:.6}, \"warm_mean_ms\": {:.6}}},",
        boot.cold_boots,
        boot.warm_boots,
        boot.fallback_boots,
        mean_ms(boot.cold_nanos, boot.cold_boots),
        mean_ms(boot.warm_nanos, boot.warm_boots),
    );
    // Supervisor accounting: a healthy (fault-free) campaign reports all
    // zeroes here, and CI gates on exactly that.
    let sup = crate::supervise::counters();
    let _ = writeln!(
        s,
        "  \"supervisor\": {{\"retries\": {}, \"timeouts\": {}, \"panics\": {}, \"snapshot_corrupt\": {}, \"replay_diverged\": {}, \"quarantined\": {}, \"fallback_boots\": {}, \"env_failed\": {}, \"deadlocks\": {}, \"stack_overflows\": {}}},",
        sup.retries,
        sup.timeouts,
        sup.panics,
        sup.snapshot_corrupt,
        sup.replay_diverged,
        sup.quarantined,
        boot.fallback_boots,
        sup.env_failed,
        sup.deadlocks,
        sup.stack_overflows,
    );
    // Resume/durability accounting: a clean (non-resumed, uncontended)
    // campaign reports all zeroes here, and CI gates on exactly that.
    let res = crate::store::resume_counters();
    let _ = writeln!(
        s,
        "  \"resume\": {{\"cells_skipped\": {}, \"records_recovered\": {}, \"records_truncated\": {}, \"lock_waits\": {}}},",
        res.cells_skipped,
        res.records_recovered,
        res.records_truncated,
        res.lock_waits,
    );
    s.push_str("  \"cells\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"experiment\": \"{}\", \"platform\": \"{}\", \"seconds\": {:.3}}}{comma}",
            r.experiment,
            r.platform.key(),
            r.seconds
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// The canonical identity of one verdict: experiment, platform key,
/// channel, mechanism.
pub type VerdictKey = (String, String, String, String);

fn verdict_map(results: &[ExperimentResult]) -> BTreeMap<VerdictKey, String> {
    let mut m = BTreeMap::new();
    for r in results {
        for c in &r.channels {
            m.insert(
                (
                    r.experiment.to_string(),
                    r.platform.key().to_string(),
                    c.channel.to_string(),
                    c.mechanism.to_string(),
                ),
                c.verdict().to_string(),
            );
        }
    }
    m
}

/// Serialise the golden verdict file: every channel × mechanism ×
/// platform leak/closed verdict, one object per line so the file diffs
/// cleanly under git.
#[must_use]
pub fn golden_json(results: &[ExperimentResult]) -> String {
    golden_json_from_map(&verdict_map(results), crate::util::effort())
}

/// The writer behind [`golden_json`]: serialise an explicit verdict map
/// with an explicit `tp_samples` header. Exposed so tooling (and the
/// round-trip test) can prove that `parse_golden` ∘ `golden_json_from_map`
/// reproduces a pinned file byte-identically.
#[must_use]
pub fn golden_json_from_map(m: &BTreeMap<VerdictKey, String>, tp_samples: f64) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema\": 1,");
    let _ = writeln!(s, "  \"tp_samples\": {tp_samples},");
    s.push_str("  \"verdicts\": [\n");
    for (i, ((exp, plat, chan, mech), verdict)) in m.iter().enumerate() {
        let comma = if i + 1 < m.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"experiment\": \"{exp}\", \"platform\": \"{plat}\", \"channel\": \"{chan}\", \"mechanism\": \"{mech}\", \"verdict\": \"{verdict}\"}}{comma}"
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extract a `"field": "value"` string from one line of golden JSON.
/// (The golden file is machine-written, one verdict object per line; a
/// full JSON parser would be a dependency for no robustness gain.)
fn field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

/// Extract the `tp_samples` header a golden file was pinned at, if any.
#[must_use]
pub fn golden_tp_samples(text: &str) -> Option<f64> {
    let line = text.lines().find(|l| l.contains("\"tp_samples\":"))?;
    line.split(':')
        .nth(1)?
        .trim()
        .trim_end_matches(',')
        .parse()
        .ok()
}

/// Parse a golden verdict file into the canonical map.
#[must_use]
pub fn parse_golden(text: &str) -> BTreeMap<VerdictKey, String> {
    let mut m = BTreeMap::new();
    for line in text.lines() {
        let (Some(exp), Some(plat), Some(chan), Some(mech), Some(verdict)) = (
            field(line, "experiment"),
            field(line, "platform"),
            field(line, "channel"),
            field(line, "mechanism"),
            field(line, "verdict"),
        ) else {
            continue;
        };
        m.insert(
            (
                exp.to_string(),
                plat.to_string(),
                chan.to_string(),
                mech.to_string(),
            ),
            verdict.to_string(),
        );
    }
    m
}

/// Diff a run against a golden file. Verdicts for combinations absent
/// from the run (e.g. a platform-filtered campaign) are not required, but
/// a combination the golden knows nothing about is an error: new
/// experiments must be pinned.
///
/// # Errors
/// Returns a human-readable report of every divergence.
pub fn check_goldens(golden_text: &str, results: &[ExperimentResult]) -> Result<usize, String> {
    let golden = parse_golden(golden_text);
    if golden.is_empty() {
        return Err("golden file contains no verdicts".into());
    }
    // Verdicts are only comparable at the sample scale they were pinned
    // at (M0 is noisier at low TP_SAMPLES); refuse a cross-scale diff
    // rather than report misleading regressions.
    let run_scale = crate::util::effort();
    if let Some(pinned) = golden_tp_samples(golden_text) {
        if (pinned - run_scale).abs() > 1e-9 {
            return Err(format!(
                "golden file was pinned at TP_SAMPLES={pinned} but this run used \
                 TP_SAMPLES={run_scale}; rerun with TP_SAMPLES={pinned} (or re-pin \
                 with --update-goldens after review)"
            ));
        }
    }
    let run = verdict_map(results);
    let mut report = String::new();
    let mut checked = 0usize;
    for (key, verdict) in &run {
        let (exp, plat, chan, mech) = key;
        match golden.get(key) {
            Some(g) if g == verdict => checked += 1,
            Some(g) => {
                let _ = writeln!(
                    report,
                    "VERDICT REGRESSION: {exp}/{plat}/{chan}/{mech}: golden \"{g}\", run \"{verdict}\""
                );
            }
            None => {
                let _ = writeln!(
                    report,
                    "UNPINNED: {exp}/{plat}/{chan}/{mech} = \"{verdict}\" has no golden entry (re-pin goldens/verdicts.json)"
                );
            }
        }
    }
    if report.is_empty() {
        Ok(checked)
    } else {
        Err(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_results() -> Vec<ExperimentResult> {
        vec![ExperimentResult {
            experiment: "l1d",
            platform: Platform::Haswell,
            seconds: 0.5,
            channels: vec![
                ChannelResult {
                    channel: "L1-D",
                    mechanism: "raw",
                    metric: "M_mb",
                    value: 1234.5,
                    baseline: 40.0,
                    leaks: true,
                    samples: 120,
                },
                ChannelResult {
                    channel: "L1-D",
                    mechanism: "protected",
                    metric: "M_mb",
                    value: 10.0,
                    baseline: 40.0,
                    leaks: false,
                    samples: 120,
                },
            ],
        }]
    }

    #[test]
    fn registry_names_are_unique_and_supported_somewhere() {
        let reg = registry();
        let mut names: Vec<_> = reg.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len(), "duplicate experiment names");
        for d in &reg {
            assert!(
                Platform::ALL.iter().any(|&p| (d.supports)(p)),
                "{} supports no platform",
                d.name
            );
        }
    }

    #[test]
    fn llc_requires_a_last_level_cache() {
        let reg = registry();
        let llc = reg
            .iter()
            .find(|d| d.name == "llc")
            .expect("llc registered");
        assert!((llc.supports)(Platform::Haswell));
        assert!((llc.supports)(Platform::Skylake));
        assert!(!(llc.supports)(Platform::Sabre));
        assert!(!(llc.supports)(Platform::HiKey));
    }

    #[test]
    fn golden_roundtrip_and_check() {
        let results = fake_results();
        let golden = golden_json(&results);
        assert_eq!(check_goldens(&golden, &results), Ok(2));

        // A flipped verdict is a regression.
        let flipped = golden.replace("\"verdict\": \"closed\"", "\"verdict\": \"leak\"");
        let err = check_goldens(&flipped, &results).unwrap_err();
        assert!(err.contains("VERDICT REGRESSION"), "{err}");

        // An unpinned combination is an error too.
        let missing: String = golden
            .lines()
            .filter(|l| !l.contains("\"raw\""))
            .collect::<Vec<_>>()
            .join("\n");
        let err = check_goldens(&missing, &results).unwrap_err();
        assert!(err.contains("UNPINNED"), "{err}");
    }

    #[test]
    fn golden_scale_mismatch_is_refused() {
        let results = fake_results();
        let golden = golden_json(&results);
        let pinned = golden_tp_samples(&golden).expect("header present");
        assert!((pinned - crate::util::effort()).abs() < 1e-9);

        let other = golden.replace(
            &format!("\"tp_samples\": {}", crate::util::effort()),
            "\"tp_samples\": 0.125",
        );
        let err = check_goldens(&other, &results).unwrap_err();
        assert!(err.contains("TP_SAMPLES"), "{err}");
    }

    /// Reconstruct `ExperimentResult`s from a parsed golden map so
    /// `check_goldens` can be exercised against the real pinned file.
    fn results_from_golden(m: &BTreeMap<VerdictKey, String>) -> Vec<ExperimentResult> {
        let mut out: Vec<ExperimentResult> = Vec::new();
        for ((exp, plat, chan, mech), verdict) in m {
            let platform = Platform::from_key(plat).expect("pinned platform key");
            let leaks = verdict == "leak";
            let channel = ChannelResult {
                channel: Box::leak(chan.clone().into_boxed_str()),
                mechanism: Box::leak(mech.clone().into_boxed_str()),
                metric: "M_mb",
                value: if leaks { 100.0 } else { 1.0 },
                baseline: 10.0,
                leaks,
                samples: 1,
            };
            if let Some(r) = out
                .iter_mut()
                .find(|r| r.experiment == exp.as_str() && r.platform == platform)
            {
                r.channels.push(channel);
            } else {
                out.push(ExperimentResult {
                    experiment: Box::leak(exp.clone().into_boxed_str()),
                    platform,
                    seconds: 0.0,
                    channels: vec![channel],
                });
            }
        }
        out
    }

    fn pinned_goldens() -> String {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../goldens/verdicts.json");
        let (payload, prov) = crate::store::read_artifact(path).expect("pinned goldens readable");
        assert_eq!(
            prov,
            crate::store::Provenance::Checksummed,
            "pinned goldens must carry a verified store trailer"
        );
        payload
    }

    #[test]
    fn pinned_goldens_roundtrip_byte_identically() {
        // `--update-goldens` writes `golden_json`; an unchanged run must
        // re-pin the file without a single byte of churn.
        let text = pinned_goldens();
        let pinned_scale = golden_tp_samples(&text).expect("tp_samples header");
        let m = parse_golden(&text);
        assert!(
            m.len() >= 124,
            "expected 124+ pinned verdicts, got {}",
            m.len()
        );
        let rewritten = golden_json_from_map(&m, pinned_scale);
        assert_eq!(
            rewritten, text,
            "golden writer must round-trip the pinned file"
        );
    }

    #[test]
    fn check_fails_on_flipped_pinned_verdict() {
        let text = pinned_goldens();
        let pinned_scale = golden_tp_samples(&text).expect("tp_samples header");
        // Rewrite the scale header so `check_goldens` compares verdicts
        // under whatever TP_SAMPLES this test process runs at.
        let text = text.replace(
            &format!("\"tp_samples\": {pinned_scale}"),
            &format!("\"tp_samples\": {}", crate::util::effort()),
        );
        let results = results_from_golden(&parse_golden(&text));
        let n = check_goldens(&text, &results).expect("pinned goldens self-check");
        assert!(n >= 124, "checked {n} verdicts");

        // Synthetically flip the first pinned verdict: check must fail.
        let flipped = if let Some(pos) = text.find("\"verdict\": \"closed\"") {
            let mut t = text.clone();
            t.replace_range(
                pos..pos + "\"verdict\": \"closed\"".len(),
                "\"verdict\": \"leak\"",
            );
            t
        } else {
            text.replacen("\"verdict\": \"leak\"", "\"verdict\": \"closed\"", 1)
        };
        let err = check_goldens(&flipped, &results).unwrap_err();
        assert!(err.contains("VERDICT REGRESSION"), "{err}");
    }

    #[test]
    fn results_json_is_well_formed_enough() {
        let s = results_json(&fake_results(), 1.0);
        assert!(s.contains("\"experiment\": \"l1d\""));
        assert!(s.contains("\"platform\": \"haswell\""));
        assert!(s.contains("\"verdict\": \"leak\""));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }
}
