//! The kernel: state, capability-checked system calls and their
//! micro-architectural footprints.
//!
//! The kernel is a *cache actor*: every system call executes instruction
//! fetches over the handling kernel image's text, and data accesses to the
//! kernel stack, the residual shared data and the capability/object frames
//! (which live in user-supplied, hence coloured, memory). With a single
//! shared image this footprint is the §5.3.1 covert channel; with cloned
//! images it is confined to the domain's own colours.

use crate::commit::{Commit, CommitLog};
use crate::config::ProtectionConfig;
use crate::layout::{ImageFrames, ImageLayout, SharedKernelData, KERNEL_VBASE};
use crate::objects::{
    Arena, CapIdx, CapObject, Capability, Domain, DomainId, Endpoint, EpId, ImageId, KernelImage,
    KernelMemory, Notification, NtfnId, Tcb, TcbId, ThreadState, Untyped, UntypedId, VSpace,
    VSpaceId,
};
use crate::sched::ReadyQueues;
use std::collections::HashMap;
use tp_sim::mem::Mapping;
use tp_sim::{color_of_frame, Asid, ColorSet, Machine, PAddr, PlatformConfig, VAddr, FRAME_SIZE};

/// Number of interrupt sources (IRQ 0 is the preemption timer).
pub const NUM_IRQS: usize = 16;

/// First frame of the boot kernel image.
pub const BOOT_IMAGE_PFN: u64 = 16;

/// Base of the user virtual address range handed out by
/// [`Kernel::map_user_pages`].
pub const USER_VBASE: u64 = 0x0000_1000_0000;

/// Errors returned by kernel operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelError {
    /// Capability index out of range or empty slot.
    InvalidCap,
    /// The capability exists but lacks a required right.
    InsufficientRights,
    /// The capability refers to the wrong object type.
    TypeMismatch,
    /// Untyped memory exhausted.
    OutOfMemory,
    /// Operation on a zombie or destroyed object.
    ObjectGone,
    /// IRQ number out of range or already bound.
    InvalidIrq,
    /// Invalid argument (priority, size, ...).
    InvalidArg,
}

/// System calls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Syscall {
    /// Signal a notification.
    Signal {
        /// CSpace index of the notification capability.
        cap: CapIdx,
    },
    /// Poll a notification (non-blocking).
    Poll {
        /// CSpace index of the notification capability.
        cap: CapIdx,
    },
    /// Wait on a notification (blocking).
    Wait {
        /// CSpace index of the notification capability.
        cap: CapIdx,
    },
    /// Set a thread's priority.
    TcbSetPriority {
        /// CSpace index of the TCB capability.
        cap: CapIdx,
        /// New priority.
        prio: u8,
    },
    /// Call an endpoint (send + block for reply): the IPC fastpath.
    Call {
        /// CSpace index of the endpoint capability.
        cap: CapIdx,
        /// Message word.
        msg: u64,
    },
    /// Reply to the caller and wait for the next message (server loop).
    ReplyRecv {
        /// CSpace index of the endpoint capability.
        cap: CapIdx,
        /// Reply word.
        msg: u64,
    },
    /// Receive from an endpoint (blocking).
    Recv {
        /// CSpace index of the endpoint capability.
        cap: CapIdx,
    },
    /// Yield the remainder of the time slice within the domain.
    Yield,
    /// Arm the domain's one-shot user timer to fire after `us`
    /// microseconds. Requires an `IrqHandler` capability.
    SetTimer {
        /// CSpace index of the IRQ handler capability.
        cap: CapIdx,
        /// Delay in microseconds.
        us: f64,
    },
    /// Sleep until the domain's next time slot.
    SleepSlice,
    /// A minimal no-op syscall (baseline measurements).
    Nop,
}

/// Result of a system call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysReturn {
    /// Completed with a value.
    Val(u64),
    /// The calling thread blocked; the value is delivered on wake-up.
    Blocked,
    /// Failed.
    Err(KernelError),
}

/// Outcome of dispatching a system call.
#[derive(Debug, Clone, Copy)]
pub struct SysOutcome {
    /// The immediate return disposition.
    pub ret: SysReturn,
    /// Arm the core's one-shot user timer at this absolute cycle for this
    /// IRQ (engine-owned event queue).
    pub arm_timer: Option<(u64, u32)>,
}

/// Kernel code regions: each handler occupies a distinct range of text
/// lines, so different system calls have distinguishable cache footprints
/// (this is what the Figure 3 channel measures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FootKind {
    /// IPC fastpath (Call / ReplyRecv).
    Fastpath,
    /// Signal handler.
    Signal,
    /// Wait handler.
    Wait,
    /// Poll handler.
    Poll,
    /// TCB invocation (set priority).
    SetPriority,
    /// Recv slowpath.
    Recv,
    /// Yield.
    Yield,
    /// Timer-arming invocation.
    SetTimer,
    /// Preemption-tick processing.
    Tick,
    /// Interrupt delivery.
    Irq,
    /// Minimal syscall.
    Nop,
}

/// A kernel code footprint: text line offset/extent plus data touches.
#[derive(Debug, Clone, Copy)]
pub struct Foot {
    /// First text line of the handler.
    pub off: u64,
    /// Text lines executed.
    pub text: u64,
    /// Shared-data lines touched.
    pub shared: u64,
    /// Kernel stack lines touched.
    pub stack: u64,
}

/// The footprint table. Offsets are line indices into the 64 KiB text
/// segment; handlers are 4 KiB-aligned so they occupy disjoint page-colour
/// sets.
#[must_use]
pub fn foot(kind: FootKind) -> Foot {
    match kind {
        FootKind::Fastpath => Foot {
            off: 0,
            text: 26,
            shared: 3,
            stack: 3,
        },
        FootKind::Nop => Foot {
            off: 32,
            text: 8,
            shared: 1,
            stack: 1,
        },
        FootKind::Signal => Foot {
            off: 64,
            text: 46,
            shared: 2,
            stack: 4,
        },
        FootKind::Wait => Foot {
            off: 128,
            text: 30,
            shared: 2,
            stack: 3,
        },
        FootKind::Poll => Foot {
            off: 192,
            text: 22,
            shared: 1,
            stack: 2,
        },
        FootKind::SetPriority => Foot {
            off: 256,
            text: 58,
            shared: 5,
            stack: 4,
        },
        FootKind::Recv => Foot {
            off: 352,
            text: 30,
            shared: 2,
            stack: 3,
        },
        FootKind::Yield => Foot {
            off: 384,
            text: 20,
            shared: 4,
            stack: 2,
        },
        FootKind::SetTimer => Foot {
            off: 416,
            text: 26,
            shared: 2,
            stack: 3,
        },
        FootKind::Tick => Foot {
            off: 448,
            text: 36,
            shared: 6,
            stack: 4,
        },
        FootKind::Irq => Foot {
            off: 512,
            text: 40,
            shared: 4,
            stack: 4,
        },
    }
}

/// State of one interrupt source.
#[derive(Debug, Clone, Copy, Default)]
pub struct IrqState {
    /// The kernel image this IRQ is associated with (`Kernel_SetInt`).
    pub owner: Option<ImageId>,
    /// Notification signalled on delivery.
    pub ntfn: Option<NtfnId>,
    /// Arrived while partitioned away; delivered at the owner's next slot.
    pub pending: bool,
    /// Delivered count (statistics).
    pub delivered: u64,
    /// Deferred count (statistics).
    pub deferred: u64,
}

/// How threads are scheduled across domains on a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Strict time slots rotating over domains on each preemption tick
    /// (the confinement scenario: only one domain executes at a time).
    Slotted,
    /// Free thread-level scheduling; cross-domain switches happen on IPC
    /// (Table 5's artificial inter-colour measurement).
    Open,
}

/// Per-core scheduling state.
#[derive(Debug, Clone)]
pub struct CoreSched {
    /// The currently executing thread.
    pub cur: Option<TcbId>,
    /// The kernel image currently active on this core.
    pub cur_image: ImageId,
    /// The security domain whose slot is active on this core.
    pub cur_domain: Option<DomainId>,
    /// Domains with a presence on this core, in slot order.
    pub slots: Vec<DomainId>,
    /// Index of the current slot.
    pub slot_idx: usize,
    /// Scheduling mode.
    pub mode: EngineMode,
    /// Cycle at which the current slice began.
    pub slice_start: u64,
    /// Ticks processed (diagnostics).
    pub ticks: u64,
}

/// Aggregate kernel statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelStats {
    /// System calls dispatched.
    pub syscalls: u64,
    /// Preemption ticks processed.
    pub ticks: u64,
    /// Cross-image (domain) switches.
    pub domain_switches: u64,
    /// Same-image thread switches.
    pub thread_switches: u64,
    /// Cycles spent flushing on switches.
    pub flush_cycles: u64,
    /// Cycles spent padding switches.
    pub pad_cycles: u64,
    /// IPC fastpath invocations.
    pub ipc_fastpath: u64,
    /// Interrupts delivered immediately.
    pub irqs_delivered: u64,
    /// Interrupts deferred by partitioning.
    pub irqs_deferred: u64,
    /// Kernel clone operations.
    pub clones: u64,
    /// Kernel destructions.
    pub destroys: u64,
}

/// The kernel.
///
/// `Clone` is part of the snapshot/restore contract: a cloned kernel
/// resumed against a cloned [`Machine`] produces a bit-identical future
/// (used by warm-boot checkpoints and [`crate::replay::Snapshot`]).
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Platform configuration (copied from the machine).
    pub cfg: PlatformConfig,
    /// The time-protection configuration.
    pub prot: ProtectionConfig,
    /// Thread control blocks.
    pub tcbs: Arena<Tcb>,
    /// Endpoints.
    pub eps: Arena<Endpoint>,
    /// Notifications.
    pub ntfns: Arena<Notification>,
    /// Kernel images.
    pub images: Arena<KernelImage>,
    /// Kernel memory objects.
    pub kmems: Arena<KernelMemory>,
    /// Untyped pools.
    pub untypeds: Arena<Untyped>,
    /// Virtual address spaces.
    pub vspaces: Arena<VSpace>,
    /// Security domains.
    pub domains: Arena<Domain>,
    /// The residual shared kernel data (§4.1).
    pub shared: SharedKernelData,
    /// The boot kernel image (never destroyed, §4.4).
    pub boot_image: ImageId,
    /// The boot domain (owns the boot image; uncoloured).
    pub boot_domain: DomainId,
    /// Per-core scheduling state.
    pub cores: Vec<CoreSched>,
    /// Ready queues per (core, domain).
    pub run_queues: HashMap<(usize, DomainId), ReadyQueues>,
    /// Interrupt table.
    pub irqs: [IrqState; NUM_IRQS],
    /// Preemption-slice length in cycles.
    pub slice_cycles: u64,
    /// Statistics.
    pub stats: KernelStats,
    /// The per-run commit log: every state-mutating gateway records a
    /// typed [`Commit`] here when recording is enabled (see
    /// [`crate::commit`]).
    pub log: CommitLog,
    pub(crate) next_asid: u16,
}

impl Kernel {
    /// Boot the kernel: build the boot image, the shared-data region and
    /// the boot domain owning all remaining memory as one Untyped pool.
    #[must_use]
    pub fn new(
        cfg: PlatformConfig,
        prot: ProtectionConfig,
        ram_frames: u64,
        slice_cycles: u64,
    ) -> Self {
        let boot_frames = ImageFrames::contiguous(BOOT_IMAGE_PFN);
        let shared = SharedKernelData::new(PAddr(boot_frames.data[0] * FRAME_SIZE), &cfg);
        let mut images = Arena::new();
        let boot_image = ImageId(images.alloc(KernelImage {
            layout: boot_frames,
            asid: Asid::KERNEL,
            kmem: None,
            irqs: (0..NUM_IRQS as u32).collect(),
            pad_cycles: 0,
            running_on: 0,
            zombie: false,
            parent: None,
        }));

        let first_free = BOOT_IMAGE_PFN + ImageLayout::total_pages();
        let all_colors = ColorSet::all(cfg.partition_colors());
        let mut untypeds = Arena::new();
        let pool =
            UntypedId(untypeds.alloc(Untyped::new((first_free..ram_frames).collect(), all_colors)));

        let mut domains = Arena::new();
        let boot_domain = DomainId(domains.alloc(Domain {
            colors: all_colors,
            image: boot_image,
            pool,
            timer_ntfn: None,
        }));

        let cores = (0..cfg.cores)
            .map(|_| CoreSched {
                cur: None,
                cur_image: boot_image,
                cur_domain: None,
                slots: Vec::new(),
                slot_idx: 0,
                mode: EngineMode::Slotted,
                slice_start: 0,
                ticks: 0,
            })
            .collect();

        Kernel {
            cfg,
            prot,
            tcbs: Arena::new(),
            eps: Arena::new(),
            ntfns: Arena::new(),
            images,
            kmems: Arena::new(),
            untypeds,
            vspaces: Arena::new(),
            domains,
            shared,
            boot_image,
            boot_domain,
            cores,
            run_queues: HashMap::new(),
            irqs: [IrqState::default(); NUM_IRQS],
            slice_cycles,
            stats: KernelStats::default(),
            log: CommitLog::default(),
            next_asid: 1,
        }
    }

    fn alloc_asid(&mut self) -> Asid {
        let a = Asid(self.next_asid);
        self.next_asid += 1;
        a
    }

    /// Allocate `n` frames from a domain's pool.
    ///
    /// # Errors
    /// [`KernelError::OutOfMemory`] if the pool is exhausted.
    pub fn alloc_frames(&mut self, domain: DomainId, n: usize) -> Result<Vec<u64>, KernelError> {
        self.log.begin(|| Commit::AllocFrames { domain, n });
        let r = self.alloc_frames_inner(domain, n);
        self.log.end();
        r
    }

    fn alloc_frames_inner(&mut self, domain: DomainId, n: usize) -> Result<Vec<u64>, KernelError> {
        let d = self.domains.get(domain.0).ok_or(KernelError::ObjectGone)?;
        let pool = d.pool;
        self.untypeds
            .get_mut(pool.0)
            .ok_or(KernelError::ObjectGone)?
            .alloc(n)
            .ok_or(KernelError::OutOfMemory)
    }

    /// Carve a new security domain out of `parent_pool`-style global
    /// memory: takes all free frames of the given colours from the boot
    /// pool. Returns the domain; its kernel image is the boot image until
    /// [`Kernel::clone_kernel_for_domain`] is called.
    ///
    /// # Errors
    /// Propagates pool exhaustion.
    pub fn create_domain(
        &mut self,
        colors: ColorSet,
        max_frames: usize,
    ) -> Result<DomainId, KernelError> {
        self.log
            .begin(|| Commit::CreateDomain { colors, max_frames });
        let r = self.create_domain_inner(colors, max_frames);
        self.log.end();
        r
    }

    fn create_domain_inner(
        &mut self,
        colors: ColorSet,
        max_frames: usize,
    ) -> Result<DomainId, KernelError> {
        let n_colors = self.cfg.partition_colors();
        let boot_pool = self.domains.get(self.boot_domain.0).unwrap().pool;
        let pool = self
            .untypeds
            .get_mut(boot_pool.0)
            .ok_or(KernelError::ObjectGone)?;
        // Extract matching frames from the boot pool in place (allocation
        // order preserved for both sides).
        let taken =
            pool.take_matching(max_frames, |f| colors.contains(color_of_frame(f, n_colors)));
        if taken.is_empty() {
            return Err(KernelError::OutOfMemory);
        }
        let pool_id = UntypedId(self.untypeds.alloc(Untyped::new(taken, colors)));
        let id = DomainId(self.domains.alloc(Domain {
            colors,
            image: self.boot_image,
            pool: pool_id,
            timer_ntfn: None,
        }));
        Ok(id)
    }

    /// Create a thread in `domain`, pinned to `core`, with its own VSpace.
    ///
    /// # Errors
    /// Propagates pool exhaustion.
    pub fn create_thread(
        &mut self,
        domain: DomainId,
        core: usize,
        prio: u8,
    ) -> Result<TcbId, KernelError> {
        self.log
            .begin(|| Commit::CreateThread { domain, core, prio });
        let r = self.create_thread_inner(domain, core, prio);
        self.log.end();
        r
    }

    fn create_thread_inner(
        &mut self,
        domain: DomainId,
        core: usize,
        prio: u8,
    ) -> Result<TcbId, KernelError> {
        let frames = self.alloc_frames(domain, 1)?;
        let asid = self.alloc_asid();
        let image = self
            .domains
            .get(domain.0)
            .ok_or(KernelError::ObjectGone)?
            .image;
        let vspace = VSpaceId(self.vspaces.alloc(VSpace {
            asid,
            map: tp_sim::PhysMap::new(asid),
            next_va: USER_VBASE,
            domain,
        }));
        let t = TcbId(self.tcbs.alloc(Tcb {
            priority: prio,
            core,
            vspace,
            domain,
            image,
            obj_frame: frames[0],
            state: ThreadState::Ready,
            cspace: Vec::new(),
            ipc_msg: 0,
            reply_to: None,
        }));
        self.run_queues
            .entry((core, domain))
            .or_default()
            .enqueue(prio, t);
        if !self.cores[core].slots.contains(&domain) {
            self.cores[core].slots.push(domain);
        }
        Ok(t)
    }

    /// Create an endpoint in a domain's memory.
    ///
    /// # Errors
    /// Propagates pool exhaustion.
    pub fn create_endpoint(&mut self, domain: DomainId) -> Result<EpId, KernelError> {
        self.log.begin(|| Commit::CreateEndpoint { domain });
        let r = self.create_endpoint_inner(domain);
        self.log.end();
        r
    }

    fn create_endpoint_inner(&mut self, domain: DomainId) -> Result<EpId, KernelError> {
        let frames = self.alloc_frames(domain, 1)?;
        Ok(EpId(self.eps.alloc(Endpoint {
            obj_frame: frames[0],
            ..Endpoint::default()
        })))
    }

    /// Create a notification in a domain's memory.
    ///
    /// # Errors
    /// Propagates pool exhaustion.
    pub fn create_notification(&mut self, domain: DomainId) -> Result<NtfnId, KernelError> {
        self.log.begin(|| Commit::CreateNotification { domain });
        let r = self.create_notification_inner(domain);
        self.log.end();
        r
    }

    fn create_notification_inner(&mut self, domain: DomainId) -> Result<NtfnId, KernelError> {
        let frames = self.alloc_frames(domain, 1)?;
        Ok(NtfnId(self.ntfns.alloc(Notification {
            obj_frame: frames[0],
            ..Notification::default()
        })))
    }

    /// Install a capability into a thread's CSpace; returns the index.
    pub fn grant_cap(&mut self, t: TcbId, cap: Capability) -> CapIdx {
        self.log.begin(|| Commit::GrantCap { t, cap });
        let r = self.grant_cap_inner(t, cap);
        self.log.end();
        r
    }

    fn grant_cap_inner(&mut self, t: TcbId, cap: Capability) -> CapIdx {
        let tcb = self.tcbs.get_mut(t.0).expect("live thread");
        tcb.cspace.push(cap);
        tcb.cspace.len() - 1
    }

    /// Map `n` fresh frames from the thread's domain pool into its VSpace;
    /// returns the base virtual address and the frames.
    ///
    /// # Errors
    /// Propagates pool exhaustion.
    pub fn map_user_pages(&mut self, t: TcbId, n: usize) -> Result<(VAddr, Vec<u64>), KernelError> {
        self.log.begin(|| Commit::MapUserPages { t, n });
        let r = self.map_user_pages_inner(t, n);
        self.log.end();
        r
    }

    fn map_user_pages_inner(
        &mut self,
        t: TcbId,
        n: usize,
    ) -> Result<(VAddr, Vec<u64>), KernelError> {
        let (domain, vspace) = {
            let tcb = self.tcbs.get(t.0).ok_or(KernelError::ObjectGone)?;
            (tcb.domain, tcb.vspace)
        };
        let frames = self.alloc_frames(domain, n)?;
        let vs = self
            .vspaces
            .get_mut(vspace.0)
            .ok_or(KernelError::ObjectGone)?;
        let base = vs.next_va;
        for (i, pfn) in frames.iter().enumerate() {
            vs.map.map(
                base / FRAME_SIZE + i as u64,
                Mapping {
                    pfn: *pfn,
                    global: false,
                    writable: true,
                },
            );
        }
        vs.next_va += n as u64 * FRAME_SIZE;
        Ok((VAddr(base), frames))
    }

    /// Translate a user virtual address in a thread's VSpace.
    #[must_use]
    pub fn translate(&self, t: TcbId, va: VAddr) -> Option<PAddr> {
        let tcb = self.tcbs.get(t.0)?;
        self.vspaces.get(tcb.vspace.0)?.map.translate(va)
    }

    /// Execute a kernel code path: instruction fetches over the image's
    /// text, data accesses to shared data, the image's stack, and any
    /// object frames. All timed against the machine.
    pub fn kexec(
        &mut self,
        m: &mut Machine,
        core: usize,
        image: ImageId,
        kind: FootKind,
        asid: Asid,
        objs: &[PAddr],
    ) {
        self.log.begin(|| Commit::Kexec {
            core,
            image,
            kind,
            asid,
            objs: objs.to_vec(),
        });
        self.kexec_inner(m, core, image, kind, asid, objs);
        self.log.end();
    }

    fn kexec_inner(
        &mut self,
        m: &mut Machine,
        core: usize,
        image: ImageId,
        kind: FootKind,
        asid: Asid,
        objs: &[PAddr],
    ) {
        let f = foot(kind);
        let line = self.cfg.line;
        let global = self.prot.kernel_global_mappings;
        let img = self.images.get(image.0).expect("live image");
        let text = img.layout.text.clone();
        let stack = img.layout.stack.clone();
        m.advance(core, self.cfg.lat.mode_switch);
        for i in 0..f.text {
            let li = f.off + i;
            let pa = ImageFrames::line_pa(&text, li, line);
            let va = VAddr(KERNEL_VBASE + li * line);
            m.insn_fetch(core, asid, va, pa, global);
        }
        // Shared-data touches: each handler uses a fixed window of the
        // shared region (deterministic position per handler).
        let sbase = (f.off / 8) % self.shared.lines().max(1);
        for j in 0..f.shared {
            let pa = self.shared.line_pa(sbase + j);
            let va = VAddr(KERNEL_VBASE + 0x40_0000 + (sbase + j) * line);
            m.data_access(core, asid, va, pa, j == 0, global);
        }
        for j in 0..f.stack {
            let pa = ImageFrames::line_pa(&stack, j, line);
            let va = VAddr(KERNEL_VBASE + 0x50_0000 + j * line);
            m.data_access(core, asid, va, pa, true, global);
        }
        for (k, pa) in objs.iter().enumerate() {
            let va = VAddr(KERNEL_VBASE + 0x60_0000 + k as u64 * line);
            m.data_access(core, asid, va, *pa, true, global);
        }
    }

    fn cap(&self, t: TcbId, idx: CapIdx) -> Result<Capability, KernelError> {
        self.tcbs
            .get(t.0)
            .ok_or(KernelError::ObjectGone)?
            .cspace
            .get(idx)
            .copied()
            .ok_or(KernelError::InvalidCap)
    }

    fn thread_asid(&self, t: TcbId) -> Asid {
        let tcb = self.tcbs.get(t.0).expect("live thread");
        self.vspaces.get(tcb.vspace.0).expect("live vspace").asid
    }

    fn obj_frame_pa(&self, frame: u64) -> PAddr {
        PAddr(frame * FRAME_SIZE)
    }

    /// Make a thread ready and enqueue it.
    pub fn wake(&mut self, t: TcbId) {
        self.log.begin(|| Commit::Wake { t });
        self.wake_inner(t);
        self.log.end();
    }

    fn wake_inner(&mut self, t: TcbId) {
        let (core, domain, prio) = {
            let tcb = self.tcbs.get(t.0).expect("live thread");
            (tcb.core, tcb.domain, tcb.priority)
        };
        self.tcbs.get_mut(t.0).unwrap().state = ThreadState::Ready;
        self.run_queues
            .entry((core, domain))
            .or_default()
            .enqueue(prio, t);
    }

    /// Pick the next thread for `core` after the current one blocked or
    /// exited (no slot rotation). Returns the new current thread.
    pub fn schedule_same_slot(&mut self, m: &mut Machine, core: usize) -> Option<TcbId> {
        self.log.begin(|| Commit::ScheduleSameSlot { core });
        let r = self.schedule_same_slot_inner(m, core);
        self.log.end();
        r
    }

    fn schedule_same_slot_inner(&mut self, m: &mut Machine, core: usize) -> Option<TcbId> {
        let mode = self.cores[core].mode;
        let next = match mode {
            EngineMode::Slotted => {
                let domain = self.cores[core]
                    .slots
                    .get(self.cores[core].slot_idx)
                    .copied();
                domain.and_then(|d| {
                    self.run_queues
                        .get_mut(&(core, d))
                        .and_then(ReadyQueues::dequeue)
                })
            }
            EngineMode::Open => self.pick_best_any_domain(core),
        };
        if let Some(t) = next {
            self.make_current(m, core, t, false);
        } else {
            self.cores[core].cur = None;
        }
        next
    }

    fn pick_best_any_domain(&mut self, core: usize) -> Option<TcbId> {
        let slots = self.cores[core].slots.clone();
        let mut best: Option<(u8, DomainId)> = None;
        for d in slots {
            if let Some(q) = self.run_queues.get(&(core, d)) {
                if let Some(p) = q.highest() {
                    if best.is_none_or(|(bp, _)| p > bp) {
                        best = Some((p, d));
                    }
                }
            }
        }
        let (_, d) = best?;
        self.run_queues
            .get_mut(&(core, d))
            .and_then(ReadyQueues::dequeue)
    }

    /// Install `t` as the current thread of `core`, performing the fast
    /// image/stack switch if the kernel image changes (the full
    /// domain-switch work of §4.3 is done by the tick path; `direct` IPC
    /// switches pay only the stack switch).
    pub fn make_current(&mut self, m: &mut Machine, core: usize, t: TcbId, _direct: bool) {
        self.log.begin(|| Commit::MakeCurrent {
            core,
            t,
            direct: _direct,
        });
        self.make_current_inner(m, core, t, _direct);
        self.log.end();
    }

    fn make_current_inner(&mut self, m: &mut Machine, core: usize, t: TcbId, _direct: bool) {
        let new_image = self.tcbs.get(t.0).expect("live thread").image;
        let old_image = self.cores[core].cur_image;
        if new_image != old_image {
            self.switch_image_fast(m, core, old_image, new_image);
        }
        self.cores[core].cur = Some(t);
    }

    /// The implicit kernel switch: the page-directory switch brings the new
    /// image's mappings; the only explicit action is the stack switch
    /// (§4.3), copying the live part of the old stack.
    pub fn switch_image_fast(&mut self, m: &mut Machine, core: usize, from: ImageId, to: ImageId) {
        self.log
            .begin(|| Commit::SwitchImageFast { core, from, to });
        self.switch_image_fast_inner(m, core, from, to);
        self.log.end();
    }

    fn switch_image_fast_inner(
        &mut self,
        m: &mut Machine,
        core: usize,
        from: ImageId,
        to: ImageId,
    ) {
        let line = self.cfg.line;
        let global = self.prot.kernel_global_mappings;
        let (from_stack, to_stack) = {
            let f = self.images.get(from.0).expect("live image");
            let t = self.images.get(to.0).expect("live image");
            (f.layout.stack.clone(), t.layout.stack.clone())
        };
        // Copy the live part of the stack: the switch happens at a shallow
        // kernel entry point, so only a couple of lines are live.
        for i in 0..2u64 {
            let src = ImageFrames::line_pa(&from_stack, i, line);
            let dst = ImageFrames::line_pa(&to_stack, i, line);
            let va = VAddr(KERNEL_VBASE + 0x50_0000 + i * line);
            m.data_access(core, Asid::KERNEL, va, src, false, global);
            m.data_access(core, Asid::KERNEL, va, dst, true, global);
        }
        let old_running = self.images.get_mut(from.0).map(|img| {
            img.running_on &= !(1u64 << core);
        });
        let _ = old_running;
        if let Some(img) = self.images.get_mut(to.0) {
            img.running_on |= 1u64 << core;
        }
        self.cores[core].cur_image = to;
    }

    /// Dispatch a system call from thread `t` running on `core`.
    pub fn syscall(&mut self, m: &mut Machine, core: usize, t: TcbId, sys: Syscall) -> SysOutcome {
        self.log.begin(|| Commit::Syscall { core, t, sys });
        let r = self.syscall_inner(m, core, t, sys);
        self.log.end();
        r
    }

    fn syscall_inner(
        &mut self,
        m: &mut Machine,
        core: usize,
        t: TcbId,
        sys: Syscall,
    ) -> SysOutcome {
        self.stats.syscalls += 1;
        let asid = self.thread_asid(t);
        let image = self.tcbs.get(t.0).expect("live thread").image;
        let tcb_frame = self.obj_frame_pa(self.tcbs.get(t.0).unwrap().obj_frame);
        let mut arm_timer = None;

        let ret = match sys {
            Syscall::Nop => {
                self.kexec(m, core, image, FootKind::Nop, asid, &[tcb_frame]);
                SysReturn::Val(0)
            }
            Syscall::Signal { cap } => match self.cap(t, cap) {
                Ok(Capability {
                    obj: CapObject::Notification(n),
                    rights,
                }) if rights.write => {
                    let nf = self.obj_frame_pa(self.ntfns.get(n.0).expect("live ntfn").obj_frame);
                    self.kexec(m, core, image, FootKind::Signal, asid, &[tcb_frame, nf]);
                    self.do_signal(n, 1);
                    SysReturn::Val(0)
                }
                Ok(Capability {
                    obj: CapObject::Notification(_),
                    ..
                }) => SysReturn::Err(KernelError::InsufficientRights),
                Ok(_) => SysReturn::Err(KernelError::TypeMismatch),
                Err(e) => SysReturn::Err(e),
            },
            Syscall::Poll { cap } => match self.cap(t, cap) {
                Ok(Capability {
                    obj: CapObject::Notification(n),
                    rights,
                }) if rights.read => {
                    let nf = self.obj_frame_pa(self.ntfns.get(n.0).expect("live ntfn").obj_frame);
                    self.kexec(m, core, image, FootKind::Poll, asid, &[tcb_frame, nf]);
                    let ntfn = self.ntfns.get_mut(n.0).unwrap();
                    let w = ntfn.word;
                    ntfn.word = 0;
                    SysReturn::Val(w)
                }
                Ok(Capability {
                    obj: CapObject::Notification(_),
                    ..
                }) => SysReturn::Err(KernelError::InsufficientRights),
                Ok(_) => SysReturn::Err(KernelError::TypeMismatch),
                Err(e) => SysReturn::Err(e),
            },
            Syscall::Wait { cap } => match self.cap(t, cap) {
                Ok(Capability {
                    obj: CapObject::Notification(n),
                    rights,
                }) if rights.read => {
                    let nf = self.obj_frame_pa(self.ntfns.get(n.0).expect("live ntfn").obj_frame);
                    self.kexec(m, core, image, FootKind::Wait, asid, &[tcb_frame, nf]);
                    let ntfn = self.ntfns.get_mut(n.0).unwrap();
                    if ntfn.word != 0 {
                        let w = ntfn.word;
                        ntfn.word = 0;
                        SysReturn::Val(w)
                    } else {
                        ntfn.waiters.push_back(t);
                        self.block(m, core, t, ThreadState::BlockedNtfn(n));
                        SysReturn::Blocked
                    }
                }
                Ok(Capability {
                    obj: CapObject::Notification(_),
                    ..
                }) => SysReturn::Err(KernelError::InsufficientRights),
                Ok(_) => SysReturn::Err(KernelError::TypeMismatch),
                Err(e) => SysReturn::Err(e),
            },
            Syscall::TcbSetPriority { cap, prio } => match self.cap(t, cap) {
                Ok(Capability {
                    obj: CapObject::Tcb(target),
                    rights,
                }) if rights.write => {
                    let tf =
                        self.obj_frame_pa(self.tcbs.get(target.0).expect("live tcb").obj_frame);
                    self.kexec(
                        m,
                        core,
                        image,
                        FootKind::SetPriority,
                        asid,
                        &[tcb_frame, tf],
                    );
                    self.tcbs.get_mut(target.0).unwrap().priority = prio;
                    SysReturn::Val(0)
                }
                Ok(Capability {
                    obj: CapObject::Tcb(_),
                    ..
                }) => SysReturn::Err(KernelError::InsufficientRights),
                Ok(_) => SysReturn::Err(KernelError::TypeMismatch),
                Err(e) => SysReturn::Err(e),
            },
            Syscall::Call { cap, msg } => match self.cap(t, cap) {
                Ok(Capability {
                    obj: CapObject::Endpoint(ep),
                    rights,
                }) if rights.write => self.do_call(m, core, t, ep, msg, image, asid, tcb_frame),
                Ok(Capability {
                    obj: CapObject::Endpoint(_),
                    ..
                }) => SysReturn::Err(KernelError::InsufficientRights),
                Ok(_) => SysReturn::Err(KernelError::TypeMismatch),
                Err(e) => SysReturn::Err(e),
            },
            Syscall::ReplyRecv { cap, msg } => match self.cap(t, cap) {
                Ok(Capability {
                    obj: CapObject::Endpoint(ep),
                    rights,
                }) if rights.read => {
                    self.do_reply_recv(m, core, t, ep, msg, image, asid, tcb_frame)
                }
                Ok(Capability {
                    obj: CapObject::Endpoint(_),
                    ..
                }) => SysReturn::Err(KernelError::InsufficientRights),
                Ok(_) => SysReturn::Err(KernelError::TypeMismatch),
                Err(e) => SysReturn::Err(e),
            },
            Syscall::Recv { cap } => match self.cap(t, cap) {
                Ok(Capability {
                    obj: CapObject::Endpoint(ep),
                    rights,
                }) if rights.read => {
                    let ef = self.obj_frame_pa(self.eps.get(ep.0).expect("live ep").obj_frame);
                    self.kexec(m, core, image, FootKind::Recv, asid, &[tcb_frame, ef]);
                    let sender = self.eps.get_mut(ep.0).unwrap().send_queue.pop_front();
                    if let Some(s) = sender {
                        let msg = self.tcbs.get(s.0).expect("live sender").ipc_msg;
                        self.tcbs.get_mut(s.0).unwrap().state = ThreadState::BlockedReply;
                        self.tcbs.get_mut(t.0).unwrap().reply_to = Some(s);
                        SysReturn::Val(msg)
                    } else {
                        self.eps.get_mut(ep.0).unwrap().recv_queue.push_back(t);
                        self.block(m, core, t, ThreadState::BlockedRecv(ep));
                        SysReturn::Blocked
                    }
                }
                Ok(Capability {
                    obj: CapObject::Endpoint(_),
                    ..
                }) => SysReturn::Err(KernelError::InsufficientRights),
                Ok(_) => SysReturn::Err(KernelError::TypeMismatch),
                Err(e) => SysReturn::Err(e),
            },
            Syscall::Yield => {
                self.kexec(m, core, image, FootKind::Yield, asid, &[tcb_frame]);
                let (domain, prio) = {
                    let tcb = self.tcbs.get(t.0).unwrap();
                    (tcb.domain, tcb.priority)
                };
                self.run_queues
                    .entry((core, domain))
                    .or_default()
                    .enqueue(prio, t);
                self.cores[core].cur = None;
                self.schedule_same_slot(m, core);
                SysReturn::Val(0)
            }
            Syscall::SetTimer { cap, us } => match self.cap(t, cap) {
                Ok(Capability {
                    obj: CapObject::IrqHandler(irq),
                    ..
                }) => {
                    if (irq as usize) >= NUM_IRQS || us <= 0.0 {
                        SysReturn::Err(KernelError::InvalidIrq)
                    } else {
                        self.kexec(m, core, image, FootKind::SetTimer, asid, &[tcb_frame]);
                        let at = m.cycles(core) + self.cfg.us_to_cycles(us);
                        arm_timer = Some((at, irq));
                        SysReturn::Val(0)
                    }
                }
                Ok(_) => SysReturn::Err(KernelError::TypeMismatch),
                Err(e) => SysReturn::Err(e),
            },
            Syscall::SleepSlice => {
                self.kexec(m, core, image, FootKind::Yield, asid, &[tcb_frame]);
                self.block(m, core, t, ThreadState::SleepingUntilSlice);
                SysReturn::Blocked
            }
        };
        SysOutcome { ret, arm_timer }
    }

    /// Deliver a signal to a notification, waking one waiter if present.
    pub fn do_signal(&mut self, n: NtfnId, badge: u64) {
        self.log.begin(|| Commit::Signal { ntfn: n, badge });
        self.do_signal_inner(n, badge);
        self.log.end();
    }

    fn do_signal_inner(&mut self, n: NtfnId, badge: u64) {
        let waiter = {
            let ntfn = self.ntfns.get_mut(n.0).expect("live ntfn");
            if let Some(w) = ntfn.waiters.pop_front() {
                Some((w, badge))
            } else {
                ntfn.word |= badge;
                None
            }
        };
        if let Some((w, badge)) = waiter {
            self.tcbs.get_mut(w.0).unwrap().ipc_msg = badge;
            self.wake(w);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn do_call(
        &mut self,
        m: &mut Machine,
        core: usize,
        t: TcbId,
        ep: EpId,
        msg: u64,
        image: ImageId,
        asid: Asid,
        tcb_frame: PAddr,
    ) -> SysReturn {
        let ef = self.obj_frame_pa(self.eps.get(ep.0).expect("live ep").obj_frame);
        self.kexec(m, core, image, FootKind::Fastpath, asid, &[tcb_frame, ef]);
        let server = self.eps.get_mut(ep.0).unwrap().recv_queue.pop_front();
        if let Some(s) = server {
            // Fastpath: direct switch to the server.
            self.stats.ipc_fastpath += 1;
            {
                let st = self.tcbs.get_mut(s.0).unwrap();
                st.ipc_msg = msg;
                st.reply_to = Some(t);
                st.state = ThreadState::Ready;
            }
            self.tcbs.get_mut(t.0).unwrap().state = ThreadState::BlockedReply;
            self.cores[core].cur = None;
            self.make_current(m, core, s, true);
            SysReturn::Blocked
        } else {
            let tc = self.tcbs.get_mut(t.0).unwrap();
            tc.ipc_msg = msg;
            tc.state = ThreadState::BlockedSend(ep);
            self.eps.get_mut(ep.0).unwrap().send_queue.push_back(t);
            self.cores[core].cur = None;
            self.schedule_same_slot(m, core);
            SysReturn::Blocked
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn do_reply_recv(
        &mut self,
        m: &mut Machine,
        core: usize,
        t: TcbId,
        ep: EpId,
        msg: u64,
        image: ImageId,
        asid: Asid,
        tcb_frame: PAddr,
    ) -> SysReturn {
        let ef = self.obj_frame_pa(self.eps.get(ep.0).expect("live ep").obj_frame);
        self.kexec(m, core, image, FootKind::Fastpath, asid, &[tcb_frame, ef]);
        // Reply phase.
        let caller = self.tcbs.get_mut(t.0).unwrap().reply_to.take();
        // Receive phase: check for a queued sender.
        let sender = self.eps.get_mut(ep.0).unwrap().send_queue.pop_front();
        match (caller, sender) {
            (Some(c), None) => {
                // Fastpath: reply and switch back to the caller.
                self.stats.ipc_fastpath += 1;
                {
                    let ct = self.tcbs.get_mut(c.0).unwrap();
                    ct.ipc_msg = msg;
                    ct.state = ThreadState::Ready;
                }
                self.eps.get_mut(ep.0).unwrap().recv_queue.push_back(t);
                self.tcbs.get_mut(t.0).unwrap().state = ThreadState::BlockedRecv(ep);
                self.cores[core].cur = None;
                self.make_current(m, core, c, true);
                SysReturn::Blocked
            }
            (caller, Some(s)) => {
                if let Some(c) = caller {
                    let ct = self.tcbs.get_mut(c.0).unwrap();
                    ct.ipc_msg = msg;
                    self.wake(c);
                }
                let smsg = self.tcbs.get(s.0).expect("live sender").ipc_msg;
                self.tcbs.get_mut(s.0).unwrap().state = ThreadState::BlockedReply;
                self.tcbs.get_mut(t.0).unwrap().reply_to = Some(s);
                SysReturn::Val(smsg)
            }
            (None, None) => {
                self.eps.get_mut(ep.0).unwrap().recv_queue.push_back(t);
                self.block(m, core, t, ThreadState::BlockedRecv(ep));
                SysReturn::Blocked
            }
        }
    }

    fn block(&mut self, m: &mut Machine, core: usize, t: TcbId, state: ThreadState) {
        self.tcbs.get_mut(t.0).unwrap().state = state;
        if self.cores[core].cur == Some(t) {
            self.cores[core].cur = None;
            self.schedule_same_slot(m, core);
        }
    }

    /// A thread's program has finished.
    pub fn thread_exited(&mut self, m: &mut Machine, t: TcbId) {
        self.log.begin(|| Commit::ThreadExited { t });
        self.thread_exited_inner(m, t);
        self.log.end();
    }

    fn thread_exited_inner(&mut self, m: &mut Machine, t: TcbId) {
        let (core, domain, prio) = {
            let tcb = self.tcbs.get(t.0).expect("live thread");
            (tcb.core, tcb.domain, tcb.priority)
        };
        self.tcbs.get_mut(t.0).unwrap().state = ThreadState::Exited;
        if let Some(q) = self.run_queues.get_mut(&(core, domain)) {
            q.remove(prio, t);
        }
        if self.cores[core].cur == Some(t) {
            self.cores[core].cur = None;
            self.schedule_same_slot(m, core);
        }
    }

    /// An interrupt `irq` has arrived on `core`. Returns `true` if it was
    /// delivered immediately (and its cost charged), `false` if deferred by
    /// partitioning (Requirement 5).
    pub fn irq_arrives(&mut self, m: &mut Machine, core: usize, irq: u32) -> bool {
        self.log.begin(|| Commit::IrqArrives { core, irq });
        let r = self.irq_arrives_inner(m, core, irq);
        self.log.end();
        r
    }

    fn irq_arrives_inner(&mut self, m: &mut Machine, core: usize, irq: u32) -> bool {
        let i = irq as usize;
        assert!(i < NUM_IRQS, "irq out of range");
        let owner = self.irqs[i].owner;
        let cur_image = self.cores[core].cur_image;
        let partitioned = self.prot.irq_partition && owner.is_some() && owner != Some(cur_image);
        if partitioned {
            self.irqs[i].pending = true;
            self.irqs[i].deferred += 1;
            self.stats.irqs_deferred += 1;
            return false;
        }
        self.deliver_irq(m, core, irq);
        true
    }

    /// Deliver an IRQ on `core`: run the kernel IRQ path and signal the
    /// bound notification.
    pub fn deliver_irq(&mut self, m: &mut Machine, core: usize, irq: u32) {
        self.log.begin(|| Commit::DeliverIrq { core, irq });
        self.deliver_irq_inner(m, core, irq);
        self.log.end();
    }

    fn deliver_irq_inner(&mut self, m: &mut Machine, core: usize, irq: u32) {
        let i = irq as usize;
        let image = self.cores[core].cur_image;
        self.kexec(m, core, image, FootKind::Irq, Asid::KERNEL, &[]);
        self.irqs[i].pending = false;
        self.irqs[i].delivered += 1;
        self.stats.irqs_delivered += 1;
        if let Some(n) = self.irqs[i].ntfn {
            self.do_signal(n, 1 << irq);
        }
    }

    /// `Kernel_SetInt`: associate an IRQ with a kernel image (§4.2).
    ///
    /// # Errors
    /// [`KernelError::InvalidIrq`] for out-of-range IRQs.
    pub fn kernel_set_int(
        &mut self,
        image: ImageId,
        irq: u32,
        ntfn: Option<NtfnId>,
    ) -> Result<(), KernelError> {
        self.log.begin(|| Commit::KernelSetInt { image, irq, ntfn });
        let r = self.kernel_set_int_inner(image, irq, ntfn);
        self.log.end();
        r
    }

    fn kernel_set_int_inner(
        &mut self,
        image: ImageId,
        irq: u32,
        ntfn: Option<NtfnId>,
    ) -> Result<(), KernelError> {
        let i = irq as usize;
        if i == 0 || i >= NUM_IRQS {
            return Err(KernelError::InvalidIrq);
        }
        self.irqs[i].owner = Some(image);
        self.irqs[i].ntfn = ntfn;
        if let Some(img) = self.images.get_mut(image.0) {
            img.irqs.push(irq);
        }
        Ok(())
    }

    /// Configure the padding latency of an image (a user-controlled
    /// kernel-image attribute, §4.3).
    pub fn set_pad_cycles(&mut self, image: ImageId, cycles: u64) {
        self.log.begin(|| Commit::SetPadCycles { image, cycles });
        self.set_pad_cycles_inner(image, cycles);
        self.log.end();
    }

    fn set_pad_cycles_inner(&mut self, image: ImageId, cycles: u64) {
        if let Some(img) = self.images.get_mut(image.0) {
            img.pad_cycles = cycles;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::Rights;
    use tp_sim::Platform;

    fn setup() -> (Machine, Kernel) {
        let cfg = Platform::Haswell.config();
        let m = Machine::new(cfg, 42);
        let k = Kernel::new(cfg, ProtectionConfig::raw(), 4096, 3_400_000);
        (m, k)
    }

    #[test]
    fn boot_creates_image_and_pool() {
        let (_, k) = setup();
        assert_eq!(k.images.len(), 1);
        let pool = k.domains.get(k.boot_domain.0).unwrap().pool;
        assert!(k.untypeds.get(pool.0).unwrap().available() > 3000);
    }

    #[test]
    fn create_thread_and_map_pages() {
        let (_, mut k) = setup();
        let t = k.create_thread(k.boot_domain, 0, 100).unwrap();
        let (va, frames) = k.map_user_pages(t, 4).unwrap();
        assert_eq!(frames.len(), 4);
        let pa = k.translate(t, va).unwrap();
        assert_eq!(pa.pfn(), frames[0]);
        assert_eq!(
            k.translate(t, VAddr(va.0 + 3 * FRAME_SIZE)).unwrap().pfn(),
            frames[3]
        );
        assert!(k.translate(t, VAddr(0xdead_0000)).is_none());
    }

    #[test]
    fn colored_domain_gets_only_its_colors() {
        let cfg = Platform::Haswell.config();
        let mut k = Kernel::new(cfg, ProtectionConfig::protected(), 4096, 3_400_000);
        let colors = ColorSet::range(0, 4);
        let d = k.create_domain(colors, 256).unwrap();
        let t = k.create_thread(d, 0, 100).unwrap();
        let (_, frames) = k.map_user_pages(t, 32).unwrap();
        let n = cfg.partition_colors();
        for f in frames {
            assert!(
                colors.contains(color_of_frame(f, n)),
                "frame {f} off-colour"
            );
        }
    }

    #[test]
    fn signal_poll_roundtrip() {
        let (mut m, mut k) = setup();
        let t = k.create_thread(k.boot_domain, 0, 100).unwrap();
        k.cores[0].cur = Some(t);
        let n = k.create_notification(k.boot_domain).unwrap();
        let cap = k.grant_cap(
            t,
            Capability {
                obj: CapObject::Notification(n),
                rights: Rights::all(),
            },
        );
        let out = k.syscall(&mut m, 0, t, Syscall::Signal { cap });
        assert_eq!(out.ret, SysReturn::Val(0));
        let out = k.syscall(&mut m, 0, t, Syscall::Poll { cap });
        assert_eq!(out.ret, SysReturn::Val(1));
        // Second poll: empty.
        let out = k.syscall(&mut m, 0, t, Syscall::Poll { cap });
        assert_eq!(out.ret, SysReturn::Val(0));
    }

    #[test]
    fn rights_are_enforced() {
        let (mut m, mut k) = setup();
        let t = k.create_thread(k.boot_domain, 0, 100).unwrap();
        k.cores[0].cur = Some(t);
        let n = k.create_notification(k.boot_domain).unwrap();
        let ro = Rights {
            read: true,
            write: false,
            grant: false,
            clone: false,
        };
        let cap = k.grant_cap(
            t,
            Capability {
                obj: CapObject::Notification(n),
                rights: ro,
            },
        );
        let out = k.syscall(&mut m, 0, t, Syscall::Signal { cap });
        assert_eq!(out.ret, SysReturn::Err(KernelError::InsufficientRights));
        let out = k.syscall(&mut m, 0, t, Syscall::Poll { cap });
        assert_eq!(out.ret, SysReturn::Val(0));
    }

    #[test]
    fn bad_cap_index_rejected() {
        let (mut m, mut k) = setup();
        let t = k.create_thread(k.boot_domain, 0, 100).unwrap();
        k.cores[0].cur = Some(t);
        let out = k.syscall(&mut m, 0, t, Syscall::Signal { cap: 7 });
        assert_eq!(out.ret, SysReturn::Err(KernelError::InvalidCap));
    }

    #[test]
    fn type_mismatch_rejected() {
        let (mut m, mut k) = setup();
        let t = k.create_thread(k.boot_domain, 0, 100).unwrap();
        k.cores[0].cur = Some(t);
        let ep = k.create_endpoint(k.boot_domain).unwrap();
        let cap = k.grant_cap(
            t,
            Capability {
                obj: CapObject::Endpoint(ep),
                rights: Rights::all(),
            },
        );
        let out = k.syscall(&mut m, 0, t, Syscall::Signal { cap });
        assert_eq!(out.ret, SysReturn::Err(KernelError::TypeMismatch));
    }

    #[test]
    fn ipc_call_fastpath_switches_to_server() {
        let (mut m, mut k) = setup();
        let client = k.create_thread(k.boot_domain, 0, 100).unwrap();
        let server = k.create_thread(k.boot_domain, 0, 100).unwrap();
        let ep = k.create_endpoint(k.boot_domain).unwrap();
        let ccap = k.grant_cap(
            client,
            Capability {
                obj: CapObject::Endpoint(ep),
                rights: Rights::all(),
            },
        );
        let scap = k.grant_cap(
            server,
            Capability {
                obj: CapObject::Endpoint(ep),
                rights: Rights::all(),
            },
        );

        // Server blocks in Recv first.
        k.cores[0].cur = Some(server);
        let out = k.syscall(&mut m, 0, server, Syscall::Recv { cap: scap });
        assert_eq!(out.ret, SysReturn::Blocked);

        // Client calls: fastpath delivers directly to the server.
        k.cores[0].cur = Some(client);
        let out = k.syscall(&mut m, 0, client, Syscall::Call { cap: ccap, msg: 99 });
        assert_eq!(out.ret, SysReturn::Blocked);
        assert_eq!(k.cores[0].cur, Some(server));
        assert_eq!(k.tcbs.get(server.0).unwrap().ipc_msg, 99);

        // Server replies; switches back to client.
        let out = k.syscall(
            &mut m,
            0,
            server,
            Syscall::ReplyRecv {
                cap: scap,
                msg: 123,
            },
        );
        assert_eq!(out.ret, SysReturn::Blocked);
        assert_eq!(k.cores[0].cur, Some(client));
        assert_eq!(k.tcbs.get(client.0).unwrap().ipc_msg, 123);
        assert_eq!(k.stats.ipc_fastpath, 2);
    }

    #[test]
    fn irq_partitioning_defers_foreign_interrupts() {
        let cfg = Platform::Haswell.config();
        let mut m = Machine::new(cfg, 42);
        let mut k = Kernel::new(cfg, ProtectionConfig::protected(), 8192, 3_400_000);
        // Two coloured domains, each with a cloned kernel.
        let d0 = k.create_domain(ColorSet::range(0, 4), 512).unwrap();
        let d1 = k.create_domain(ColorSet::range(4, 8), 512).unwrap();
        let i0 = k.clone_kernel_for_domain(&mut m, 0, d0).unwrap();
        let i1 = k.clone_kernel_for_domain(&mut m, 0, d1).unwrap();
        k.kernel_set_int(i1, 3, None).unwrap();
        // Current image is d0's: IRQ 3 (owned by d1's kernel) must defer.
        k.cores[0].cur_image = i0;
        assert!(!k.irq_arrives(&mut m, 0, 3));
        assert!(k.irqs[3].pending);
        // Once d1's kernel is current, delivery proceeds.
        k.cores[0].cur_image = i1;
        assert!(k.irq_arrives(&mut m, 0, 3));
        assert!(!k.irqs[3].pending);
    }

    #[test]
    fn kexec_touches_caches() {
        let (mut m, mut k) = setup();
        let before = m.cycles(0);
        let boot = k.boot_image;
        k.kexec(&mut m, 0, boot, FootKind::Signal, Asid(5), &[]);
        let cold = m.cycles(0) - before;
        let before = m.cycles(0);
        k.kexec(&mut m, 0, boot, FootKind::Signal, Asid(5), &[]);
        let warm = m.cycles(0) - before;
        assert!(
            cold > warm,
            "kernel text must become cache-resident: {cold} vs {warm}"
        );
    }
}
