//! Deterministic fault injection for chaos-testing the campaign supervisor.
//!
//! A [`FaultPlan`] names one fault class (and optionally the single
//! experiment×platform cell it applies to). Faults are **deterministic**: a
//! fault point is a position in the simulated event stream — syscall number,
//! commit index, noise-stream draw — never a wall-clock instant, so a chaos
//! run with the same plan and seed reproduces bit-for-bit.
//!
//! Plans travel to a cell through a thread-local rather than a global: the
//! campaign supervisor runs each cell on its own host thread, arms the plan
//! there with [`arm`], and [`SystemBuilder::run`](crate::SystemBuilder)
//! reads it exactly once when the cell boots. Parallel cells (and parallel
//! `cargo test` threads) therefore never see each other's faults.
//!
//! The `TP_FAULT` environment knob is the CLI spelling of a plan — grammar
//! in [`FaultPlan::parse`]:
//!
//! ```text
//! TP_FAULT=env-panic@120
//! TP_FAULT=snapshot-corrupt:cell=flush/haswell
//! ```

use std::fmt;
use std::time::Instant;

/// One injectable fault class, with its deterministic trigger point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The simulated environment panics on its `at`-th syscall (counted
    /// under the engine lock, so the count is schedule-deterministic).
    EnvPanic {
        /// 1-based syscall ordinal at which the panic fires.
        at: u64,
    },
    /// The simulated environment stops yielding after its `at`-th syscall:
    /// the thread spins off-lock forever, exercising the engine watchdog.
    EnvStall {
        /// 1-based syscall ordinal after which the environment hangs.
        at: u64,
    },
    /// The commit log records a forged commit at `index`, so replay of the
    /// log diverges from the live run — exercising the replay oracle.
    CommitFlip {
        /// 0-based commit index to corrupt.
        index: usize,
    },
    /// The warm-boot restore path hands out a corrupted snapshot clone,
    /// exercising the `state_hash()` verification + cold-boot fallback.
    SnapshotCorrupt,
    /// The machine's noise stream panics after `after` further draws.
    NoisePoison {
        /// Number of draws that still succeed before the stream faults.
        after: u64,
    },
    /// The `at`-th cross-core token rotation is swallowed and the token
    /// wedges — modelling a lost scheduler wakeup that nothing re-delivers.
    /// The cooperative executor's deadlock detector must classify the
    /// resulting stall as [`crate::SimErrorKind::Deadlock`] at a
    /// deterministic interaction ordinal, never as a wall-clock watchdog.
    LostWakeup {
        /// 1-based token-rotation ordinal at which rotations stop.
        at: u64,
    },
    /// One cooperative-executor worker thread dies after its `at`-th drive;
    /// the coroutines it was multiplexing are adopted by the surviving
    /// workers, so the run must complete with bit-identical results.
    WorkerKill {
        /// 1-based drive ordinal after which the worker exits.
        at: u64,
    },
    /// The environment's coroutine stack guard canary is clobbered at its
    /// next interaction, exercising the stack-overflow detection that runs
    /// at every suspend (uniform across the asm and thread-backed
    /// coroutine backends).
    StackOverflow,
}

impl FaultKind {
    /// The `TP_FAULT` spelling of this class (without trigger point).
    #[must_use]
    pub fn class_name(self) -> &'static str {
        match self {
            FaultKind::EnvPanic { .. } => "env-panic",
            FaultKind::EnvStall { .. } => "env-stall",
            FaultKind::CommitFlip { .. } => "commit-flip",
            FaultKind::SnapshotCorrupt => "snapshot-corrupt",
            FaultKind::NoisePoison { .. } => "noise-poison",
            FaultKind::LostWakeup { .. } => "lost-wakeup",
            FaultKind::WorkerKill { .. } => "worker-kill",
            FaultKind::StackOverflow => "stack-overflow",
        }
    }

    /// All eight classes at their default trigger points, in a fixed order —
    /// what the chaos binary iterates when `TP_FAULT` is unset.
    #[must_use]
    pub fn all_defaults() -> [FaultKind; 8] {
        [
            FaultKind::EnvPanic { at: 3 },
            FaultKind::EnvStall { at: 3 },
            FaultKind::CommitFlip { index: 17 },
            FaultKind::SnapshotCorrupt,
            FaultKind::NoisePoison { after: 64 },
            FaultKind::LostWakeup { at: 2 },
            FaultKind::WorkerKill { at: 3 },
            FaultKind::StackOverflow,
        ]
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultKind::EnvPanic { at } => write!(f, "env-panic@{at}"),
            FaultKind::EnvStall { at } => write!(f, "env-stall@{at}"),
            FaultKind::CommitFlip { index } => write!(f, "commit-flip@{index}"),
            FaultKind::SnapshotCorrupt => write!(f, "snapshot-corrupt"),
            FaultKind::NoisePoison { after } => write!(f, "noise-poison@{after}"),
            FaultKind::LostWakeup { at } => write!(f, "lost-wakeup@{at}"),
            FaultKind::WorkerKill { at } => write!(f, "worker-kill@{at}"),
            FaultKind::StackOverflow => write!(f, "stack-overflow"),
        }
    }
}

/// A fault to inject, optionally scoped to one campaign cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The fault class and trigger point.
    pub kind: FaultKind,
    /// `Some((experiment, platform))` scopes the fault to that one cell;
    /// `None` applies it to every cell.
    pub cell: Option<(String, String)>,
}

impl FaultPlan {
    /// A plan for `kind` applying to every cell.
    #[must_use]
    pub fn new(kind: FaultKind) -> Self {
        FaultPlan { kind, cell: None }
    }

    /// Parse the `TP_FAULT` grammar:
    ///
    /// ```text
    /// plan  := class [ "@" N ] [ ":cell=" experiment "/" platform ]
    /// class := "env-panic" | "env-stall" | "commit-flip"
    ///        | "snapshot-corrupt" | "noise-poison"
    ///        | "lost-wakeup" | "worker-kill" | "stack-overflow"
    /// ```
    ///
    /// `@N` sets the trigger point (interaction ordinal, commit index,
    /// draw count, rotation ordinal or drive ordinal depending on class)
    /// and defaults per class; `snapshot-corrupt` and `stack-overflow`
    /// have no trigger point and reject one.
    ///
    /// # Errors
    /// Returns a human-readable message for an unknown class, a malformed
    /// trigger point, or a malformed cell scope.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        let (head, cell) = match spec.split_once(":cell=") {
            Some((head, cell_spec)) => {
                let (exp, plat) = cell_spec.split_once('/').ok_or_else(|| {
                    format!("cell scope `{cell_spec}` is not experiment/platform")
                })?;
                if exp.is_empty() || plat.is_empty() {
                    return Err(format!("cell scope `{cell_spec}` has an empty component"));
                }
                (head, Some((exp.to_string(), plat.to_string())))
            }
            None => (spec, None),
        };
        let (class, at) = match head.split_once('@') {
            Some((class, n)) => {
                let n: u64 = n
                    .parse()
                    .map_err(|_| format!("trigger point `{n}` is not a non-negative integer"))?;
                (class, Some(n))
            }
            None => (head, None),
        };
        let kind = match class {
            "env-panic" => FaultKind::EnvPanic {
                at: at.unwrap_or(3),
            },
            "env-stall" => FaultKind::EnvStall {
                at: at.unwrap_or(3),
            },
            "commit-flip" => FaultKind::CommitFlip {
                index: at.unwrap_or(17) as usize,
            },
            "snapshot-corrupt" => {
                if at.is_some() {
                    return Err("snapshot-corrupt takes no trigger point".into());
                }
                FaultKind::SnapshotCorrupt
            }
            "noise-poison" => FaultKind::NoisePoison {
                after: at.unwrap_or(64),
            },
            "lost-wakeup" => FaultKind::LostWakeup {
                at: at.unwrap_or(2),
            },
            "worker-kill" => FaultKind::WorkerKill {
                at: at.unwrap_or(3),
            },
            "stack-overflow" => {
                if at.is_some() {
                    return Err("stack-overflow takes no trigger point".into());
                }
                FaultKind::StackOverflow
            }
            other => {
                return Err(format!(
                    "unknown fault class `{other}` (expected env-panic, env-stall, \
                     commit-flip, snapshot-corrupt, noise-poison, lost-wakeup, \
                     worker-kill or stack-overflow)"
                ))
            }
        };
        Ok(FaultPlan { kind, cell })
    }

    /// The plan from `TP_FAULT`, if set. `Ok(None)` when the knob is unset
    /// or empty.
    ///
    /// # Errors
    /// Propagates [`FaultPlan::parse`] errors, prefixed with the knob name.
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var("TP_FAULT") {
            Ok(s) if !s.trim().is_empty() => Self::parse(&s)
                .map(Some)
                .map_err(|e| format!("TP_FAULT: {e}")),
            _ => Ok(None),
        }
    }

    /// Whether this plan applies to the cell `experiment` × `platform`.
    #[must_use]
    pub fn matches(&self, experiment: &str, platform: &str) -> bool {
        match &self.cell {
            None => true,
            Some((e, p)) => e == experiment && p == platform,
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        if let Some((e, p)) = &self.cell {
            write!(f, ":cell={e}/{p}")?;
        }
        Ok(())
    }
}

thread_local! {
    /// The fault armed for the next system boot on this thread.
    static ARMED: std::cell::Cell<Option<FaultKind>> = const { std::cell::Cell::new(None) };
    /// The wall-clock deadline armed for the next system run on this thread.
    static DEADLINE: std::cell::Cell<Option<Instant>> = const { std::cell::Cell::new(None) };
}

/// Arm (or with `None`, disarm) a fault for systems subsequently built on
/// *this thread*. The supervisor calls this on the cell's worker thread;
/// [`SystemBuilder::run`](crate::SystemBuilder) consumes it at boot.
pub fn arm(kind: Option<FaultKind>) {
    ARMED.with(|c| c.set(kind));
}

/// The fault currently armed on this thread, if any.
#[must_use]
pub fn armed() -> Option<FaultKind> {
    ARMED.with(std::cell::Cell::get)
}

/// Arm (or with `None`, disarm) a wall-clock deadline for systems
/// subsequently run on this thread. When set, the engine's watchdog aborts
/// the simulation once the deadline passes instead of hanging.
pub fn set_deadline(deadline: Option<Instant>) {
    DEADLINE.with(|c| c.set(deadline));
}

/// The deadline currently armed on this thread, if any.
#[must_use]
pub fn deadline() -> Option<Instant> {
    DEADLINE.with(std::cell::Cell::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_class_with_and_without_trigger() {
        assert_eq!(
            FaultPlan::parse("env-panic@120").unwrap().kind,
            FaultKind::EnvPanic { at: 120 }
        );
        assert_eq!(
            FaultPlan::parse("env-stall").unwrap().kind,
            FaultKind::EnvStall { at: 3 }
        );
        assert_eq!(
            FaultPlan::parse("commit-flip@9").unwrap().kind,
            FaultKind::CommitFlip { index: 9 }
        );
        assert_eq!(
            FaultPlan::parse("snapshot-corrupt").unwrap().kind,
            FaultKind::SnapshotCorrupt
        );
        assert_eq!(
            FaultPlan::parse("noise-poison@1000").unwrap().kind,
            FaultKind::NoisePoison { after: 1000 }
        );
        assert_eq!(
            FaultPlan::parse("lost-wakeup@7").unwrap().kind,
            FaultKind::LostWakeup { at: 7 }
        );
        assert_eq!(
            FaultPlan::parse("lost-wakeup").unwrap().kind,
            FaultKind::LostWakeup { at: 2 }
        );
        assert_eq!(
            FaultPlan::parse("worker-kill").unwrap().kind,
            FaultKind::WorkerKill { at: 3 }
        );
        assert_eq!(
            FaultPlan::parse("stack-overflow").unwrap().kind,
            FaultKind::StackOverflow
        );
    }

    #[test]
    fn parses_cell_scope_and_matches() {
        let p = FaultPlan::parse("env-panic@5:cell=flush/haswell").unwrap();
        assert_eq!(p.cell, Some(("flush".to_string(), "haswell".to_string())));
        assert!(p.matches("flush", "haswell"));
        assert!(!p.matches("flush", "sabre"));
        assert!(!p.matches("bus", "haswell"));
        let unscoped = FaultPlan::parse("env-panic").unwrap();
        assert!(unscoped.matches("anything", "anywhere"));
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(FaultPlan::parse("frob").is_err());
        assert!(FaultPlan::parse("env-panic@lots").is_err());
        assert!(FaultPlan::parse("snapshot-corrupt@3").is_err());
        assert!(FaultPlan::parse("stack-overflow@3").is_err());
        assert!(FaultPlan::parse("env-panic:cell=flush").is_err());
        assert!(FaultPlan::parse("env-panic:cell=/haswell").is_err());
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for spec in [
            "env-panic@3",
            "env-stall@7",
            "commit-flip@17",
            "snapshot-corrupt",
            "noise-poison@64",
            "lost-wakeup@2",
            "worker-kill@3",
            "stack-overflow",
            "env-panic@5:cell=flush/haswell",
        ] {
            let p = FaultPlan::parse(spec).unwrap();
            assert_eq!(p.to_string(), spec);
            assert_eq!(FaultPlan::parse(&p.to_string()).unwrap(), p);
        }
    }

    #[test]
    fn thread_local_arming_is_per_thread() {
        arm(Some(FaultKind::SnapshotCorrupt));
        assert_eq!(armed(), Some(FaultKind::SnapshotCorrupt));
        let other = std::thread::spawn(armed).join().unwrap();
        assert_eq!(other, None, "arming must not leak across threads");
        arm(None);
        assert_eq!(armed(), None);
    }
}
