//! The preemption-tick / domain-switch path (§4.3).
//!
//! The running kernel is mostly unaware of domains; a domain switch happens
//! implicitly when the preemption timer rotates the core to a thread served
//! by a different kernel image. The steps, in order (bold in the paper
//! means kernel-switch only):
//!
//! 1. acquire the kernel lock
//! 2. process the timer tick normally
//! 3. **mask interrupts**
//! 4. **switch the kernel stack**
//! 5. switch thread context (implicitly the kernel image)
//! 6. release the kernel lock
//! 7. **unmask interrupts of the new kernel**
//! 8. **flush on-core microarchitectural state**
//! 9. **pre-fetch shared kernel data**
//! 10. **poll the cycle counter for the configured latency**
//! 11. reprogram the timer interrupt
//! 12. restore the user stack pointer and return

use crate::commit::Commit;
use crate::config::FlushMode;
use crate::kernel::{EngineMode, FootKind, Kernel};
use crate::layout::KERNEL_VBASE;
use crate::objects::{DomainId, ImageId, ThreadState};
use tp_sim::flush as hwflush;
use tp_sim::{Asid, Machine, PAddr, VAddr};

/// Cost of acquiring the (uncontended) big kernel lock.
const LOCK_ACQUIRE: u64 = 30;
/// Cost of releasing the big kernel lock.
const LOCK_RELEASE: u64 = 15;
/// Cost of masking the interrupt controller.
const IRQ_MASK: u64 = 60;
/// Cost of probing/acknowledging racing interrupts after masking (the x86
/// hierarchical-controller race of §4.3; Arm's single-level GIC avoids it).
const IRQ_RACE_PROBE: u64 = 45;
/// Cost of unmasking the new kernel's interrupts.
const IRQ_UNMASK: u64 = 50;
/// Register save/restore for a thread context switch.
const CONTEXT_SWITCH: u64 = 90;
/// Reprogramming the preemption timer.
const TIMER_REPROGRAM: u64 = 35;

/// Result of processing a preemption tick.
#[derive(Debug, Clone, Copy)]
pub struct TickOutcome {
    /// Absolute cycle at which the next preemption tick should fire.
    pub next_tick_at: u64,
    /// Whether the kernel image (security domain) changed.
    pub switched_domain: bool,
}

impl Kernel {
    /// Process a preemption tick on `core`: rotate the schedule and perform
    /// the full §4.3 switch sequence where the kernel image changes.
    pub fn handle_tick(&mut self, m: &mut Machine, core: usize) -> TickOutcome {
        self.log.begin(|| Commit::Tick { core });
        let r = self.handle_tick_inner(m, core);
        self.log.end();
        r
    }

    fn handle_tick_inner(&mut self, m: &mut Machine, core: usize) -> TickOutcome {
        let tick_cycle = m.cycles(core);
        self.stats.ticks += 1;
        self.cores[core].ticks += 1;
        let from_image = self.cores[core].cur_image;

        // Step 1: acquire the kernel lock.
        m.advance(core, LOCK_ACQUIRE);

        // Step 2: process the timer tick normally (kernel code + scheduler
        // shared data).
        self.kexec(m, core, from_image, FootKind::Tick, Asid::KERNEL, &[]);

        // Re-queue the preempted thread.
        if let Some(t) = self.cores[core].cur.take() {
            let (domain, prio, state) = {
                let tcb = self.tcbs.get(t.0).expect("live thread");
                (tcb.domain, tcb.priority, tcb.state)
            };
            if state == ThreadState::Ready {
                self.run_queues
                    .entry((core, domain))
                    .or_default()
                    .enqueue(prio, t);
            }
        }

        // Rotate to the next slot (Slotted) or re-pick (Open).
        let next_domain = self.rotate_slot(core);
        if let Some(d) = next_domain {
            self.wake_sleepers(core, d);
        }
        let next_thread = match self.cores[core].mode {
            EngineMode::Slotted => next_domain.and_then(|d| {
                self.run_queues
                    .get_mut(&(core, d))
                    .and_then(crate::sched::ReadyQueues::dequeue)
            }),
            EngineMode::Open => {
                let _ = next_domain;
                self.pick_open(core)
            }
        };
        // The target image: the next thread's, or the slot domain's kernel
        // (whose idle thread will run), or the current one.
        let to_image = next_thread
            .map(|t| self.tcbs.get(t.0).expect("live thread").image)
            .or_else(|| next_domain.map(|d| self.domains.get(d.0).expect("live domain").image))
            .unwrap_or(from_image);

        // A *domain* switch occurs when the security domain changes, even
        // if both domains are served by a shared kernel image (the raw /
        // full-flush scenarios). The image-specific steps (stack switch)
        // additionally require the image to change.
        let from_domain = self.cores[core].cur_domain;
        let to_domain = match self.cores[core].mode {
            EngineMode::Slotted => next_domain,
            EngineMode::Open => {
                next_thread.map(|t| self.tcbs.get(t.0).expect("live thread").domain)
            }
        };
        let switched = to_domain.is_some() && to_domain != from_domain;
        if let Some(d) = to_domain {
            self.cores[core].cur_domain = Some(d);
        }
        if switched {
            self.stats.domain_switches += 1;

            // Step 3: mask interrupts (x86 pays the race-probe).
            m.advance(core, IRQ_MASK);
            if self.cfg.llc.is_some() {
                m.advance(core, IRQ_RACE_PROBE);
            }

            // Step 4: switch the kernel stack (+ bookkeeping of which cores
            // run which image, used by destruction). Only needed when the
            // kernel image itself changes.
            if to_image != from_image {
                self.switch_image_fast(m, core, from_image, to_image);
            }

            // Step 5: switch thread context.
            m.advance(core, CONTEXT_SWITCH);
            self.cores[core].cur = next_thread;

            // Step 6: release the kernel lock (before flushing, §4.3).
            m.advance(core, LOCK_RELEASE);

            // Step 7: unmask the new kernel's interrupts; deliver any that
            // were deferred by partitioning (Requirement 5).
            m.advance(core, IRQ_UNMASK);
            self.deliver_pending_for(m, core, to_image);

            // Step 8: flush on-core state (Requirements 1 and 4).
            let flush_start = m.cycles(core);
            self.do_flush(m, core, to_image);
            self.stats.flush_cycles += m.cycles(core) - flush_start;
            // Prefetcher state machines are *not* reset by the on-core
            // flush — their stale streams remain live (§5.3.2).
            m.note_domain_switch(core);

            // Step 9: deterministically pre-fetch the shared kernel data
            // (Requirement 3).
            if self.prot.prefetch_shared {
                self.prefetch_shared(m, core);
            }

            // Step 10: poll the cycle counter until the configured latency
            // since the preemption interrupt has elapsed (Requirement 4).
            // The padding latency is taken from the kernel active prior to
            // the switch.
            let pad = self.pad_for(from_image);
            if pad > 0 {
                let target = tick_cycle + pad;
                let now = m.cycles(core);
                if now < target {
                    self.stats.pad_cycles += target - now;
                    m.advance(core, target - now);
                }
            }
        } else {
            self.stats.thread_switches += 1;
            m.advance(core, CONTEXT_SWITCH);
            self.cores[core].cur = next_thread;
        }

        // Step 11: reprogram the timer.
        m.advance(core, TIMER_REPROGRAM);
        let mut next_tick_at = tick_cycle + self.slice_cycles;
        if next_tick_at <= m.cycles(core) {
            next_tick_at = m.cycles(core) + self.slice_cycles;
        }
        self.cores[core].slice_start = m.cycles(core);

        // Step 12: return to user.
        m.advance(core, self.cfg.lat.mode_switch / 2);

        TickOutcome {
            next_tick_at,
            switched_domain: switched,
        }
    }

    fn rotate_slot(&mut self, core: usize) -> Option<DomainId> {
        let cs = &mut self.cores[core];
        if cs.slots.is_empty() {
            return None;
        }
        cs.slot_idx = (cs.slot_idx + 1) % cs.slots.len();
        Some(cs.slots[cs.slot_idx])
    }

    fn wake_sleepers(&mut self, core: usize, domain: DomainId) {
        let sleepers: Vec<_> = self
            .tcbs
            .iter()
            .filter(|(_, t)| {
                t.core == core && t.domain == domain && t.state == ThreadState::SleepingUntilSlice
            })
            .map(|(i, _)| crate::objects::TcbId(i))
            .collect();
        for t in sleepers {
            self.wake(t);
        }
    }

    fn pick_open(&mut self, core: usize) -> Option<crate::objects::TcbId> {
        let slots = self.cores[core].slots.clone();
        let mut best: Option<(u8, DomainId)> = None;
        for d in slots {
            if let Some(q) = self.run_queues.get(&(core, d)) {
                if let Some(p) = q.highest() {
                    if best.is_none_or(|(bp, _)| p > bp) {
                        best = Some((p, d));
                    }
                }
            }
        }
        best.and_then(|(_, d)| {
            self.run_queues
                .get_mut(&(core, d))
                .and_then(crate::sched::ReadyQueues::dequeue)
        })
    }

    /// Deliver IRQs owned by `image` that were deferred while it was
    /// switched out.
    pub fn deliver_pending_for(&mut self, m: &mut Machine, core: usize, image: ImageId) {
        self.log.begin(|| Commit::DeliverPendingFor { core, image });
        self.deliver_pending_for_inner(m, core, image);
        self.log.end();
    }

    fn deliver_pending_for_inner(&mut self, m: &mut Machine, core: usize, image: ImageId) {
        let owned: Vec<u32> = (0..crate::kernel::NUM_IRQS as u32)
            .filter(|&i| {
                self.irqs[i as usize].owner == Some(image) && self.irqs[i as usize].pending
            })
            .collect();
        for irq in owned {
            self.deliver_irq(m, core, irq);
        }
    }

    fn pad_for(&self, from_image: ImageId) -> u64 {
        let img_pad = self.images.get(from_image.0).map_or(0, |i| i.pad_cycles);
        if img_pad > 0 {
            img_pad
        } else {
            self.prot.pad_us.map_or(0, |us| self.cfg.us_to_cycles(us))
        }
    }

    /// Step 8: the flush itself, per configuration and platform.
    pub fn do_flush(&mut self, m: &mut Machine, core: usize, new_image: ImageId) {
        self.log.begin(|| Commit::Flush { core, new_image });
        self.do_flush_inner(m, core, new_image);
        self.log.end();
    }

    fn do_flush_inner(&mut self, m: &mut Machine, core: usize, new_image: ImageId) {
        let x86 = self.cfg.llc.is_some();
        match self.prot.flush {
            FlushMode::None => {}
            FlushMode::OnCore => {
                if x86 {
                    // invpcid + IBC + the "manual" L1 flushes through the
                    // new kernel's flush buffers.
                    hwflush::flush_tlbs(m, core);
                    hwflush::flush_branch_predictor(m, core);
                    let img = self.images.get(new_image.0).expect("live image");
                    let d_buf = PAddr(img.layout.l1d_buf[0] * tp_sim::FRAME_SIZE);
                    let i_buf = PAddr(img.layout.l1i_buf[0] * tp_sim::FRAME_SIZE);
                    hwflush::manual_flush_l1d(m, core, d_buf);
                    hwflush::manual_flush_l1i(m, core, i_buf);
                } else {
                    hwflush::flush_l1d_arch(m, core);
                    hwflush::flush_l1i_arch(m, core);
                    hwflush::flush_tlbs(m, core);
                    hwflush::flush_branch_predictor(m, core);
                }
            }
            FlushMode::Full => {
                if x86 {
                    hwflush::wbinvd(m, core);
                    hwflush::flush_tlbs(m, core);
                    hwflush::flush_branch_predictor(m, core);
                } else {
                    hwflush::arm_full_flush(m, core);
                }
            }
        }
    }

    /// Step 9: touch every line of the shared kernel data so the next
    /// kernel exit is deterministic (Requirement 3).
    pub fn prefetch_shared(&mut self, m: &mut Machine, core: usize) {
        self.log.begin(|| Commit::PrefetchShared { core });
        self.prefetch_shared_inner(m, core);
        self.log.end();
    }

    fn prefetch_shared_inner(&mut self, m: &mut Machine, core: usize) {
        let line = self.cfg.line;
        for i in 0..self.shared.lines() {
            let pa = self.shared.line_pa(i);
            let va = VAddr(KERNEL_VBASE + 0x40_0000 + i * line);
            m.data_access(
                core,
                Asid::KERNEL,
                va,
                pa,
                false,
                self.prot.kernel_global_mappings,
            );
        }
    }

    /// Measure the cost of switching away from the current state of `core`
    /// to `to_image` without padding — the Table 6 measurement.
    pub fn measure_switch_cost(&mut self, m: &mut Machine, core: usize, to_image: ImageId) -> u64 {
        self.log
            .begin(|| Commit::MeasureSwitchCost { core, to_image });
        let r = self.measure_switch_cost_inner(m, core, to_image);
        self.log.end();
        r
    }

    fn measure_switch_cost_inner(
        &mut self,
        m: &mut Machine,
        core: usize,
        to_image: ImageId,
    ) -> u64 {
        let start = m.cycles(core);
        let from = self.cores[core].cur_image;
        m.advance(core, LOCK_ACQUIRE);
        self.kexec(m, core, from, FootKind::Tick, Asid::KERNEL, &[]);
        m.advance(core, IRQ_MASK);
        if self.cfg.llc.is_some() {
            m.advance(core, IRQ_RACE_PROBE);
        }
        if to_image != from {
            self.switch_image_fast(m, core, from, to_image);
        }
        m.advance(core, CONTEXT_SWITCH + LOCK_RELEASE + IRQ_UNMASK);
        self.do_flush(m, core, to_image);
        m.note_domain_switch(core);
        if self.prot.prefetch_shared {
            self.prefetch_shared(m, core);
        }
        m.advance(core, TIMER_REPROGRAM + self.cfg.lat.mode_switch / 2);
        m.cycles(core) - start
    }
}

/// Convenience for benches: dirty `lines` distinct L1-D lines so the flush
/// cost reflects the worst case.
pub fn dirty_l1d(m: &mut Machine, core: usize, base: PAddr, lines: u64) {
    let line = m.cfg.line;
    for i in 0..lines {
        let pa = PAddr(base.0 + i * line);
        m.data_access(core, Asid(999), VAddr(pa.0), pa, true, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtectionConfig;
    use tp_sim::{ColorSet, Platform};

    fn two_domain_kernel(prot: ProtectionConfig) -> (Machine, Kernel) {
        let cfg = Platform::Haswell.config();
        let mut m = Machine::new(cfg, 11);
        let mut k = Kernel::new(cfg, prot, 16384, 3_400_000);
        let d0 = k.create_domain(ColorSet::range(0, 4), 2048).unwrap();
        let d1 = k.create_domain(ColorSet::range(4, 8), 2048).unwrap();
        if k.prot.clone_kernel {
            k.clone_kernel_for_domain(&mut m, 0, d0).unwrap();
            k.clone_kernel_for_domain(&mut m, 0, d1).unwrap();
        }
        let t0 = k.create_thread(d0, 0, 100).unwrap();
        let _t1 = k.create_thread(d1, 0, 100).unwrap();
        // Start with d0's thread current.
        let q = k.run_queues.get_mut(&(0, d0)).unwrap();
        let first = q.dequeue().unwrap();
        assert_eq!(first, t0);
        let img = k.domains.get(d0.0).unwrap().image;
        k.cores[0].cur = Some(first);
        k.cores[0].cur_image = img;
        k.cores[0].slot_idx = 0;
        (m, k)
    }

    #[test]
    fn tick_rotates_between_domains() {
        let (mut m, mut k) = two_domain_kernel(ProtectionConfig::protected());
        let img0 = k.cores[0].cur_image;
        let out = k.handle_tick(&mut m, 0);
        assert!(out.switched_domain);
        assert_ne!(k.cores[0].cur_image, img0);
        let out = k.handle_tick(&mut m, 0);
        assert!(out.switched_domain);
        assert_eq!(k.cores[0].cur_image, img0);
        assert_eq!(k.stats.domain_switches, 2);
    }

    #[test]
    fn protected_switch_flushes_on_core_state() {
        let (mut m, mut k) = two_domain_kernel(ProtectionConfig::protected());
        // Dirty some attacker state.
        dirty_l1d(&mut m, 0, PAddr(0x400_0000), 200);
        assert!(m.cores[0].l1d.valid_lines() > 100);
        k.handle_tick(&mut m, 0);
        // After the manual flush, prior lines are (almost) all gone.
        let geom = m.cores[0].l1d.geom();
        let mut survivors = 0;
        for i in 0..200u64 {
            let pa = 0x400_0000 + i * 64;
            let set = tp_sim::cache::phys_set(geom, pa);
            let tag = tp_sim::cache::phys_tag(geom, pa);
            if m.cores[0].l1d.peek(set, tag) {
                survivors += 1;
            }
        }
        assert!(survivors < 20, "manual flush left {survivors} lines");
        assert!(m.cores[0].btb.valid_entries() <= m.cores[0].l1i.geom().lines());
    }

    #[test]
    fn raw_switch_flushes_nothing() {
        let (mut m, mut k) = two_domain_kernel(ProtectionConfig::raw());
        dirty_l1d(&mut m, 0, PAddr(0x400_0000), 200);
        let before = m.cores[0].l1d.valid_lines();
        k.handle_tick(&mut m, 0);
        // Only the kernel's own footprint perturbs the cache.
        assert!(m.cores[0].l1d.valid_lines() >= before - 40);
        assert_eq!(k.stats.flush_cycles, 0);
    }

    #[test]
    fn padding_stretches_switch_to_configured_latency() {
        let cfg = Platform::Haswell.config();
        let pad_us = 58.8;
        let mut prot = ProtectionConfig::protected();
        prot.pad_us = Some(pad_us);
        let (mut m, mut k) = {
            let mut m = Machine::new(cfg, 11);
            let mut k = Kernel::new(cfg, prot, 16384, 3_400_000);
            let d0 = k.create_domain(ColorSet::range(0, 4), 2048).unwrap();
            let d1 = k.create_domain(ColorSet::range(4, 8), 2048).unwrap();
            k.clone_kernel_for_domain(&mut m, 0, d0).unwrap();
            k.clone_kernel_for_domain(&mut m, 0, d1).unwrap();
            let t0 = k.create_thread(d0, 0, 100).unwrap();
            let _ = k.create_thread(d1, 0, 100).unwrap();
            k.run_queues.get_mut(&(0, d0)).unwrap().dequeue();
            k.cores[0].cur = Some(t0);
            k.cores[0].cur_image = k.domains.get(d0.0).unwrap().image;
            (m, k)
        };
        // Vary the dirtiness: with padding, total switch latency must be
        // constant (= pad) regardless.
        let mut latencies = Vec::new();
        for dirt in [8u64, 400] {
            dirty_l1d(&mut m, 0, PAddr(0x400_0000), dirt);
            let t0 = m.cycles(0);
            k.handle_tick(&mut m, 0);
            latencies.push(m.cycles(0) - t0);
        }
        let pad_cycles = cfg.us_to_cycles(pad_us);
        for &l in &latencies {
            assert!(l >= pad_cycles, "switch {l} below pad {pad_cycles}");
            // Fixed epilogue (timer reprogram + return) rides on top.
            assert!(
                l < pad_cycles + 500,
                "switch {l} far above pad {pad_cycles}"
            );
        }
        assert!(k.stats.pad_cycles > 0);
    }

    #[test]
    fn full_flush_switch_is_very_expensive() {
        let (mut m, mut k) = two_domain_kernel(ProtectionConfig::full_flush());
        let t0 = m.cycles(0);
        k.handle_tick(&mut m, 0);
        let us = k.cfg.cycles_to_us(m.cycles(0) - t0);
        // Table 6: ~271 µs on x86.
        assert!(us > 100.0, "full flush switch only {us} µs");
    }

    #[test]
    fn pending_partitioned_irq_delivered_on_slot_entry() {
        let (mut m, mut k) = two_domain_kernel(ProtectionConfig::protected());
        // Bind IRQ 5 to the *other* (d1) kernel and mark it pending.
        let d1_img = {
            let ids: Vec<_> = k.domains.iter().map(|(i, d)| (i, d.image)).collect();
            ids.iter()
                .find(|(_, img)| *img != k.cores[0].cur_image && *img != k.boot_image)
                .unwrap()
                .1
        };
        k.kernel_set_int(d1_img, 5, None).unwrap();
        assert!(!k.irq_arrives(&mut m, 0, 5), "IRQ must defer while foreign");
        let delivered_before = k.stats.irqs_delivered;
        k.handle_tick(&mut m, 0); // rotates into d1's slot
        assert_eq!(k.cores[0].cur_image, d1_img);
        assert_eq!(k.stats.irqs_delivered, delivered_before + 1);
        assert!(!k.irqs[5].pending);
    }

    #[test]
    fn sleepers_wake_at_their_slot() {
        let (mut m, mut k) = two_domain_kernel(ProtectionConfig::protected());
        // Put d1's thread to sleep.
        let d1_thread = k
            .tcbs
            .iter()
            .find(|(_, t)| {
                Some(crate::objects::TcbId(0)) != Some(crate::objects::TcbId(t.core))
                    && k.cores[0].cur != Some(crate::objects::TcbId(0))
            })
            .map(|(i, _)| crate::objects::TcbId(i));
        let _ = d1_thread;
        // Simpler: directly mark the non-current thread sleeping.
        let sleeping: Vec<_> = k
            .tcbs
            .iter()
            .filter(|(i, _)| k.cores[0].cur != Some(crate::objects::TcbId(*i)))
            .map(|(i, _)| crate::objects::TcbId(i))
            .collect();
        let s = sleeping[0];
        {
            let (core, domain, prio) = {
                let t = k.tcbs.get(s.0).unwrap();
                (t.core, t.domain, t.priority)
            };
            k.run_queues
                .get_mut(&(core, domain))
                .unwrap()
                .remove(prio, s);
            k.tcbs.get_mut(s.0).unwrap().state = ThreadState::SleepingUntilSlice;
        }
        k.handle_tick(&mut m, 0);
        assert_eq!(k.cores[0].cur, Some(s), "sleeper must wake for its slot");
    }
}
