//! The commit log: a typed record of every kernel state mutation.
//!
//! Every public state-mutating entry point of [`Kernel`] is a *gateway*:
//! it emits one [`Commit`] describing the operation and its arguments
//! before running. The pair `(genesis, commits)` is then a complete,
//! replayable account of a run — [`mod@crate::replay`] reduces it back to a
//! kernel whose [`Kernel::state_hash`] matches the original bit-for-bit.
//!
//! Two rules keep the log faithful without perturbing what it observes:
//!
//! 1. **Depth suppression.** Gateways call other gateways (a `syscall`
//!    reschedules, a tick flushes). Only the outermost call is recorded;
//!    nested calls are implied by replaying it.
//! 2. **No timing feedback.** Logging only appends to a `Vec`; it never
//!    touches the [`Machine`](tp_sim::Machine), so enabling it cannot
//!    change a single simulated timestamp (pinned by the engine
//!    regression test in `tests/replay.rs`).

use crate::kernel::{FootKind, Kernel, Syscall};
use crate::objects::{Capability, DomainId, ImageId, KmemId, NtfnId, TcbId, ThreadState};
use tp_sim::{Asid, ColorSet, PAddr};

/// One logged kernel state mutation: the gateway that ran and the
/// arguments it ran with. Replaying a commit re-invokes the same gateway
/// with the same arguments (see [`crate::replay::apply`]); commits whose
/// effects live outside the kernel (e.g. [`Commit::TokenRotate`]) replay
/// as no-ops and exist for the audit trail.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field names mirror the gateway parameters 1:1
pub enum Commit {
    // ------------------------------------------------ kernel.rs gateways
    /// `Kernel::alloc_frames`.
    AllocFrames { domain: DomainId, n: usize },
    /// `Kernel::create_domain`.
    CreateDomain { colors: ColorSet, max_frames: usize },
    /// `Kernel::create_thread`.
    CreateThread {
        domain: DomainId,
        core: usize,
        prio: u8,
    },
    /// `Kernel::create_endpoint`.
    CreateEndpoint { domain: DomainId },
    /// `Kernel::create_notification`.
    CreateNotification { domain: DomainId },
    /// `Kernel::grant_cap`.
    GrantCap { t: TcbId, cap: Capability },
    /// `Kernel::map_user_pages`.
    MapUserPages { t: TcbId, n: usize },
    /// `Kernel::kexec` (a kernel code path run directly, e.g. by benches).
    Kexec {
        core: usize,
        image: ImageId,
        kind: FootKind,
        asid: Asid,
        objs: Vec<PAddr>,
    },
    /// `Kernel::wake`.
    Wake { t: TcbId },
    /// `Kernel::schedule_same_slot`.
    ScheduleSameSlot { core: usize },
    /// `Kernel::make_current`.
    MakeCurrent { core: usize, t: TcbId, direct: bool },
    /// `Kernel::switch_image_fast`.
    SwitchImageFast {
        core: usize,
        from: ImageId,
        to: ImageId,
    },
    /// `Kernel::syscall` — the main gateway.
    Syscall { core: usize, t: TcbId, sys: Syscall },
    /// `Kernel::do_signal`.
    Signal { ntfn: NtfnId, badge: u64 },
    /// `Kernel::thread_exited`.
    ThreadExited { t: TcbId },
    /// `Kernel::irq_arrives`.
    IrqArrives { core: usize, irq: u32 },
    /// `Kernel::deliver_irq`.
    DeliverIrq { core: usize, irq: u32 },
    /// `Kernel::kernel_set_int`.
    KernelSetInt {
        image: ImageId,
        irq: u32,
        ntfn: Option<NtfnId>,
    },
    /// `Kernel::set_pad_cycles`.
    SetPadCycles { image: ImageId, cycles: u64 },
    // ------------------------------------------------ switch.rs gateways
    /// `Kernel::handle_tick` — the preemption/domain-switch path.
    Tick { core: usize },
    /// `Kernel::deliver_pending_for`.
    DeliverPendingFor { core: usize, image: ImageId },
    /// `Kernel::do_flush`.
    Flush { core: usize, new_image: ImageId },
    /// `Kernel::prefetch_shared`.
    PrefetchShared { core: usize },
    /// `Kernel::measure_switch_cost`.
    MeasureSwitchCost { core: usize, to_image: ImageId },
    // ------------------------------------------------ kimage.rs gateways
    /// `Kernel::clone_kernel_for_domain`.
    CloneKernelForDomain { core: usize, domain: DomainId },
    /// `Kernel::kernel_clone`.
    KernelClone {
        core: usize,
        src: ImageId,
        kmem: KmemId,
    },
    /// `Kernel::kernel_destroy`.
    KernelDestroy { core: usize, target: ImageId },
    /// `Kernel::grant_image_cap`.
    GrantImageCap {
        t: TcbId,
        image: ImageId,
        clone_right: bool,
    },
    /// `Kernel::kernel_clone_invocation`.
    KernelCloneInvocation {
        core: usize,
        caller: TcbId,
        image_cap: usize,
        kmem_cap: usize,
    },
    /// `Kernel::kernel_revoke`.
    KernelRevoke { core: usize, target: ImageId },
    /// `Kernel::move_color`.
    MoveColor {
        from: DomainId,
        to: DomainId,
        color: u64,
    },
    /// `Kernel::create_nested_domain`.
    CreateNestedDomain { parent: DomainId, colors: ColorSet },
    // ------------------------------------------------ engine audit trail
    /// The engine rotated the measurement token to `core` (state lives in
    /// the engine, not the kernel; replays as a no-op).
    TokenRotate { core: usize },
}

/// The per-run commit log. Disabled (and free) by default; enable with
/// [`CommitLog::enable`]. Gateways report through [`CommitLog::begin`] /
/// [`CommitLog::end`]; only depth-0 calls are recorded.
#[derive(Debug, Clone, Default)]
pub struct CommitLog {
    enabled: bool,
    depth: u32,
    commits: Vec<Commit>,
    /// Fault injection: when `Some(i)`, the `i`-th recorded commit is
    /// replaced with a forged one, so replaying the log diverges from the
    /// live run at exactly that index.
    flip: Option<usize>,
}

impl CommitLog {
    /// Start recording commits.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Arm the bit-flip fault: corrupt the commit recorded at `index`.
    pub fn arm_flip(&mut self, index: usize) {
        self.flip = Some(index);
    }

    /// Record `commit`, substituting the forged commit at the armed flip
    /// index. The forgery is a plausible-but-wrong entry (a signal with a
    /// recognisable badge) rather than random bytes, so it exercises the
    /// replay oracle, not the parser.
    fn push(&mut self, commit: impl FnOnce() -> Commit) {
        let forged = self.flip == Some(self.commits.len());
        self.commits.push(if forged {
            Commit::Signal {
                ntfn: crate::objects::NtfnId(0),
                badge: 0xFA17_FA17,
            }
        } else {
            commit()
        });
    }

    /// Whether recording is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The commits recorded so far.
    #[must_use]
    pub fn commits(&self) -> &[Commit] {
        &self.commits
    }

    /// Drain the recorded commits, leaving recording state untouched.
    pub fn take(&mut self) -> Vec<Commit> {
        std::mem::take(&mut self.commits)
    }

    /// Number of recorded commits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.commits.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.commits.is_empty()
    }

    /// Enter a gateway: record the commit if this is an outermost,
    /// enabled call. The closure defers argument cloning to the
    /// recording-enabled case, keeping the disabled path allocation-free.
    pub fn begin(&mut self, commit: impl FnOnce() -> Commit) {
        if self.enabled && self.depth == 0 {
            self.push(commit);
        }
        self.depth += 1;
    }

    /// Leave a gateway entered with [`CommitLog::begin`].
    pub fn end(&mut self) {
        debug_assert!(self.depth > 0, "CommitLog::end without begin");
        self.depth = self.depth.saturating_sub(1);
    }

    /// Record a leaf event (no begin/end bracket) if outermost + enabled.
    pub fn note(&mut self, commit: impl FnOnce() -> Commit) {
        if self.enabled && self.depth == 0 {
            self.push(commit);
        }
    }
}

/// FNV-1a accumulator used by [`Kernel::state_hash`]: deterministic,
/// order-sensitive, and independent of the platform's `DefaultHasher`
/// seeding.
#[derive(Debug, Clone)]
pub struct StateHasher(u64);

impl Default for StateHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StateHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Fresh accumulator at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        StateHasher(Self::OFFSET)
    }

    /// Fold one byte.
    pub fn byte(&mut self, b: u8) -> &mut Self {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        self
    }

    /// Fold a `u64` (little-endian bytes).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
        self
    }

    /// Fold a `usize`.
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Fold a boolean.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.byte(u8::from(v))
    }

    /// Fold an optional `u64`, distinguishing `None` from `Some(0)`.
    pub fn opt(&mut self, v: Option<u64>) -> &mut Self {
        match v {
            None => self.byte(0),
            Some(x) => self.byte(1).u64(x),
        }
    }

    /// Fold a string (length-prefixed so concatenations can't collide).
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.usize(s.len());
        for b in s.bytes() {
            self.byte(b);
        }
        self
    }

    /// The accumulated hash.
    #[must_use]
    pub fn finish(&self) -> u64 {
        // A SplitMix64 finalization pass on top of the FNV fold improves
        // avalanche on the final bits without affecting determinism.
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn hash_thread_state(h: &mut StateHasher, s: ThreadState) {
    match s {
        ThreadState::Ready => h.byte(0),
        ThreadState::BlockedSend(ep) => h.byte(1).usize(ep.0),
        ThreadState::BlockedRecv(ep) => h.byte(2).usize(ep.0),
        ThreadState::BlockedReply => h.byte(3),
        ThreadState::BlockedNtfn(n) => h.byte(4).usize(n.0),
        ThreadState::SleepingUntilSlice => h.byte(5),
        ThreadState::Exited => h.byte(6),
    };
}

impl Kernel {
    /// A deterministic digest of the complete kernel state: capabilities,
    /// objects, mappings, colour assignments, scheduler state, interrupt
    /// table and statistics. Two kernels with equal hashes are
    /// indistinguishable to any sequence of kernel operations, which makes
    /// this the replay-equivalence oracle:
    /// `state_hash(replay(log)) == state_hash(original)`.
    ///
    /// `HashMap` iteration order never reaches the digest: the ready-queue
    /// map is folded in sorted key order.
    #[must_use]
    pub fn state_hash(&self) -> u64 {
        let mut h = StateHasher::new();

        // Static configuration (Debug formatting is deterministic).
        h.str(&format!("{:?}", self.cfg));
        h.str(&format!("{:?}", self.prot));
        h.u64(self.slice_cycles);
        h.u64(u64::from(self.next_asid));
        h.usize(self.boot_image.0).usize(self.boot_domain.0);
        h.u64(self.shared.bytes()).u64(self.shared.line_pa(0).0);

        // Threads.
        h.usize(self.tcbs.len());
        for (i, t) in self.tcbs.iter() {
            h.usize(i)
                .byte(t.priority)
                .usize(t.core)
                .usize(t.vspace.0)
                .usize(t.domain.0)
                .usize(t.image.0)
                .u64(t.obj_frame)
                .u64(t.ipc_msg);
            hash_thread_state(&mut h, t.state);
            h.opt(t.reply_to.map(|r| r.0 as u64));
            h.usize(t.cspace.len());
            for c in &t.cspace {
                h.str(&format!("{c:?}"));
            }
        }

        // Endpoints and notifications.
        h.usize(self.eps.len());
        for (i, e) in self.eps.iter() {
            h.usize(i).u64(e.obj_frame);
            h.usize(e.send_queue.len());
            for t in &e.send_queue {
                h.usize(t.0);
            }
            h.usize(e.recv_queue.len());
            for t in &e.recv_queue {
                h.usize(t.0);
            }
        }
        h.usize(self.ntfns.len());
        for (i, n) in self.ntfns.iter() {
            h.usize(i).u64(n.word).u64(n.obj_frame);
            h.usize(n.waiters.len());
            for t in &n.waiters {
                h.usize(t.0);
            }
        }

        // Kernel images and their memory.
        h.usize(self.images.len());
        for (i, img) in self.images.iter() {
            h.usize(i).u64(u64::from(img.asid.0));
            for sec in [
                &img.layout.text,
                &img.layout.rodata,
                &img.layout.data,
                &img.layout.stack,
                &img.layout.l1d_buf,
                &img.layout.l1i_buf,
            ] {
                h.usize(sec.len());
                for f in sec.iter() {
                    h.u64(*f);
                }
            }
            h.opt(img.kmem.map(|k| k.0 as u64));
            h.usize(img.irqs.len());
            for irq in &img.irqs {
                h.u64(u64::from(*irq));
            }
            h.u64(img.pad_cycles)
                .u64(img.running_on)
                .bool(img.zombie)
                .opt(img.parent.map(|p| p.0 as u64));
        }
        h.usize(self.kmems.len());
        for (i, km) in self.kmems.iter() {
            h.usize(i);
            h.usize(km.frames.len());
            for f in &km.frames {
                h.u64(*f);
            }
            h.opt(km.image.map(|im| im.0 as u64));
        }

        // Untyped pools: the free-list *order* is semantic (allocation
        // pops from the tail), so it is hashed verbatim.
        h.usize(self.untypeds.len());
        for (i, u) in self.untypeds.iter() {
            h.usize(i).u64(u.colors.0);
            let free = u.free_frames();
            h.usize(free.len());
            for f in free {
                h.u64(*f);
            }
        }

        // Address spaces.
        h.usize(self.vspaces.len());
        for (i, vs) in self.vspaces.iter() {
            h.usize(i)
                .u64(u64::from(vs.map.asid().0))
                .u64(vs.map.generation())
                .u64(vs.next_va)
                .usize(vs.domain.0)
                .usize(vs.map.mapped_pages());
            for (vpn, m) in vs.map.iter() {
                h.u64(vpn).u64(m.pfn).bool(m.global).bool(m.writable);
            }
        }

        // Domains.
        h.usize(self.domains.len());
        for (i, d) in self.domains.iter() {
            h.usize(i)
                .u64(d.colors.0)
                .usize(d.image.0)
                .usize(d.pool.0)
                .opt(d.timer_ntfn.map(|n| n.0 as u64));
        }

        // Per-core scheduler state.
        h.usize(self.cores.len());
        for cs in &self.cores {
            h.opt(cs.cur.map(|t| t.0 as u64))
                .usize(cs.cur_image.0)
                .opt(cs.cur_domain.map(|d| d.0 as u64))
                .usize(cs.slot_idx)
                .byte(match cs.mode {
                    crate::kernel::EngineMode::Slotted => 0,
                    crate::kernel::EngineMode::Open => 1,
                })
                .u64(cs.slice_start)
                .u64(cs.ticks);
            h.usize(cs.slots.len());
            for d in &cs.slots {
                h.usize(d.0);
            }
        }

        // Ready queues, in sorted key order (the map is a HashMap).
        let mut keys: Vec<(usize, DomainId)> = self.run_queues.keys().copied().collect();
        keys.sort_unstable_by_key(|(c, d)| (*c, d.0));
        h.usize(keys.len());
        for key in keys {
            h.usize(key.0).usize(key.1 .0);
            let q = &self.run_queues[&key];
            for (prio, threads) in q.iter() {
                h.byte(prio);
                for t in threads {
                    h.usize(t.0);
                }
            }
        }

        // Interrupt table.
        for irq in &self.irqs {
            h.opt(irq.owner.map(|i| i.0 as u64))
                .opt(irq.ntfn.map(|n| n.0 as u64))
                .bool(irq.pending)
                .u64(irq.delivered)
                .u64(irq.deferred);
        }

        // Statistics (timing-derived fields included: replay must
        // reproduce even the cycle accounting).
        let s = &self.stats;
        for v in [
            s.syscalls,
            s.ticks,
            s.domain_switches,
            s.thread_switches,
            s.flush_cycles,
            s.pad_cycles,
            s.ipc_fastpath,
            s.irqs_delivered,
            s.irqs_deferred,
            s.clones,
            s.destroys,
        ] {
            h.u64(v);
        }

        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtectionConfig;
    use tp_sim::{Machine, Platform};

    #[test]
    fn disabled_log_records_nothing() {
        let cfg = Platform::Haswell.config();
        let mut m = Machine::new(cfg, 1);
        let mut k = Kernel::new(cfg, ProtectionConfig::raw(), 4096, 3_400_000);
        let d = k.create_domain(ColorSet::all(2), 256).unwrap();
        let t = k.create_thread(d, 0, 100).unwrap();
        k.syscall(&mut m, 0, t, Syscall::Nop);
        assert!(k.log.is_empty());
    }

    #[test]
    fn enabled_log_records_outermost_calls_only() {
        let cfg = Platform::Haswell.config();
        let mut m = Machine::new(cfg, 1);
        let mut k = Kernel::new(cfg, ProtectionConfig::raw(), 4096, 3_400_000);
        k.log.enable();
        let d = k.create_domain(ColorSet::all(2), 256).unwrap();
        let t = k.create_thread(d, 0, 100).unwrap();
        // Yield internally reschedules (schedule_same_slot, make_current):
        // exactly one commit must be recorded for it.
        let before = k.log.len();
        k.syscall(&mut m, 0, t, Syscall::Yield);
        assert_eq!(k.log.len(), before + 1);
        assert_eq!(
            k.log.commits()[before],
            Commit::Syscall {
                core: 0,
                t,
                sys: Syscall::Yield
            }
        );
    }

    #[test]
    fn state_hash_is_stable_and_sensitive() {
        let cfg = Platform::Skylake.config();
        let k1 = Kernel::new(cfg, ProtectionConfig::protected(), 4096, 3_400_000);
        let k2 = Kernel::new(cfg, ProtectionConfig::protected(), 4096, 3_400_000);
        assert_eq!(k1.state_hash(), k2.state_hash(), "same boot, same hash");
        let mut k3 = Kernel::new(cfg, ProtectionConfig::protected(), 4096, 3_400_000);
        k3.create_domain(ColorSet::all(2), 64).unwrap();
        assert_ne!(k1.state_hash(), k3.state_hash(), "mutation changes hash");
    }

    #[test]
    fn hasher_distinguishes_boundaries() {
        let mut a = StateHasher::new();
        a.str("ab").str("c");
        let mut b = StateHasher::new();
        b.str("a").str("bc");
        assert_ne!(a.finish(), b.finish());
        let mut c = StateHasher::new();
        c.opt(None).opt(Some(0));
        let mut d = StateHasher::new();
        d.opt(Some(0)).opt(None);
        assert_ne!(c.finish(), d.finish());
    }
}
