//! `Kernel_Clone` and `Kernel_Image` destruction (§4.1, §4.4).
//!
//! Cloning copies the source kernel's text, read-only data (interrupt
//! vectors etc.), replicated global data and stack into user-supplied
//! `Kernel_Memory`, creates a kernel address space (ASID) and an idle
//! thread. Destruction turns the image into a *zombie*, stalls every core
//! it is running on with IPIs (analogous to TLB shoot-down), and recovers
//! the memory.

use crate::commit::Commit;
use crate::kernel::{Kernel, KernelError};
use crate::layout::{ImageFrames, ImageLayout, KERNEL_VBASE};
use crate::objects::{
    CapObject, Capability, DomainId, ImageId, KernelImage, KernelMemory, KmemId, Rights, TcbId,
};
use tp_sim::{Asid, Machine, PAddr, VAddr, FRAME_SIZE};

/// Fixed cost of setting up the kernel address space, the ASID and the
/// idle thread during a clone.
const CLONE_SETUP_CYCLES: u64 = 20_000;

/// Per-page mapping cost while building the new kernel address space.
const CLONE_PER_PAGE_CYCLES: u64 = 260;

/// Cycle cost of sending one IPI.
const IPI_CYCLES: u64 = 700;

/// Actions the engine must take after a kernel destruction: cores to stall
/// (`system_stall` IPIs) and to TLB-invalidate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DestroyActions {
    /// Cores that were running the destroyed kernel and must switch to the
    /// boot image's idle thread.
    pub stall_cores: Vec<usize>,
    /// Threads suspended because they belonged to the destroyed kernel.
    pub suspended: Vec<TcbId>,
}

impl Kernel {
    /// Clone the kernel serving `domain` from its current image, placing
    /// the new image in memory drawn from the domain's own pool, and make
    /// it the domain's kernel. Returns the new image.
    ///
    /// This is the builder-level composite of retype (`Kernel_Memory`) +
    /// `Kernel_Clone` used by the initial resource manager in §3.3.
    ///
    /// # Errors
    /// Propagates pool exhaustion and invalid-object errors.
    pub fn clone_kernel_for_domain(
        &mut self,
        m: &mut Machine,
        core: usize,
        domain: DomainId,
    ) -> Result<ImageId, KernelError> {
        self.log
            .begin(|| Commit::CloneKernelForDomain { core, domain });
        let r = self.clone_kernel_for_domain_inner(m, core, domain);
        self.log.end();
        r
    }

    fn clone_kernel_for_domain_inner(
        &mut self,
        m: &mut Machine,
        core: usize,
        domain: DomainId,
    ) -> Result<ImageId, KernelError> {
        let frames = self.alloc_frames(domain, ImageLayout::total_pages() as usize)?;
        let kmem = KmemId(self.kmems.alloc(KernelMemory {
            frames,
            image: None,
        }));
        let src = self
            .domains
            .get(domain.0)
            .ok_or(KernelError::ObjectGone)?
            .image;
        let img = self.kernel_clone(m, core, src, kmem)?;
        self.domains.get_mut(domain.0).unwrap().image = img;
        // Threads already created in the domain are re-bound to the clone.
        let rebind: Vec<usize> = self
            .tcbs
            .iter()
            .filter(|(_, t)| t.domain == domain)
            .map(|(i, _)| i)
            .collect();
        for i in rebind {
            self.tcbs.get_mut(i).unwrap().image = img;
        }
        Ok(img)
    }

    /// `Kernel_Clone` proper: clone `src` into `kmem` (§4.1, three-step
    /// protocol; the retype and ASID steps are folded into the caller).
    ///
    /// # Errors
    /// * [`KernelError::ObjectGone`] — `src` or `kmem` is dead or a zombie.
    /// * [`KernelError::InvalidArg`] — `kmem` already maps an image or is
    ///   too small.
    pub fn kernel_clone(
        &mut self,
        m: &mut Machine,
        core: usize,
        src: ImageId,
        kmem: KmemId,
    ) -> Result<ImageId, KernelError> {
        self.log.begin(|| Commit::KernelClone { core, src, kmem });
        let r = self.kernel_clone_inner(m, core, src, kmem);
        self.log.end();
        r
    }

    fn kernel_clone_inner(
        &mut self,
        m: &mut Machine,
        core: usize,
        src: ImageId,
        kmem: KmemId,
    ) -> Result<ImageId, KernelError> {
        let src_img = self.images.get(src.0).ok_or(KernelError::ObjectGone)?;
        if src_img.zombie {
            return Err(KernelError::ObjectGone);
        }
        let src_frames = src_img.layout.clone();
        let km = self.kmems.get(kmem.0).ok_or(KernelError::ObjectGone)?;
        if km.image.is_some() {
            return Err(KernelError::InvalidArg);
        }
        if (km.frames.len() as u64) < ImageLayout::total_pages() {
            return Err(KernelError::InvalidArg);
        }
        let dst_frames = ImageFrames::from_frames(&km.frames);

        // Copy text + rodata + data + stack through the memory system.
        let line = self.cfg.line;
        let lines_per_page = FRAME_SIZE / line;
        let global = self.prot.kernel_global_mappings;
        let sections: [(&[u64], &[u64]); 4] = [
            (&src_frames.text, &dst_frames.text),
            (&src_frames.rodata, &dst_frames.rodata),
            (&src_frames.data, &dst_frames.data),
            (&src_frames.stack, &dst_frames.stack),
        ];
        for (s, d) in sections {
            for (pi, (&sp, &dp)) in s.iter().zip(d.iter()).enumerate() {
                for l in 0..lines_per_page {
                    let spa = PAddr(sp * FRAME_SIZE + l * line);
                    let dpa = PAddr(dp * FRAME_SIZE + l * line);
                    let va =
                        VAddr(KERNEL_VBASE + 0x70_0000 + (pi as u64 * lines_per_page + l) * line);
                    m.data_access(core, Asid::KERNEL, va, spa, false, global);
                    m.data_access(core, Asid::KERNEL, va, dpa, true, global);
                }
                m.advance(core, CLONE_PER_PAGE_CYCLES);
            }
        }
        m.advance(core, CLONE_SETUP_CYCLES);

        let asid = Asid(self.bump_asid());
        let img = ImageId(self.images.alloc(KernelImage {
            layout: dst_frames,
            asid,
            kmem: Some(kmem),
            irqs: Vec::new(),
            pad_cycles: 0,
            running_on: 0,
            zombie: false,
            parent: Some(src),
        }));
        self.kmems.get_mut(kmem.0).unwrap().image = Some(img);
        self.stats.clones += 1;
        Ok(img)
    }

    fn bump_asid(&mut self) -> u16 {
        // Kernel images draw from the high end of the ASID space so they
        // never collide with thread VSpaces.
        4096 + self.stats.clones as u16
    }

    /// Destroy a kernel image (§4.4). The image becomes a zombie, threads
    /// bound to it are suspended, and the returned [`DestroyActions`] tell
    /// the engine which cores to stall with `system_stall` IPIs.
    ///
    /// # Errors
    /// * [`KernelError::ObjectGone`] — already destroyed.
    /// * [`KernelError::InvalidArg`] — the boot image cannot be destroyed
    ///   (its `Kernel_Memory` is never handed to userland, preserving the
    ///   always-runnable-idle-thread invariant).
    pub fn kernel_destroy(
        &mut self,
        m: &mut Machine,
        core: usize,
        target: ImageId,
    ) -> Result<DestroyActions, KernelError> {
        self.log.begin(|| Commit::KernelDestroy { core, target });
        let r = self.kernel_destroy_inner(m, core, target);
        self.log.end();
        r
    }

    fn kernel_destroy_inner(
        &mut self,
        m: &mut Machine,
        core: usize,
        target: ImageId,
    ) -> Result<DestroyActions, KernelError> {
        if target == self.boot_image {
            return Err(KernelError::InvalidArg);
        }
        let img = self
            .images
            .get_mut(target.0)
            .ok_or(KernelError::ObjectGone)?;
        if img.zombie {
            return Err(KernelError::ObjectGone);
        }
        // 1. Invalidate the capability: the image becomes a zombie.
        img.zombie = true;
        let running_on = img.running_on;
        let kmem = img.kmem;

        let mut actions = DestroyActions::default();

        // 2. Suspend all threads bound to the target kernel.
        let victims: Vec<TcbId> = self
            .tcbs
            .iter()
            .filter(|(_, t)| t.image == target)
            .map(|(i, _)| TcbId(i))
            .collect();
        for t in victims {
            self.thread_exited(m, t);
            actions.suspended.push(t);
        }

        // 3. system_stall + TLB-invalidate IPIs to every core the zombie
        // runs on (other than the destroying core).
        for c in 0..self.cfg.cores {
            if c != core && running_on & (1 << c) != 0 {
                m.advance(core, 2 * IPI_CYCLES); // stall + shoot-down
                actions.stall_cores.push(c);
            }
        }

        // 4. Cleanup: return the memory to Untyped.
        let frames = self.images.get(target.0).unwrap().layout.all_frames();
        if let Some(kmem) = kmem {
            self.kmems.remove(kmem.0);
        }
        // Frames revert to the pool of whichever domain owns them (colour
        // determines the pool).
        // Frames revert to the most specific pool containing their colour
        // (domain pools are narrower than the boot pool).
        let pools: Vec<(usize, u32)> = self
            .untypeds
            .iter()
            .map(|(i, u)| (i, u.colors.count()))
            .collect();
        let n_colors = self.cfg.partition_colors();
        for f in frames {
            let c = tp_sim::color_of_frame(f, n_colors);
            let target = pools
                .iter()
                .filter(|(p, _)| self.untypeds.get(*p).unwrap().colors.contains(c))
                .min_by_key(|(_, count)| *count)
                .map(|(p, _)| *p);
            if let Some(p) = target {
                self.untypeds.get_mut(p).unwrap().free([f]);
            }
        }
        // Domains served by the zombie fall back to the boot image.
        let orphaned: Vec<usize> = self
            .domains
            .iter()
            .filter(|(_, d)| d.image == target)
            .map(|(i, _)| i)
            .collect();
        for d in orphaned {
            self.domains.get_mut(d).unwrap().image = self.boot_image;
        }
        for cs in &mut self.cores {
            if cs.cur_image == target {
                cs.cur_image = self.boot_image;
            }
        }
        self.images.remove(target.0);
        self.stats.destroys += 1;
        // Per-frame bookkeeping cost.
        m.advance(core, 40 * ImageLayout::total_pages());
        Ok(actions)
    }

    /// Grant the master `Kernel_Image` capability (with clone right) for an
    /// image to a thread, as the kernel does for the initial process.
    pub fn grant_image_cap(&mut self, t: TcbId, image: ImageId, clone_right: bool) -> usize {
        self.log.begin(|| Commit::GrantImageCap {
            t,
            image,
            clone_right,
        });
        let r = self.grant_image_cap_inner(t, image, clone_right);
        self.log.end();
        r
    }

    fn grant_image_cap_inner(&mut self, t: TcbId, image: ImageId, clone_right: bool) -> usize {
        let rights = Rights {
            clone: clone_right,
            ..Rights::all()
        };
        self.grant_cap(
            t,
            Capability {
                obj: CapObject::KernelImage(image),
                rights,
            },
        )
    }

    /// The capability-checked `Kernel_Clone` invocation (§4.1 step 3): the
    /// caller passes an existing `Kernel_Image` capability *with the clone
    /// right* and a `Kernel_Memory` capability. The initial process can
    /// prevent other threads from cloning by handing them only derived
    /// capabilities with the clone right stripped.
    ///
    /// # Errors
    /// * [`KernelError::InsufficientRights`] — the image capability lacks
    ///   the clone right.
    /// * [`KernelError::TypeMismatch`] / [`KernelError::InvalidCap`] — bad
    ///   capabilities.
    /// * Plus everything [`Kernel::kernel_clone`] can return.
    pub fn kernel_clone_invocation(
        &mut self,
        m: &mut Machine,
        core: usize,
        caller: TcbId,
        image_cap: usize,
        kmem_cap: usize,
    ) -> Result<ImageId, KernelError> {
        self.log.begin(|| Commit::KernelCloneInvocation {
            core,
            caller,
            image_cap,
            kmem_cap,
        });
        let r = self.kernel_clone_invocation_inner(m, core, caller, image_cap, kmem_cap);
        self.log.end();
        r
    }

    fn kernel_clone_invocation_inner(
        &mut self,
        m: &mut Machine,
        core: usize,
        caller: TcbId,
        image_cap: usize,
        kmem_cap: usize,
    ) -> Result<ImageId, KernelError> {
        let lookup = |k: &Kernel, idx: usize| {
            k.tcbs
                .get(caller.0)
                .ok_or(KernelError::ObjectGone)?
                .cspace
                .get(idx)
                .copied()
                .ok_or(KernelError::InvalidCap)
        };
        let icap = lookup(self, image_cap)?;
        let kcap = lookup(self, kmem_cap)?;
        let src = match icap.obj {
            crate::objects::CapObject::KernelImage(img) => {
                if !icap.rights.clone {
                    return Err(KernelError::InsufficientRights);
                }
                img
            }
            _ => return Err(KernelError::TypeMismatch),
        };
        let kmem = match kcap.obj {
            crate::objects::CapObject::KernelMemory(km) => {
                if !kcap.rights.write {
                    return Err(KernelError::InsufficientRights);
                }
                km
            }
            _ => return Err(KernelError::TypeMismatch),
        };
        self.kernel_clone(m, core, src, kmem)
    }

    /// Revoke a `Kernel_Image`: destroys the image **and every kernel
    /// cloned from it**, transitively (§4.1: "revoking a Kernel_Image
    /// capability destroys all kernels cloned from it").
    ///
    /// # Errors
    /// As [`Kernel::kernel_destroy`]; the boot image cannot be revoked.
    pub fn kernel_revoke(
        &mut self,
        m: &mut Machine,
        core: usize,
        target: ImageId,
    ) -> Result<Vec<ImageId>, KernelError> {
        self.log.begin(|| Commit::KernelRevoke { core, target });
        let r = self.kernel_revoke_inner(m, core, target);
        self.log.end();
        r
    }

    fn kernel_revoke_inner(
        &mut self,
        m: &mut Machine,
        core: usize,
        target: ImageId,
    ) -> Result<Vec<ImageId>, KernelError> {
        // Collect the clone subtree (children before parents).
        let mut order = Vec::new();
        let mut stack = vec![target];
        while let Some(img) = stack.pop() {
            order.push(img);
            let children: Vec<ImageId> = self
                .images
                .iter()
                .filter(|(_, k)| k.parent == Some(img))
                .map(|(i, _)| ImageId(i))
                .collect();
            stack.extend(children);
        }
        // Destroy leaves first.
        for img in order.iter().rev() {
            self.kernel_destroy(m, core, *img)?;
        }
        Ok(order)
    }

    /// Re-partitioning (§3.3, §6.1): move one page colour from one domain's
    /// pool to another's. All *free* frames of that colour migrate; the
    /// granularity is necessarily a full colour ("fairly expensive", as the
    /// paper notes — a consequence of missing fine-grained hardware
    /// partitioning).
    ///
    /// # Errors
    /// * [`KernelError::InvalidArg`] — `from` does not own the colour or
    ///   it is `from`'s last colour.
    pub fn move_color(
        &mut self,
        from: DomainId,
        to: DomainId,
        color: u64,
    ) -> Result<usize, KernelError> {
        self.log.begin(|| Commit::MoveColor { from, to, color });
        let r = self.move_color_inner(from, to, color);
        self.log.end();
        r
    }

    fn move_color_inner(
        &mut self,
        from: DomainId,
        to: DomainId,
        color: u64,
    ) -> Result<usize, KernelError> {
        let n_colors = self.cfg.partition_colors();
        let (from_pool, from_colors) = {
            let d = self.domains.get(from.0).ok_or(KernelError::ObjectGone)?;
            (d.pool, d.colors)
        };
        let to_pool = self.domains.get(to.0).ok_or(KernelError::ObjectGone)?.pool;
        if !from_colors.contains(color) || from_colors.count() <= 1 {
            return Err(KernelError::InvalidArg);
        }
        // Drain the colour's free frames from the source pool.
        let src = self
            .untypeds
            .get_mut(from_pool.0)
            .ok_or(KernelError::ObjectGone)?;
        let all = src.alloc(src.available()).unwrap_or_default();
        let (moved, kept): (Vec<u64>, Vec<u64>) = all
            .into_iter()
            .partition(|f| tp_sim::color_of_frame(*f, n_colors) == color);
        src.free(kept);
        src.colors = src.colors.minus(tp_sim::ColorSet::EMPTY.with(color));
        let n = moved.len();
        let dst = self
            .untypeds
            .get_mut(to_pool.0)
            .ok_or(KernelError::ObjectGone)?;
        dst.free(moved);
        dst.colors = dst.colors.with(color);
        self.domains.get_mut(from.0).unwrap().colors =
            from_colors.minus(tp_sim::ColorSet::EMPTY.with(color));
        let to_colors = self.domains.get(to.0).unwrap().colors;
        self.domains.get_mut(to.0).unwrap().colors = to_colors.with(color);
        Ok(n)
    }

    /// Nested partitioning (§3.3): carve a sub-domain out of a *parent
    /// domain's* pool, taking all the parent's free frames of the given
    /// colours. The parent must keep at least one colour.
    ///
    /// # Errors
    /// * [`KernelError::InvalidArg`] — colours not a strict subset of the
    ///   parent's.
    pub fn create_nested_domain(
        &mut self,
        parent: DomainId,
        colors: tp_sim::ColorSet,
    ) -> Result<DomainId, KernelError> {
        self.log
            .begin(|| Commit::CreateNestedDomain { parent, colors });
        let r = self.create_nested_domain_inner(parent, colors);
        self.log.end();
        r
    }

    fn create_nested_domain_inner(
        &mut self,
        parent: DomainId,
        colors: tp_sim::ColorSet,
    ) -> Result<DomainId, KernelError> {
        let (p_pool, p_colors, p_image) = {
            let d = self.domains.get(parent.0).ok_or(KernelError::ObjectGone)?;
            (d.pool, d.colors, d.image)
        };
        if colors.count() == 0
            || colors.minus(p_colors).count() != 0
            || p_colors.minus(colors).count() == 0
        {
            return Err(KernelError::InvalidArg);
        }
        let n_colors = self.cfg.partition_colors();
        let src = self
            .untypeds
            .get_mut(p_pool.0)
            .ok_or(KernelError::ObjectGone)?;
        let all = src.alloc(src.available()).unwrap_or_default();
        let (taken, kept): (Vec<u64>, Vec<u64>) = all
            .into_iter()
            .partition(|f| colors.contains(tp_sim::color_of_frame(*f, n_colors)));
        src.free(kept);
        src.colors = src.colors.minus(colors);
        self.domains.get_mut(parent.0).unwrap().colors = p_colors.minus(colors);
        let pool = crate::objects::UntypedId(
            self.untypeds
                .alloc(crate::objects::Untyped::new(taken, colors)),
        );
        Ok(DomainId(self.domains.alloc(crate::objects::Domain {
            colors,
            image: p_image,
            pool,
            timer_ntfn: None,
        })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtectionConfig;
    use tp_sim::{ColorSet, Platform};

    fn setup() -> (Machine, Kernel) {
        let cfg = Platform::Haswell.config();
        let m = Machine::new(cfg, 7);
        let k = Kernel::new(cfg, ProtectionConfig::protected(), 16384, 3_400_000);
        (m, k)
    }

    #[test]
    fn clone_places_image_in_domain_colors() {
        let (mut m, mut k) = setup();
        let colors = ColorSet::range(0, 4);
        let d = k.create_domain(colors, 2048).unwrap();
        let img = k.clone_kernel_for_domain(&mut m, 0, d).unwrap();
        let n = k.cfg.partition_colors();
        let image = k.images.get(img.0).unwrap();
        for f in image.layout.all_frames() {
            assert!(colors.contains(tp_sim::color_of_frame(f, n)));
        }
        assert_ne!(
            image.layout.text,
            k.images.get(k.boot_image.0).unwrap().layout.text
        );
        assert_eq!(k.domains.get(d.0).unwrap().image, img);
    }

    #[test]
    fn clone_cost_is_tens_of_microseconds() {
        let (mut m, mut k) = setup();
        let d = k.create_domain(ColorSet::range(0, 4), 2048).unwrap();
        let before = m.cycles(0);
        k.clone_kernel_for_domain(&mut m, 0, d).unwrap();
        let us = k.cfg.cycles_to_us(m.cycles(0) - before);
        // Table 7: 79 µs on x86; we accept the same order of magnitude and,
        // crucially, far less than a Linux fork+exec (257 µs).
        assert!((10.0..250.0).contains(&us), "clone cost {us} µs");
    }

    #[test]
    fn clone_requires_sufficient_kmem() {
        let (mut m, mut k) = setup();
        let frames = k.alloc_frames(k.boot_domain, 3).unwrap();
        let kmem = KmemId(k.kmems.alloc(KernelMemory {
            frames,
            image: None,
        }));
        let boot = k.boot_image;
        assert_eq!(
            k.kernel_clone(&mut m, 0, boot, kmem),
            Err(KernelError::InvalidArg)
        );
    }

    #[test]
    fn destroy_recovers_memory_and_rebinds_domain() {
        let (mut m, mut k) = setup();
        let d = k.create_domain(ColorSet::range(0, 4), 2048).unwrap();
        let pool = k.domains.get(d.0).unwrap().pool;
        let before = k.untypeds.get(pool.0).unwrap().available();
        let img = k.clone_kernel_for_domain(&mut m, 0, d).unwrap();
        let after_clone = k.untypeds.get(pool.0).unwrap().available();
        assert_eq!(before - after_clone, ImageLayout::total_pages() as usize);
        k.kernel_destroy(&mut m, 0, img).unwrap();
        assert_eq!(k.untypeds.get(pool.0).unwrap().available(), before);
        assert_eq!(k.domains.get(d.0).unwrap().image, k.boot_image);
        assert!(k.images.get(img.0).is_none());
    }

    #[test]
    fn destroy_stalls_remote_cores() {
        let (mut m, mut k) = setup();
        let d = k.create_domain(ColorSet::range(0, 4), 2048).unwrap();
        let img = k.clone_kernel_for_domain(&mut m, 0, d).unwrap();
        // Pretend the clone runs on cores 1 and 2.
        k.images.get_mut(img.0).unwrap().running_on = 0b0110;
        let actions = k.kernel_destroy(&mut m, 0, img).unwrap();
        assert_eq!(actions.stall_cores, vec![1, 2]);
    }

    #[test]
    fn boot_image_is_indestructible() {
        let (mut m, mut k) = setup();
        let boot = k.boot_image;
        assert_eq!(
            k.kernel_destroy(&mut m, 0, boot),
            Err(KernelError::InvalidArg)
        );
    }

    #[test]
    fn destroy_suspends_bound_threads() {
        let (mut m, mut k) = setup();
        let d = k.create_domain(ColorSet::range(0, 4), 2048).unwrap();
        let img = k.clone_kernel_for_domain(&mut m, 0, d).unwrap();
        let t = k.create_thread(d, 0, 100).unwrap();
        assert_eq!(k.tcbs.get(t.0).unwrap().image, img);
        let actions = k.kernel_destroy(&mut m, 0, img).unwrap();
        assert_eq!(actions.suspended, vec![t]);
        assert_eq!(
            k.tcbs.get(t.0).unwrap().state,
            crate::objects::ThreadState::Exited
        );
    }

    #[test]
    fn clone_invocation_requires_the_clone_right() {
        let (mut m, mut k) = setup();
        let d = k.create_domain(ColorSet::range(0, 4), 4096).unwrap();
        let t = k.create_thread(d, 0, 100).unwrap();
        let boot = k.boot_image;
        // A derived capability with the clone right stripped.
        let weak = k.grant_image_cap(t, boot, false);
        let frames = k
            .alloc_frames(d, ImageLayout::total_pages() as usize)
            .unwrap();
        let kmem = KmemId(k.kmems.alloc(KernelMemory {
            frames,
            image: None,
        }));
        let kcap = k.grant_cap(
            t,
            Capability {
                obj: CapObject::KernelMemory(kmem),
                rights: Rights::all(),
            },
        );
        assert_eq!(
            k.kernel_clone_invocation(&mut m, 0, t, weak, kcap),
            Err(KernelError::InsufficientRights)
        );
        // The master capability (with clone right) succeeds.
        let master = k.grant_image_cap(t, boot, true);
        let img = k
            .kernel_clone_invocation(&mut m, 0, t, master, kcap)
            .unwrap();
        assert_eq!(k.images.get(img.0).unwrap().parent, Some(boot));
    }

    #[test]
    fn revoke_destroys_the_whole_clone_subtree() {
        let (mut m, mut k) = setup();
        let d = k.create_domain(ColorSet::range(0, 4), 6000).unwrap();
        // boot -> a -> b, boot -> a -> c: revoking a kills a, b and c.
        let a = k.clone_kernel_for_domain(&mut m, 0, d).unwrap();
        let mk_kmem = |k: &mut Kernel| {
            let frames = k
                .alloc_frames(d, ImageLayout::total_pages() as usize)
                .unwrap();
            KmemId(k.kmems.alloc(KernelMemory {
                frames,
                image: None,
            }))
        };
        let km_b = mk_kmem(&mut k);
        let b = k.kernel_clone(&mut m, 0, a, km_b).unwrap();
        let km_c = mk_kmem(&mut k);
        let c = k.kernel_clone(&mut m, 0, a, km_c).unwrap();
        let destroyed = k.kernel_revoke(&mut m, 0, a).unwrap();
        assert_eq!(destroyed.len(), 3);
        for img in [a, b, c] {
            assert!(k.images.get(img.0).is_none(), "{img:?} must be destroyed");
        }
        assert!(
            k.images.get(k.boot_image.0).is_some(),
            "boot image survives"
        );
    }

    #[test]
    fn move_color_repartitions_free_memory() {
        let (_, mut k) = setup();
        let d0 = k.create_domain(ColorSet::range(0, 4), 4000).unwrap();
        let d1 = k.create_domain(ColorSet::range(4, 8), 4000).unwrap();
        let before0 = k
            .untypeds
            .get(k.domains.get(d0.0).unwrap().pool.0)
            .unwrap()
            .available();
        let moved = k.move_color(d0, d1, 3).unwrap();
        assert!(moved > 100, "a full colour's worth of frames moves");
        assert!(!k.domains.get(d0.0).unwrap().colors.contains(3));
        assert!(k.domains.get(d1.0).unwrap().colors.contains(3));
        let after0 = k
            .untypeds
            .get(k.domains.get(d0.0).unwrap().pool.0)
            .unwrap()
            .available();
        assert_eq!(before0 - after0, moved);
        // A domain cannot give away a colour it does not own, nor its last.
        assert_eq!(k.move_color(d0, d1, 3), Err(KernelError::InvalidArg));
        for c in [0, 1] {
            let _ = k.move_color(d0, d1, c);
        }
        assert_eq!(
            k.move_color(d0, d1, 2),
            Err(KernelError::InvalidArg),
            "last colour stays"
        );
    }

    #[test]
    fn nested_partitioning() {
        let (_, mut k) = setup();
        let parent = k.create_domain(ColorSet::range(0, 4), 6000).unwrap();
        let child = k
            .create_nested_domain(parent, ColorSet::range(0, 2))
            .unwrap();
        assert_eq!(
            k.domains.get(parent.0).unwrap().colors,
            ColorSet::range(2, 4)
        );
        assert_eq!(
            k.domains.get(child.0).unwrap().colors,
            ColorSet::range(0, 2)
        );
        // Child allocations respect the sub-partition.
        let t = k.create_thread(child, 0, 100).unwrap();
        let (_, frames) = k.map_user_pages(t, 16).unwrap();
        let n = k.cfg.partition_colors();
        for f in frames {
            assert!(tp_sim::color_of_frame(f, n) < 2);
        }
        // Taking all of the parent's colours is rejected.
        assert_eq!(
            k.create_nested_domain(parent, ColorSet::range(2, 4)),
            Err(KernelError::InvalidArg)
        );
        // Foreign colours are rejected.
        assert_eq!(
            k.create_nested_domain(child, ColorSet::range(2, 3)),
            Err(KernelError::InvalidArg)
        );
    }

    #[test]
    fn zombie_cannot_be_cloned_or_redestroyed() {
        let (mut m, mut k) = setup();
        let d = k.create_domain(ColorSet::range(0, 4), 4096).unwrap();
        let img = k.clone_kernel_for_domain(&mut m, 0, d).unwrap();
        k.kernel_destroy(&mut m, 0, img).unwrap();
        assert_eq!(
            k.kernel_destroy(&mut m, 0, img),
            Err(KernelError::ObjectGone)
        );
        let frames = k
            .alloc_frames(k.boot_domain, ImageLayout::total_pages() as usize)
            .unwrap();
        let kmem = KmemId(k.kmems.alloc(KernelMemory {
            frames,
            image: None,
        }));
        assert_eq!(
            k.kernel_clone(&mut m, 0, img, kmem),
            Err(KernelError::ObjectGone)
        );
    }
}
