//! Scheduler ready queues.
//!
//! seL4's scheduler keeps an array of per-priority ready-queue head
//! pointers plus a bitmap used to find the highest-priority thread in
//! constant time — these two structures are the first items of the §4.1
//! shared-data list (they remain shared between all kernel images). Here
//! each `(core, domain)` pair owns one [`ReadyQueues`] instance; the
//! *shared* nature of the hardware-visible structure is modelled by the
//! kernel's cache footprint touching the shared-data region on scheduling
//! operations.

use crate::objects::TcbId;
use std::collections::VecDeque;

/// Number of priorities, matching seL4.
pub const NUM_PRIOS: usize = 256;

/// Per-priority ready queues with a constant-time highest-priority lookup
/// bitmap.
#[derive(Debug, Clone)]
pub struct ReadyQueues {
    queues: Vec<VecDeque<TcbId>>,
    bitmap: [u64; NUM_PRIOS / 64],
}

impl Default for ReadyQueues {
    fn default() -> Self {
        ReadyQueues {
            queues: (0..NUM_PRIOS).map(|_| VecDeque::new()).collect(),
            bitmap: [0; 4],
        }
    }
}

impl ReadyQueues {
    /// Create empty queues.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue a thread at the tail of its priority queue (round-robin).
    pub fn enqueue(&mut self, prio: u8, t: TcbId) {
        let p = prio as usize;
        self.queues[p].push_back(t);
        self.bitmap[p / 64] |= 1u64 << (p % 64);
    }

    /// Enqueue at the head (used when a thread is preempted mid-operation
    /// and must resume first).
    pub fn enqueue_front(&mut self, prio: u8, t: TcbId) {
        let p = prio as usize;
        self.queues[p].push_front(t);
        self.bitmap[p / 64] |= 1u64 << (p % 64);
    }

    /// Highest ready priority, if any (constant-time via the bitmap).
    #[must_use]
    pub fn highest(&self) -> Option<u8> {
        for w in (0..self.bitmap.len()).rev() {
            if self.bitmap[w] != 0 {
                let bit = 63 - self.bitmap[w].leading_zeros() as usize;
                return Some((w * 64 + bit) as u8);
            }
        }
        None
    }

    /// Dequeue the highest-priority thread.
    pub fn dequeue(&mut self) -> Option<TcbId> {
        let p = self.highest()? as usize;
        let t = self.queues[p].pop_front();
        if self.queues[p].is_empty() {
            self.bitmap[p / 64] &= !(1u64 << (p % 64));
        }
        t
    }

    /// Remove a specific thread (e.g. on destruction or suspension).
    pub fn remove(&mut self, prio: u8, t: TcbId) -> bool {
        let p = prio as usize;
        let before = self.queues[p].len();
        self.queues[p].retain(|&x| x != t);
        if self.queues[p].is_empty() {
            self.bitmap[p / 64] &= !(1u64 << (p % 64));
        }
        self.queues[p].len() != before
    }

    /// Whether no thread is ready.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bitmap.iter().all(|&w| w == 0)
    }

    /// Total ready threads.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Iterate over the non-empty priority queues in ascending priority
    /// order, yielding `(priority, queued threads front-to-back)`. This is
    /// the canonical order used by `Kernel::state_hash`.
    pub fn iter(&self) -> impl Iterator<Item = (u8, impl Iterator<Item = TcbId> + '_)> + '_ {
        self.queues
            .iter()
            .enumerate()
            .filter(|(_, q)| !q.is_empty())
            .map(|(p, q)| (p as u8, q.iter().copied()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn highest_priority_wins() {
        let mut q = ReadyQueues::new();
        q.enqueue(10, TcbId(1));
        q.enqueue(200, TcbId(2));
        q.enqueue(10, TcbId(3));
        assert_eq!(q.highest(), Some(200));
        assert_eq!(q.dequeue(), Some(TcbId(2)));
        assert_eq!(q.dequeue(), Some(TcbId(1)));
        assert_eq!(q.dequeue(), Some(TcbId(3)));
        assert_eq!(q.dequeue(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn round_robin_within_priority() {
        let mut q = ReadyQueues::new();
        q.enqueue(5, TcbId(1));
        q.enqueue(5, TcbId(2));
        let first = q.dequeue().unwrap();
        q.enqueue(5, first);
        assert_eq!(q.dequeue(), Some(TcbId(2)), "rotation must be fair");
    }

    #[test]
    fn enqueue_front_preempts_rotation() {
        let mut q = ReadyQueues::new();
        q.enqueue(5, TcbId(1));
        q.enqueue_front(5, TcbId(2));
        assert_eq!(q.dequeue(), Some(TcbId(2)));
    }

    #[test]
    fn remove_clears_bitmap() {
        let mut q = ReadyQueues::new();
        q.enqueue(7, TcbId(1));
        assert!(q.remove(7, TcbId(1)));
        assert!(q.is_empty());
        assert_eq!(q.highest(), None);
        assert!(!q.remove(7, TcbId(1)));
    }

    #[test]
    fn bitmap_boundaries() {
        let mut q = ReadyQueues::new();
        for p in [0u8, 63, 64, 127, 128, 191, 192, 255] {
            q.enqueue(p, TcbId(p as usize));
        }
        assert_eq!(q.highest(), Some(255));
        for expect in [255u8, 192, 191, 128, 127, 64, 63, 0] {
            assert_eq!(q.dequeue(), Some(TcbId(expect as usize)));
        }
    }
}
