//! # tp-core — time protection in an seL4-style microkernel model
//!
//! This crate implements the primary contribution of *Time Protection: The
//! Missing OS Abstraction* (Ge, Yarom, Chothia, Heiser — EuroSys 2019): a
//! suite of mandatory, policy-free kernel mechanisms that prevent
//! micro-architectural timing channels between security domains:
//!
//! * **Kernel clone** ([`kimage`]): a new `Kernel_Image` object type whose
//!   clone operation copies kernel text, read-only data, global data and
//!   stack into user-supplied `Kernel_Memory`, giving every domain a
//!   private kernel in its own page colours (Requirement 2).
//! * **Cache colouring** (allocation from per-domain [`objects::Untyped`]
//!   pools): partitions the physically-indexed caches — and, because all
//!   dynamic kernel memory is user-supplied, all dynamic kernel data.
//! * **On-core flush** and **padding** on domain switch ([`switch`]):
//!   Requirements 1 and 4.
//! * **Deterministic access to residual shared data** ([`layout`],
//!   Requirement 3), with the §4.1 audit encoded.
//! * **Interrupt partitioning** per kernel image (Requirement 5).
//!
//! The kernel runs against the `tp-sim` machine: every system call, tick
//! and switch executes real cache/TLB/predictor traffic, so the kernel
//! itself is a measurable cache actor — the §5.3.1 kernel-image channel
//! falls out of the model rather than being scripted.
//!
//! The [`engine`] executes user programs (one host thread each) against the
//! simulated machine with deterministic scheduling; the [`system`] builder
//! plays the role of seL4's initial user task, partitioning memory into
//! coloured pools and cloning kernels per §3.3.
//!
//! ## Quick start
//!
//! ```
//! use tp_core::{ProtectionConfig, SystemBuilder};
//! use tp_sim::Platform;
//!
//! let mut b = SystemBuilder::new(Platform::Haswell, ProtectionConfig::protected())
//!     .slice_us(100.0)
//!     .max_cycles(10_000_000);
//! let d0 = b.domain(None); // colours split automatically
//! let d1 = b.domain(None);
//! b.spawn(d0, 0, 100, |env: &mut tp_core::UserEnv| {
//!     let (va, _) = env.map_pages(1);
//!     env.load(va);
//! });
//! b.spawn_daemon(d1, 0, 100, |env: &mut tp_core::UserEnv| loop {
//!     env.compute(1_000);
//! });
//! let report = b.run();
//! assert!(report.cycles[0] > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commit;
pub mod config;
pub mod engine;
pub mod fault;
pub mod kernel;
pub mod kimage;
pub mod layout;
pub mod objects;
pub mod replay;
pub mod sched;
pub mod switch;
pub mod system;

pub use commit::{Commit, CommitLog, StateHasher};
pub use config::{FlushMode, ProtectionConfig};
pub use engine::{
    default_exec_mode, health_stats, EnvOutcome, EnvPanicPayload, EnvPlan, ExecMode, HealthStats,
    SimCtl, SimError, SimErrorKind, SimInner, UserEnv, UserProgram,
};
pub use fault::{FaultKind, FaultPlan};
pub use kernel::{EngineMode, FootKind, Kernel, KernelError, SysReturn, Syscall};
pub use objects::{CapObject, Capability, DomainId, ImageId, Rights, TcbId, ThreadState};
pub use replay::{replay, replay_diff, Booted, Divergence, Genesis, ScriptDriver, Snapshot};
pub use system::{boot_stats, BootStats, DomainHandle, SystemBuilder, SystemReport, SystemSpec};
