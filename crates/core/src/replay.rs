//! Deterministic replay: reduce `(genesis, commits)` back to kernel state.
//!
//! A logged run is fully described by a [`Genesis`] (the deterministic
//! boot) and the [`Commit`] sequence its gateways emitted. [`replay`]
//! re-executes the commits against a freshly booted machine/kernel pair;
//! because every gateway is deterministic in its arguments and the
//! machine state, the result satisfies
//! `state_hash(replay(log)) == state_hash(original)` *bit-for-bit* —
//! including timing-derived fields such as `CoreSched::slice_start` and
//! the flush/pad cycle accounting, since the replayed machine observes
//! the exact same access stream.
//!
//! This holds for runs whose machine traffic flows entirely through
//! logged kernel gateways (the [`ScriptDriver`] harness and the `replay`
//! CLI). Engine runs additionally issue *user* program accesses that are
//! not logged; their commit logs are an audit trail for localizing
//! divergence, not a replayable image.
//!
//! [`Snapshot`] adds time travel: capture `(state_hash, commit cursor,
//! machine+kernel image)` at any commit boundary and resume from there;
//! [`replay_diff`] walks a recorded hash trace and pinpoints the first
//! diverging commit.

use crate::commit::Commit;
use crate::config::ProtectionConfig;
use crate::kernel::{Kernel, Syscall};
use crate::objects::{CapObject, Capability, DomainId, Rights, TcbId, ThreadState};
use tp_sim::{ColorSet, Machine, Platform};

/// The IRQ line the boot scenario binds for timer/interrupt ops.
pub const SCRIPT_IRQ: u32 = 5;

/// Everything needed to deterministically reconstruct a run's starting
/// state: platform, protection config, noise seed and boot parameters.
#[derive(Debug, Clone)]
pub struct Genesis {
    /// The simulated platform.
    pub platform: Platform,
    /// The time-protection configuration.
    pub prot: ProtectionConfig,
    /// Noise-stream seed for the machine.
    pub seed: u64,
    /// Physical frames of simulated RAM.
    pub ram_frames: u64,
    /// Preemption-slice length in cycles.
    pub slice_cycles: u64,
}

/// A booted run: the machine, the kernel and the [`ScriptDriver`] holding
/// the object handles the boot created.
#[derive(Debug)]
pub struct Booted {
    /// The simulated machine.
    pub machine: Machine,
    /// The kernel, logging disabled (enable `kernel.log` to record).
    pub kernel: Kernel,
    /// Handles for driving scripted operations against the boot objects.
    pub driver: ScriptDriver,
}

impl Genesis {
    /// Default genesis for a platform: protected configuration, fixed
    /// seed, 16 Ki frames, ~1 ms slice.
    #[must_use]
    pub fn new(platform: Platform) -> Self {
        Genesis {
            platform,
            prot: ProtectionConfig::protected(),
            seed: 0xC0FFEE,
            ram_frames: 16_384,
            slice_cycles: 3_400_000,
        }
    }

    /// Boot the standard two-domain scenario: colours split in half, a
    /// cloned kernel per domain (when the configuration clones), two
    /// threads per domain on core 0, a shared endpoint and notification,
    /// and [`SCRIPT_IRQ`] bound to domain 0's kernel. Entirely
    /// deterministic in `self`; runs with logging disabled so the boot
    /// prefix stays out of the commit log.
    ///
    /// # Panics
    /// Panics if boot-time allocation fails (cannot happen with the
    /// default `ram_frames`).
    #[must_use]
    pub fn boot(&self) -> Booted {
        let cfg = self.platform.config();
        let mut m = Machine::new(cfg, self.seed);
        let mut k = Kernel::new(cfg, self.prot, self.ram_frames, self.slice_cycles);

        let n_colors = cfg.partition_colors();
        let half = (n_colors / 2).max(1);
        let d0 = k
            .create_domain(ColorSet::range(0, half), 2048)
            .expect("boot domain 0");
        let d1 = k
            .create_domain(ColorSet::range(half, n_colors), 2048)
            .expect("boot domain 1");
        if self.prot.clone_kernel {
            k.clone_kernel_for_domain(&mut m, 0, d0).expect("clone d0");
            k.clone_kernel_for_domain(&mut m, 0, d1).expect("clone d1");
        }

        let ep = k.create_endpoint(d0).expect("boot endpoint");
        let ntfn = k.create_notification(d0).expect("boot notification");

        let mut threads = Vec::new();
        for &d in &[d0, d1] {
            for _ in 0..2 {
                let t = k.create_thread(d, 0, 100).expect("boot thread");
                // CSpace layout fixed by ScriptDriver::{EP_CAP, ...}.
                k.grant_cap(
                    t,
                    Capability {
                        obj: CapObject::Endpoint(ep),
                        rights: Rights::all(),
                    },
                );
                k.grant_cap(
                    t,
                    Capability {
                        obj: CapObject::Notification(ntfn),
                        rights: Rights::all(),
                    },
                );
                k.grant_cap(
                    t,
                    Capability {
                        obj: CapObject::Tcb(t),
                        rights: Rights::all(),
                    },
                );
                k.grant_cap(
                    t,
                    Capability {
                        obj: CapObject::IrqHandler(SCRIPT_IRQ),
                        rights: Rights::all(),
                    },
                );
                threads.push(t);
            }
        }

        let img0 = k.domains.get(d0.0).expect("live domain").image;
        k.kernel_set_int(img0, SCRIPT_IRQ, Some(ntfn))
            .expect("bind irq");

        // Start with domain 0's slot active and a thread current.
        k.cores[0].slot_idx = 0;
        k.cores[0].cur_domain = Some(k.cores[0].slots[0]);
        k.schedule_same_slot(&mut m, 0);

        Booted {
            machine: m,
            kernel: k,
            driver: ScriptDriver {
                domains: vec![d0, d1],
                threads,
            },
        }
    }
}

/// Drives scripted kernel operations from opaque `(x, y, z)` tuples — the
/// shared harness behind the replay property tests and the `replay` CLI.
/// Each step decodes one of [`ScriptDriver::OPS`] operation kinds and
/// issues it through the logged kernel gateways; any machine traffic it
/// causes flows through those gateways, keeping runs replayable.
#[derive(Debug, Clone)]
pub struct ScriptDriver {
    /// The boot domains (`[d0, d1]`).
    pub domains: Vec<DomainId>,
    /// The boot threads (two per domain, CSpace laid out per the
    /// `*_CAP` constants).
    pub threads: Vec<TcbId>,
}

impl ScriptDriver {
    /// CSpace index of the shared endpoint capability.
    pub const EP_CAP: usize = 0;
    /// CSpace index of the shared notification capability.
    pub const NTFN_CAP: usize = 1;
    /// CSpace index of the thread's own TCB capability.
    pub const TCB_CAP: usize = 2;
    /// CSpace index of the IRQ-handler capability.
    pub const IRQ_CAP: usize = 3;
    /// Number of distinct operation kinds `step` decodes.
    pub const OPS: u64 = 15;

    /// Execute one scripted operation. `x` selects the operation kind,
    /// `y` the acting thread, `z` an operation payload.
    pub fn step(&self, m: &mut Machine, k: &mut Kernel, x: u64, y: u64, z: u64) {
        let t = self.threads[(y as usize) % self.threads.len()];
        match x % Self::OPS {
            0 => {
                k.syscall(m, 0, t, Syscall::Nop);
            }
            1 => {
                k.syscall(
                    m,
                    0,
                    t,
                    Syscall::Signal {
                        cap: Self::NTFN_CAP,
                    },
                );
            }
            2 => {
                k.syscall(
                    m,
                    0,
                    t,
                    Syscall::Poll {
                        cap: Self::NTFN_CAP,
                    },
                );
            }
            3 => {
                k.syscall(
                    m,
                    0,
                    t,
                    Syscall::Wait {
                        cap: Self::NTFN_CAP,
                    },
                );
            }
            4 => {
                let prio = (z % 200) as u8 + 10;
                k.syscall(
                    m,
                    0,
                    t,
                    Syscall::TcbSetPriority {
                        cap: Self::TCB_CAP,
                        prio,
                    },
                );
            }
            5 => {
                k.syscall(
                    m,
                    0,
                    t,
                    Syscall::Call {
                        cap: Self::EP_CAP,
                        msg: z,
                    },
                );
            }
            6 => {
                k.syscall(
                    m,
                    0,
                    t,
                    Syscall::ReplyRecv {
                        cap: Self::EP_CAP,
                        msg: z,
                    },
                );
            }
            7 => {
                k.syscall(m, 0, t, Syscall::Recv { cap: Self::EP_CAP });
            }
            8 => {
                k.syscall(m, 0, t, Syscall::Yield);
            }
            9 => {
                k.syscall(m, 0, t, Syscall::SleepSlice);
            }
            10 => {
                let us = (z % 50 + 1) as f64;
                k.syscall(
                    m,
                    0,
                    t,
                    Syscall::SetTimer {
                        cap: Self::IRQ_CAP,
                        us,
                    },
                );
            }
            11 => {
                k.handle_tick(m, 0);
            }
            12 => {
                k.irq_arrives(m, 0, 1 + (z % 15) as u32);
            }
            13 => {
                // Wake only if actually blocked: waking a Ready thread
                // would double-queue it. The guard reads original-run
                // state; replay re-applies the logged Wake commits.
                let blocked = k.tcbs.get(t.0).is_some_and(|tc| {
                    !matches!(tc.state, ThreadState::Ready | ThreadState::Exited)
                });
                if blocked {
                    k.wake(t);
                }
            }
            _ => {
                // Out-of-range capability: exercises the error path
                // (state-deterministic, still a logged commit).
                k.syscall(m, 0, t, Syscall::Signal { cap: 99 });
            }
        }
    }
}

/// Re-apply one commit to a replaying machine/kernel pair. Gateways are
/// deterministic in their arguments, so discarding results is sound:
/// the original's outcome (including errors) is reproduced by state.
pub fn apply(m: &mut Machine, k: &mut Kernel, c: &Commit) {
    match c.clone() {
        Commit::AllocFrames { domain, n } => {
            let _ = k.alloc_frames(domain, n);
        }
        Commit::CreateDomain { colors, max_frames } => {
            let _ = k.create_domain(colors, max_frames);
        }
        Commit::CreateThread { domain, core, prio } => {
            let _ = k.create_thread(domain, core, prio);
        }
        Commit::CreateEndpoint { domain } => {
            let _ = k.create_endpoint(domain);
        }
        Commit::CreateNotification { domain } => {
            let _ = k.create_notification(domain);
        }
        Commit::GrantCap { t, cap } => {
            let _ = k.grant_cap(t, cap);
        }
        Commit::MapUserPages { t, n } => {
            let _ = k.map_user_pages(t, n);
        }
        Commit::Kexec {
            core,
            image,
            kind,
            asid,
            objs,
        } => k.kexec(m, core, image, kind, asid, &objs),
        Commit::Wake { t } => k.wake(t),
        Commit::ScheduleSameSlot { core } => {
            let _ = k.schedule_same_slot(m, core);
        }
        Commit::MakeCurrent { core, t, direct } => k.make_current(m, core, t, direct),
        Commit::SwitchImageFast { core, from, to } => k.switch_image_fast(m, core, from, to),
        Commit::Syscall { core, t, sys } => {
            let _ = k.syscall(m, core, t, sys);
        }
        Commit::Signal { ntfn, badge } => k.do_signal(ntfn, badge),
        Commit::ThreadExited { t } => k.thread_exited(m, t),
        Commit::IrqArrives { core, irq } => {
            let _ = k.irq_arrives(m, core, irq);
        }
        Commit::DeliverIrq { core, irq } => k.deliver_irq(m, core, irq),
        Commit::KernelSetInt { image, irq, ntfn } => {
            let _ = k.kernel_set_int(image, irq, ntfn);
        }
        Commit::SetPadCycles { image, cycles } => k.set_pad_cycles(image, cycles),
        Commit::Tick { core } => {
            let _ = k.handle_tick(m, core);
        }
        Commit::DeliverPendingFor { core, image } => k.deliver_pending_for(m, core, image),
        Commit::Flush { core, new_image } => k.do_flush(m, core, new_image),
        Commit::PrefetchShared { core } => k.prefetch_shared(m, core),
        Commit::MeasureSwitchCost { core, to_image } => {
            let _ = k.measure_switch_cost(m, core, to_image);
        }
        Commit::CloneKernelForDomain { core, domain } => {
            let _ = k.clone_kernel_for_domain(m, core, domain);
        }
        Commit::KernelClone { core, src, kmem } => {
            let _ = k.kernel_clone(m, core, src, kmem);
        }
        Commit::KernelDestroy { core, target } => {
            let _ = k.kernel_destroy(m, core, target);
        }
        Commit::GrantImageCap {
            t,
            image,
            clone_right,
        } => {
            let _ = k.grant_image_cap(t, image, clone_right);
        }
        Commit::KernelCloneInvocation {
            core,
            caller,
            image_cap,
            kmem_cap,
        } => {
            let _ = k.kernel_clone_invocation(m, core, caller, image_cap, kmem_cap);
        }
        Commit::KernelRevoke { core, target } => {
            let _ = k.kernel_revoke(m, core, target);
        }
        Commit::MoveColor { from, to, color } => {
            let _ = k.move_color(from, to, color);
        }
        Commit::CreateNestedDomain { parent, colors } => {
            let _ = k.create_nested_domain(parent, colors);
        }
        // Engine-side state only; nothing to re-apply to the kernel.
        Commit::TokenRotate { .. } => {}
    }
}

/// Reduce `(genesis, commits)` to the final machine/kernel state.
#[must_use]
pub fn replay(genesis: &Genesis, commits: &[Commit]) -> (Machine, Kernel) {
    let Booted {
        mut machine,
        mut kernel,
        ..
    } = genesis.boot();
    for c in commits {
        apply(&mut machine, &mut kernel, c);
    }
    (machine, kernel)
}

/// The per-commit state-hash trace of a replayed run: `trace[i]` is the
/// hash *after* applying `commits[i]`. Recorded by the `replay` CLI and
/// consumed by [`replay_diff`] to localize divergence.
#[must_use]
pub fn hash_trace(genesis: &Genesis, commits: &[Commit]) -> Vec<u64> {
    let Booted {
        mut machine,
        mut kernel,
        ..
    } = genesis.boot();
    let mut trace = Vec::with_capacity(commits.len());
    for c in commits {
        apply(&mut machine, &mut kernel, c);
        trace.push(kernel.state_hash());
    }
    trace
}

/// The first point at which a replay's state hash departs from a
/// recorded trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Index of the diverging commit.
    pub index: usize,
    /// The commit whose application diverged.
    pub commit: Commit,
    /// The recorded (original-run) hash after this commit.
    pub expected: u64,
    /// The replayed hash after this commit.
    pub actual: u64,
}

/// Replay `commits` and diff the state hash against `expected` at every
/// commit, returning the first divergence (`None` when the whole run
/// matches). This is the time-travel debugger for verdict flips: the
/// returned index names the exact mutation where histories split.
#[must_use]
pub fn replay_diff(genesis: &Genesis, commits: &[Commit], expected: &[u64]) -> Option<Divergence> {
    let Booted {
        mut machine,
        mut kernel,
        ..
    } = genesis.boot();
    for (i, c) in commits.iter().enumerate() {
        apply(&mut machine, &mut kernel, c);
        let actual = kernel.state_hash();
        match expected.get(i) {
            Some(&e) if e == actual => {}
            Some(&e) => {
                return Some(Divergence {
                    index: i,
                    commit: c.clone(),
                    expected: e,
                    actual,
                })
            }
            None => return None,
        }
    }
    None
}

/// A resumable checkpoint: the state hash, the commit cursor it was taken
/// at, and a full machine+kernel image. The in-memory clone *is* the
/// serialized kernel state — the simulation is process-local, so no byte
/// encoding is needed for warm restarts.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Number of commits applied before this snapshot was taken.
    pub cursor: usize,
    /// `state_hash()` of the kernel at the snapshot point.
    pub hash: u64,
    machine: Machine,
    kernel: Kernel,
}

impl Snapshot {
    /// Capture the current state at commit cursor `cursor`.
    #[must_use]
    pub fn take(m: &Machine, k: &Kernel, cursor: usize) -> Self {
        Snapshot {
            cursor,
            hash: k.state_hash(),
            machine: m.clone(),
            kernel: k.clone(),
        }
    }

    /// Resume: a fresh machine/kernel pair that continues bit-identically
    /// from the snapshot point. The snapshot itself stays reusable.
    #[must_use]
    pub fn resume(&self) -> (Machine, Kernel) {
        (self.machine.clone(), self.kernel.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_is_deterministic() {
        let g = Genesis::new(Platform::Haswell);
        let a = g.boot();
        let b = g.boot();
        assert_eq!(a.kernel.state_hash(), b.kernel.state_hash());
        assert_eq!(a.driver.threads.len(), 4);
    }

    #[test]
    fn scripted_run_replays_bit_for_bit() {
        let g = Genesis::new(Platform::Sabre);
        let Booted {
            mut machine,
            mut kernel,
            driver,
        } = g.boot();
        kernel.log.enable();
        for i in 0..40u64 {
            driver.step(&mut machine, &mut kernel, i * 7 + 3, i, i * 13 + 1);
        }
        let commits = kernel.log.take();
        assert!(!commits.is_empty());
        let (rm, rk) = replay(&g, &commits);
        assert_eq!(kernel.state_hash(), rk.state_hash());
        assert_eq!(machine.cycles(0), rm.cycles(0));
    }

    #[test]
    fn replay_diff_localizes_a_flipped_commit() {
        let g = Genesis::new(Platform::Haswell);
        let Booted {
            mut machine,
            mut kernel,
            driver,
        } = g.boot();
        kernel.log.enable();
        for i in 0..20u64 {
            driver.step(&mut machine, &mut kernel, i, i, i);
        }
        let mut commits = kernel.log.take();
        let trace = hash_trace(&g, &commits);
        assert!(replay_diff(&g, &commits, &trace).is_none());
        // Flip one commit: the diff must point at it (or earlier —
        // never later).
        let flip = commits.len() / 2;
        commits[flip] = Commit::Signal {
            ntfn: crate::objects::NtfnId(0),
            badge: 0xDEAD,
        };
        let d = replay_diff(&g, &commits, &trace).expect("must diverge");
        assert!(
            d.index <= flip + 1,
            "diverged at {} not near {}",
            d.index,
            flip
        );
    }

    #[test]
    fn snapshot_resume_matches_straight_through() {
        let g = Genesis::new(Platform::Skylake);
        let Booted {
            mut machine,
            mut kernel,
            driver,
        } = g.boot();
        kernel.log.enable();
        for i in 0..30u64 {
            driver.step(&mut machine, &mut kernel, i * 3 + 1, i * 5, i);
            if i == 14 {
                let snap = Snapshot::take(&machine, &kernel, kernel.log.len());
                assert_eq!(snap.hash, kernel.state_hash());
                // Resume and fast-forward with the same script suffix.
                let (mut m2, mut k2) = snap.resume();
                for j in 15..30u64 {
                    driver.step(&mut m2, &mut k2, j * 3 + 1, j * 5, j);
                }
                // Straight-through finishes below; stash for comparison.
                let mut m1 = machine.clone();
                let mut k1 = kernel.clone();
                for j in 15..30u64 {
                    driver.step(&mut m1, &mut k1, j * 3 + 1, j * 5, j);
                }
                assert_eq!(k1.state_hash(), k2.state_hash());
                assert_eq!(m1.cycles(0), m2.cycles(0));
                break;
            }
        }
    }
}
